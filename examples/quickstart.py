#!/usr/bin/env python3
"""Quickstart: build a defect-tolerant biochip, break it, repair it.

Walks the core API end to end in under a minute:

1. build a DTMB(2,6) interstitial-redundancy array (Figure 4 of the paper);
2. inject random manufacturing faults;
3. repair them by local reconfiguration (maximum bipartite matching);
4. visualize the repair and estimate the design's manufacturing yield.

Run:  python examples/quickstart.py
"""

from repro.designs import DTMB_2_6, build_with_primary_count
from repro.faults import FixedCountInjector
from repro.reconfig import plan_local_repair
from repro.viz import render_chip, render_legend
from repro.yieldsim import YieldSimulator, yield_no_redundancy


def main() -> None:
    # 1. A DTMB(2,6) array with exactly 100 primary cells.  Every primary
    #    is adjacent to 2 interstitial spares; every spare serves 6
    #    primaries (redundancy ratio 1/3).
    fit = build_with_primary_count(DTMB_2_6, 100)
    chip = fit.build()
    print(f"built {chip.name!r}: {fit.cols}x{fit.rows} cells, "
          f"{chip.primary_count} primary + {chip.spare_count} spare "
          f"(RR = {chip.redundancy_ratio():.3f})")

    # 2. Six random cells fail in manufacturing.
    fault_map = FixedCountInjector(6).sample(chip, seed=42)
    fault_map.apply_to(chip)
    print(f"\ninjected {len(fault_map)} faults: "
          + ", ".join(str(f.coord) + f" ({f.kind.value})" for f in fault_map))

    # 3. Local reconfiguration: each faulty primary is replaced by an
    #    adjacent fault-free spare, found via maximum bipartite matching.
    plan = plan_local_repair(chip)
    if plan.complete:
        print(f"repaired: {plan.spares_used} spare(s) swapped in")
        for primary, spare in sorted(plan.assignment.items()):
            print(f"  faulty primary {primary} -> spare {spare}")
    else:
        print(f"IRREPARABLE: {len(plan.unrepaired)} cells uncovered")

    # 4. Picture of the repair (X faulty spare-covered cells show as #).
    print("\n" + render_chip(chip, plan=plan))
    print(render_legend())

    # 5. Yield at 97% per-cell survival: Monte-Carlo over 10 000 chips.
    estimate = YieldSimulator(chip).run_survival(p=0.97, runs=10_000, seed=1)
    baseline = yield_no_redundancy(0.97, chip.primary_count)
    print(f"\nyield at p=0.97: {estimate}")
    print(f"same 100 cells with no spares: {baseline:.4f}")
    print(f"improvement: {estimate.value / baseline:.1f}x")


if __name__ == "__main__":
    main()
