#!/usr/bin/env python3
"""Yield explorer: compare redundancy architectures across fab quality.

Reproduces the decision the paper's Figures 7, 9 and 10 support: given a
process survival probability, which DTMB(s, p) architecture should a chip
designer pick?  Sweeps all four designs, prints yield and effective-yield
charts, reports the crossover points, and exports the raw series to CSV.

Run:  python examples/yield_explorer.py [runs_per_point]
"""

import sys

from repro.designs import TABLE1_DESIGNS
from repro.experiments import fig10
from repro.viz import ascii_chart, write_csv
from repro.yieldsim import dtmb16_yield, yield_no_redundancy


def main() -> None:
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    n = 100

    # --- analytic teaser: what redundancy buys at all (Figure 7) -------
    ps = [round(0.90 + 0.01 * i, 2) for i in range(11)]
    teaser = {
        "DTMB(1,6)": [(p, dtmb16_yield(p, n)) for p in ps],
        "no spares": [(p, yield_no_redundancy(p, n)) for p in ps],
    }
    print(ascii_chart(teaser, title=f"Yield, n={n} primary cells",
                      y_label="Y", x_label="cell survival probability p"))

    # --- the real comparison: effective yield (Figure 10) --------------
    print(f"\nsweeping {len(TABLE1_DESIGNS)} designs x {len(ps)} points "
          f"at {runs} Monte-Carlo runs each...")
    result = fig10.run(ps=ps, runs=runs, seed=99)
    print()
    print(result.format_chart())

    print("\nbest design by fab quality:")
    for p in ps:
        print(f"  p={p:.2f}: {result.best_design_at(p)}")
    for p, old, new in result.crossovers():
        print(f"crossover at p~{p:.2f}: {old} -> {new}")

    # --- export for external plotting ----------------------------------
    rows = [
        (pt.design, pt.p, f"{pt.yield_value:.4f}", f"{pt.effective:.4f}")
        for pt in result.points
    ]
    out = "yield_explorer.csv"
    write_csv(out, ["design", "p", "yield", "effective_yield"], rows)
    print(f"\nwrote {len(rows)} rows to {out}")


if __name__ == "__main__":
    main()
