#!/usr/bin/env python3
"""Offline test, diagnosis and repair: the chip's post-fab workflow.

Demonstrates the design-for-test substrate the paper builds on (its refs
[10, 11]) feeding the repair engine:

1. plan a stimuli-droplet traversal covering every cell (snake plan);
2. go/no-go test — single droplet, then concurrent multi-droplet;
3. adaptive diagnosis locates the faulty cells via prefix bisection;
4. local reconfiguration repairs them;
5. the repaired chip is re-tested through the remap and shipped as SVG.

Run:  python examples/test_and_repair.py
"""

from repro.designs import DTMB_2_6, build_chip
# Alias the DfT entry point so nothing in this script looks like a pytest
# test (the file name already matches test_*.py).
from repro.dft import concurrent_test, diagnose, snake_plan
from repro.dft import test_chip as run_offline_chip_test
from repro.faults import FixedCountInjector
from repro.geometry import RectRegion
from repro.reconfig import CellRemap, plan_local_repair
from repro.viz import render_chip, render_legend, write_svg


def main() -> None:
    region = RectRegion(12, 12)
    chip = build_chip(DTMB_2_6, region)
    plan = snake_plan(region)
    print(f"chip: {chip.primary_count} primary + {chip.spare_count} spare; "
          f"test plan covers {len(plan)} cells")

    # A fresh chip passes the full traversal.
    outcome = run_offline_chip_test(chip, plan)
    print(f"pre-damage test: {'PASS' if outcome.passed else 'FAIL'} "
          f"({outcome.cells_traversed} moves)")

    # Concurrent testing: 3 droplets, ~3x faster.
    result = concurrent_test(chip, plan, droplets=3)
    print(f"concurrent test with 3 droplets: "
          f"{result.steps} lockstep steps "
          f"({result.speedup_vs_single:.1f}x speedup)")

    # Manufacturing defects strike.
    FixedCountInjector(4).sample(chip, seed=11).apply_to(chip)
    truth = sorted(c.coord for c in chip.faulty_cells())
    outcome = run_offline_chip_test(chip, plan)
    print(f"\npost-damage test: {'PASS' if outcome.passed else 'FAIL'}")

    # Adaptive diagnosis: binary search along the failing traversal.
    report = diagnose(chip, plan)
    print(f"diagnosis: located {len(report.located)} faults in "
          f"{report.probes} droplet probes / {report.moves} moves")
    print(f"  located : {sorted(report.located)}")
    print(f"  truth   : {truth}")
    assert set(report.located) == set(truth)

    # Repair by local reconfiguration.
    repair = plan_local_repair(chip)
    print(f"\nrepair: {'complete' if repair.complete else 'INCOMPLETE'} "
          f"({repair.spares_used} spares in use)")
    print(render_chip(chip, plan=repair))
    print(render_legend())

    # The repaired chip, as its controller sees it.
    remap = CellRemap(chip, repair)
    print(f"\nlogical->physical remap covers {remap.remapped_count} cells; "
          f"dead cells: {list(remap.dead_cells) or 'none'}")

    out = "repaired_chip.svg"
    write_svg(chip, out, plan=repair)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
