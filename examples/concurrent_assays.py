#!/usr/bin/env python3
"""Concurrent bioassays: several droplets in flight on a repaired chip.

The paper's opening promise is that "several bioassays [will] be
concurrently executed in a single microfluidic array."  This example puts
that together with the maintenance loop:

1. a DTMB(2,6) array suffers manufacturing faults;
2. the maintenance loop tests, diagnoses and repairs it;
3. four droplets (two sample/reagent pairs) are routed *simultaneously*
   with the time-expanded concurrent router — no accidental merges, faults
   avoided, all through the repair remap.

Run:  python examples/concurrent_assays.py
"""

from repro.designs import DTMB_2_6, build_chip
from repro.dft import maintain
from repro.faults import FixedCountInjector
from repro.fluidics import ConcurrentRouter, RouteRequest
from repro.geometry import RectRegion, offset_to_axial
from repro.viz import render_chip, render_legend


def main() -> None:
    region = RectRegion(12, 12)
    chip = build_chip(DTMB_2_6, region)
    print(f"chip: {chip.primary_count} primary + {chip.spare_count} spare")

    # --- manufacturing defects + maintenance cycle ----------------------
    FixedCountInjector(5).sample(chip, seed=17).apply_to(chip)
    report = maintain(chip, region=region)
    print(report.format_report())
    if not report.usable:
        raise SystemExit("chip is scrap; rerun with another seed")

    # --- concurrent routing through the remap ---------------------------
    # Two assays' worth of droplets: samples from the west edge, reagents
    # from the east edge, meeting at two separated mixer sites.
    primaries = {c.coord for c in chip.primaries()}

    def usable_near(col, row):
        # nearest good primary to the requested offset cell
        target = offset_to_axial(col, row)
        candidates = sorted(
            (target.distance(p), p)
            for p in primaries
            if chip[p].is_good or (report.remap and p not in report.remap.dead_cells)
        )
        return candidates[0][1]

    requests = [
        RouteRequest("sample-1", usable_near(0, 2), usable_near(6, 3)),
        RouteRequest("reagent-1", usable_near(11, 2), usable_near(8, 3)),
        RouteRequest("sample-2", usable_near(0, 9), usable_near(6, 8)),
        RouteRequest("reagent-2", usable_near(11, 9), usable_near(8, 8)),
    ]
    router = ConcurrentRouter(chip, remap=report.remap)
    plan = router.plan(requests)

    print(f"\nconcurrent plan: {len(requests)} droplets, "
          f"makespan {plan.makespan} steps, {plan.total_moves()} moves total")
    lower_bound = max(r.source.distance(r.target) for r in requests)
    print(f"(single-droplet lower bound: {lower_bound} steps — "
          f"concurrency overhead {plan.makespan - lower_bound} steps)")

    for request in requests:
        trajectory = plan.trajectories[request.name]
        waits = sum(1 for a, b in zip(trajectory, trajectory[1:]) if a == b)
        print(f"  {request.name:<10} {request.source} -> {request.target}: "
              f"{len(trajectory) - 1 - waits} moves, {waits} waits")

    print("\nchip with repairs:")
    print(render_chip(chip, plan=report.repair))
    print(render_legend())


if __name__ == "__main__":
    main()
