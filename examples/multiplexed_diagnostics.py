#!/usr/bin/env python3
"""The paper's case study: multiplexed in-vitro diagnostics (Section 7).

Compares the two chips of Figures 11-12:

* the fabricated first-generation chip — 108 square electrodes, no spares,
  yield 0.99^108 = 0.3378;
* the DTMB(2,6) redesign — 252 primaries (108 used), 91 interstitial
  spares — which repairs ten random faults and still runs the full
  glucose / lactate / glutamate / pyruvate panel on a (simulated) patient
  sample.

Run:  python examples/multiplexed_diagnostics.py
"""

from repro.assays import (
    PANEL,
    MultiplexedRunner,
    Species,
    fabricated_chip,
    redesigned_chip,
)
from repro.faults import FixedCountInjector
from repro.viz import render_chip, render_legend
from repro.yieldsim import YieldSimulator, yield_no_redundancy


def main() -> None:
    # --- Figure 11: the non-redundant baseline -------------------------
    baseline = fabricated_chip()
    print(f"fabricated chip: {len(baseline)} cells, no spares")
    print(f"yield at p=0.99: {yield_no_redundancy(0.99, len(baseline)):.4f} "
          "(the paper's 0.3378 headline)")

    # --- Figure 12: the DTMB(2,6) redesign -----------------------------
    layout = redesigned_chip()
    print(f"\nredesign: {layout.describe()}")
    estimate = YieldSimulator(layout.chip, needed=layout.used).run_survival(
        p=0.99, runs=10_000, seed=7
    )
    print(f"yield at p=0.99 (108 assay cells protected): {estimate}")

    # --- Damage it and repair it ---------------------------------------
    FixedCountInjector(10).sample(layout.chip, seed=2005).apply_to(layout.chip)
    print(f"\ninjected 10 random faults "
          f"({len(layout.chip.faulty_primaries())} hit primary cells)")

    runner = MultiplexedRunner(layout)  # repairs automatically
    if runner.remap is not None:
        print(f"local reconfiguration remapped "
              f"{runner.remap.remapped_count} used cell(s) onto spares")

    # --- Run the full diagnostics panel on a patient sample ------------
    patient = {
        Species.GLUCOSE: 8.2e-3,    # elevated: diabetic-range plasma
        Species.LACTATE: 1.1e-3,    # normal
        Species.GLUTAMATE: 90e-6,   # normal
        Species.PYRUVATE: 70e-5 / 10,  # normal
    }
    print("\nassay panel on the repaired chip:")
    header = f"{'analyte':<12}{'measured':>12}{'true':>12}{'err':>8}  flag"
    print(header)
    print("-" * len(header))
    for result in runner.run_panel(patient):
        flag = "ok" if result.in_reference_range else "OUT OF RANGE"
        print(
            f"{result.analyte:<12}"
            f"{result.measured_concentration:>12.3e}"
            f"{result.true_concentration:>12.3e}"
            f"{result.relative_error:>8.2%}  {flag}"
        )

    print("\nchip after repair (used cells green 'o', repairs '#'->'R'):")
    print(render_chip(layout.chip, used=layout.used,
                      plan=None))
    print(render_legend())


if __name__ == "__main__":
    main()
