"""The unified telemetry layer: metrics, traces, events, timings.

The one invariant everything here leans on: telemetry is out-of-band.
Fixed-seed results are bit-identical with tracing on, off, or fault-
injected; metrics render from the same live stats objects ``/stats`` and
the manifest read, so the three surfaces can never disagree.
"""

from __future__ import annotations

import io
import json
import threading
import urllib.request

import pytest

from repro.obs.events import (
    configure_logging,
    get_logger,
    log_event,
    validate_event_line,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    engine_collector,
)
from repro.obs.trace import Tracer, span_signature, validate_trace
from repro.serve import BackgroundServer, ServeConfig
from repro.yieldsim.engine import EnginePoint, SweepEngine
from repro.yieldsim.executors import SerialExecutor
from repro.yieldsim.kernel import PointSpec
from repro.yieldsim.resilience import (
    FaultInjectingExecutor,
    FaultSchedule,
    ResilienceStats,
    RetryPolicy,
    unit_digest,
)

RUNS = 400

GRID = [(0.90 + 0.01 * i, 11 + i) for i in range(9)]

FAST = RetryPolicy(attempts=3, backoff_base=0.0)


def flat_estimates(chip, engine=None):
    engine = engine if engine is not None else SweepEngine()
    return [
        (e.successes, e.trials)
        for e in engine.survival_estimates(chip, GRID, RUNS)
    ]


# -- instrument semantics ------------------------------------------------------

class TestInstruments:
    def test_counter_semantics(self):
        c = Counter("repro_test_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)
        # Collector-style set() never moves a counter backwards.
        c.set(10.0)
        assert c.value() == 10.0
        c.set(4.0)
        assert c.value() == 10.0

    def test_labelled_counter(self):
        c = Counter("repro_test_total", "help", labelnames=("map",))
        c.inc(map="points")
        c.inc(3, map="bundles")
        assert c.value(map="points") == 1
        assert c.value(map="bundles") == 3
        with pytest.raises(ValueError):
            c.inc(other="nope")

    def test_gauge_moves_both_ways(self):
        g = Gauge("repro_active", "help")
        g.set(5)
        g.dec(2)
        g.inc()
        assert g.value() == 4

    def test_histogram_buckets_are_cumulative(self):
        h = Histogram("repro_seconds", "help", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 5
        assert h.sum() == pytest.approx(56.05)
        samples = dict(
            (name + suffix, value) for name, suffix, value in h.samples()
        )
        assert samples['repro_seconds_bucket{le="0.1"}'] == 1
        assert samples['repro_seconds_bucket{le="1"}'] == 3
        assert samples['repro_seconds_bucket{le="10"}'] == 4
        assert samples['repro_seconds_bucket{le="+Inf"}'] == 5
        assert samples["repro_seconds_count"] == 5

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("9starts-with-digit", "help")

    def test_registry_accessors_are_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total", "help")
        b = reg.counter("repro_x_total")
        assert a is b
        with pytest.raises(ValueError):
            reg.gauge("repro_x_total")


class TestPrometheusRender:
    def test_golden_exposition(self):
        reg = MetricsRegistry()
        reg.counter("repro_b_total", "b count").inc(2)
        reg.gauge("repro_a", "a level").set(1.5)
        h = reg.histogram("repro_c_seconds", "c timing", buckets=(1.0,))
        h.observe(0.5)
        assert reg.render() == (
            "# HELP repro_a a level\n"
            "# TYPE repro_a gauge\n"
            "repro_a 1.5\n"
            "# HELP repro_b_total b count\n"
            "# TYPE repro_b_total counter\n"
            "repro_b_total 2\n"
            "# HELP repro_c_seconds c timing\n"
            "# TYPE repro_c_seconds histogram\n"
            'repro_c_seconds_bucket{le="1"} 1\n'
            'repro_c_seconds_bucket{le="+Inf"} 1\n'
            "repro_c_seconds_sum 0.5\n"
            "repro_c_seconds_count 1\n"
        )

    def test_collectors_run_at_scrape_time(self):
        reg = MetricsRegistry()
        source = {"n": 1}
        reg.register_collector(
            lambda r: r.counter("repro_n_total").set(source["n"])
        )
        assert reg.as_dict()["repro_n_total"] == 1
        source["n"] = 7
        assert reg.as_dict()["repro_n_total"] == 7


class TestEngineAdapter:
    def test_engine_collector_matches_stats_dicts(self, dtmb26_chip):
        engine, executor = _faulted_engine(
            FaultSchedule(crash_every=3), retry=FAST
        )
        flat_estimates(dtmb26_chip, engine)
        assert engine.resilience.retries >= 1

        reg = MetricsRegistry()
        reg.register_collector(engine_collector(engine))
        flat = reg.as_dict()
        assert flat["repro_engine_cache_hits_total"] == engine.cache_hits
        assert flat["repro_engine_runs_effective_total"] == (
            engine.runs_effective
        )
        for field, value in engine.resilience.as_dict().items():
            assert flat[f"repro_resilience_{field}_total"] == value
        for field, value in engine.store_stats.as_dict().items():
            assert flat[f"repro_cachestore_{field}_total"] == value
        for field, value in engine.screen_stats.as_dict().items():
            assert flat[f"repro_screen_{field}_total"] == value

    def test_resilience_fields_all_numeric(self):
        # Guards the adapter's duck-typing: every stats field must stay a
        # plain number for _set_from_dict to fold it in.
        for value in ResilienceStats().as_dict().values():
            assert isinstance(value, (int, float))


# -- tracing -------------------------------------------------------------------

def _faulted_engine(schedule, **engine_kwargs):
    executor = FaultInjectingExecutor(SerialExecutor(), schedule)
    engine = SweepEngine(executor=executor, **engine_kwargs)
    return engine, executor


class TestTracer:
    def test_trace_is_out_of_band(self, dtmb26_chip):
        clean = flat_estimates(dtmb26_chip)
        traced_engine = SweepEngine(tracer=Tracer())
        assert flat_estimates(dtmb26_chip, traced_engine) == clean
        assert len(traced_engine.tracer) > 0

    def test_trace_is_out_of_band_under_faults(self, dtmb26_chip):
        clean = flat_estimates(dtmb26_chip)
        engine, executor = _faulted_engine(
            FaultSchedule(crash_every=3), retry=FAST, tracer=Tracer()
        )
        assert flat_estimates(dtmb26_chip, engine) == clean
        assert executor.injected.get("crash", 0) >= 1
        incidents = [
            e for e in engine.tracer.to_dict()["traceEvents"]
            if e.get("cat") == "incident"
        ]
        assert any(e["name"] == "unit_retry" for e in incidents)

    def test_span_tree_is_deterministic(self, dtmb26_chip):
        signatures = []
        for _ in range(2):
            engine = SweepEngine(tracer=Tracer())
            flat_estimates(dtmb26_chip, engine)
            signatures.append(span_signature(engine.tracer.to_dict()))
        assert signatures[0] == signatures[1]
        # Volatile fields are excluded from the signature by design.
        for event in signatures[0]:
            assert not {"ts", "dur", "pid", "tid"} & set(event)

    def test_validate_trace_accepts_real_and_rejects_junk(self, dtmb26_chip):
        engine = SweepEngine(tracer=Tracer())
        flat_estimates(dtmb26_chip, engine)
        events = validate_trace(engine.tracer.to_dict())
        names = {e["name"] for e in events}
        assert {"point", "scheduler.run", "unit:chunk"} <= names
        with pytest.raises(ValueError):
            validate_trace({"nope": []})
        with pytest.raises(ValueError):
            validate_trace({"traceEvents": [{"name": "x"}]})

    def test_point_spans_carry_budget_args(self, dtmb26_chip):
        engine = SweepEngine(tracer=Tracer())
        flat_estimates(dtmb26_chip, engine)
        points = [
            e for e in engine.tracer.to_dict()["traceEvents"]
            if e["name"] == "point"
        ]
        assert len(points) == len(GRID)
        by_index = {e["args"]["index"]: e for e in points}
        for record, (index, span) in zip(
            engine.point_log, sorted(by_index.items())
        ):
            assert span["args"]["requested"] == record.requested
            assert span["args"]["effective"] == record.effective
            assert span["args"]["successes"] is not None

    def test_unit_digest_is_stable(self):
        a = unit_digest(flat_estimates, (1, 2))
        b = unit_digest(flat_estimates, (1, 2))
        c = unit_digest(flat_estimates, (1, 3))
        assert a == b
        assert a != c


# -- timings -------------------------------------------------------------------

class TestTimings:
    def test_point_records_carry_timings(self, dtmb26_chip):
        engine = SweepEngine()
        flat_estimates(dtmb26_chip, engine)
        for record in engine.point_log:
            assert record.timings is not None
            assert record.timings["wall_s"] >= 0.0
            assert record.timings["cpu_s"] >= 0.0
            assert "timings" in record.as_dict()

    def test_cache_hits_have_no_timings(self, dtmb26_chip, tmp_path):
        SweepEngine(cache_dir=str(tmp_path)).survival_estimates(
            dtmb26_chip, GRID[:2], RUNS
        )
        warm = SweepEngine(cache_dir=str(tmp_path))
        warm.survival_estimates(dtmb26_chip, GRID[:2], RUNS)
        assert warm.cache_hits == 2
        assert all(r.timings is None for r in warm.point_log)

    def test_manifest_timings_block(self):
        from repro.experiments import registry

        result = registry.execute(
            registry.get("fig9"), runs=60, seed=7, engine=SweepEngine()
        )
        timings = result.provenance.as_dict()["engine"]["timings"]
        assert timings["wall_s"] > 0.0
        # Volatile telemetry never reaches the stable digest surface.
        stable = json.dumps(result.provenance.stable_dict())
        assert "timings" not in stable
        assert "wall_s" not in stable

    def test_funnel_phases_surface_in_timings(self, dtmb26_chip):
        from repro.functional.criteria import RoutingCriterion

        engine = SweepEngine()
        engine.run_points([
            EnginePoint(
                dtmb26_chip,
                PointSpec(
                    "survival", 0.93, 200, 7,
                    criterion=RoutingCriterion(deadline=200),
                ),
            )
        ])
        timings = engine.point_log[-1].timings
        assert timings["funnel_screen_wall_s"] >= 0.0
        assert timings["funnel_sample_wall_s"] >= 0.0


# -- the event log -------------------------------------------------------------

class TestEventLog:
    def teardown_method(self):
        configure_logging("warning")  # leave the quiet default behind

    def test_ndjson_lines_validate(self):
        sink = io.StringIO()
        configure_logging("info", json_lines=True, stream=sink)
        log_event(get_logger("scheduler"), "unit_retry", token="(1, 2)",
                  attempt=2)
        lines = sink.getvalue().splitlines()
        assert len(lines) == 1
        payload = validate_event_line(lines[0])
        assert payload["event"] == "unit_retry"
        assert payload["logger"] == "repro.scheduler"
        assert payload["fields"]["attempt"] == 2

    def test_fault_injection_emits_retry_events(self, dtmb26_chip):
        sink = io.StringIO()
        configure_logging("info", json_lines=True, stream=sink)
        engine, _ = _faulted_engine(FaultSchedule(crash_every=3), retry=FAST)
        flat_estimates(dtmb26_chip, engine)
        events = [
            validate_event_line(line)
            for line in sink.getvalue().splitlines()
        ]
        assert any(e["event"] == "unit_retry" for e in events)

    def test_validate_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            validate_event_line("not json")
        with pytest.raises(ValueError):
            validate_event_line(json.dumps({"schema": 99}))
        with pytest.raises(ValueError):
            validate_event_line(json.dumps({
                "schema": 1, "ts": 1.0, "level": "info",
                "logger": "other.place", "msg": "x",
            }))

    def test_logger_names_live_under_repro(self):
        assert get_logger("scheduler").name == "repro.scheduler"
        assert get_logger("repro.serve").name == "repro.serve"


# -- the serve surface ---------------------------------------------------------

def _post(url, body):
    req = urllib.request.Request(
        url, data=json.dumps(body).encode("utf-8"), method="POST"
    )
    return json.load(urllib.request.urlopen(req))


def _get(url):
    return urllib.request.urlopen(url).read().decode("utf-8")


POINT = {
    "design": "DTMB(2,6)", "n": 60, "param": 0.95, "runs": 400, "seed": 3,
}


class TestServeTelemetry:
    def test_metrics_endpoint_matches_stats(self):
        with BackgroundServer(ServeConfig(port=0)) as handle:
            url = f"http://127.0.0.1:{handle.port}"
            _post(url + "/points", POINT)
            stats = json.loads(_get(url + "/stats"))
            flat = handle.server.metrics.as_dict()
            assert flat["repro_http_requests_total"] >= stats["requests"] - 1
            assert flat['repro_coalesce_computed_total{map="points"}'] == (
                stats["points"]["computed"]
            )
            text = _get(url + "/metrics")
            assert "# TYPE repro_http_requests_total counter" in text
            assert "repro_http_request_seconds_bucket" in text

    def test_metrics_consistent_under_concurrent_load(self):
        with BackgroundServer(ServeConfig(port=0)) as handle:
            url = f"http://127.0.0.1:{handle.port}"
            errors = []

            def hammer(i):
                try:
                    _post(url + "/points", {**POINT, "seed": 100 + i % 3})
                    _get(url + "/metrics")
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            stats = json.loads(_get(url + "/stats"))
            flat = handle.server.metrics.as_dict()
            points = stats["points"]
            assert flat['repro_coalesce_computed_total{map="points"}'] == (
                points["computed"]
            )
            assert flat["repro_engine_runs_effective_total"] == (
                stats["engine"]["runs_effective"]
            )

    def test_per_request_trace(self):
        with BackgroundServer(ServeConfig(port=0)) as handle:
            url = f"http://127.0.0.1:{handle.port}/points"
            plain = _post(url, POINT)
            assert "trace" not in plain
            traced = _post(url, {**POINT, "trace": True})
            # Telemetry is out-of-band: same numbers with tracing on.
            assert traced["successes"] == plain["successes"]
            assert traced["trials"] == plain["trials"]
            events = validate_trace(traced["trace"])
            assert any(e["name"] == "point" for e in events)
