"""Tests for time-expanded concurrent droplet routing."""

from __future__ import annotations

import pytest

from repro.chip.builders import plain_chip
from repro.errors import RoutingError
from repro.fluidics.concurrent_routing import (
    ConcurrentPlan,
    ConcurrentRouter,
    RouteRequest,
)
from repro.geometry.hexgrid import RectRegion, offset_to_axial


@pytest.fixture
def chip():
    return plain_chip(RectRegion(10, 10))


@pytest.fixture
def router(chip):
    return ConcurrentRouter(chip)


def assert_plan_legal(chip, plan: ConcurrentPlan):
    """Validate every DMFB routing constraint on the finished plan."""
    names = list(plan.trajectories)
    horizon = plan.makespan
    for name, traj in plan.trajectories.items():
        for a, b in zip(traj, traj[1:]):
            assert a == b or b in chip.neighbors(a), (name, a, b)
    for t in range(horizon + 1):
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                pa, pb = plan.position(a, t), plan.position(b, t)
                # static constraint
                assert pa != pb and pb not in chip.neighbors(pa), (t, a, b)
                if t > 0:
                    # dynamic constraint vs the other droplet's previous cell
                    prev_b = plan.position(b, t - 1)
                    prev_a = plan.position(a, t - 1)
                    assert pa != prev_b and prev_b not in chip.neighbors(pa)
                    assert pb != prev_a and prev_a not in chip.neighbors(pb)


class TestTwoDroplets:
    def test_parallel_routes(self, chip, router):
        requests = [
            RouteRequest("a", offset_to_axial(0, 0), offset_to_axial(9, 0)),
            RouteRequest("b", offset_to_axial(0, 9), offset_to_axial(9, 9)),
        ]
        plan = router.plan(requests)
        assert plan.position("a", plan.makespan) == offset_to_axial(9, 0)
        assert plan.position("b", plan.makespan) == offset_to_axial(9, 9)
        assert_plan_legal(chip, plan)

    def test_crossing_routes(self, chip, router):
        # a goes west->east, b goes north->south: paths must interleave.
        requests = [
            RouteRequest("a", offset_to_axial(0, 5), offset_to_axial(9, 5)),
            RouteRequest("b", offset_to_axial(5, 0), offset_to_axial(5, 9)),
        ]
        plan = router.plan(requests)
        assert_plan_legal(chip, plan)

    def test_swap_positions(self, chip, router):
        # The classic hard case: two droplets exchanging distant corners.
        requests = [
            RouteRequest("a", offset_to_axial(0, 0), offset_to_axial(9, 9)),
            RouteRequest("b", offset_to_axial(9, 9), offset_to_axial(0, 0)),
        ]
        plan = router.plan(requests)
        assert_plan_legal(chip, plan)

    def test_makespan_close_to_lower_bound(self, chip, router):
        src_a, dst_a = offset_to_axial(0, 0), offset_to_axial(9, 0)
        src_b, dst_b = offset_to_axial(0, 9), offset_to_axial(9, 9)
        plan = router.plan(
            [RouteRequest("a", src_a, dst_a), RouteRequest("b", src_b, dst_b)]
        )
        bound = max(src_a.distance(dst_a), src_b.distance(dst_b))
        assert plan.makespan <= bound + 6  # small detour allowance


class TestThreeDroplets:
    def test_three_way(self, chip, router):
        requests = [
            RouteRequest("a", offset_to_axial(0, 0), offset_to_axial(9, 9)),
            RouteRequest("b", offset_to_axial(9, 0), offset_to_axial(0, 9)),
            RouteRequest("c", offset_to_axial(0, 5), offset_to_axial(9, 4)),
        ]
        plan = router.plan(requests)
        assert_plan_legal(chip, plan)
        assert plan.total_moves() >= sum(
            r.source.distance(r.target) for r in requests
        )


class TestFaultAvoidance:
    def test_routes_around_fault_wall_gap(self):
        chip = plain_chip(RectRegion(10, 10))
        # Wall across row 5 with one gap at column 7.
        for col in range(10):
            if col != 7:
                chip.mark_faulty(offset_to_axial(col, 5))
        router = ConcurrentRouter(chip)
        requests = [
            RouteRequest("a", offset_to_axial(0, 0), offset_to_axial(0, 9)),
            RouteRequest("b", offset_to_axial(9, 0), offset_to_axial(9, 9)),
        ]
        plan = router.plan(requests)
        assert_plan_legal(chip, plan)
        # Both trajectories funnel through the single gap.
        gap = offset_to_axial(7, 5)
        for name in ("a", "b"):
            assert gap in plan.trajectories[name]


class TestValidation:
    def test_adjacent_sources_rejected(self, router):
        with pytest.raises(RoutingError):
            router.plan(
                [
                    RouteRequest("a", offset_to_axial(0, 0), offset_to_axial(5, 5)),
                    RouteRequest("b", offset_to_axial(1, 0), offset_to_axial(8, 8)),
                ]
            )

    def test_adjacent_targets_rejected(self, router):
        with pytest.raises(RoutingError):
            router.plan(
                [
                    RouteRequest("a", offset_to_axial(0, 0), offset_to_axial(5, 5)),
                    RouteRequest("b", offset_to_axial(9, 9), offset_to_axial(5, 6)),
                ]
            )

    def test_duplicate_names_rejected(self, router):
        with pytest.raises(RoutingError):
            router.plan(
                [
                    RouteRequest("a", offset_to_axial(0, 0), offset_to_axial(3, 3)),
                    RouteRequest("a", offset_to_axial(9, 9), offset_to_axial(6, 6)),
                ]
            )

    def test_empty_requests_rejected(self, router):
        with pytest.raises(RoutingError):
            router.plan([])

    def test_unusable_endpoint_rejected(self, chip):
        chip.mark_faulty(offset_to_axial(0, 0))
        router = ConcurrentRouter(chip)
        with pytest.raises(RoutingError):
            router.plan(
                [RouteRequest("a", offset_to_axial(0, 0), offset_to_axial(5, 5))]
            )

    def test_impossible_instance_raises(self):
        # A 1-wide corridor cannot host two swapping droplets.
        chip = plain_chip(RectRegion(6, 1))
        router = ConcurrentRouter(chip)
        with pytest.raises(RoutingError):
            router.plan(
                [
                    RouteRequest("a", offset_to_axial(0, 0), offset_to_axial(5, 0)),
                    RouteRequest("b", offset_to_axial(5, 0), offset_to_axial(0, 0)),
                ],
                horizon=40,
            )
