"""Unit and property tests for axial hex coordinates."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.hex import (
    DIRECTION_NAMES,
    HEX_DIRECTIONS,
    Hex,
    axial_to_pixel,
    hex_disk,
    hex_distance,
    hex_line,
    hex_ring,
    hex_round,
    hex_spiral,
    pixel_to_axial,
)

coords = st.integers(min_value=-50, max_value=50)
hexes = st.builds(Hex, coords, coords)


class TestBasics:
    def test_cube_invariant(self):
        h = Hex(3, -5)
        assert h.q + h.r + h.s == 0
        assert h.cube == (3, -5, 2)

    def test_from_cube_checks_sum(self):
        assert Hex.from_cube(1, 2, -3) == Hex(1, 2)
        with pytest.raises(GeometryError):
            Hex.from_cube(1, 2, 3)

    def test_six_distinct_directions(self):
        assert len(set(HEX_DIRECTIONS)) == 6
        assert len(DIRECTION_NAMES) == 6

    def test_directions_sum_to_zero(self):
        total = Hex(0, 0)
        for dq, dr in HEX_DIRECTIONS:
            total = total + Hex(dq, dr)
        assert total == Hex(0, 0)

    def test_neighbors_are_distance_one(self):
        center = Hex(4, -2)
        for neighbor in center.neighbors():
            assert center.distance(neighbor) == 1
            assert center.is_adjacent(neighbor)

    def test_neighbor_by_direction_wraps(self):
        h = Hex(0, 0)
        assert h.neighbor(0) == h.neighbor(6)
        assert h.neighbor(-1) == h.neighbor(5)

    def test_scalar_multiplication_requires_int(self):
        with pytest.raises(GeometryError):
            Hex(1, 1) * 1.5

    def test_ordering_is_lexicographic(self):
        assert sorted([Hex(1, 0), Hex(0, 5), Hex(0, 1)]) == [
            Hex(0, 1),
            Hex(0, 5),
            Hex(1, 0),
        ]


class TestArithmeticProperties:
    @given(hexes, hexes)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(hexes, hexes)
    def test_subtraction_inverts_addition(self, a, b):
        assert (a + b) - b == a

    @given(hexes)
    def test_negation(self, a):
        assert a + (-a) == Hex(0, 0)

    @given(hexes, st.integers(min_value=-5, max_value=5))
    def test_scalar_distributes(self, a, k):
        assert a * k == Hex(a.q * k, a.r * k)
        assert k * a == a * k


class TestMetricProperties:
    @given(hexes, hexes)
    def test_symmetry(self, a, b):
        assert hex_distance(a, b) == hex_distance(b, a)

    @given(hexes, hexes)
    def test_identity(self, a, b):
        assert (hex_distance(a, b) == 0) == (a == b)

    @given(hexes, hexes, hexes)
    def test_triangle_inequality(self, a, b, c):
        assert hex_distance(a, c) <= hex_distance(a, b) + hex_distance(b, c)

    @given(hexes, hexes)
    def test_translation_invariance(self, a, b):
        offset = Hex(7, -3)
        assert hex_distance(a + offset, b + offset) == hex_distance(a, b)

    @given(hexes)
    def test_length_is_distance_from_origin(self, a):
        assert a.length() == hex_distance(a, Hex(0, 0))


class TestRings:
    def test_ring_zero_is_center(self):
        assert hex_ring(Hex(2, 2), 0) == [Hex(2, 2)]

    @pytest.mark.parametrize("radius", [1, 2, 3, 5])
    def test_ring_size(self, radius):
        ring = hex_ring(Hex(0, 0), radius)
        assert len(ring) == 6 * radius
        assert len(set(ring)) == len(ring)

    @pytest.mark.parametrize("radius", [1, 2, 4])
    def test_ring_cells_at_exact_distance(self, radius):
        center = Hex(-1, 3)
        for cell in hex_ring(center, radius):
            assert hex_distance(center, cell) == radius

    def test_ring_consecutive_cells_adjacent(self):
        ring = hex_ring(Hex(0, 0), 3)
        for a, b in zip(ring, ring[1:]):
            assert hex_distance(a, b) == 1

    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            hex_ring(Hex(0, 0), -1)


class TestDisksAndSpirals:
    @pytest.mark.parametrize("radius", [0, 1, 2, 4])
    def test_disk_size_formula(self, radius):
        disk = hex_disk(Hex(0, 0), radius)
        assert len(disk) == 3 * radius * (radius + 1) + 1

    @pytest.mark.parametrize("radius", [0, 1, 3])
    def test_spiral_equals_disk_as_set(self, radius):
        center = Hex(2, -1)
        assert set(hex_spiral(center, radius)) == set(hex_disk(center, radius))

    def test_spiral_ordered_by_ring(self):
        spiral = hex_spiral(Hex(0, 0), 3)
        distances = [h.length() for h in spiral]
        assert distances == sorted(distances)

    def test_disk_membership_iff_within_radius(self):
        center = Hex(1, 1)
        disk = set(hex_disk(center, 2))
        for h in hex_disk(center, 3):
            assert (h in disk) == (hex_distance(center, h) <= 2)


class TestLines:
    @given(hexes, hexes)
    @settings(max_examples=60)
    def test_line_endpoints_and_length(self, a, b):
        line = hex_line(a, b)
        assert line[0] == a
        assert line[-1] == b
        assert len(line) == hex_distance(a, b) + 1

    @given(hexes, hexes)
    @settings(max_examples=60)
    def test_line_steps_are_adjacent(self, a, b):
        line = hex_line(a, b)
        for u, v in zip(line, line[1:]):
            assert hex_distance(u, v) == 1


class TestSymmetry:
    def test_rotate60_six_times_is_identity(self):
        h = Hex(3, -1)
        assert h.rotate60(6) == h

    def test_rotate60_preserves_length(self):
        h = Hex(4, -2)
        for k in range(6):
            assert h.rotate60(k).length() == h.length()

    def test_ring_closed_under_rotation(self):
        ring = set(hex_ring(Hex(0, 0), 2))
        assert {h.rotate60() for h in ring} == ring

    def test_reflection_is_involution(self):
        h = Hex(5, -2)
        assert h.reflect_q().reflect_q() == h


class TestPixelConversion:
    @given(hexes)
    def test_round_trip(self, h):
        x, y = axial_to_pixel(h, size=10.0)
        assert pixel_to_axial(x, y, size=10.0) == h

    def test_neighbor_pixel_distance_constant(self):
        # Adjacent hexagons are exactly sqrt(3)*size apart (pointy-top).
        size = 2.0
        x0, y0 = axial_to_pixel(Hex(0, 0), size)
        for n in Hex(0, 0).neighbors():
            x, y = axial_to_pixel(n, size)
            assert math.hypot(x - x0, y - y0) == pytest.approx(
                math.sqrt(3.0) * size
            )

    def test_bad_size_rejected(self):
        with pytest.raises(GeometryError):
            pixel_to_axial(0.0, 0.0, size=0.0)


class TestRounding:
    def test_round_exact_lattice_point(self):
        assert hex_round(2.0, -3.0) == Hex(2, -3)

    @given(hexes, st.floats(min_value=-0.3, max_value=0.3),
           st.floats(min_value=-0.3, max_value=0.3))
    @settings(max_examples=60)
    def test_round_small_perturbations(self, h, dq, dr):
        # Perturbations well inside the cell never change the rounding.
        if abs(dq) + abs(dr) < 0.45:
            assert hex_round(h.q + dq, h.r + dr) == h
