"""Tests for traversal planning, structural testing and fault diagnosis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chip.builders import plain_chip
from repro.dft.concurrent import concurrent_test
from repro.dft.diagnosis import diagnose
from repro.dft.testing import run_route, test_chip as full_chip_test
from repro.dft.traversal import partial_plans, snake_plan, validate_plan
from repro.errors import TestPlanError as PlanError
from repro.geometry.hexgrid import RectRegion, offset_to_axial


@pytest.fixture
def region():
    return RectRegion(8, 6)


@pytest.fixture
def chip(region):
    return plain_chip(region)


class TestSnakePlan:
    @pytest.mark.parametrize("cols,rows", [(2, 2), (5, 3), (8, 6), (12, 9)])
    def test_snake_is_valid_hamiltonian(self, cols, rows):
        region = RectRegion(cols, rows)
        chip = plain_chip(region)
        plan = snake_plan(region)
        validate_plan(chip, plan)  # adjacency + coverage
        assert len(plan) == len(chip)
        assert len(set(plan)) == len(plan)  # visits each cell once

    def test_validate_rejects_gap(self, chip, region):
        plan = snake_plan(region)
        broken = plan[:3] + plan[4:]  # skip one cell: adjacency breaks
        with pytest.raises(PlanError):
            validate_plan(chip, broken)

    def test_validate_rejects_missing_coverage(self, chip, region):
        plan = snake_plan(region)
        with pytest.raises(PlanError):
            validate_plan(chip, plan[:-1])

    def test_validate_rejects_off_chip_cells(self, chip, region):
        plan = snake_plan(RectRegion(10, 10))
        with pytest.raises(PlanError):
            validate_plan(chip, plan)

    def test_partial_plans_cover_everything(self, region):
        plan = snake_plan(region)
        for pieces in (1, 2, 3, 5):
            parts = partial_plans(plan, pieces)
            assert len(parts) == pieces
            covered = set().union(*(set(p) for p in parts))
            assert covered == set(plan)

    def test_partial_plans_validation(self, region):
        plan = snake_plan(region)
        with pytest.raises(PlanError):
            partial_plans(plan, 0)
        with pytest.raises(PlanError):
            partial_plans(plan, len(plan) + 1)


class TestRunRoute:
    def test_clean_chip_passes(self, chip, region):
        outcome = full_chip_test(chip, snake_plan(region))
        assert outcome.passed
        assert outcome.stuck_at is None

    def test_fault_stops_droplet(self, chip, region):
        plan = snake_plan(region)
        chip.mark_faulty(plan[10])
        outcome = full_chip_test(chip, plan)
        assert not outcome.passed
        assert outcome.stuck_at == plan[10]
        assert outcome.cells_traversed == 9

    def test_faulty_source_detected(self, chip, region):
        plan = snake_plan(region)
        chip.mark_faulty(plan[0])
        outcome = full_chip_test(chip, plan)
        assert not outcome.passed
        assert outcome.cells_traversed == 0

    def test_non_adjacent_route_rejected(self, chip):
        with pytest.raises(PlanError):
            run_route(chip, [offset_to_axial(0, 0), offset_to_axial(5, 5)])

    def test_empty_route_rejected(self, chip):
        with pytest.raises(PlanError):
            run_route(chip, [])


class TestDiagnosis:
    def test_single_fault_located(self, chip, region):
        plan = snake_plan(region)
        target = plan[17]
        chip.mark_faulty(target)
        report = diagnose(chip, plan)
        assert report.located == [target]
        assert report.complete

    def test_probe_count_logarithmic(self, chip, region):
        plan = snake_plan(region)
        chip.mark_faulty(plan[20])
        report = diagnose(chip, plan)
        # 1 failing full probe + ~log2(len) bisection probes + cleanup.
        assert report.probes <= 2 * int(np.ceil(np.log2(len(plan)))) + 4

    @pytest.mark.parametrize("seed", range(6))
    def test_multiple_faults_located(self, seed):
        region = RectRegion(9, 7)
        chip = plain_chip(region)
        plan = snake_plan(region)
        rng = np.random.default_rng(seed)
        # Keep the source good; pick 4 distinct victims elsewhere.
        victims = [plan[i] for i in rng.choice(range(1, len(plan)), 4, replace=False)]
        for v in victims:
            chip.mark_faulty(v)
        report = diagnose(chip, plan)
        assert set(report.located) == set(victims)

    def test_no_faults_one_probe(self, chip, region):
        plan = snake_plan(region)
        report = diagnose(chip, plan)
        assert report.located == []
        assert report.probes == 1
        assert report.complete

    def test_faulty_source_rejected(self, chip, region):
        plan = snake_plan(region)
        chip.mark_faulty(plan[0])
        with pytest.raises(PlanError):
            diagnose(chip, plan)

    def test_diagnosis_feeds_repair(self):
        # End-to-end: diagnose then verify the located faults equal the
        # injected ones, the input to plan_local_repair.
        from repro.designs.catalog import DTMB_2_6
        from repro.designs.interstitial import build_chip
        from repro.dft.traversal import snake_plan as sp

        region = RectRegion(10, 10)
        chip = build_chip(DTMB_2_6, region)
        plan = sp(region)
        victims = [plan[13], plan[47]]
        for v in victims:
            chip.mark_faulty(v)
        report = diagnose(chip, plan)
        assert set(report.located) == set(victims)


class TestConcurrentTest:
    def test_speedup_with_more_droplets(self, chip, region):
        plan = snake_plan(region)
        single = concurrent_test(chip, plan, 1)
        double = concurrent_test(chip, plan, 2)
        assert single.passed and double.passed
        assert double.steps < single.steps
        assert double.speedup_vs_single > 1.2

    def test_detects_fault(self, chip, region):
        plan = snake_plan(region)
        chip.mark_faulty(plan[len(plan) // 2])
        result = concurrent_test(chip, plan, 2)
        assert not result.passed

    def test_conflicting_partition_rejected(self, chip, region):
        plan = snake_plan(region)
        # With as many droplets as cells they start adjacent: must raise.
        with pytest.raises(PlanError):
            concurrent_test(chip, plan, len(plan) // 2)

    def test_droplet_count_validation(self, chip, region):
        with pytest.raises(PlanError):
            concurrent_test(chip, snake_plan(region), 0)
