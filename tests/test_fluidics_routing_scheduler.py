"""Tests for the router and the protocol scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chip.builders import plain_chip
from repro.designs.catalog import DTMB_2_6
from repro.designs.interstitial import build_chip
from repro.errors import RoutingError, SchedulingError
from repro.fluidics.controller import ElectrodeController
from repro.fluidics.operations import Detect, Discard, Dispense, Mix, Split, Transport
from repro.fluidics.routing import Router
from repro.fluidics.scheduler import Scheduler
from repro.geometry.hex import Hex
from repro.geometry.hexgrid import RectRegion, offset_to_axial
from repro.reconfig.local import plan_local_repair
from repro.reconfig.remap import CellRemap


@pytest.fixture
def chip():
    return plain_chip(RectRegion(9, 9))


class TestRouter:
    def test_route_endpoints(self, chip):
        router = Router(chip)
        src, dst = offset_to_axial(0, 0), offset_to_axial(7, 7)
        path = router.route(src, dst)
        assert path[0] == src
        assert path[-1] == dst

    def test_route_steps_adjacent(self, chip):
        router = Router(chip)
        path = router.route(offset_to_axial(0, 0), offset_to_axial(8, 4))
        for a, b in zip(path, path[1:]):
            assert b in chip.neighbors(a)

    @given(
        st.tuples(st.integers(0, 8), st.integers(0, 8)),
        st.tuples(st.integers(0, 8), st.integers(0, 8)),
    )
    @settings(max_examples=40)
    def test_route_is_shortest_on_clean_chip(self, a, b):
        chip = plain_chip(RectRegion(9, 9))
        router = Router(chip)
        src = offset_to_axial(*a)
        dst = offset_to_axial(*b)
        path = router.route(src, dst)
        # On a full rectangle the lattice distance is achievable.
        assert len(path) - 1 == src.distance(dst)

    def test_route_avoids_faulty_cells(self, chip):
        router = Router(chip)
        src, dst = offset_to_axial(0, 4), offset_to_axial(8, 4)
        direct = router.route(src, dst)
        chip.mark_faulty(direct[len(direct) // 2])
        detour = router.route(src, dst)
        assert all(not chip[c].is_faulty for c in detour)
        assert len(detour) >= len(direct)

    def test_route_blocked_destination_raises(self, chip):
        router = Router(chip)
        dst = offset_to_axial(5, 5)
        with pytest.raises(RoutingError):
            router.route(offset_to_axial(0, 0), dst, blocked={dst})

    def test_no_route_through_fault_wall(self):
        chip = plain_chip(RectRegion(5, 5))
        # Kill an entire row: the array splits in two.
        for col in range(5):
            chip.mark_faulty(offset_to_axial(col, 2))
        router = Router(chip)
        with pytest.raises(RoutingError):
            router.route(offset_to_axial(0, 0), offset_to_axial(0, 4))

    def test_reachable_excludes_far_side_of_wall(self):
        chip = plain_chip(RectRegion(5, 5))
        for col in range(5):
            chip.mark_faulty(offset_to_axial(col, 2))
        router = Router(chip)
        reachable = router.reachable(offset_to_axial(0, 0))
        assert offset_to_axial(0, 4) not in reachable
        assert offset_to_axial(4, 1) in reachable

    def test_spacing_halo_contains_cell_and_neighbors(self, chip):
        router = Router(chip)
        center = offset_to_axial(4, 4)
        halo = router.spacing_halo([center])
        assert center in halo
        for n in chip.neighbors(center):
            assert n in halo

    def test_route_same_cell(self, chip):
        router = Router(chip)
        cell = offset_to_axial(3, 3)
        assert router.route(cell, cell) == [cell]

    def test_remapped_routing_avoids_dead_cell(self):
        chip = build_chip(DTMB_2_6, RectRegion(10, 10))
        victim = next(
            c.coord
            for c in chip.primaries()
            if len(chip.adjacent_spares(c.coord)) == 2
            and not chip.is_boundary(c.coord)
        )
        chip.mark_faulty(victim)
        remap = CellRemap(chip, plan_local_repair(chip))
        router = Router(chip, remap)
        primaries = [c.coord for c in chip.primaries() if c.coord != victim]
        path = router.route(primaries[0], victim)
        # Route ends at the logical victim; its physical image is the spare.
        assert path[-1] == victim


class TestScheduler:
    def _scheduler(self, chip=None):
        chip = chip or plain_chip(RectRegion(9, 9))
        return Scheduler(ElectrodeController(chip))

    def test_dispense_transport_detect_discard(self):
        sched = self._scheduler()
        ops = [
            Dispense("s", offset_to_axial(0, 0), {"glucose": 1e-3}),
            Transport("s", offset_to_axial(6, 6)),
            Detect("s", offset_to_axial(6, 6), duration=5.0),
            Discard("s"),
        ]
        schedule = sched.run(ops)
        assert schedule.total_moves > 0
        assert schedule.total_time > 5.0
        assert [e.op for e in schedule.events] == [
            "Dispense",
            "Transport",
            "Detect",
            "Discard",
        ]

    def test_mix_merges_and_homogenizes(self):
        sched = self._scheduler()
        ops = [
            Dispense("a", offset_to_axial(0, 0), {"x": 2e-3}),
            Dispense("b", offset_to_axial(8, 8), {"y": 4e-3}),
            Mix("a", "b", "ab", at=offset_to_axial(4, 4), cycles=2),
        ]
        sched.run(ops)
        merged = sched.droplet("ab")
        assert merged.concentration("x") == pytest.approx(1e-3)
        assert merged.concentration("y") == pytest.approx(2e-3)
        assert merged.position == offset_to_axial(4, 4)
        with pytest.raises(SchedulingError):
            sched.droplet("a")  # consumed

    def test_split_produces_two_droplets(self):
        sched = self._scheduler()
        ops = [
            Dispense("d", offset_to_axial(4, 4), {"x": 1e-3}, volume=2e-9),
            Split("d", into=("d1", "d2")),
        ]
        sched.run(ops)
        d1, d2 = sched.droplet("d1"), sched.droplet("d2")
        assert d1.volume == pytest.approx(1e-9)
        assert d2.volume == pytest.approx(1e-9)

    def test_duplicate_handle_rejected(self):
        sched = self._scheduler()
        sched.run([Dispense("d", offset_to_axial(0, 0))])
        with pytest.raises(SchedulingError):
            sched.run([Dispense("d", offset_to_axial(5, 5))])

    def test_unknown_handle_rejected(self):
        sched = self._scheduler()
        with pytest.raises(SchedulingError):
            sched.run([Transport("ghost", offset_to_axial(1, 1))])

    def test_mix_routes_around_faults(self):
        chip = plain_chip(RectRegion(9, 9))
        chip.mark_faulty(offset_to_axial(4, 3))
        chip.mark_faulty(offset_to_axial(3, 4))
        sched = self._scheduler(chip)
        ops = [
            Dispense("a", offset_to_axial(0, 0), {"x": 1e-3}),
            Dispense("b", offset_to_axial(8, 8), {"y": 1e-3}),
            Mix("a", "b", "ab", at=offset_to_axial(6, 6), cycles=1),
        ]
        sched.run(ops)
        assert sched.droplet("ab").position == offset_to_axial(6, 6)

    def test_operation_validation(self):
        with pytest.raises(SchedulingError):
            Dispense("d", Hex(0, 0), volume=-1.0)
        with pytest.raises(SchedulingError):
            Mix("a", "a", "a", at=Hex(0, 0))
        with pytest.raises(SchedulingError):
            Split("d", into=("x", "x"))
        with pytest.raises(SchedulingError):
            Detect("d", Hex(0, 0), duration=-5.0)
