"""Functional-yield subsystem: funnel exactness, bit-identity, cache keys.

The contracts under test, in order of importance:

* the screen funnel is *exact* — its verdicts equal brute-force
  evaluation of every run through the real fluidics stack;
* a functional point consumes the identical RNG stream as a matching
  point, so serial == pool == sharded bit-identity extends to criterion
  points (flat and adaptive);
* criteria are content-addressed: no cache-key collisions between
  criteria (or against the default matching regime) at equal severity;
* default matching dispatches serialize exactly as before the subsystem
  existed (no criterion fields, no criteria provenance).
"""

from __future__ import annotations

import filecmp
import json
import os

import numpy as np
import pytest

from repro.designs.catalog import DTMB_2_6, DTMB_3_6, DTMB_4_4
from repro.designs.interstitial import build_with_primary_count
from repro.errors import CriterionError
from repro.faults.injection import make_rng
from repro.functional import (
    MatchingCriterion,
    MultiplexedCriterion,
    RoutingCriterion,
    criterion_from_spec,
    criterion_successes,
    evaluate_functional,
)
from repro.functional.funnel import context_for
from repro.yieldsim.defects import IIDBernoulli
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.kernel import (
    GOOD,
    PointSpec,
    RepairStructure,
    model_successes,
)
from repro.yieldsim.scheduler import EnginePoint
from repro.yieldsim.stats import StopRule


def _chip(spec, n):
    return build_with_primary_count(spec, n).build()


# -- spec parsing and digests -------------------------------------------------

def test_criterion_spec_roundtrip():
    crit = criterion_from_spec("routing:assay=glucose,deadline=150")
    assert isinstance(crit, RoutingCriterion)
    assert crit.assay == "glucose"
    assert crit.deadline == 150
    assert crit.spec() == "routing:assay=glucose,deadline=150"
    assert criterion_from_spec(crit.spec()).digest() == crit.digest()

    mult = criterion_from_spec("multiplexed:assays=glucose+lactate,deadline=30")
    assert isinstance(mult, MultiplexedCriterion)
    assert mult.assays == ("glucose", "lactate")

    assert isinstance(criterion_from_spec("matching"), MatchingCriterion)


def test_criterion_spec_errors():
    with pytest.raises(CriterionError):
        criterion_from_spec("bogus")
    with pytest.raises(CriterionError):
        criterion_from_spec("routing:nope=1")
    with pytest.raises(CriterionError):
        criterion_from_spec("routing:deadline=0")


def test_criterion_digests_distinct():
    digests = {
        MatchingCriterion().digest(),
        RoutingCriterion().digest(),
        RoutingCriterion(deadline=100).digest(),
        RoutingCriterion(assay="lactate").digest(),
        MultiplexedCriterion().digest(),
        MultiplexedCriterion(deadline=30).digest(),
    }
    assert len(digests) == 6


# -- matching criterion: bit-identical to the kernel --------------------------

def test_matching_criterion_equals_kernel():
    struct = RepairStructure(_chip(DTMB_2_6, 60))
    model = IIDBernoulli(0.93)
    base, base_stats = model_successes(struct, model, 500, seed=123)
    got, stats, crit = criterion_successes(
        struct, model, MatchingCriterion(), 500, seed=123
    )
    assert got == base
    assert stats.as_dict() == base_stats.as_dict()
    assert crit.runs == 500
    assert crit.matching_fail == 500 - base
    assert crit.residue == 0  # matching never pays the scheduler


# -- the funnel is exact ------------------------------------------------------

def _reference_success(ctx, row, verdict):
    """Brute force: skip every screen, drive the scheduler for any run
    the matching kernel calls repairable."""
    if verdict != GOOD:
        return False
    return ctx._residue_run(row)


@pytest.mark.parametrize(
    "spec,n,criterion",
    [
        (DTMB_2_6, 60, RoutingCriterion(deadline=200)),
        (DTMB_3_6, 60, RoutingCriterion(deadline=200)),
        (DTMB_3_6, 60, RoutingCriterion(deadline=18)),
        (DTMB_4_4, 24, RoutingCriterion(deadline=200)),
        (DTMB_3_6, 60, MultiplexedCriterion(deadline=14)),
    ],
)
def test_funnel_matches_full_scheduler(spec, n, criterion):
    """Every screen verdict must agree with full scheduler evaluation."""
    struct = RepairStructure(_chip(spec, n))
    ctx = context_for(struct, criterion)
    rng = make_rng(7)
    for p in (0.88, 0.97):
        alive = IIDBernoulli(p).sample_batch(struct.geometry, 60, rng)
        from repro.yieldsim.kernel import classify_repairable

        verdict, _ = classify_repairable(struct, alive)
        ok, stats = evaluate_functional(struct, criterion, alive, verdict)
        expected = np.array(
            [
                _reference_success(ctx, alive[r], verdict[r])
                for r in range(alive.shape[0])
            ]
        )
        assert (ok == expected).all()
        decided = (
            stats.matching_fail + stats.spare_only + stats.route_clear
            + stats.unreachable + stats.residue
        )
        assert decided == stats.runs == 60


def test_dtmb44_functional_collapse():
    """DTMB(4,4)'s spare lattice disconnects the primary fabric: the
    assay cannot run even on a fault-free chip, so functional yield is
    zero while matching yield is near one."""
    struct = RepairStructure(_chip(DTMB_4_4, 60))
    ctx = context_for(struct, RoutingCriterion())
    assert not ctx.baseline_ok
    got, _, crit = criterion_successes(
        struct, IIDBernoulli(0.99), RoutingCriterion(), 200, seed=5
    )
    assert got == 0
    assert crit.matching_fail < 200  # matching finds repairs; routing fails


# -- engine bit-identity ------------------------------------------------------

def _tasks(chip, criterion, runs=400, stop=None):
    return [
        EnginePoint(
            chip,
            PointSpec("survival", p, runs, seed, criterion=criterion),
            stop=stop,
        )
        for p, seed in ((0.92, 11), (0.96, 12))
    ]


def test_functional_points_serial_pool_shard_identical(tmp_path):
    chip = _chip(DTMB_2_6, 60)
    criterion = RoutingCriterion(deadline=200)
    serial = SweepEngine().run_points(_tasks(chip, criterion))
    pooled = SweepEngine(jobs=2).run_points(_tasks(chip, criterion))
    cached = SweepEngine(cache_dir=str(tmp_path / "cache"))
    first = cached.run_points(_tasks(chip, criterion))
    again = cached.run_points(_tasks(chip, criterion))
    for estimates in (pooled, first, again):
        assert [
            (e.successes, e.trials) for e in estimates
        ] == [(e.successes, e.trials) for e in serial]
    assert cached.cache_hits == 2
    # Sharded streams differ from the flat stream by design (spawned
    # sub-seeds), but are identical across job counts at a fixed batch.
    shard1 = SweepEngine(shard_runs=100).run_points(_tasks(chip, criterion))
    shard2 = SweepEngine(jobs=2, shard_runs=100).run_points(
        _tasks(chip, criterion)
    )
    assert [(e.successes, e.trials) for e in shard1] == [
        (e.successes, e.trials) for e in shard2
    ]


def test_functional_points_adaptive_identity():
    chip = _chip(DTMB_2_6, 60)
    criterion = RoutingCriterion(deadline=200)
    stop = StopRule(target_half_width=0.05, min_runs=100, batch_runs=100)
    serial = SweepEngine().run_points(_tasks(chip, criterion, stop=stop))
    sharded = SweepEngine(jobs=2, shard_runs=100).run_points(
        _tasks(chip, criterion, stop=stop)
    )
    assert [(e.successes, e.trials) for e in serial] == [
        (e.successes, e.trials) for e in sharded
    ]


def test_functional_equals_matching_stream():
    """Same seeds, different predicate: the criterion point judges the
    identical fault maps, so functional successes never exceed matching
    successes run for run."""
    chip = _chip(DTMB_3_6, 60)
    engine = SweepEngine()
    base = engine.run_points(_tasks(chip, None, runs=300))
    func = engine.run_points(
        _tasks(chip, RoutingCriterion(deadline=200), runs=300)
    )
    for b, f in zip(base, func):
        assert f.successes <= b.successes
        assert f.trials == b.trials


# -- cache keys ---------------------------------------------------------------

def test_cache_keys_distinct_across_criteria():
    chip = _chip(DTMB_2_6, 60)
    engine = SweepEngine()

    def key(criterion):
        return engine.point_key(
            EnginePoint(
                chip, PointSpec("survival", 0.95, 1000, 42, criterion=criterion)
            )
        )

    keys = [
        key(None),
        key(MatchingCriterion()),
        key(RoutingCriterion()),
        key(RoutingCriterion(deadline=100)),
        key(MultiplexedCriterion()),
    ]
    assert len(set(keys)) == len(keys)
    # Content addressing: an equal-content criterion reuses the key.
    assert key(RoutingCriterion()) == key(
        criterion_from_spec("routing:assay=glucose,deadline=200")
    )


# -- telemetry + provenance ---------------------------------------------------

def test_point_log_funnel_telemetry(tmp_path):
    engine = SweepEngine(cache_dir=str(tmp_path / "cache"))
    chip = _chip(DTMB_3_6, 60)
    criterion = RoutingCriterion(deadline=200)
    task = [
        EnginePoint(chip, PointSpec("survival", 0.93, 200, 3, criterion=criterion))
    ]
    engine.run_points(task)
    record = engine.point_log[-1]
    assert record.criterion == criterion.spec()
    assert record.criterion_digest == criterion.digest()
    assert record.funnel is not None
    funnel = record.funnel
    assert funnel["runs"] == 200
    assert (
        funnel["matching_fail"] + funnel["spare_only"] + funnel["route_clear"]
        + funnel["unreachable"] + funnel["residue"]
    ) == 200
    payload = record.as_dict()
    assert payload["criterion"] == criterion.spec()
    assert payload["funnel"]["residue_ok"] <= payload["funnel"]["residue"]

    # A cache hit reports the criterion but no funnel counters: the cache
    # stores results, not telemetry.
    engine.run_points(task)
    hit = engine.point_log[-1]
    assert hit.criterion == criterion.spec()
    assert hit.funnel is None


def test_default_point_record_serialization_unchanged():
    engine = SweepEngine()
    chip = _chip(DTMB_2_6, 60)
    engine.run_points([EnginePoint(chip, PointSpec("survival", 0.95, 50, 1))])
    payload = engine.point_log[-1].as_dict()
    assert "criterion" not in payload
    assert "criterion_digest" not in payload
    assert "funnel" not in payload


def test_registry_provenance_criteria_block():
    from repro.experiments import registry

    crit = criterion_from_spec("routing:assay=glucose,deadline=200")
    result = registry.execute(
        registry.get("fig9"),
        runs=40,
        seed=2005,
        knobs={
            "criterion": crit,
            "designs": (DTMB_2_6,),
            "ns": (60,),
            "ps": (0.95,),
        },
    )
    budget = result.provenance.as_dict()["budget"]
    assert budget["criteria"] == [
        {"spec": crit.spec(), "digest": crit.digest()}
    ]
    assert budget["criterion_funnel"]["runs"] == 40
    assert result.provenance.stable_dict()["criteria"][0]["digest"] == crit.digest()

    # Default dispatches must not grow new provenance fields.
    plain = registry.execute(
        registry.get("fig9"),
        runs=40,
        seed=2005,
        knobs={"designs": (DTMB_2_6,), "ns": (60,), "ps": (0.95,)},
    )
    assert "criteria" not in plain.provenance.as_dict()["budget"]
    assert "criterion_funnel" not in plain.provenance.as_dict()["budget"]
    assert "criteria" not in plain.provenance.stable_dict()


# -- CLI ----------------------------------------------------------------------

def test_cli_rejects_criterion_on_fixed_experiments(capsys):
    from repro.cli import main

    assert main(["table1", "--criterion", "routing"]) == 2
    assert "does not accept --criterion" in capsys.readouterr().err


def test_cli_rejects_malformed_criterion(capsys):
    from repro.cli import main

    assert main(["fig9", "--runs", "10", "--criterion", "bogus"]) == 2
    assert "unknown criterion" in capsys.readouterr().err


@pytest.mark.slow
def test_cli_all_experiment_jobs_bit_identical(tmp_path, monkeypatch, capsys):
    """`repro all --experiment-jobs N` writes byte-identical artifacts.

    The registry is narrowed to cheap deterministic-ish experiments in
    the parent (workers resolve experiments by name, so the subset only
    bounds what gets scheduled, not how each one runs)."""
    from repro.cli import main
    from repro.experiments import registry

    subset = [registry.get("table1"), registry.get("fig7"), registry.get("fig13")]
    monkeypatch.setattr(registry, "all_experiments", lambda: subset)

    serial_dir = tmp_path / "serial"
    shard_dir = tmp_path / "shard"
    assert main(
        ["all", "--runs", "60", "--seed", "9", "--out", str(serial_dir)]
    ) == 0
    serial_out = capsys.readouterr().out
    assert main(
        ["all", "--runs", "60", "--seed", "9", "--experiment-jobs", "3",
         "--out", str(shard_dir)]
    ) == 0
    shard_out = capsys.readouterr().out

    # stdout: identical except the artifact directory named at the end.
    assert (
        serial_out.replace(str(serial_dir), "OUT")
        == shard_out.replace(str(shard_dir), "OUT")
    )

    for root, _dirs, files in os.walk(serial_dir):
        rel_root = os.path.relpath(root, serial_dir)
        for name in files:
            if name == "manifest.json":
                continue
            rel = os.path.join(rel_root, name)
            assert filecmp.cmp(
                serial_dir / rel, shard_dir / rel, shallow=False
            ), f"{rel} differs between serial and sharded `all`"

    serial_manifest = json.loads((serial_dir / "manifest.json").read_text())
    shard_manifest = json.loads((shard_dir / "manifest.json").read_text())
    for name in ("table1", "fig7", "fig13"):
        assert (
            serial_manifest["experiments"][name]["provenance"]["digest"]
            == shard_manifest["experiments"][name]["provenance"]["digest"]
        )


# -- serve --------------------------------------------------------------------

def test_serve_point_request_carries_criterion():
    from repro.serve.app import ReproServer, ServeConfig
    from repro.serve.protocol import BundleRequest, PointRequest

    server = ReproServer(ServeConfig())
    request = PointRequest.from_dict(
        {
            "design": "DTMB(2,6)", "n": 60, "param": 0.95, "runs": 100,
            "seed": 1, "criterion": "routing:assay=glucose,deadline=150",
        }
    )
    task, _digest = server._task_for(request)
    assert task.spec.criterion is not None
    assert task.spec.criterion.deadline == 150
    # Distinct coalescing/cache keys vs the default matching point.
    plain, _ = server._task_for(
        PointRequest.from_dict(
            {"design": "DTMB(2,6)", "n": 60, "param": 0.95, "runs": 100,
             "seed": 1}
        )
    )
    assert server.engine.point_key(task) != server.engine.point_key(plain)

    # Bundle identity: conditional field, so legacy keys are unchanged.
    with_crit = BundleRequest.from_dict(
        "fig9", {"runs": 100, "criterion": "routing"}
    ).identity()
    without = BundleRequest.from_dict("fig9", {"runs": 100}).identity()
    assert "criterion" in with_crit
    assert "criterion" not in without


def test_scenario_packs_registered():
    from repro.experiments import registry

    for name in ("fig7-functional", "fig9-functional", "scenario-multiplexed"):
        experiment = registry.get(name)
        assert experiment.budget.adaptive_capable
    assert registry.get("fig9").criterion_knob
    assert registry.get("fig7").criterion_knob
    assert not registry.get("table1").criterion_knob
