"""Tests for analytical yield models, Monte-Carlo simulation and sweeps."""

from __future__ import annotations

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs.catalog import DTMB_2_6, DTMB_4_4, TABLE1_DESIGNS
from repro.designs.interstitial import (
    build_chip,
    build_flower_chip,
    build_with_primary_count,
)
from repro.errors import SimulationError
from repro.geometry.hexgrid import RectRegion
from repro.yieldsim.analytical import (
    dtmb16_yield,
    flower_yield,
    yield_no_redundancy,
)
from repro.yieldsim.effective import chip_effective_yield, effective_yield
from repro.yieldsim.montecarlo import YieldSimulator
from repro.yieldsim.stats import YieldEstimate, wilson_interval
from repro.yieldsim.sweeps import (
    analytical_curves_dtmb16,
    defect_count_sweep,
    survival_sweep,
)

probabilities = st.floats(min_value=0.0, max_value=1.0)


class TestWilsonInterval:
    @given(st.integers(0, 500), st.integers(1, 500))
    def test_interval_contains_point_estimate(self, successes, trials):
        if successes > trials:
            successes = trials
        lo, hi = wilson_interval(successes, trials)
        phat = successes / trials
        eps = 1e-9  # at phat in {0, 1} the bound equals phat up to rounding
        assert 0.0 <= lo <= phat + eps
        assert phat - eps <= hi <= 1.0

    def test_shrinks_with_trials(self):
        lo1, hi1 = wilson_interval(90, 100)
        lo2, hi2 = wilson_interval(9000, 10000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_validation(self):
        with pytest.raises(SimulationError):
            wilson_interval(1, 0)
        with pytest.raises(SimulationError):
            wilson_interval(5, 3)

    def test_estimate_helpers(self):
        a = YieldEstimate(successes=990, trials=1000)
        b = YieldEstimate(successes=500, trials=1000)
        assert a.clearly_above(b)
        assert not b.clearly_above(a)
        assert a.consistent_with(0.99)


class TestAnalytical:
    @given(probabilities)
    def test_flower_yield_bounds(self, p):
        assert 0.0 <= flower_yield(p) <= 1.0

    def test_flower_yield_exact_enumeration(self):
        # Brute-force the 7-cell cluster: survives iff <= 1 cell fails.
        p = 0.93
        total = 0.0
        for state in itertools.product([True, False], repeat=7):
            if sum(not s for s in state) <= 1:
                prob = 1.0
                for alive in state:
                    prob *= p if alive else (1 - p)
                total += prob
        assert flower_yield(p) == pytest.approx(total)

    def test_no_redundancy_formula(self):
        assert yield_no_redundancy(0.99, 108) == pytest.approx(0.3378, abs=5e-4)
        assert yield_no_redundancy(1.0, 1000) == 1.0
        assert yield_no_redundancy(0.5, 0) == 1.0

    def test_dtmb16_beats_no_redundancy(self):
        for p in (0.90, 0.95, 0.99):
            for n in (60, 120, 240):
                assert dtmb16_yield(p, n) > yield_no_redundancy(p, n)

    @given(st.floats(min_value=0.5, max_value=0.999))
    @settings(max_examples=40)
    def test_dtmb16_monotone_in_p(self, p):
        assert dtmb16_yield(p + 0.001, 100) >= dtmb16_yield(p, 100)

    def test_dtmb16_monotone_in_n(self):
        ys = [dtmb16_yield(0.95, n) for n in (30, 60, 120, 240)]
        assert ys == sorted(ys, reverse=True)

    def test_validation(self):
        with pytest.raises(SimulationError):
            yield_no_redundancy(1.5, 10)
        with pytest.raises(SimulationError):
            dtmb16_yield(0.9, -1)


class TestMonteCarloSurvival:
    def test_p_one_always_succeeds(self, dtmb26_chip):
        est = YieldSimulator(dtmb26_chip).run_survival(1.0, runs=200, seed=1)
        assert est.value == 1.0

    def test_p_zero_always_fails(self, dtmb26_chip):
        # Every cell faulty: nothing to repair with.
        est = YieldSimulator(dtmb26_chip).run_survival(0.0, runs=200, seed=1)
        assert est.value == 0.0

    def test_deterministic_from_seed(self, dtmb26_chip):
        sim = YieldSimulator(dtmb26_chip)
        a = sim.run_survival(0.95, runs=500, seed=7)
        b = sim.run_survival(0.95, runs=500, seed=7)
        assert a.successes == b.successes

    def test_matches_analytical_on_flower_chip(self):
        chip = build_flower_chip(60)
        sim = YieldSimulator(chip)
        for p in (0.95, 0.99):
            est = sim.run_survival(p, runs=8000, seed=11)
            assert est.consistent_with(dtmb16_yield(p, 60))

    def test_monotone_in_p_statistically(self, dtmb26_chip):
        sim = YieldSimulator(dtmb26_chip)
        low = sim.run_survival(0.90, runs=3000, seed=5)
        high = sim.run_survival(0.98, runs=3000, seed=6)
        assert high.clearly_above(low)

    def test_redundancy_ordering(self):
        # At equal (n, p), DTMB(4,4) must clearly beat DTMB(2,6).
        n, p = 100, 0.94
        light = YieldSimulator(build_with_primary_count(DTMB_2_6, n).build())
        heavy = YieldSimulator(build_with_primary_count(DTMB_4_4, n).build())
        assert heavy.run_survival(p, 3000, seed=1).clearly_above(
            light.run_survival(p, 3000, seed=2)
        )

    def test_beats_no_redundancy(self, dtmb26_chip):
        n = dtmb26_chip.primary_count
        est = YieldSimulator(dtmb26_chip).run_survival(0.97, runs=3000, seed=3)
        assert est.value > yield_no_redundancy(0.97, n)

    def test_chip_not_mutated(self, dtmb26_chip):
        YieldSimulator(dtmb26_chip).run_survival(0.9, runs=100, seed=1)
        assert dtmb26_chip.is_fault_free()

    def test_validation(self, dtmb26_chip):
        sim = YieldSimulator(dtmb26_chip)
        with pytest.raises(SimulationError):
            sim.run_survival(1.2, runs=10)
        with pytest.raises(SimulationError):
            sim.run_survival(0.9, runs=0)

    def test_needed_must_be_primary(self, dtmb26_chip):
        spare = dtmb26_chip.spares()[0].coord
        with pytest.raises(SimulationError):
            YieldSimulator(dtmb26_chip, needed=[spare])

    def test_needed_must_be_on_chip(self, dtmb26_chip):
        from repro.geometry.hex import Hex

        with pytest.raises(SimulationError):
            YieldSimulator(dtmb26_chip, needed=[Hex(99, 99)])


class TestMonteCarloFixedFaults:
    def test_zero_faults_perfect(self, dtmb26_chip):
        est = YieldSimulator(dtmb26_chip).run_fixed_faults(0, runs=100, seed=1)
        assert est.value == 1.0

    def test_all_cells_faulty_fails(self, dtmb26_chip):
        sim = YieldSimulator(dtmb26_chip)
        est = sim.run_fixed_faults(len(dtmb26_chip), runs=50, seed=1)
        assert est.value == 0.0

    def test_monotone_in_m_statistically(self, dtmb26_chip):
        sim = YieldSimulator(dtmb26_chip)
        low = sim.run_fixed_faults(3, runs=2000, seed=2)
        high = sim.run_fixed_faults(20, runs=2000, seed=3)
        assert low.clearly_above(high)

    def test_deterministic(self, dtmb26_chip):
        sim = YieldSimulator(dtmb26_chip)
        assert (
            sim.run_fixed_faults(8, runs=400, seed=9).successes
            == sim.run_fixed_faults(8, runs=400, seed=9).successes
        )

    def test_single_fault_on_two_spare_design_mostly_survives(self):
        # m=1: the only failure is... none — a single faulty cell is either
        # a spare (free) or a primary with at least one fault-free spare.
        chip = build_chip(DTMB_2_6, RectRegion(10, 10))
        interior_ok = all(
            len(chip.adjacent_spares(c.coord)) >= 1 for c in chip.primaries()
        )
        est = YieldSimulator(chip).run_fixed_faults(1, runs=500, seed=4)
        if interior_ok:
            assert est.value == 1.0

    def test_validation(self, dtmb26_chip):
        sim = YieldSimulator(dtmb26_chip)
        with pytest.raises(SimulationError):
            sim.run_fixed_faults(-1, runs=10)
        with pytest.raises(SimulationError):
            sim.run_fixed_faults(len(dtmb26_chip) + 1, runs=10)


class TestEffectiveYield:
    def test_formula(self):
        assert effective_yield(0.8, 0.25) == pytest.approx(0.64)
        assert effective_yield(1.0, 0.0) == 1.0

    def test_equals_y_times_n_over_total(self, dtmb26_chip):
        y = 0.9
        ey = chip_effective_yield(dtmb26_chip, y)
        n = dtmb26_chip.primary_count
        total = len(dtmb26_chip)
        assert ey == pytest.approx(y * n / total)

    def test_validation(self):
        with pytest.raises(SimulationError):
            effective_yield(1.5, 0.2)
        with pytest.raises(SimulationError):
            effective_yield(0.5, -0.1)


class TestSweeps:
    def test_survival_sweep_shape(self):
        points = survival_sweep(
            [DTMB_2_6], ns=[60], ps=[0.95, 0.99], runs=300, seed=1
        )
        assert len(points) == 2
        assert {pt.p for pt in points} == {0.95, 0.99}
        for pt in points:
            assert pt.design == "DTMB(2,6)"
            assert 0.0 <= pt.effective <= pt.yield_value

    def test_sweep_deterministic(self):
        a = survival_sweep([DTMB_2_6], [60], [0.97], runs=400, seed=5)
        b = survival_sweep([DTMB_2_6], [60], [0.97], runs=400, seed=5)
        assert a[0].estimate.successes == b[0].estimate.successes

    def test_defect_count_sweep(self, dtmb26_chip):
        points = defect_count_sweep(dtmb26_chip, ms=[2, 10], runs=300, seed=1)
        assert [pt.m for pt in points] == [2, 10]
        assert points[0].yield_value >= points[1].yield_value

    def test_analytical_curves_series_names(self):
        series = analytical_curves_dtmb16([60, 120], ps=[0.95, 1.0])
        assert "DTMB(1,6) n=60" in series
        assert "no spares n=120" in series
        for pts in series.values():
            assert pts[-1][1] == 1.0  # p = 1 -> yield 1

    def test_analytical_curves_empty_ns_rejected(self):
        with pytest.raises(SimulationError):
            analytical_curves_dtmb16([])
