"""Tests for the vectorized screening kernel and the parallel sweep engine.

The kernel's funnel (zero-fault / dead-end / forced / private-spare
peeling / Hall bounds / Kuhn residue) claims to be *exact*: every verdict
must equal brute-force matching.  The engine claims sharding and caching
never change a number: serial, parallel and cached executions must be
bit-identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.designs.catalog import DTMB_1_6, DTMB_2_6, DTMB_3_6, DTMB_4_4
from repro.designs.interstitial import (
    build_chip,
    build_flower_chip,
    build_with_primary_count,
)
from repro.errors import SimulationError
from repro.geometry.hexgrid import RectRegion
from repro.yieldsim.engine import (
    SweepEngine,
    chip_payload,
    payload_digest,
)
from repro.yieldsim.kernel import (
    BAD,
    GOOD,
    PointSpec,
    RepairStructure,
    classify_repairable,
    fixed_fault_alive,
    kuhn_repairable,
    simulate_points,
    survival_successes,
)
from repro.yieldsim.montecarlo import YieldSimulator
from repro.yieldsim.sweeps import (
    DEFAULT_P_GRID,
    defect_count_sweep,
    survival_sweep,
)


def brute_force_verdicts(chip, struct, alive):
    """Per-run repairability by the seed implementation's Kuhn matching."""
    sim = YieldSimulator(chip)
    out = np.empty(alive.shape[0], dtype=np.int8)
    for r in range(alive.shape[0]):
        faulty = np.nonzero(~alive[r, struct.needed_idx])[0]
        ok = len(faulty) == 0 or sim._repairable(faulty.tolist(), alive[r])
        out[r] = GOOD if ok else BAD
    return out


CHIPS = [
    pytest.param(lambda: build_chip(DTMB_1_6, RectRegion(10, 10)), id="dtmb16"),
    pytest.param(lambda: build_chip(DTMB_2_6, RectRegion(10, 10)), id="dtmb26"),
    pytest.param(lambda: build_chip(DTMB_3_6, RectRegion(8, 8)), id="dtmb36"),
    pytest.param(lambda: build_chip(DTMB_4_4, RectRegion(8, 8)), id="dtmb44"),
    pytest.param(lambda: build_flower_chip(60), id="flower"),
]


class TestScreeningKernel:
    @pytest.mark.parametrize("make_chip", CHIPS)
    @pytest.mark.parametrize("p", [0.3, 0.6, 0.85, 0.95, 0.99, 1.0])
    def test_survival_verdicts_match_brute_force(self, make_chip, p):
        chip = make_chip()
        struct = RepairStructure(chip)
        alive = np.random.default_rng(hash(p) % 2**32).random(
            (250, struct.n_cells)
        ) < p
        verdict, stats = classify_repairable(struct, alive)
        assert stats.runs == 250
        assert (verdict == brute_force_verdicts(chip, struct, alive)).all()

    @pytest.mark.parametrize("make_chip", CHIPS)
    def test_fixed_fault_verdicts_match_brute_force(self, make_chip):
        chip = make_chip()
        struct = RepairStructure(chip)
        rng = np.random.default_rng(11)
        for m in (0, 1, 4, 15, struct.n_cells // 2, struct.n_cells):
            alive = fixed_fault_alive(rng, struct.n_cells, m, 120)
            assert (~alive).sum() == 120 * m  # exactly m faults per run
            verdict, _ = classify_repairable(struct, alive)
            assert (verdict == brute_force_verdicts(chip, struct, alive)).all()

    def test_float64_bit_identical_to_seed_simulator(self, dtmb26_chip):
        sim = YieldSimulator(dtmb26_chip)
        struct = RepairStructure(dtmb26_chip)
        for i, p in enumerate((0.88, 0.94, 0.99)):
            expected = sim.run_survival(p, runs=1500, seed=40 + i).successes
            got, _ = survival_successes(struct, p, 1500, seed=40 + i, dtype=np.float64)
            assert got == expected

    def test_screen_resolves_majority_without_matching(self, dtmb26_chip):
        struct = RepairStructure(dtmb26_chip)
        _, stats = survival_successes(struct, 0.97, 4000, seed=3)
        assert stats.runs == 4000
        # At paper-regime p the screen decides nearly everything.
        assert stats.residue < 0.05 * stats.runs
        assert stats.screened + stats.residue == stats.runs

    def test_degree_one_design_never_needs_matching(self):
        struct = RepairStructure(build_flower_chip(60))
        assert struct.max_degree == 1
        _, stats = survival_successes(struct, 0.9, 2000, seed=5)
        assert stats.residue == 0

    def test_kuhn_reference_agrees_with_simulator(self, dtmb26_chip):
        sim = YieldSimulator(dtmb26_chip)
        rng = np.random.default_rng(8)
        alive = rng.random(len(dtmb26_chip)) < 0.7
        faulty = np.nonzero(~alive[sim._needed_idx])[0].tolist()
        assert kuhn_repairable(sim._adj, faulty, alive) == sim._repairable(
            faulty, alive
        )

    def test_point_spec_validation(self, dtmb26_chip):
        struct = RepairStructure(dtmb26_chip)
        with pytest.raises(SimulationError):
            simulate_points(struct, [PointSpec("survival", 1.5, 10, 1)])
        with pytest.raises(SimulationError):
            simulate_points(struct, [PointSpec("survival", 0.9, 0, 1)])
        with pytest.raises(SimulationError):
            simulate_points(struct, [PointSpec("fixed", len(dtmb26_chip) + 1, 10, 1)])
        with pytest.raises(SimulationError):
            simulate_points(struct, [PointSpec("bogus", 0.5, 10, 1)])


class TestSweepEngine:
    def test_serial_and_parallel_bit_identical(self):
        kwargs = dict(runs=800, seed=13)
        serial = survival_sweep(
            [DTMB_2_6, DTMB_3_6], [60], [0.9, 0.95, 1.0],
            engine=SweepEngine(jobs=1), **kwargs,
        )
        parallel = survival_sweep(
            [DTMB_2_6, DTMB_3_6], [60], [0.9, 0.95, 1.0],
            engine=SweepEngine(jobs=2), **kwargs,
        )
        assert [pt.estimate.successes for pt in serial] == [
            pt.estimate.successes for pt in parallel
        ]

    def test_defect_sweep_serial_parallel_identical(self, dtmb26_chip):
        serial = defect_count_sweep(
            dtmb26_chip, [2, 8, 14], runs=600, seed=4, engine=SweepEngine(jobs=1)
        )
        parallel = defect_count_sweep(
            dtmb26_chip, [2, 8, 14], runs=600, seed=4, engine=SweepEngine(jobs=2)
        )
        assert [pt.estimate.successes for pt in serial] == [
            pt.estimate.successes for pt in parallel
        ]

    def test_sweep_matches_default_engine(self):
        a = survival_sweep([DTMB_2_6], [60], [0.93], runs=700, seed=2)
        b = survival_sweep(
            [DTMB_2_6], [60], [0.93], runs=700, seed=2, engine=SweepEngine()
        )
        assert a[0].estimate.successes == b[0].estimate.successes

    def test_point_seed_isolation(self, dtmb26_chip):
        """A point's result must not depend on its position in the sweep."""
        engine = SweepEngine()
        lone = engine.survival_estimates(dtmb26_chip, [(0.93, 77)], 500)
        grid = engine.survival_estimates(
            dtmb26_chip, [(0.9, 5), (0.93, 77), (0.99, 6)], 500
        )
        assert lone[0].successes == grid[1].successes

    def test_progress_reporting(self, dtmb26_chip):
        calls = []
        engine = SweepEngine(progress=lambda done, total: calls.append((done, total)))
        engine.survival_estimates(dtmb26_chip, [(0.9, 1), (0.95, 2)], 200)
        assert calls and calls[-1][0] == calls[-1][1]

    def test_screen_stats_accumulate(self, dtmb26_chip):
        engine = SweepEngine()
        engine.survival_estimates(dtmb26_chip, [(0.95, 1)], 300)
        assert engine.screen_stats.runs == 300

    def test_jobs_validation(self):
        with pytest.raises(SimulationError):
            SweepEngine(jobs=0)


class TestResultCache:
    def test_cache_roundtrip_and_hit(self, dtmb26_chip, tmp_path):
        cold = SweepEngine(cache_dir=str(tmp_path))
        first = cold.survival_estimates(dtmb26_chip, [(0.92, 3), (0.97, 4)], 400)
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)

        warm = SweepEngine(cache_dir=str(tmp_path))
        second = warm.survival_estimates(dtmb26_chip, [(0.92, 3), (0.97, 4)], 400)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        assert [e.successes for e in first] == [e.successes for e in second]

    def test_cache_key_invalidation(self, dtmb26_chip, tmp_path):
        a = SweepEngine(cache_dir=str(tmp_path))
        a.survival_estimates(dtmb26_chip, [(0.92, 3)], 400)
        for kwargs, label in [
            (((0.92, 9), 400), "seed"),
            (((0.93, 3), 400), "p"),
            (((0.92, 3), 500), "runs"),
        ]:
            engine = SweepEngine(cache_dir=str(tmp_path))
            (point, runs) = kwargs
            engine.survival_estimates(dtmb26_chip, [point], runs)
            assert engine.cache_hits == 0, f"stale hit when {label} changed"

    def test_cache_distinguishes_chips(self, tmp_path):
        chip_a = build_chip(DTMB_2_6, RectRegion(8, 8))
        chip_b = build_chip(DTMB_3_6, RectRegion(8, 8))
        engine = SweepEngine(cache_dir=str(tmp_path))
        engine.survival_estimates(chip_a, [(0.95, 1)], 300)
        engine.survival_estimates(chip_b, [(0.95, 1)], 300)
        assert engine.cache_hits == 0 and engine.cache_misses == 2

    def test_corrupt_cache_entry_recomputed(self, dtmb26_chip, tmp_path):
        engine = SweepEngine(cache_dir=str(tmp_path))
        first = engine.survival_estimates(dtmb26_chip, [(0.94, 6)], 300)
        for entry in tmp_path.iterdir():
            entry.write_text("{not json")
        again = SweepEngine(cache_dir=str(tmp_path))
        second = again.survival_estimates(dtmb26_chip, [(0.94, 6)], 300)
        assert again.cache_hits == 0
        assert second[0].successes == first[0].successes

    def test_payload_digest_ignores_cosmetics(self, dtmb26_chip):
        clone = dtmb26_chip.copy(name="renamed")
        clone.mark_faulty(clone.coords[0])  # health must not affect the key
        assert payload_digest(chip_payload(dtmb26_chip)) == payload_digest(
            chip_payload(clone)
        )

    def test_payload_digest_tracks_needed_set(self, dtmb26_chip):
        needed = tuple(c.coord for c in dtmb26_chip.primaries())[:5]
        assert payload_digest(chip_payload(dtmb26_chip)) != payload_digest(
            chip_payload(dtmb26_chip, needed)
        )

    def test_flat_cache_entry_never_served_to_adaptive_request(
        self, dtmb26_chip, tmp_path
    ):
        """Regression: the point key includes the stop-rule digest, so a
        cached flat-budget point cannot satisfy an adaptive request (whose
        stream and effective budget differ), and vice versa."""
        from repro.yieldsim.stats import StopRule

        rule = StopRule(target_half_width=0.02, min_runs=200, batch_runs=200)
        flat = SweepEngine(cache_dir=str(tmp_path))
        flat.survival_estimates(dtmb26_chip, [(0.95, 3)], 1000)
        assert (flat.cache_hits, flat.cache_misses) == (0, 1)

        adaptive = SweepEngine(cache_dir=str(tmp_path))
        first = adaptive.survival_estimates(
            dtmb26_chip, [(0.95, 3)], 1000, stop=rule
        )
        assert (adaptive.cache_hits, adaptive.cache_misses) == (0, 1)

        # The adaptive entry is re-served — with its effective budget —
        # only to the identical adaptive request...
        warm = SweepEngine(cache_dir=str(tmp_path))
        again = warm.survival_estimates(dtmb26_chip, [(0.95, 3)], 1000, stop=rule)
        assert (warm.cache_hits, warm.cache_misses) == (1, 0)
        assert (again[0].successes, again[0].trials) == (
            first[0].successes,
            first[0].trials,
        )
        # ...not to a request under a *different* rule.
        other_rule = StopRule(target_half_width=0.05, min_runs=200, batch_runs=200)
        other = SweepEngine(cache_dir=str(tmp_path))
        other.survival_estimates(dtmb26_chip, [(0.95, 3)], 1000, stop=other_rule)
        assert other.cache_hits == 0
        # And the flat entry still hits for flat requests.
        flat_again = SweepEngine(cache_dir=str(tmp_path))
        flat_again.survival_estimates(dtmb26_chip, [(0.95, 3)], 1000)
        assert (flat_again.cache_hits, flat_again.cache_misses) == (1, 0)

    def test_sharded_cache_key_distinct_from_flat(self, dtmb26_chip, tmp_path):
        """Sharded (batched-stream) results live under their own keys: a
        flat entry and a sharded entry for the same spec coexist."""
        flat = SweepEngine(cache_dir=str(tmp_path))
        flat.survival_estimates(dtmb26_chip, [(0.95, 6)], 1000)
        sharded = SweepEngine(cache_dir=str(tmp_path), shard_runs=400)
        sharded.survival_estimates(dtmb26_chip, [(0.95, 6)], 1000)
        assert sharded.cache_hits == 0 and sharded.cache_misses == 1
        warm = SweepEngine(cache_dir=str(tmp_path), shard_runs=400)
        warm.survival_estimates(dtmb26_chip, [(0.95, 6)], 1000)
        assert (warm.cache_hits, warm.cache_misses) == (1, 0)


class TestEngineMatchesSeedNumbers:
    def test_engine_f64_sweep_equals_seed_implementation(self):
        """The engine with float64 draws reproduces the seed sweep exactly."""
        chip = build_with_primary_count(DTMB_2_6, 60).build()
        sim = YieldSimulator(chip)
        ps = list(DEFAULT_P_GRID[:4])
        expected = []
        counter = 0
        for p in ps:  # the historical survival_sweep derivation
            counter += 1
            expected.append(sim.run_survival(p, runs=600, seed=100 + counter).successes)
        got = survival_sweep(
            [DTMB_2_6], [60], ps, runs=600, seed=100,
            engine=SweepEngine(dtype=np.float64),
        )
        assert [pt.estimate.successes for pt in got] == expected
