"""Cross-module integration tests: the full workflows a user would run.

Each test exercises a complete pipeline across several packages:
manufacture (fault injection) → test (DFT) → diagnose → repair
(reconfiguration) → operate (fluidics + assays), plus serialization in the
middle to prove state survives a round trip.
"""

from __future__ import annotations

import pytest

from repro.assays.chemistry import Species
from repro.assays.chipspec import redesigned_chip
from repro.assays.runner import MultiplexedRunner
from repro.chip.serialize import chip_from_dict, chip_to_dict
from repro.designs.catalog import DTMB_2_6
from repro.designs.interstitial import build_chip
from repro.dft.diagnosis import diagnose
from repro.dft.traversal import snake_plan
from repro.errors import AssayError
from repro.faults.injection import BernoulliInjector, FixedCountInjector
from repro.fluidics.controller import ElectrodeController
from repro.fluidics.scheduler import Scheduler
from repro.geometry.hexgrid import RectRegion
from repro.reconfig.local import is_repairable, plan_local_repair
from repro.reconfig.remap import CellRemap
from repro.viz.ascii_art import render_chip
from repro.yieldsim.montecarlo import YieldSimulator


class TestManufactureTestRepairOperate:
    """The chip lifecycle the paper envisions, end to end."""

    def test_full_lifecycle(self):
        region = RectRegion(12, 12)
        chip = build_chip(DTMB_2_6, region)

        # 1. Manufacturing defects appear.
        injector = FixedCountInjector(3)
        injector.sample(chip, seed=99).apply_to(chip)
        ground_truth = {c.coord for c in chip.faulty_cells()}

        # 2. Droplet-based diagnosis locates them (without peeking).
        plan = snake_plan(region)
        if chip[plan[0]].is_faulty:
            pytest.skip("seeded fault landed on the dispense port")
        report = diagnose(chip, plan)
        assert set(report.located) == ground_truth

        # 3. Local reconfiguration repairs the faulty primaries.
        repair = plan_local_repair(chip)
        if not repair.complete:
            pytest.skip("seeded fault map happens to be irreparable")
        remap = CellRemap(chip, repair)

        # 4. Droplets route over the repaired array.
        controller = ElectrodeController(chip, remap=remap)
        scheduler = Scheduler(controller)
        from repro.fluidics.operations import Dispense, Transport

        primaries = [c.coord for c in chip.primaries()]
        src = next(p for p in primaries if chip[p].is_good)
        dst = next(
            p
            for p in reversed(primaries)
            if chip[p].is_good and p != src
        )
        schedule = scheduler.run(
            [Dispense("d", src), Transport("d", dst)]
        )
        assert scheduler.droplet("d").position == dst
        assert schedule.total_moves > 0

    def test_serialization_preserves_repairability(self):
        chip = build_chip(DTMB_2_6, RectRegion(10, 10))
        BernoulliInjector(0.97).sample(chip, seed=5).apply_to(chip)
        verdict_before = is_repairable(chip)
        restored = chip_from_dict(chip_to_dict(chip))
        assert is_repairable(restored) == verdict_before

    def test_rendering_roundtrip_consistency(self):
        chip = build_chip(DTMB_2_6, RectRegion(8, 8))
        FixedCountInjector(4).sample(chip, seed=3).apply_to(chip)
        art_before = render_chip(chip)
        restored = chip_from_dict(chip_to_dict(chip))
        assert render_chip(restored) == art_before


class TestYieldStoryEndToEnd:
    """The paper's quantitative claims, checked across module boundaries."""

    def test_redundant_chip_beats_fabricated_baseline(self):
        # At p = 0.99 the fabricated chip yields 0.3378; the DTMB(2,6)
        # redesign protects the same 108 cells far better.
        layout = redesigned_chip()
        sim = YieldSimulator(layout.chip, needed=layout.used)
        est = sim.run_survival(0.99, runs=3000, seed=21)
        assert est.value > 0.80
        assert est.lo > 0.3378

    def test_yield_simulator_agrees_with_explicit_repair_loop(self):
        # The vectorized simulator and the object-level repair API must
        # agree run for run.
        chip = build_chip(DTMB_2_6, RectRegion(10, 10))
        injector = BernoulliInjector(0.95)
        explicit_successes = 0
        trials = 300
        for seed in range(trials):
            working = chip.copy()
            injector.sample(working, seed=seed).apply_to(working)
            if is_repairable(working):
                explicit_successes += 1
        est = YieldSimulator(chip).run_survival(0.95, runs=trials, seed=1234)
        # Different random streams: agreement within a few sigma.
        assert abs(est.value - explicit_successes / trials) < 0.08


class TestAssayOnDamagedChip:
    def test_panel_accuracy_unchanged_by_repair(self):
        clean = MultiplexedRunner(redesigned_chip())
        damaged_layout = redesigned_chip()
        FixedCountInjector(12).sample(damaged_layout.chip, seed=77).apply_to(
            damaged_layout.chip
        )
        try:
            damaged = MultiplexedRunner(damaged_layout)
        except AssayError:
            pytest.skip("seed 77 produced an irreparable map")
        truths = {Species.GLUCOSE: 4.5e-3, Species.PYRUVATE: 9e-5}
        for runner in (clean, damaged):
            for result in runner.run_panel(truths):
                assert result.relative_error < 0.02

    def test_measurements_distinguish_healthy_from_pathological(self):
        runner = MultiplexedRunner(redesigned_chip())
        normal, high = 5e-3, 12e-3
        r_normal = runner.run_panel({Species.GLUCOSE: normal})[0]
        runner2 = MultiplexedRunner(redesigned_chip())
        r_high = runner2.run_panel({Species.GLUCOSE: high})[0]
        assert r_normal.in_reference_range
        assert not r_high.in_reference_range
        assert r_high.measured_concentration > r_normal.measured_concentration
