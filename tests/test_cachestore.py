"""The cache transport layer: stores, tiers, keys, and byte identity.

Three contracts are under test here:

* **Store conformance** — every :class:`CacheStore` implementation
  (memory, local, shared-FS, HTTP, tiered) agrees on get/put/exists/
  list_keys semantics, and a reader sees either nothing or a complete
  digest-verified payload.
* **Key discipline** — point-cache keys are canonical: equal idents
  collide, any differing ident field separates, and the entry encoding
  round-trips while any byte flip reads as a miss (Hypothesis-driven).
* **Byte identity** — a legacy cache directory written by the historical
  ``PointCache`` reads back byte-identically through :class:`LocalStore`,
  and an engine warmed purely from a shared store recomputes nothing and
  produces the same numbers as an uncached run.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreError
from repro.serve import BackgroundServer, ServeConfig
from repro.yieldsim.cachestore import (
    HTTPStore,
    LocalStore,
    MemoryStore,
    SharedFSStore,
    StoreStats,
    TieredCache,
    content_digest,
    decode_entry,
    encode_entry,
    entry_digest,
    entry_validator,
    store_from_url,
    valid_key,
)
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.executors import InlineExecutor
from repro.yieldsim.kernel import PointSpec
from repro.yieldsim.resilience import ResilienceStats
from repro.yieldsim.scheduler import PointCache
from repro.yieldsim.stats import StopRule

GRID = [(0.92 + 0.01 * i, 13 + i) for i in range(4)]
RUNS = 200


def entry_bytes(i: int) -> bytes:
    return encode_entry({"successes": i, "trials": i + 3, "tag": "conformance"})


def key_of(data: bytes) -> str:
    return content_digest(data)


def flat_estimates(chip, engine=None):
    engine = engine if engine is not None else SweepEngine()
    return [
        (e.successes, e.trials)
        for e in engine.survival_estimates(chip, GRID, RUNS)
    ]


# -- store conformance --------------------------------------------------------

@pytest.fixture(params=["memory", "local", "sharedfs", "tiered", "http"])
def store(request, tmp_path):
    """Each CacheStore implementation, behind one protocol."""
    kind = request.param
    if kind == "memory":
        yield MemoryStore()
    elif kind == "local":
        yield LocalStore(str(tmp_path / "local"))
    elif kind == "sharedfs":
        yield SharedFSStore(str(tmp_path / "shared"))
    elif kind == "tiered":
        yield TieredCache(MemoryStore(), SharedFSStore(str(tmp_path / "remote")))
    else:
        config = ServeConfig(port=0, cache_objects=str(tmp_path / "objects"))
        with BackgroundServer(config) as server:
            yield HTTPStore(f"http://127.0.0.1:{server.port}")


class TestConformance:
    def test_absent_key_is_a_plain_miss(self, store):
        key = key_of(b"never stored")
        assert store.get(key) is None
        assert not store.exists(key)
        assert key not in store.list_keys()

    def test_round_trip_is_byte_exact(self, store):
        payloads = {key_of(entry_bytes(i)): entry_bytes(i) for i in range(4)}
        for key, data in payloads.items():
            assert store.put(key, data)
        for key, data in payloads.items():
            assert store.get(key) == data
            assert store.exists(key)
        assert set(store.list_keys()) >= set(payloads)

    def test_repeat_put_never_changes_the_object(self, store):
        data = entry_bytes(7)
        key = key_of(data)
        assert store.put(key, data)
        store.put(key, data)  # idempotent whatever the return value
        assert store.get(key) == data

    def test_keys_are_validated_not_spliced(self, store):
        for bad in ("../escape", "UPPER0", "short", "x" * 200, "0123/6789ab"):
            with pytest.raises(StoreError):
                store.put(bad, b"data")
            with pytest.raises(StoreError):
                store.get(bad)


class TestPutIfAbsent:
    """Shared media are put-if-absent: first writer wins, byte-stably."""

    @pytest.fixture(params=["sharedfs", "http"])
    def shared(self, request, tmp_path):
        if request.param == "sharedfs":
            yield SharedFSStore(str(tmp_path / "shared"))
        else:
            config = ServeConfig(port=0, cache_objects=str(tmp_path / "objects"))
            with BackgroundServer(config) as server:
                yield HTTPStore(f"http://127.0.0.1:{server.port}")

    def test_second_writer_loses_and_bytes_stay_first(self, shared):
        data = entry_bytes(1)
        key = key_of(data)
        assert shared.put(key, data) is True
        assert shared.put(key, data) is False
        assert shared.get(key) == data


class TestSharedFSIntegrity:
    def test_objects_are_enveloped_and_sharded(self, tmp_path):
        store = SharedFSStore(str(tmp_path))
        data = entry_bytes(2)
        key = key_of(data)
        store.put(key, data)
        path = os.path.join(str(tmp_path), "objects", key[:2], key)
        with open(path, "rb") as fh:
            blob = fh.read()
        assert blob.startswith(b"repro-cas/1 ")
        assert blob.endswith(data)

    def test_corrupt_object_reads_as_miss_and_quarantines(self, tmp_path):
        store = SharedFSStore(str(tmp_path))
        data = entry_bytes(3)
        key = key_of(data)
        store.put(key, data)
        path = os.path.join(str(tmp_path), "objects", key[:2], key)
        with open(path, "wb") as fh:
            fh.write(b"repro-cas/1 " + b"0" * 64 + b"\ntorn")
        assert store.get(key) is None
        assert store.corrupt == 1
        assert os.path.exists(f"{path}.corrupt")
        # The slot is free again: a correct writer can repopulate it.
        assert store.put(key, data) is True
        assert store.get(key) == data

    def test_truncated_envelope_reads_as_miss(self, tmp_path):
        store = SharedFSStore(str(tmp_path))
        data = entry_bytes(4)
        key = key_of(data)
        store.put(key, data)
        path = os.path.join(str(tmp_path), "objects", key[:2], key)
        with open(path, "rb") as fh:
            blob = fh.read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        assert store.get(key) is None


class TestHTTPStore:
    def test_server_refuses_digest_mismatch(self, tmp_path):
        config = ServeConfig(port=0, cache_objects=str(tmp_path))
        data = entry_bytes(5)
        key = key_of(data)
        with BackgroundServer(config) as server:
            store = HTTPStore(f"http://127.0.0.1:{server.port}")
            import urllib.request

            req = urllib.request.Request(
                f"{store.base_url}/cache/objects/{key}",
                data=data[: len(data) // 2],  # truncated body...
                method="PUT",
                headers={"X-Repro-Digest": content_digest(data)},  # ...full digest
            )
            with pytest.raises(Exception):
                urllib.request.urlopen(req, timeout=5)
            assert store.exists(key) is False
            # An honest upload then lands.
            assert store.put(key, data) is True
            assert store.get(key) == data

    def test_dead_remote_raises_store_error(self):
        store = HTTPStore("http://127.0.0.1:9", timeout=0.5)
        key = key_of(b"anything")
        with pytest.raises(StoreError):
            store.get(key)
        with pytest.raises(StoreError):
            store.put(key, b"anything")

    def test_server_tree_is_a_plain_sharedfs_store(self, tmp_path):
        config = ServeConfig(port=0, cache_objects=str(tmp_path))
        data = entry_bytes(6)
        key = key_of(data)
        with BackgroundServer(config) as server:
            HTTPStore(f"http://127.0.0.1:{server.port}").put(key, data)
        assert SharedFSStore(str(tmp_path)).get(key) == data


class TestStoreFromUrl:
    def test_dispatch(self, tmp_path):
        assert isinstance(store_from_url("http://host:1"), HTTPStore)
        assert isinstance(store_from_url("https://host:1"), HTTPStore)
        assert isinstance(store_from_url("memory://"), MemoryStore)
        assert isinstance(store_from_url(str(tmp_path / "s")), SharedFSStore)
        assert isinstance(
            store_from_url(f"file://{tmp_path / 's'}"), SharedFSStore
        )

    def test_rejects_nonsense(self):
        with pytest.raises(StoreError):
            store_from_url("")
        with pytest.raises(StoreError):
            store_from_url("file://")


# -- tiered semantics ---------------------------------------------------------

class TestTieredCache:
    def test_read_through_writes_back_once(self):
        local, remote = MemoryStore(), MemoryStore()
        stats = StoreStats()
        tier = TieredCache(local, remote, stats=stats)
        data = entry_bytes(8)
        key = key_of(data)
        remote.put(key, data)

        assert tier.get(key) == data  # remote hit, written back
        assert local.get(key) == data
        assert tier.get(key) == data  # now a local hit
        assert stats.as_dict() == {
            "local_hits": 1, "local_misses": 1, "remote_hits": 1,
            "remote_misses": 0, "remote_errors": 0, "uploads": 0,
            "bytes_up": 0, "bytes_down": len(data),
        }

    def test_put_uploads_once_per_object(self, tmp_path):
        stats = StoreStats()
        tier = TieredCache(
            MemoryStore(), SharedFSStore(str(tmp_path)), stats=stats
        )
        data = entry_bytes(9)
        key = key_of(data)
        assert tier.put(key, data)
        assert tier.put(key, data)  # already remote: no second upload
        assert stats.uploads == 1
        assert stats.bytes_up == len(data)

    def test_validator_blocks_garbage_write_back(self):
        local, remote = MemoryStore(), MemoryStore()
        stats = StoreStats()
        resilience = ResilienceStats()
        tier = TieredCache(
            local, remote, stats=stats, resilience=resilience,
            validator=entry_validator,
        )
        key = key_of(b"garbage target")
        remote.put(key, b"\x00not an entry")
        assert tier.get(key) is None
        assert local.get(key) is None  # never written back
        assert stats.remote_errors == 1
        assert resilience.remote_errors == 1

    def test_remote_exceptions_degrade_to_miss(self):
        class DeadStore:
            name = "dead"

            def get(self, key):
                raise StoreError("connection refused")

            def put(self, key, data):
                raise StoreError("connection refused")

            def exists(self, key):
                raise StoreError("connection refused")

            def list_keys(self):
                raise StoreError("connection refused")

        stats = StoreStats()
        tier = TieredCache(MemoryStore(), DeadStore(), stats=stats)
        data = entry_bytes(10)
        key = key_of(data)
        assert tier.get(key) is None
        assert tier.put(key, data) is True  # local write still lands
        assert tier.exists(key) is True  # local answers
        assert tier.get(key) == data  # local hit, remote never consulted
        assert tier.list_keys() == [key]
        assert stats.remote_errors == 3  # get + put + list (exists hit local)

    def test_delta_reports_only_growth(self):
        stats = StoreStats(local_hits=5, uploads=2)
        before = stats.as_dict()
        stats.local_hits += 3
        stats.bytes_down += 100
        assert StoreStats.delta(before, stats.as_dict()) == {
            "local_hits": 3, "bytes_down": 100,
        }


# -- key and entry discipline (Hypothesis) ------------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**31), 2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
entries = st.dictionaries(
    st.text(
        st.characters(min_codepoint=97, max_codepoint=122), min_size=1,
        max_size=10,
    ),
    json_scalars,
    max_size=6,
)


class TestEntryEncoding:
    @given(entries)
    @settings(max_examples=120, deadline=None)
    def test_encode_decode_round_trip(self, entry):
        blob = encode_entry(entry)
        decoded = decode_entry(blob)
        assert decoded == {k: v for k, v in entry.items() if k != "digest"}
        # Canonical: re-encoding the decoded entry is byte-identical.
        assert encode_entry(decoded) == blob

    @given(entries, st.data())
    @settings(max_examples=120, deadline=None)
    def test_any_byte_flip_reads_as_a_miss(self, entry, data):
        blob = bytearray(encode_entry(entry))
        idx = data.draw(st.integers(0, len(blob) - 1))
        flip = data.draw(st.integers(1, 255))
        blob[idx] ^= flip
        mutated = bytes(blob)
        if mutated != encode_entry(entry):
            assert decode_entry(mutated) is None

    @given(entries)
    @settings(max_examples=60, deadline=None)
    def test_digest_is_order_independent(self, entry):
        items = sorted(entry.items())
        assert entry_digest(dict(items)) == entry_digest(dict(reversed(items)))


# Ident axes for point-cache keys: every field that may legally differ
# between two points that must never share a cache entry.
key_idents = st.fixed_dictionaries({
    "digest": st.sampled_from(["d0" * 8, "d1" * 8, "d2" * 8]),
    "kind": st.sampled_from(["survival", "fixed"]),
    "param": st.sampled_from([0.9, 0.91, 11.0]),
    "runs": st.sampled_from([100, 200]),
    "seed": st.sampled_from([None, 0, 1, "s"]),
    "dtype": st.sampled_from(["float64", "float32"]),
    "batch": st.sampled_from([None, 50, 100]),
})


class TestKeyDiscipline:
    @staticmethod
    def _key(ident):
        cache = PointCache(None, ident["dtype"])
        spec = PointSpec(
            kind=ident["kind"], param=ident["param"], runs=ident["runs"],
            seed=ident["seed"],
        )
        stop = StopRule(0.02) if ident["batch"] else None
        return cache.key(
            ident["digest"], spec, stop=stop, batch=ident["batch"]
        )

    @given(key_idents, key_idents)
    @settings(max_examples=200, deadline=None)
    def test_keys_collide_iff_idents_agree(self, a, b):
        ka, kb = self._key(a), self._key(b)
        assert valid_key(ka) and len(ka) == 64
        assert (ka == kb) == (a == b)

    def test_full_grid_has_no_collisions(self):
        idents = [
            {
                "digest": d, "kind": k, "param": p, "runs": r,
                "seed": s, "dtype": t, "batch": batch,
            }
            for d in ("d0" * 8, "d1" * 8)
            for k in ("survival", "fixed")
            for p in (0.9, 0.95)
            for r in (100, 200)
            for s in (None, 7)
            for t in ("float64", "float32")
            for batch in (None, 50)
        ]
        keys = [self._key(i) for i in idents]
        assert len(set(keys)) == len(keys)

    def test_stop_rule_digest_separates_batched_keys(self):
        cache = PointCache(None, "float64")
        spec = PointSpec(kind="survival", param=0.9, runs=200, seed=3)
        key_a = cache.key("ab" * 8, spec, stop=StopRule(0.02), batch=50)
        key_b = cache.key("ab" * 8, spec, stop=StopRule(0.01), batch=50)
        assert key_a != key_b


# -- legacy byte identity -----------------------------------------------------

class TestLegacyCompatibility:
    def test_historical_entry_reads_back_byte_identically(self, tmp_path):
        # An entry written the way PointCache always wrote them: plain
        # json.dump with sorted keys and the embedded digest.
        entry = {
            "successes": 37, "trials": 200, "kind": "survival",
            "param": 0.93, "seed": 5, "version": 3,
        }
        entry["digest"] = entry_digest(entry)
        key = "ab" * 32
        path = tmp_path / f"{key}.json"
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True, separators=(",", ":"))
        raw = path.read_bytes()

        store = LocalStore(str(tmp_path))
        assert store.get(key) == raw
        assert decode_entry(raw) == {
            k: v for k, v in entry.items() if k != "digest"
        }

    def test_localstore_writes_what_pointcache_wrote(self, dtmb26_chip, tmp_path):
        """A cache_dir engine and a LocalStore-backed write are byte-equal."""
        plain_dir = tmp_path / "plain"
        engine = SweepEngine(cache_dir=str(plain_dir))
        flat_estimates(dtmb26_chip, engine)
        files = sorted(os.listdir(plain_dir))
        assert files
        store = LocalStore(str(plain_dir))
        for name in files:
            key = name[:-5]
            blob = store.get(key)
            assert blob == (plain_dir / name).read_bytes()
            # A put of the same entry is a byte-stable overwrite.
            assert store.put(key, blob)
            assert (plain_dir / name).read_bytes() == blob

    def test_corrupt_legacy_entry_quarantines(self, tmp_path):
        key = "cd" * 32
        path = tmp_path / f"{key}.json"
        path.write_text("{not json")
        stats = ResilienceStats()
        store = LocalStore(str(tmp_path), stats=stats)
        assert store.get(key) is None
        assert stats.quarantined == 1
        assert (tmp_path / f"{key}.json.corrupt").exists()


# -- engine integration -------------------------------------------------------

class TestEngineIntegration:
    def test_numbers_identical_across_every_store_config(
        self, dtmb26_chip, tmp_path
    ):
        baseline = flat_estimates(dtmb26_chip)
        shared = str(tmp_path / "shared")

        local_only = SweepEngine(cache_dir=str(tmp_path / "c1"))
        cold = SweepEngine(
            cache_dir=str(tmp_path / "c2"),
            cache_store=SharedFSStore(shared),
        )
        warm = SweepEngine(
            cache_dir=str(tmp_path / "c3"),  # fresh local tier
            cache_store=SharedFSStore(shared),
        )
        memory_tier = SweepEngine(cache_store=SharedFSStore(shared))

        assert flat_estimates(dtmb26_chip, local_only) == baseline
        assert flat_estimates(dtmb26_chip, cold) == baseline
        assert flat_estimates(dtmb26_chip, warm) == baseline
        assert flat_estimates(dtmb26_chip, memory_tier) == baseline

        assert cold.store_stats.uploads == len(GRID)
        assert warm.store_stats.remote_hits == len(GRID)
        assert warm.store_stats.uploads == 0

    def test_warm_shared_store_computes_nothing(self, dtmb26_chip, tmp_path):
        shared = str(tmp_path / "shared")
        seed_engine = SweepEngine(cache_store=SharedFSStore(shared))
        baseline = flat_estimates(dtmb26_chip, seed_engine)

        executor = InlineExecutor()
        warm = SweepEngine(
            executor=executor, cache_store=SharedFSStore(shared)
        )
        assert flat_estimates(dtmb26_chip, warm) == baseline
        assert executor.submitted == 0  # every point came from the store
        assert warm.cache_hits == len(GRID)
        assert warm.cache_misses == 0

    def test_local_tier_files_byte_identical_with_and_without_remote(
        self, dtmb26_chip, tmp_path
    ):
        plain_dir = tmp_path / "plain"
        tiered_dir = tmp_path / "tiered"
        flat_estimates(dtmb26_chip, SweepEngine(cache_dir=str(plain_dir)))
        flat_estimates(
            dtmb26_chip,
            SweepEngine(
                cache_dir=str(tiered_dir),
                cache_store=SharedFSStore(str(tmp_path / "shared")),
            ),
        )
        plain = sorted(os.listdir(plain_dir))
        tiered = sorted(os.listdir(tiered_dir))
        assert plain == tiered
        for name in plain:
            assert (plain_dir / name).read_bytes() == (
                tiered_dir / name
            ).read_bytes()

    def test_http_store_end_to_end(self, dtmb26_chip, tmp_path):
        baseline = flat_estimates(dtmb26_chip)
        config = ServeConfig(port=0, cache_objects=str(tmp_path / "objects"))
        with BackgroundServer(config) as server:
            url = f"http://127.0.0.1:{server.port}"
            cold = SweepEngine(cache_store=HTTPStore(url))
            assert flat_estimates(dtmb26_chip, cold) == baseline
            assert cold.store_stats.uploads == len(GRID)

            executor = InlineExecutor()
            warm = SweepEngine(executor=executor, cache_store=HTTPStore(url))
            assert flat_estimates(dtmb26_chip, warm) == baseline
            assert executor.submitted == 0
            assert warm.store_stats.remote_hits == len(GRID)
