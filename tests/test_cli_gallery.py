"""Tests for the CLI and the HTML design gallery."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.cli import build_parser, main
from repro.viz.gallery import gallery_html, write_gallery


class TestGallery:
    def test_contains_every_design(self):
        page = gallery_html(size=10)
        for name in (
            "DTMB(1,6)",
            "DTMB(2,6)",
            "DTMB(2,6)alt",
            "DTMB(3,6)",
            "DTMB(4,4)",
        ):
            assert name in page

    def test_embeds_svg_per_design(self):
        page = gallery_html(size=10)
        assert page.count("<svg") == 5

    def test_write_gallery(self, tmp_path):
        out = tmp_path / "gallery.html"
        write_gallery(str(out), size=10)
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>")


class TestCliParser:
    def test_all_experiment_subcommands_exist(self):
        parser = build_parser()
        for name in (
            "table1",
            "fig2",
            "figs3to6",
            "fig7",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "ablation-matching",
            "ablation-defects",
            "all",
            "gallery",
            "recommend",
        ):
            args = ["--target-yield", "0.9", "--p", "0.95"] if name == "recommend" else []
            parsed = parser.parse_args([name] + args)
            assert parsed.command == name

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCliExecution:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "DTMB(4,4)" in out
        assert "1.0000" in out

    def test_fig11_with_csv(self, capsys, tmp_path):
        csv_path = str(tmp_path / "fig11.csv")
        assert main(["fig11", "--csv", csv_path]) == 0
        out = capsys.readouterr().out
        assert "0.3378" in out
        assert "wrote" in out
        with open(csv_path) as handle:
            assert handle.readline().startswith("p,")

    def test_fig13_reduced_runs_with_chart(self, capsys):
        assert main(["fig13", "--runs", "200", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "Figure 13" in out  # chart title present

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        assert "Module 3" in capsys.readouterr().out

    def test_gallery(self, capsys, tmp_path):
        out_file = str(tmp_path / "g.html")
        assert main(["gallery", "--out", out_file, "--size", "10"]) == 0
        assert "wrote" in capsys.readouterr().out

    def test_recommend(self, capsys):
        code = main(
            [
                "recommend",
                "--target-yield",
                "0.5",
                "--p",
                "0.97",
                "--n",
                "60",
                "--runs",
                "400",
            ]
        )
        assert code == 0
        assert "recommended" in capsys.readouterr().out
