"""Tests for the electrode controller's droplet state machine."""

from __future__ import annotations

import pytest

from repro.chip.builders import plain_chip
from repro.designs.catalog import DTMB_2_6
from repro.designs.interstitial import build_chip
from repro.errors import (
    ConstraintViolationError,
    FluidicsError,
    IllegalMoveError,
)
from repro.fluidics.controller import ElectrodeController
from repro.fluidics.droplet import Droplet
from repro.geometry.hex import Hex
from repro.geometry.hexgrid import RectRegion
from repro.reconfig.local import plan_local_repair
from repro.reconfig.remap import CellRemap


@pytest.fixture
def controller():
    return ElectrodeController(plain_chip(RectRegion(8, 8)))


def put(controller, coord, name="d"):
    return controller.dispense(Droplet(position=coord, name=name))


class TestDispense:
    def test_dispense_places_droplet(self, controller):
        d = put(controller, Hex(2, 2))
        assert controller.droplet_at(Hex(2, 2)) is d

    def test_dispense_on_occupied_cell_rejected(self, controller):
        put(controller, Hex(2, 2))
        with pytest.raises(ConstraintViolationError):
            put(controller, Hex(2, 2), "e")

    def test_dispense_adjacent_to_other_droplet_rejected(self, controller):
        put(controller, Hex(2, 2))
        with pytest.raises(ConstraintViolationError):
            put(controller, Hex(3, 2), "e")
        # Failed dispense must not leak state.
        assert controller.droplet_at(Hex(3, 2)) is None

    def test_dispense_on_faulty_cell_rejected(self):
        chip = plain_chip(RectRegion(4, 4))
        chip.mark_faulty(Hex(1, 1))
        controller = ElectrodeController(chip)
        with pytest.raises(IllegalMoveError):
            controller.dispense(Droplet(position=Hex(1, 1)))


class TestMove:
    def test_move_to_adjacent_cell(self, controller):
        d = put(controller, Hex(2, 2))
        controller.move(d, Hex(3, 2))
        assert d.position == Hex(3, 2)
        assert controller.droplet_at(Hex(2, 2)) is None

    def test_move_advances_time_one_step(self, controller):
        d = put(controller, Hex(2, 2))
        before = controller.time
        controller.move(d, Hex(3, 2))
        assert controller.time == pytest.approx(
            before + controller.model.step_time(controller.voltage)
        )

    def test_non_adjacent_move_rejected(self, controller):
        d = put(controller, Hex(2, 2))
        with pytest.raises(IllegalMoveError):
            controller.move(d, Hex(5, 5))

    def test_move_onto_faulty_cell_rejected(self):
        chip = plain_chip(RectRegion(4, 4))
        chip.mark_faulty(Hex(2, 1))
        controller = ElectrodeController(chip)
        d = controller.dispense(Droplet(position=Hex(1, 1)))
        with pytest.raises(IllegalMoveError):
            controller.move(d, Hex(2, 1))

    def test_move_violating_spacing_rolls_back(self, controller):
        a = put(controller, Hex(1, 1), "a")
        b = put(controller, Hex(3, 1), "b")  # distance 2: legal
        with pytest.raises(ConstraintViolationError):
            controller.move(b, Hex(2, 1))  # adjacent to a: violation
        assert b.position == Hex(3, 1)  # rolled back

    def test_follow_path(self, controller):
        d = put(controller, Hex(1, 1))
        path = [Hex(1, 1), Hex(2, 1), Hex(3, 1), Hex(4, 1)]
        controller.follow_path(d, path)
        assert d.position == Hex(4, 1)

    def test_follow_path_wrong_start_rejected(self, controller):
        d = put(controller, Hex(1, 1))
        with pytest.raises(IllegalMoveError):
            controller.follow_path(d, [Hex(2, 1), Hex(3, 1)])

    def test_move_unknown_droplet_rejected(self, controller):
        ghost = Droplet(position=Hex(1, 1))
        with pytest.raises(FluidicsError):
            controller.move(ghost, Hex(2, 1))


class TestMergeSplit:
    def test_merge_adjacent_droplets(self, controller):
        a = controller.dispense(
            Droplet(position=Hex(1, 1), contents={"x": 2e-3}, name="a")
        )
        b = controller.dispense(
            Droplet(position=Hex(4, 4), contents={"y": 4e-3}, name="b")
        )
        controller.move(b, Hex(3, 4))
        controller.move(b, Hex(2, 3) if Hex(2, 3) in controller.chip.neighbors(Hex(3, 4)) else Hex(3, 3))
        # bring b adjacent to a then merge
        while b.position not in controller.chip.neighbors(a.position):
            nxt = min(
                (n for n in controller.chip.neighbors(b.position)),
                key=lambda n: n.distance(a.position),
            )
            controller.move(b, nxt, merging_with=a)
        merged = controller.merge(b, a)
        assert merged.position == Hex(1, 1)
        assert merged.volume == pytest.approx(2e-9)
        assert len(controller.droplets) == 1

    def test_merge_non_adjacent_rejected(self, controller):
        a = put(controller, Hex(1, 1), "a")
        b = put(controller, Hex(5, 5), "b")
        with pytest.raises(IllegalMoveError):
            controller.merge(a, b)

    def test_split_onto_opposite_cells(self, controller):
        d = controller.dispense(
            Droplet(position=Hex(3, 3), volume=2e-9, contents={"x": 1e-3})
        )
        left, right = controller.split(d, Hex(2, 3), Hex(4, 3))
        assert left.position == Hex(2, 3)
        assert right.position == Hex(4, 3)
        assert left.volume == pytest.approx(1e-9)
        assert len(controller.droplets) == 2

    def test_split_same_target_rejected(self, controller):
        d = put(controller, Hex(3, 3))
        with pytest.raises(IllegalMoveError):
            controller.split(d, Hex(2, 3), Hex(2, 3))

    def test_split_non_adjacent_target_rejected(self, controller):
        d = put(controller, Hex(3, 3))
        with pytest.raises(IllegalMoveError):
            controller.split(d, Hex(0, 0), Hex(4, 3))


class TestMixAndHold:
    def test_mix_in_place_returns_to_start(self, controller):
        d = put(controller, Hex(3, 3))
        loop = [Hex(3, 3), Hex(4, 3), Hex(4, 2), Hex(3, 3)]
        controller.mix_in_place(d, cycles=3, loop=loop)
        assert d.position == Hex(3, 3)

    def test_mix_loop_must_close(self, controller):
        d = put(controller, Hex(3, 3))
        with pytest.raises(FluidicsError):
            controller.mix_in_place(d, 1, [Hex(3, 3), Hex(4, 3)])

    def test_hold_advances_time_only(self, controller):
        d = put(controller, Hex(3, 3))
        controller.hold(12.5)
        assert controller.time == pytest.approx(12.5)
        assert d.position == Hex(3, 3)

    def test_negative_hold_rejected(self, controller):
        with pytest.raises(FluidicsError):
            controller.hold(-1.0)


class TestRemappedController:
    def test_moves_use_repaired_physical_cells(self):
        chip = build_chip(DTMB_2_6, RectRegion(10, 10))
        victim = next(
            c.coord
            for c in chip.primaries()
            if len(chip.adjacent_spares(c.coord)) == 2
            and not chip.is_boundary(c.coord)
        )
        chip.mark_faulty(victim)
        plan = plan_local_repair(chip)
        remap = CellRemap(chip, plan)
        controller = ElectrodeController(chip, remap=remap)
        # Dispense logically onto the faulty cell: physically it sits on
        # the spare.
        d = controller.dispense(Droplet(position=victim))
        assert controller.physical(victim) == plan.spare_for(victim)
        assert d.position == victim
