"""Tests for repair-plan persistence (the microcontroller configuration)."""

from __future__ import annotations

import io

import pytest

from repro.designs.catalog import DTMB_2_6
from repro.designs.interstitial import build_chip
from repro.errors import ReconfigurationError
from repro.faults.injection import FixedCountInjector
from repro.geometry.hex import Hex
from repro.geometry.hexgrid import RectRegion
from repro.reconfig.local import RepairPlan, plan_local_repair
from repro.reconfig.persist import (
    dump_plan,
    load_plan,
    plan_from_dict,
    plan_to_dict,
)


@pytest.fixture
def repaired():
    chip = build_chip(DTMB_2_6, RectRegion(10, 10))
    FixedCountInjector(5).sample(chip, seed=13).apply_to(chip)
    return chip, plan_local_repair(chip)


class TestRoundTrip:
    def test_dict_round_trip(self, repaired):
        _, plan = repaired
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.assignment == plan.assignment
        assert restored.unrepaired == plan.unrepaired

    def test_file_round_trip(self, repaired, tmp_path):
        chip, plan = repaired
        path = str(tmp_path / "config.json")
        dump_plan(plan, path)
        restored = load_plan(path, chip=chip)  # validates too
        assert restored.assignment == plan.assignment

    def test_stream_round_trip(self, repaired):
        _, plan = repaired
        buffer = io.StringIO()
        dump_plan(plan, buffer)
        buffer.seek(0)
        assert load_plan(buffer).complete == plan.complete

    def test_incomplete_plan_round_trips(self):
        plan = RepairPlan(assignment={}, unrepaired=(Hex(1, 2),))
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.unrepaired == (Hex(1, 2),)
        assert not restored.complete


class TestValidationOnLoad:
    def test_wrong_chip_rejected(self, repaired, tmp_path):
        chip, plan = repaired
        path = str(tmp_path / "config.json")
        dump_plan(plan, path)
        # A pristine chip has no faulty primaries: the plan cannot apply.
        other = build_chip(DTMB_2_6, RectRegion(10, 10))
        if plan.assignment:
            with pytest.raises(ReconfigurationError):
                load_plan(path, chip=other)

    def test_malformed_rejected(self):
        with pytest.raises(ReconfigurationError):
            plan_from_dict({"assignment": []})
        with pytest.raises(ReconfigurationError):
            plan_from_dict({"format": 99, "assignment": []})
        with pytest.raises(ReconfigurationError):
            plan_from_dict(
                {
                    "format": 1,
                    "assignment": [
                        {"faulty": {"kind": "torus", "pos": [0, 0]},
                         "spare": {"kind": "hex", "pos": [0, 1]}}
                    ],
                }
            )


class TestHexSquareAblation:
    # Lives here to avoid one more tiny file: the ablation driver's unit
    # coverage (the bench asserts the scientific claims at full budget).
    def test_runs_and_reports(self):
        from repro.experiments import ablation_hexsquare

        result = ablation_hexsquare.run(side=8, runs=60, seed=3)
        assert result.mean_route_hex > 0
        assert result.mean_route_square > 0
        assert 0.0 <= result.connected_after_faults_hex <= 1.0
        assert "hexagonal" in result.format_report()

    def test_hex_routes_shorter_on_average(self):
        from repro.experiments import ablation_hexsquare

        result = ablation_hexsquare.run(side=10, runs=150, seed=5)
        assert result.mean_route_hex < result.mean_route_square
