"""Tests for finite hex regions and offset-coordinate conversion."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.hex import Hex
from repro.geometry.hexgrid import (
    FrozenRegion,
    HexagonRegion,
    ParallelogramRegion,
    RectRegion,
    axial_to_offset,
    offset_to_axial,
)


class TestOffsetConversion:
    @given(st.integers(-40, 40), st.integers(-40, 40))
    def test_round_trip(self, col, row):
        assert axial_to_offset(offset_to_axial(col, row)) == (col, row)

    @given(st.builds(Hex, st.integers(-40, 40), st.integers(-40, 40)))
    def test_round_trip_from_axial(self, h):
        col, row = axial_to_offset(h)
        assert offset_to_axial(col, row) == h

    def test_same_row_neighbors_adjacent(self):
        # Cells (c, r) and (c+1, r) are always east/west neighbors.
        for row in range(4):
            a = offset_to_axial(2, row)
            b = offset_to_axial(3, row)
            assert a.distance(b) == 1

    def test_vertical_neighbors_adjacent(self):
        # In odd-r layout, (c, r) and (c, r+1) are always adjacent — the
        # property the DFT snake plan relies on.
        for col in range(4):
            for row in range(5):
                a = offset_to_axial(col, row)
                b = offset_to_axial(col, row + 1)
                assert a.distance(b) == 1


class TestRectRegion:
    def test_size(self):
        assert len(RectRegion(7, 5)) == 35

    def test_membership(self):
        region = RectRegion(4, 4)
        assert region.cell_at(0, 0) in region
        assert region.cell_at(3, 3) in region
        assert Hex(100, 100) not in region

    def test_cell_at_bounds(self):
        region = RectRegion(4, 4)
        with pytest.raises(GeometryError):
            region.cell_at(4, 0)
        with pytest.raises(GeometryError):
            region.cell_at(0, -1)

    def test_rows_of_cells_shape(self):
        region = RectRegion(6, 3)
        rows = region.rows_of_cells()
        assert len(rows) == 3
        assert all(len(r) == 6 for r in rows)

    def test_connected(self):
        assert RectRegion(5, 5).is_connected()

    def test_interior_plus_boundary_partition(self):
        region = RectRegion(8, 8)
        interior = set(region.interior())
        boundary = set(region.boundary())
        assert interior | boundary == set(region.cells)
        assert not interior & boundary

    def test_interior_cells_have_six_neighbors(self):
        region = RectRegion(8, 8)
        for cell in region.interior():
            assert region.degree(cell) == 6

    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            RectRegion(0, 5)

    def test_is_boundary_raises_for_outside_cell(self):
        with pytest.raises(GeometryError):
            RectRegion(3, 3).is_boundary(Hex(50, 50))


class TestParallelogramRegion:
    def test_size_and_membership(self):
        region = ParallelogramRegion(4, 3, q0=-1, r0=2)
        assert len(region) == 12
        assert Hex(-1, 2) in region
        assert Hex(3, 2) not in region

    def test_connected(self):
        assert ParallelogramRegion(6, 2).is_connected()


class TestHexagonRegion:
    @pytest.mark.parametrize("radius,expected", [(0, 1), (1, 7), (2, 19), (3, 37)])
    def test_size_formula(self, radius, expected):
        assert len(HexagonRegion(radius)) == expected

    def test_centered_elsewhere(self):
        region = HexagonRegion(1, center=Hex(5, 5))
        assert Hex(5, 5) in region
        assert Hex(0, 0) not in region

    def test_boundary_is_outer_ring(self):
        region = HexagonRegion(2)
        assert len(region.boundary()) == 12  # ring of radius 2


class TestSetAlgebra:
    def test_union_and_intersection(self):
        a = RectRegion(3, 3)
        b = HexagonRegion(1, center=Hex(1, 1))
        union = a.union(b)
        inter = a.intersection(b)
        assert set(inter.cells) <= set(union.cells)
        assert len(union) <= len(a) + len(b)

    def test_difference(self):
        a = RectRegion(4, 4)
        b = RectRegion(2, 2)
        diff = a.difference(b)
        assert len(diff) == len(a) - len(b)
        assert all(c not in b for c in diff)

    def test_empty_results_rejected(self):
        a = RectRegion(2, 2)
        with pytest.raises(GeometryError):
            a.difference(a)
        far = FrozenRegion([Hex(100, 100)])
        with pytest.raises(GeometryError):
            a.intersection(far)

    def test_translation_preserves_size_and_shape(self):
        a = HexagonRegion(2)
        moved = a.translated(Hex(10, -4))
        assert len(moved) == len(a)
        assert Hex(10, -4) in moved

    def test_equality_is_set_equality(self):
        a = RectRegion(2, 2)
        b = FrozenRegion(a.cells)
        assert a == b

    def test_empty_region_rejected(self):
        with pytest.raises(GeometryError):
            FrozenRegion([])
