"""Tests for the Trinder kinetics, detection optics and assay library."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assays.chemistry import (
    MichaelisMentenStep,
    ReactionCascade,
    Species,
    trinder_cascade,
)
from repro.assays.detection import BeerLambert, OpticalDetector, Photodiode
from repro.assays.library import (
    GLUCOSE_ASSAY,
    PANEL,
    assay_by_analyte,
)
from repro.errors import AssayError


def glucose_mix(concentration: float) -> dict:
    return {
        Species.GLUCOSE: concentration,
        Species.GLUCOSE_OXIDASE: 1e-6,
        Species.PEROXIDASE: 0.5e-6,
        Species.AAP4: 5e-3,
        Species.TOPS: 5e-3,
    }


class TestMichaelisMenten:
    def test_rate_zero_without_enzyme_or_substrate(self):
        step = MichaelisMentenStep(
            "s", enzyme="E", substrate="S", product="P", kcat=100.0, km=1e-3
        )
        assert step.rate({"S": 1e-3}) == 0.0
        assert step.rate({"E": 1e-6}) == 0.0

    def test_rate_saturates_at_high_substrate(self):
        step = MichaelisMentenStep(
            "s", enzyme="E", substrate="S", product="P", kcat=100.0, km=1e-3
        )
        vmax = 100.0 * 1e-6
        nearly = step.rate({"E": 1e-6, "S": 1.0})
        assert nearly == pytest.approx(vmax, rel=1e-2)

    def test_rate_linear_at_low_substrate(self):
        step = MichaelisMentenStep(
            "s", enzyme="E", substrate="S", product="P", kcat=100.0, km=1e-3
        )
        r1 = step.rate({"E": 1e-6, "S": 1e-6})
        r2 = step.rate({"E": 1e-6, "S": 2e-6})
        assert r2 == pytest.approx(2 * r1, rel=1e-2)

    def test_parameter_validation(self):
        with pytest.raises(AssayError):
            MichaelisMentenStep("b", "E", "S", "P", kcat=-1, km=1e-3)
        with pytest.raises(AssayError):
            MichaelisMentenStep("b", "E", "S", "P", kcat=1, km=0)


class TestCascadeSimulation:
    def test_mass_conservation_glucose_to_products(self):
        cascade = trinder_cascade()
        start = glucose_mix(2e-3)
        final = cascade.simulate(start, duration=120.0)
        consumed = start[Species.GLUCOSE] - final[Species.GLUCOSE]
        produced = final.get(Species.H2O2, 0.0) + 2.0 * final.get(
            Species.QUINONEIMINE, 0.0
        )
        assert consumed == pytest.approx(produced, rel=1e-6)

    def test_no_negative_concentrations(self):
        cascade = trinder_cascade()
        final = cascade.simulate(glucose_mix(5e-3), duration=600.0)
        assert all(v >= 0.0 for v in final.values())

    def test_chromogen_consumed_stoichiometrically(self):
        cascade = trinder_cascade()
        start = glucose_mix(2e-3)
        final = cascade.simulate(start, duration=60.0)
        dye = final.get(Species.QUINONEIMINE, 0.0)
        assert start[Species.AAP4] - final[Species.AAP4] == pytest.approx(dye)
        assert start[Species.TOPS] - final[Species.TOPS] == pytest.approx(dye)

    def test_product_monotone_in_substrate(self):
        cascade = trinder_cascade()
        dyes = [
            cascade.simulate(glucose_mix(c), 30.0).get(Species.QUINONEIMINE, 0.0)
            for c in (1e-3, 2e-3, 4e-3, 8e-3)
        ]
        assert dyes == sorted(dyes)
        assert dyes[0] > 0.0

    def test_product_monotone_in_time(self):
        cascade = trinder_cascade()
        start = glucose_mix(3e-3)
        dyes = [
            cascade.simulate(start, t).get(Species.QUINONEIMINE, 0.0)
            for t in (5.0, 15.0, 45.0)
        ]
        assert dyes == sorted(dyes)

    def test_dt_convergence(self):
        cascade = trinder_cascade()
        start = glucose_mix(3e-3)
        coarse = cascade.simulate(start, 30.0, dt=0.05)
        fine = cascade.simulate(start, 30.0, dt=0.005)
        assert coarse[Species.QUINONEIMINE] == pytest.approx(
            fine[Species.QUINONEIMINE], rel=0.01
        )

    def test_input_not_mutated(self):
        cascade = trinder_cascade()
        start = glucose_mix(1e-3)
        snapshot = dict(start)
        cascade.simulate(start, 10.0)
        assert start == snapshot

    def test_zero_duration_identity(self):
        cascade = trinder_cascade()
        start = glucose_mix(1e-3)
        assert cascade.simulate(start, 0.0) == start

    def test_validation(self):
        cascade = trinder_cascade()
        with pytest.raises(AssayError):
            cascade.simulate({}, duration=-1.0)
        with pytest.raises(AssayError):
            cascade.simulate({}, duration=1.0, dt=0.0)
        with pytest.raises(AssayError):
            ReactionCascade([])


class TestDetection:
    def test_beer_lambert_linear(self):
        optics = BeerLambert()
        assert optics.absorbance(2e-4) == pytest.approx(
            2 * optics.absorbance(1e-4)
        )

    @given(st.floats(min_value=0.0, max_value=1e-2))
    @settings(max_examples=40)
    def test_beer_lambert_round_trip(self, c):
        optics = BeerLambert()
        assert optics.concentration(optics.absorbance(c)) == pytest.approx(c)

    def test_ideal_photodiode_round_trip(self):
        pd = Photodiode()
        for a in (0.0, 0.1, 0.5, 1.5):
            assert pd.absorbance_from(pd.transmitted(a)) == pytest.approx(a)

    def test_noisy_photodiode_statistics(self):
        pd = Photodiode(noise_fraction=0.01)
        readings = [pd.transmitted(0.5, seed=s) for s in range(300)]
        ideal = Photodiode().transmitted(0.5)
        mean = sum(readings) / len(readings)
        assert mean == pytest.approx(ideal, rel=0.005)

    def test_detector_measures_quinoneimine_only(self):
        detector = OpticalDetector()
        a = detector.measure({Species.QUINONEIMINE: 1e-4, Species.GLUCOSE: 1.0})
        b = detector.measure({Species.QUINONEIMINE: 1e-4})
        assert a == pytest.approx(b)

    def test_validation(self):
        with pytest.raises(AssayError):
            BeerLambert(epsilon=-1.0)
        with pytest.raises(AssayError):
            BeerLambert().absorbance(-1e-3)
        with pytest.raises(AssayError):
            Photodiode().absorbance_from(0.0)


class TestAssayLibrary:
    def test_panel_covers_four_metabolites(self):
        analytes = {spec.analyte for spec in PANEL}
        assert analytes == {
            Species.GLUCOSE,
            Species.LACTATE,
            Species.GLUTAMATE,
            Species.PYRUVATE,
        }

    def test_lookup(self):
        assert assay_by_analyte(Species.GLUCOSE) is GLUCOSE_ASSAY
        with pytest.raises(AssayError):
            assay_by_analyte("caffeine")

    def test_reference_ranges_sane(self):
        for spec in PANEL:
            lo, hi = spec.reference_range
            assert 0 < lo < hi < 0.05  # all under 50 mM

    def test_reagents_include_oxidase_and_chromogens(self):
        for spec in PANEL:
            assert spec.oxidase in spec.reagent_contents
            assert Species.PEROXIDASE in spec.reagent_contents
            assert Species.AAP4 in spec.reagent_contents
            assert Species.TOPS in spec.reagent_contents

    def test_each_assay_produces_dye_in_range(self):
        # Mid-reference-range sample must produce measurable color.
        for spec in PANEL:
            lo, hi = spec.reference_range
            mid = (lo + hi) / 2
            contents = {spec.analyte: mid / 2}
            contents.update({k: v / 2 for k, v in spec.reagent_contents.items()})
            final = spec.cascade.simulate(contents, 30.0)
            assert final.get(Species.QUINONEIMINE, 0.0) > 1e-7

    def test_in_reference_range(self):
        lo, hi = GLUCOSE_ASSAY.reference_range
        assert GLUCOSE_ASSAY.in_reference_range((lo + hi) / 2)
        assert not GLUCOSE_ASSAY.in_reference_range(hi * 3)
