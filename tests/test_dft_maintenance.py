"""Tests for the maintenance loop (test → diagnose → repair → certify)."""

from __future__ import annotations

import pytest

from repro.chip.builders import plain_chip
from repro.designs.catalog import DTMB_2_6
from repro.designs.interstitial import build_chip, build_flower_chip
from repro.dft.maintenance import maintain
from repro.dft.traversal import snake_plan
from repro.errors import TestPlanError
from repro.geometry.hexgrid import RectRegion


@pytest.fixture
def region():
    return RectRegion(10, 10)


@pytest.fixture
def chip(region):
    return build_chip(DTMB_2_6, region)


class TestHealthyChip:
    def test_single_probe_certifies(self, chip, region):
        report = maintain(chip, region=region)
        assert report.usable
        assert report.probes == 1
        assert report.faults_located == ()
        assert report.remap is None
        assert "certified good" in report.format_report()


class TestFaultyRepairableChip:
    def test_full_cycle(self, chip, region):
        plan = snake_plan(region)
        victims = [plan[25], plan[60]]
        for v in victims:
            chip.mark_faulty(v)
        report = maintain(chip, region=region)
        assert set(report.faults_located) == set(victims)
        assert report.probes > 1
        assert report.droplet_moves > 0
        faulty_primaries = {c.coord for c in chip.faulty_primaries()}
        if report.repair.complete:
            assert report.usable
            if faulty_primaries:
                assert report.remap is not None
                assert report.remap.remapped_count == len(faulty_primaries)

    def test_needed_subset_ignores_unused_faults(self, chip, region):
        plan = snake_plan(region)
        primaries = [c.coord for c in chip.primaries()]
        needed = primaries[:10]
        # Fault on a primary outside the needed set but not on the source.
        victim = next(
            p for p in primaries[10:] if p != plan[0]
        )
        chip.mark_faulty(victim)
        report = maintain(chip, region=region, needed=needed)
        assert report.usable
        assert report.repair.spares_used == 0


class TestIrreparableChip:
    def test_reported_not_usable(self, region):
        # DTMB(1,6) flower contention: two primaries sharing one spare.
        chip = build_flower_chip(12)
        spare = chip.spares()[0].coord
        victims = [c.coord for c in chip.adjacent_primaries(spare)][:2]
        for v in victims:
            chip.mark_faulty(v)
        # Flower chips are irregular; build an explicit plan via a snake
        # over a covering rectangle is not possible, so test through the
        # repair phase directly with an explicit traversal.
        from repro.reconfig.local import plan_local_repair

        plan = plan_local_repair(chip)
        assert not plan.complete

    def test_irreparable_through_maintain(self, region):
        chip = build_chip(DTMB_2_6, region)
        plan = snake_plan(region)
        # Kill one interior primary and both of its spares.
        victim = next(
            c.coord
            for c in chip.primaries()
            if len(chip.adjacent_spares(c.coord)) == 2 and c.coord != plan[0]
        )
        chip.mark_faulty(victim)
        for spare in chip.adjacent_spares(victim):
            chip.mark_faulty(spare.coord)
        report = maintain(chip, region=region)
        assert not report.usable
        assert report.remap is None
        assert "IRREPARABLE" in report.format_report()


class TestValidation:
    def test_needs_plan_or_region(self, chip):
        with pytest.raises(TestPlanError):
            maintain(chip)

    def test_plan_must_cover_chip(self, chip):
        with pytest.raises(TestPlanError):
            maintain(chip, plan=snake_plan(RectRegion(3, 3)))
