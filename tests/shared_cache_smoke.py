"""CI shared-cache driver — not a pytest module.

Proves the shared cache store is pure acceleration at full-pipeline
scale, over both transports:

1. Reference: ``repro all`` with no cache at all.
2. Cold:      ``repro all`` against an empty :class:`SharedFSStore`
   (``--cache-url``) with its own local tier — populates the store.
3. Warm:      the identical command with a **fresh** local tier against
   the now-populated store.  Every point must come from the store:
   zero cache misses, zero quarantines, remote hits for every hit.
4. HTTP:      another fresh-tier run, this time through ``repro serve
   --cache-objects`` mounted over the same object tree, via
   ``--cache-url http://...`` — the HTTPStore must serve the objects
   the SharedFSStore wrote.

Every artifact file (minus ``manifest.json``, which carries volatile
telemetry, and ``ablation-matching``, which is intrinsically
timing-valued) must be byte-identical across all four runs, and the
per-experiment result digests must agree for every experiment including
ablation-matching's inputs.

Exits non-zero on any mismatch.  Run as::

    PYTHONPATH=src python tests/shared_cache_smoke.py

``REPRO_SMOKE_RUNS`` shrinks the budget for a quick local pass.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import tempfile

RUNS = os.environ.get("REPRO_SMOKE_RUNS", "50")

#: Timing-valued by nature: its artifacts legitimately differ run to run.
TIMING_VALUED = {"ablation-matching"}


def run_all(out: pathlib.Path, *extra: str) -> None:
    subprocess.run(
        [
            sys.executable, "-m", "repro", "all",
            "--runs", RUNS, "--out", str(out), *extra,
        ],
        check=True,
        stdout=subprocess.DEVNULL,
    )


def manifest(out: pathlib.Path) -> dict:
    return json.loads((out / "manifest.json").read_text())


def stable_files(out: pathlib.Path) -> list:
    return sorted(
        p.relative_to(out)
        for p in out.rglob("*")
        if p.is_file()
        and p.name != "manifest.json"
        and p.relative_to(out).parts[0] not in TIMING_VALUED
    )


def assert_bundles_identical(ref: pathlib.Path, other: pathlib.Path,
                             label: str) -> None:
    ref_files = stable_files(ref)
    assert ref_files, "reference run produced no artifacts"
    assert stable_files(other) == ref_files, f"{label}: file sets differ"
    mismatched = [
        str(rel)
        for rel in ref_files
        if (other / rel).read_bytes() != (ref / rel).read_bytes()
    ]
    assert not mismatched, f"{label}: bytes differ:\n  " + "\n  ".join(
        mismatched
    )
    print(f"{label}: {len(ref_files)} artifact files byte-identical")


def cache_traffic(out: pathlib.Path) -> dict:
    """Summed engine cache counters across the manifest's experiments."""
    totals: dict = {"hits": 0, "misses": 0}
    for entry in manifest(out)["experiments"].values():
        engine = entry["provenance"]["engine"]
        totals["hits"] += engine.get("cache_hits", 0)
        totals["misses"] += engine.get("cache_misses", 0)
        for key, value in engine.get("cache", {}).items():
            totals[key] = totals.get(key, 0) + value
    return totals


def main() -> int:
    base = pathlib.Path(tempfile.mkdtemp(prefix="repro-shared-cache-"))
    shared = base / "shared-store"
    out_ref, out_cold, out_warm, out_http = (
        base / "out-ref", base / "out-cold", base / "out-warm",
        base / "out-http",
    )

    run_all(out_ref)
    run_all(
        out_cold,
        "--cache-dir", str(base / "tier-cold"),
        "--cache-url", str(shared),
    )
    run_all(
        out_warm,
        "--cache-dir", str(base / "tier-warm"),  # fresh: only the store is warm
        "--cache-url", str(shared),
    )

    assert_bundles_identical(out_ref, out_cold, "cold vs reference")
    assert_bundles_identical(out_ref, out_warm, "warm vs reference")

    cold = cache_traffic(out_cold)
    warm = cache_traffic(out_warm)
    print(f"cold traffic: {cold}")
    print(f"warm traffic: {warm}")
    assert cold["uploads"] > 0, "cold run uploaded nothing to the store"
    assert warm["misses"] == 0, f"warm run missed: {warm}"
    assert warm["hits"] > 0, "warm run hit nothing"
    assert warm.get("remote_hits", 0) == warm["hits"], (
        "warm hits must all come from the shared store", warm
    )
    assert warm.get("uploads", 0) == 0, "warm run re-uploaded objects"

    # Per-experiment digests agree everywhere — including the
    # timing-valued experiment's *result* inputs via its row digests
    # being computed from the same seeds (its digest may differ, so only
    # the stable experiments are compared).
    ref_digests = {
        name: entry["provenance"]["digest"]
        for name, entry in manifest(out_ref)["experiments"].items()
        if name not in TIMING_VALUED
    }
    for label, out in (("cold", out_cold), ("warm", out_warm)):
        digests = {
            name: entry["provenance"]["digest"]
            for name, entry in manifest(out)["experiments"].items()
            if name not in TIMING_VALUED
        }
        assert digests == ref_digests, f"{label}: result digests diverged"
    print(f"result digests OK: {len(ref_digests)} experiments")

    # HTTP transport parity: serve the same object tree over
    # ``/cache/objects`` and reproduce from it with another fresh tier.
    from repro.serve import BackgroundServer, ServeConfig

    with BackgroundServer(
        ServeConfig(port=0, cache_objects=str(shared))
    ) as handle:
        run_all(
            out_http,
            "--cache-dir", str(base / "tier-http"),
            "--cache-url", f"http://127.0.0.1:{handle.port}",
        )
    assert_bundles_identical(out_ref, out_http, "http vs reference")
    http = cache_traffic(out_http)
    print(f"http traffic: {http}")
    assert http["misses"] == 0, f"http-warm run missed: {http}"
    assert http.get("remote_hits", 0) == http["hits"], (
        "http hits must all come from the served store", http
    )
    print("shared-cache smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
