"""Tests for the central Biochip model."""

from __future__ import annotations

import pytest

from repro.chip.biochip import Biochip
from repro.chip.cell import Cell, CellHealth, CellRole
from repro.errors import ChipError
from repro.geometry.hex import Hex
from repro.geometry.hexgrid import RectRegion


def tiny_chip():
    """A 7-cell flower: spare at origin, six primaries around it."""
    cells = [Cell(Hex(0, 0), CellRole.SPARE)]
    cells += [Cell(n, CellRole.PRIMARY) for n in Hex(0, 0).neighbors()]
    return Biochip(cells, name="flower")


class TestConstruction:
    def test_duplicate_coordinates_rejected(self):
        with pytest.raises(ChipError):
            Biochip([Cell(Hex(0, 0)), Cell(Hex(0, 0))])

    def test_empty_rejected(self):
        with pytest.raises(ChipError):
            Biochip([])

    def test_counts(self):
        chip = tiny_chip()
        assert len(chip) == 7
        assert chip.primary_count == 6
        assert chip.spare_count == 1

    def test_iteration_deterministic(self):
        chip = tiny_chip()
        assert [c.coord for c in chip] == sorted(c.coord for c in chip)

    def test_getitem_unknown_coordinate(self):
        with pytest.raises(ChipError):
            tiny_chip()[Hex(10, 10)]


class TestAdjacency:
    def test_spare_adjacent_to_all_primaries(self):
        chip = tiny_chip()
        assert len(chip.adjacent_primaries(Hex(0, 0))) == 6
        assert chip.adjacent_spares(Hex(0, 0)) == []

    def test_primary_sees_the_spare(self):
        chip = tiny_chip()
        for cell in chip.primaries():
            spares = chip.adjacent_spares(cell.coord)
            assert [s.coord for s in spares] == [Hex(0, 0)]

    def test_neighbors_restricted_to_array(self):
        chip = tiny_chip()
        # A rim primary has 3 in-array neighbors (two rim mates + spare).
        rim = Hex(1, 0)
        assert set(chip.neighbors(rim)) <= set(c.coord for c in chip)
        assert len(chip.neighbors(rim)) == 3

    def test_boundary_detection(self):
        chip = tiny_chip()
        assert not chip.is_boundary(Hex(0, 0))
        assert chip.is_boundary(Hex(1, 0))

    def test_edges_unique_and_sorted(self):
        chip = tiny_chip()
        edges = chip.edges()
        assert len(edges) == len(set(edges))
        assert all(a <= b for a, b in edges)
        # Flower: 6 spokes + 6 rim edges.
        assert len(edges) == 12

    def test_connectivity(self):
        assert tiny_chip().is_connected()
        two_islands = Biochip([Cell(Hex(0, 0)), Cell(Hex(5, 5))])
        assert not two_islands.is_connected()


class TestHealth:
    def test_mark_and_clear(self):
        chip = tiny_chip()
        chip.mark_faulty(Hex(1, 0))
        assert chip[Hex(1, 0)].is_faulty
        assert len(chip.faulty_cells()) == 1
        assert len(chip.faulty_primaries()) == 1
        chip.clear_faults()
        assert chip.is_fault_free()

    def test_faulty_spare_not_in_good_spares(self):
        chip = tiny_chip()
        chip.mark_faulty(Hex(0, 0))
        assert chip.good_spares() == []
        assert chip.faulty_primaries() == []

    def test_apply_fault_map(self):
        chip = tiny_chip()
        chip.apply_fault_map([Hex(1, 0), Hex(0, 1)])
        assert len(chip.faulty_cells()) == 2

    def test_mark_good_single_cell(self):
        chip = tiny_chip()
        chip.mark_faulty(Hex(1, 0))
        chip.mark_good(Hex(1, 0))
        assert chip.is_fault_free()


class TestDerived:
    def test_copy_is_deep(self):
        chip = tiny_chip()
        clone = chip.copy()
        clone.mark_faulty(Hex(1, 0))
        assert chip.is_fault_free()
        assert not clone.is_fault_free()

    def test_subchip(self):
        chip = tiny_chip()
        primaries_only = chip.subchip(lambda c: c.is_primary)
        assert len(primaries_only) == 6
        assert primaries_only.spare_count == 0

    def test_subchip_empty_predicate_rejected(self):
        with pytest.raises(ChipError):
            tiny_chip().subchip(lambda c: False)

    def test_redundancy_ratio(self):
        assert tiny_chip().redundancy_ratio() == pytest.approx(1 / 6)

    def test_redundancy_ratio_requires_primaries(self):
        spare_only = Biochip([Cell(Hex(0, 0), CellRole.SPARE)])
        with pytest.raises(ChipError):
            spare_only.redundancy_ratio()

    def test_labels(self):
        chip = tiny_chip()
        chip.set_label(Hex(1, 0), "mixer")
        assert [c.coord for c in chip.cells_labeled("mixer")] == [Hex(1, 0)]
