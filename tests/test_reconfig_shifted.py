"""Tests for the boundary spare-row shifted-replacement baseline (Figure 2)."""

from __future__ import annotations

import pytest

from repro.designs.boundary import SpareRowArray
from repro.errors import IrreparableChipError, ReconfigurationError
from repro.geometry.square import Square
from repro.reconfig.shifted import (
    plan_shifted_replacement,
    shifted_cost_by_fault_row,
)


@pytest.fixture
def array():
    # Three 2-row modules over a 6-wide array; Module 1 next to spare row.
    return SpareRowArray.uniform(cols=6, module_heights=[2, 2, 2])


class TestPlanShiftedReplacement:
    def test_no_faults_identity(self, array):
        plan = plan_shifted_replacement(array, [])
        assert plan.cells_remapped == 0
        assert plan.modules_reconfigured == ()
        for row in range(array.spare_row):
            assert plan.physical_row(row) == row

    def test_fault_adjacent_to_spare_row_moves_one_module(self, array):
        # Fault in the last module row (Module 1, adjacent to spare row).
        fault = Square(2, array.spare_row - 1)
        plan = plan_shifted_replacement(array, [fault])
        assert plan.modules_reconfigured == ("Module 1",)
        assert plan.fault_free_modules_reconfigured == ()
        assert plan.cells_remapped == array.cols  # one row slides

    def test_interior_fault_drags_fault_free_modules(self, array):
        # Fault in Module 3 (farthest): Modules 2 and 1 get reconfigured
        # even though they are fault-free — the paper's Figure 2(c).
        fault = Square(0, 0)
        plan = plan_shifted_replacement(array, [fault])
        assert plan.modules_reconfigured == ("Module 3", "Module 2", "Module 1")
        assert set(plan.fault_free_modules_reconfigured) == {"Module 2", "Module 1"}
        assert plan.cells_remapped == array.cols * array.spare_row

    def test_row_remap_skips_faulty_row(self, array):
        plan = plan_shifted_replacement(array, [Square(3, 2)])
        assert plan.physical_row(1) == 1  # before the fault: unchanged
        assert plan.physical_row(2) == 3  # faulty row bypassed
        assert plan.physical_row(array.spare_row - 1) == array.spare_row

    def test_physical_cell_translation(self, array):
        plan = plan_shifted_replacement(array, [Square(3, 2)])
        assert plan.physical_cell(Square(1, 1)) == Square(1, 1)
        assert plan.physical_cell(Square(4, 4)) == Square(4, 5)

    def test_multiple_faults_same_row_ok(self, array):
        plan = plan_shifted_replacement(array, [Square(0, 1), Square(5, 1)])
        assert plan.faulty_row == 1

    def test_faults_in_two_rows_irreparable(self, array):
        with pytest.raises(IrreparableChipError):
            plan_shifted_replacement(array, [Square(0, 0), Square(0, 3)])

    def test_fault_in_spare_row_irreparable(self, array):
        with pytest.raises(IrreparableChipError):
            plan_shifted_replacement(array, [Square(1, array.spare_row)])

    def test_fault_outside_array_rejected(self, array):
        with pytest.raises(ReconfigurationError):
            plan_shifted_replacement(array, [Square(99, 0)])

    def test_logical_row_must_be_module_row(self, array):
        plan = plan_shifted_replacement(array, [Square(0, 0)])
        with pytest.raises(ReconfigurationError):
            plan.physical_row(array.spare_row)


class TestCostSeries:
    def test_cost_monotone_in_distance(self, array):
        records = shifted_cost_by_fault_row(array)
        # Farther from the spare row -> strictly more cells remapped.
        by_distance = sorted(records, key=lambda r: r["distance_to_spare_row"])
        cells = [r["cells_remapped"] for r in by_distance]
        assert cells == sorted(cells)
        assert cells[0] < cells[-1]

    def test_collateral_counts(self, array):
        records = shifted_cost_by_fault_row(array)
        worst = max(r["fault_free_modules_reconfigured"] for r in records)
        assert worst == len(array.modules) - 1

    def test_one_record_per_module_row(self, array):
        records = shifted_cost_by_fault_row(array)
        assert len(records) == array.spare_row
