"""Property-based tests of fluidics invariants under random protocols."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chip.builders import plain_chip
from repro.errors import FluidicsError, RoutingError, SchedulingError
from repro.fluidics.controller import ElectrodeController
from repro.fluidics.droplet import Droplet
from repro.fluidics.operations import Detect, Discard, Dispense, Mix, Transport
from repro.fluidics.scheduler import Scheduler
from repro.geometry.hexgrid import RectRegion, offset_to_axial

CELLS = [(c, r) for c in range(9) for r in range(9)]


def far_apart(a, b, min_distance=3):
    ha, hb = offset_to_axial(*a), offset_to_axial(*b)
    return ha.distance(hb) >= min_distance


@st.composite
def transport_scenarios(draw):
    """A dispense cell, a destination, and a parked obstacle, all spaced."""
    src = draw(st.sampled_from(CELLS))
    dst = draw(st.sampled_from(CELLS))
    obstacle = draw(st.sampled_from(CELLS))
    return (src, dst, obstacle)


class TestTransportProperties:
    @given(transport_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_transport_always_arrives_or_raises(self, scenario):
        src, dst, obstacle = scenario
        if not (far_apart(src, obstacle) and far_apart(dst, obstacle)
                and far_apart(src, dst, 1)):
            return
        chip = plain_chip(RectRegion(9, 9))
        scheduler = Scheduler(ElectrodeController(chip))
        ops = [
            Dispense("obstacle", offset_to_axial(*obstacle)),
            Dispense("mover", offset_to_axial(*src)),
            Transport("mover", offset_to_axial(*dst)),
        ]
        try:
            scheduler.run(ops)
        except (SchedulingError, RoutingError):
            return  # boxed in: a legal refusal, not a crash
        mover = scheduler.droplet("mover")
        assert mover.position == offset_to_axial(*dst)
        # The parked obstacle was never disturbed.
        assert scheduler.droplet("obstacle").position == offset_to_axial(
            *obstacle
        )

    @given(transport_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_time_equals_moves_times_step(self, scenario):
        src, dst, _ = scenario
        if src == dst:
            return
        chip = plain_chip(RectRegion(9, 9))
        controller = ElectrodeController(chip)
        scheduler = Scheduler(controller)
        try:
            schedule = scheduler.run(
                [
                    Dispense("d", offset_to_axial(*src)),
                    Transport("d", offset_to_axial(*dst)),
                ]
            )
        except (SchedulingError, RoutingError):
            return
        step = controller.model.step_time(controller.voltage)
        assert controller.time == pytest.approx(schedule.total_moves * step)


class TestMixMassConservation:
    @given(
        st.floats(min_value=1e-4, max_value=1e-2),
        st.floats(min_value=1e-4, max_value=1e-2),
    )
    @settings(max_examples=30, deadline=None)
    def test_mix_conserves_moles(self, ca, cb):
        chip = plain_chip(RectRegion(9, 9))
        scheduler = Scheduler(ElectrodeController(chip))
        volume = 1e-9
        scheduler.run(
            [
                Dispense("a", offset_to_axial(0, 0), {"x": ca}, volume=volume),
                Dispense("b", offset_to_axial(8, 8), {"y": cb}, volume=volume),
                Mix("a", "b", "ab", at=offset_to_axial(4, 4), cycles=1),
            ]
        )
        merged = scheduler.droplet("ab")
        assert merged.volume == pytest.approx(2 * volume)
        assert merged.moles("x") == pytest.approx(ca * volume)
        assert merged.moles("y") == pytest.approx(cb * volume)
