"""Tests for the from-scratch bipartite matching algorithms.

Correctness is established three ways: hand-built instances with known
optima, cross-checks against networkx's Hopcroft-Karp on random graphs,
and a hypothesis property comparing Kuhn and Hopcroft-Karp sizes on
arbitrary instances.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReconfigurationError
from repro.reconfig.bipartite import (
    MATCHING_ALGORITHMS,
    BipartiteGraph,
    greedy_matching,
    hopcroft_karp,
    kuhn_matching,
    maximum_matching,
    saturates_left,
)


def graph_from_adj(adj):
    left = list(adj)
    right = sorted({v for vs in adj.values() for v in vs})
    edges = [(u, v) for u, vs in adj.items() for v in vs]
    return BipartiteGraph(left, right, edges)


class TestConstruction:
    def test_duplicate_nodes_collapsed(self):
        g = BipartiteGraph(["a", "a"], ["x"], [("a", "x"), ("a", "x")])
        assert g.left == ("a",)
        assert g.edge_count == 1

    def test_overlapping_sides_rejected(self):
        with pytest.raises(ReconfigurationError):
            BipartiteGraph(["a"], ["a"], [])

    def test_edges_must_reference_nodes(self):
        with pytest.raises(ReconfigurationError):
            BipartiteGraph(["a"], ["x"], [("b", "x")])
        with pytest.raises(ReconfigurationError):
            BipartiteGraph(["a"], ["x"], [("a", "y")])

    def test_degree(self):
        g = graph_from_adj({"a": ["x", "y"], "b": ["y"]})
        assert g.degree("a") == 2
        assert g.degree("b") == 1


class TestKnownInstances:
    def test_perfect_matching_exists(self):
        g = graph_from_adj({"a": ["x"], "b": ["y"], "c": ["z"]})
        for name in ("kuhn", "hopcroft-karp"):
            m = maximum_matching(g, name)
            assert saturates_left(g, m)

    def test_augmenting_path_needed(self):
        # Greedy (in insertion order) grabs x for a, stranding b unless the
        # algorithm augments: a->y frees x for b.
        g = graph_from_adj({"a": ["x", "y"], "b": ["x"]})
        greedy = greedy_matching(g)
        assert not saturates_left(g, greedy)
        for name in ("kuhn", "hopcroft-karp"):
            assert saturates_left(g, maximum_matching(g, name))

    def test_structural_deficiency(self):
        # Three left nodes share two right nodes: Hall's condition fails.
        g = graph_from_adj({"a": ["x", "y"], "b": ["x", "y"], "c": ["x", "y"]})
        for name in ("kuhn", "hopcroft-karp"):
            m = maximum_matching(g, name)
            assert len(m) == 2
            assert not saturates_left(g, m)

    def test_isolated_left_node(self):
        g = BipartiteGraph(["a", "b"], ["x"], [("a", "x")])
        m = hopcroft_karp(g)
        assert m == {"a": "x"}
        assert not saturates_left(g, m)

    def test_empty_graph(self):
        g = BipartiteGraph([], [], [])
        assert hopcroft_karp(g) == {}
        assert kuhn_matching(g) == {}
        assert saturates_left(g, {})

    def test_long_augmenting_chain(self):
        # Path graph forcing a length-5 augmenting path.
        adj = {
            0: ["r0"],
            1: ["r0", "r1"],
            2: ["r1", "r2"],
            3: ["r2", "r3"],
        }
        g = graph_from_adj(adj)
        for name in ("kuhn", "hopcroft-karp"):
            assert saturates_left(g, maximum_matching(g, name))

    def test_unknown_algorithm_rejected(self):
        g = BipartiteGraph([], [], [])
        with pytest.raises(ReconfigurationError):
            maximum_matching(g, "hungarian-dance")


class TestMatchingValidity:
    @staticmethod
    def assert_valid(g, matching):
        used = set()
        for u, v in matching.items():
            assert v in g.adj[u]
            assert v not in used
            used.add(v)

    def test_all_algorithms_produce_valid_matchings(self):
        adj = {i: [f"r{(i + k) % 7}" for k in range(3)] for i in range(7)}
        g = graph_from_adj(adj)
        for name, algo in MATCHING_ALGORITHMS.items():
            self.assert_valid(g, algo(g))


# Random small bipartite instances as adjacency dicts.
adj_strategy = st.dictionaries(
    st.integers(0, 9),
    st.lists(st.integers(100, 109), max_size=5, unique=True),
    max_size=10,
)


class TestProperties:
    @given(adj_strategy)
    @settings(max_examples=120)
    def test_kuhn_equals_hopcroft_karp_size(self, adj):
        g = graph_from_adj(adj)
        assert len(kuhn_matching(g)) == len(hopcroft_karp(g))

    @given(adj_strategy)
    @settings(max_examples=120)
    def test_greedy_never_beats_maximum(self, adj):
        g = graph_from_adj(adj)
        assert len(greedy_matching(g)) <= len(hopcroft_karp(g))

    @given(adj_strategy)
    @settings(max_examples=120)
    def test_greedy_is_maximal_at_least_half(self, adj):
        # A maximal matching is at least half a maximum one.
        g = graph_from_adj(adj)
        assert 2 * len(greedy_matching(g)) >= len(hopcroft_karp(g))

    @given(adj_strategy)
    @settings(max_examples=60)
    def test_matches_networkx(self, adj):
        import networkx as nx

        g = graph_from_adj(adj)
        nxg = nx.Graph()
        nxg.add_nodes_from(g.left, bipartite=0)
        nxg.add_nodes_from(g.right, bipartite=1)
        for u, vs in g.adj.items():
            nxg.add_edges_from((u, v) for v in vs)
        nx_size = len(
            nx.bipartite.maximum_matching(nxg, top_nodes=g.left)
        ) // 2
        assert len(hopcroft_karp(g)) == nx_size
