"""The serving layer: protocol validation, coalescing, streaming, parity.

The headline claims under test:

* **One compute for N identical concurrent requests** — a gated engine
  holds the computation until every request has joined the in-flight
  entry, so the assertion (1 leader, N-1 followers, 1 cache miss) is
  deterministic, not a race the test usually wins.
* **Served numbers are offline numbers** — a point fetched over HTTP is
  bit-identical to the same :class:`EnginePoint` run locally, and a
  served bundle's digest equals a local ``registry.execute`` digest.
* **One schema everywhere** — ``GET /experiments`` returns exactly
  ``repro list --json`` / :func:`registry.listing`.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments import registry
from repro.serve import BackgroundServer, PointRequest, ServeConfig
from repro.serve.protocol import BundleRequest
from repro.errors import ServeError
from repro.yieldsim.engine import EnginePoint, SweepEngine
from repro.yieldsim.kernel import PointSpec

RUNS = 600
SEED = 77
POINT_BODY = {
    "kind": "survival", "param": 0.95, "runs": RUNS, "seed": SEED,
    "design": "DTMB(2,6)", "n": 60,
}


def http(base, path, body=None, timeout=120):
    """(status, parsed JSON body) for a GET (body=None) or POST."""
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        base + path, data=data, method="POST" if body is not None else "GET"
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(ServeConfig(port=0)) as handle:
        yield handle


@pytest.fixture(scope="module")
def base(server):
    return f"http://127.0.0.1:{server.port}"


class TestReadEndpoints:
    def test_info_and_health(self, base):
        status, info = http(base, "/")
        assert status == 200 and info["service"] == "repro-serve"
        status, health = http(base, "/health")
        assert status == 200 and health["status"] == "ok"

    def test_listing_is_the_shared_registry_schema(self, base):
        status, listing = http(base, "/experiments")
        assert status == 200
        assert listing == registry.listing()

    def test_single_experiment_descriptor(self, base):
        status, descriptor = http(base, "/experiments/fig9")
        assert status == 200
        assert descriptor == registry.get("fig9").as_dict()

    def test_unknown_experiment_404(self, base):
        status, error = http(base, "/experiments/nope")
        assert status == 404 and error["error"] == "ExperimentError"

    def test_unknown_route_404(self, base):
        status, error = http(base, "/nothing/here")
        assert status == 404 and error["error"] == "NotFound"

    def test_stats_shape(self, base):
        status, stats = http(base, "/stats")
        assert status == 200
        assert {"requests", "points", "bundles", "engine"} <= set(stats)


class TestPointRequests:
    def test_served_point_equals_offline_engine(self, base, dtmb26_chip):
        status, served = http(base, "/points", POINT_BODY)
        assert status == 200
        # n=60 primaries is a different build than the fixture's 10x10
        # footprint — reconstruct the exact chip the server built.
        from repro.designs.catalog import DTMB_2_6
        from repro.designs.interstitial import build_with_primary_count

        chip = build_with_primary_count(DTMB_2_6, 60).build()
        [offline] = SweepEngine().run_points(
            [EnginePoint(chip, PointSpec("survival", 0.95, RUNS, SEED))]
        )
        assert served["successes"] == offline.successes
        assert served["trials"] == offline.trials
        assert served["value"] == offline.value

    def test_digest_addressing_resolves_same_point(self, base):
        _, first = http(base, "/points", POINT_BODY)
        body = dict(POINT_BODY)
        del body["design"], body["n"]
        body["chip_digest"] = first["chip_digest"]
        status, second = http(base, "/points", body)
        assert status == 200
        assert second["key"] == first["key"]
        assert second["value"] == first["value"]

    def test_unseen_chip_digest_is_a_clean_400(self, base):
        body = dict(POINT_BODY)
        del body["design"], body["n"]
        body["chip_digest"] = "0" * 64
        status, error = http(base, "/points", body)
        assert status == 400 and error["error"] == "ServeError"

    def test_adaptive_point_stops_early(self, base):
        body = dict(POINT_BODY, runs=50_000, adaptive=True, target_ci=0.05)
        status, served = http(base, "/points", body)
        assert status == 200
        assert served["adaptive"] is True
        assert served["trials"] < 50_000

    def test_streamed_point_sends_ndjson_progress(self, base):
        body = dict(
            POINT_BODY, runs=20_000, seed=SEED + 1,
            adaptive=True, target_ci=0.02, stream=True,
        )
        req = urllib.request.Request(
            base + "/points", data=json.dumps(body).encode(), method="POST"
        )
        with urllib.request.urlopen(req, timeout=300) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            lines = [json.loads(l) for l in response.read().splitlines()]
        assert lines[0]["event"] == "accepted"
        assert lines[-1]["event"] == "result"
        folds = [l for l in lines if l["event"] == "fold"]
        assert folds, "adaptive points must stream fold progress"
        trials = [f["trials"] for f in folds]
        assert trials == sorted(trials)
        # The stream's final result equals the non-streamed answer.
        plain = dict(body)
        del plain["stream"]
        _, direct = http(base, "/points", plain)
        assert lines[-1]["value"] == direct["value"]
        assert lines[-1]["trials"] == direct["trials"]


class TestValidation:
    @pytest.mark.parametrize(
        "body",
        [
            {},                                                # missing fields
            dict(POINT_BODY, kind="bogus"),                    # bad regime
            dict(POINT_BODY, runs=0),                          # empty budget
            dict(POINT_BODY, runs="many"),                     # wrong type
            dict(POINT_BODY, surprise=1),                      # unknown field
            dict(POINT_BODY, design="nope"),                   # unknown design
            dict(POINT_BODY, target_ci=-1.0),                  # bad target
            dict(POINT_BODY, kind="fixed", param=3,
                 defect_model="negbin"),                       # fixed + model
        ],
    )
    def test_bad_point_requests_are_400(self, base, body):
        status, error = http(base, "/points", body)
        assert status == 400, error
        assert error["error"] in ("ServeError", "SimulationError")

    def test_request_dataclasses_reject_bad_input_eagerly(self):
        with pytest.raises(ServeError):
            PointRequest.from_dict({"param": 0.9, "runs": 100})
        with pytest.raises(ServeError):
            BundleRequest.from_dict("fig7", {"runs": True})

    def test_runs_above_server_ceiling_rejected(self):
        with BackgroundServer(ServeConfig(port=0, max_runs=1000)) as handle:
            small = f"http://127.0.0.1:{handle.port}"
            status, error = http(small, "/points", dict(POINT_BODY, runs=2000))
            assert status == 400
            assert "ceiling" in error["message"]

    def test_oversized_body_is_rejected(self, base):
        # The server rejects on Content-Length without draining the body,
        # so the client sees either the 413 response or a reset while
        # still sending — both are a rejection; the server must survive.
        try:
            status, _ = http(
                base, "/points", dict(POINT_BODY, defect_model="x" * (1 << 20))
            )
            assert status == 413
        except (urllib.error.URLError, ConnectionError):
            pass
        status, health = http(base, "/health")
        assert status == 200 and health["status"] == "ok"

    def test_non_json_body_is_400(self, base):
        req = urllib.request.Request(
            base + "/points", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=30)
        assert excinfo.value.code == 400

    def test_wrong_method_is_405(self, base):
        status, error = http(base, "/points")
        assert status == 405


class GatedEngine(SweepEngine):
    """An engine whose compute blocks until the test opens the gate —
    making "all N requests joined before anything computed" a certainty
    rather than a race."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.gate = threading.Event()
        self.compute_calls = 0

    def run_points(self, tasks, on_fold=None):
        assert self.gate.wait(timeout=60), "test never opened the gate"
        self.compute_calls += 1
        return super().run_points(tasks, on_fold=on_fold)


def _wait_until(predicate, timeout=30):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestCoalescing:
    N = 6

    def test_identical_concurrent_points_compute_once(self, tmp_path):
        engine = GatedEngine(cache_dir=str(tmp_path))
        with BackgroundServer(ServeConfig(port=0), engine=engine) as handle:
            url = f"http://127.0.0.1:{handle.port}"
            results = []

            def request():
                results.append(http(url, "/points", POINT_BODY, timeout=300))

            threads = [
                threading.Thread(target=request) for _ in range(self.N)
            ]
            for thread in threads:
                thread.start()
            # Every request must be parked on the same in-flight entry
            # before the (still gated) computation may produce a result.
            assert _wait_until(
                lambda: handle.server.points.followers == self.N - 1
            ), "requests did not coalesce onto one entry"
            engine.gate.set()
            for thread in threads:
                thread.join(timeout=300)

            statuses = [status for status, _ in results]
            payloads = [payload for _, payload in results]
            assert statuses == [200] * self.N
            # Exactly one computation happened, whichever way you count.
            assert engine.compute_calls == 1
            assert engine.cache_misses == 1
            assert engine.cache_hits == 0
            assert handle.server.points.leaders == 1
            assert handle.server.points.followers == self.N - 1
            # Everyone got the same (bit-identical) answer.
            assert len({p["value"] for p in payloads}) == 1
            assert len({p["key"] for p in payloads}) == 1
            assert sorted(p["coalesced"] for p in payloads) == (
                [False] + [True] * (self.N - 1)
            )

    def test_distinct_requests_do_not_coalesce(self, tmp_path):
        engine = GatedEngine(cache_dir=str(tmp_path))
        engine.gate.set()  # no gating needed; these must all compute
        with BackgroundServer(ServeConfig(port=0), engine=engine) as handle:
            url = f"http://127.0.0.1:{handle.port}"
            for seed in (1, 2, 3):
                status, _ = http(
                    url, "/points", dict(POINT_BODY, seed=seed), timeout=300
                )
                assert status == 200
            assert handle.server.points.leaders == 3
            assert handle.server.points.followers == 0
            assert engine.cache_misses == 3

    def test_failed_leader_propagates_to_followers(self):
        class FailingEngine(GatedEngine):
            def run_points(self, tasks, on_fold=None):
                assert self.gate.wait(timeout=60)
                raise RuntimeError("engine exploded")

        engine = FailingEngine()
        with BackgroundServer(ServeConfig(port=0), engine=engine) as handle:
            url = f"http://127.0.0.1:{handle.port}"
            results = []

            def request():
                results.append(http(url, "/points", POINT_BODY, timeout=300))

            threads = [threading.Thread(target=request) for _ in range(3)]
            for thread in threads:
                thread.start()
            assert _wait_until(lambda: handle.server.points.followers == 2)
            engine.gate.set()
            for thread in threads:
                thread.join(timeout=300)
            assert [status for status, _ in results] == [500] * 3
            for _, error in results:
                assert error["error"] == "InternalError"


class TestBundles:
    def test_served_bundle_digest_matches_local_execute(self, tmp_path):
        out_dir = tmp_path / "artifacts"
        config = ServeConfig(port=0, out_dir=str(out_dir))
        with BackgroundServer(config) as handle:
            url = f"http://127.0.0.1:{handle.port}"
            status, bundle = http(
                url, "/experiments/fig7", {"runs": 200, "seed": 5},
                timeout=600,
            )
        assert status == 200
        local = registry.execute("fig7", runs=200, seed=5)
        assert bundle["digest"] == local.provenance.digest
        assert bundle["rows"] == [list(r) for r in local.rows]
        assert bundle["report"] == local.canonical_report_text()
        # The served run was persisted through the artifact store and the
        # manifest's digest agrees with the response body.
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert (
            manifest["experiments"]["fig7"]["provenance"]["digest"]
            == bundle["digest"]
        )
        assert bundle["artifacts"]["files"]["csv"] == "fig7/fig7.csv"

    def test_bundle_validation_and_defect_model_gate(self, base):
        status, error = http(base, "/experiments/fig7", {"runs": -1})
        assert status == 400
        # table1 is deterministic and takes no defect-model knob.
        status, error = http(
            base, "/experiments/table1", {"defect_model": "negbin"}
        )
        assert status == 400 and error["error"] == "ServeError"
