"""Chaos lane for the cache transport: a hostile remote changes nothing.

The tiered cache's contract is that the remote store is *pure
acceleration*: any transport fault — refused connections, server errors,
garbage bodies, truncated uploads, saturated links — degrades to a local
miss plus a logged incident, and the numbers (and published artifacts)
stay byte-identical to a run with no remote at all.  Each test here
injects one fault family deterministically through
:class:`~repro.yieldsim.cachestore.FaultInjectingStore` (or a genuinely
dead HTTP endpoint) and asserts exactly that.

Run standalone with ``pytest -m chaos``; the suite also runs in tier 1.
"""

from __future__ import annotations

import pytest

from repro.errors import StoreError
from repro.experiments import registry
from repro.yieldsim.cachestore import (
    FaultInjectingStore,
    HTTPStore,
    MemoryStore,
    SharedFSStore,
    TieredCache,
    entry_validator,
)
from repro.yieldsim.engine import SweepEngine

pytestmark = pytest.mark.chaos

GRID = [(0.91 + 0.01 * i, 12 + i) for i in range(5)]
RUNS = 200


def flat_estimates(chip, engine=None):
    engine = engine if engine is not None else SweepEngine()
    return [
        (e.successes, e.trials)
        for e in engine.survival_estimates(chip, GRID, RUNS)
    ]


def faulty_engine(remote, **faults):
    store = FaultInjectingStore(remote, **faults)
    engine = SweepEngine(cache_store=store)
    return engine, store


class TestTransportFaultsAreInvisible:
    def test_every_get_erroring_changes_nothing(self, dtmb26_chip, tmp_path):
        baseline = flat_estimates(dtmb26_chip)
        engine, store = faulty_engine(
            SharedFSStore(str(tmp_path)), get_error_every=1
        )
        assert flat_estimates(dtmb26_chip, engine) == baseline
        assert store.injected["get_error"] == len(GRID)
        assert engine.store_stats.remote_errors == len(GRID)
        assert engine.resilience.remote_errors == len(GRID)

    def test_garbage_bodies_never_reach_the_numbers(self, dtmb26_chip, tmp_path):
        baseline = flat_estimates(dtmb26_chip)
        # Warm the remote honestly first, then poison every read.
        remote = SharedFSStore(str(tmp_path))
        flat_estimates(dtmb26_chip, SweepEngine(cache_store=remote))

        engine, store = faulty_engine(remote, get_garbage_every=1)
        assert flat_estimates(dtmb26_chip, engine) == baseline
        assert store.injected["get_garbage"] == len(GRID)
        # The validator caught every body: degraded to miss + incident,
        # nothing written back to the local tier as a point entry.
        assert engine.store_stats.remote_errors == len(GRID)
        assert engine.store_stats.remote_hits == 0
        assert engine.cache_hits == 0

    def test_truncated_uploads_fail_validation_on_readback(
        self, dtmb26_chip, tmp_path
    ):
        baseline = flat_estimates(dtmb26_chip)
        remote = SharedFSStore(str(tmp_path))
        # A cold fleet whose every upload drops mid-PUT: the shared tree
        # ends up holding transport-complete but semantically truncated
        # objects.
        cold, store = faulty_engine(remote, put_truncate_every=1)
        assert flat_estimates(dtmb26_chip, cold) == baseline
        assert store.injected["put_truncate"] == len(GRID)

        # A warm reader must not trust them: entry validation rejects the
        # payloads, counts incidents, recomputes, and agrees bit-for-bit.
        warm = SweepEngine(cache_store=remote)
        assert flat_estimates(dtmb26_chip, warm) == baseline
        assert warm.store_stats.remote_errors == len(GRID)
        assert warm.cache_hits == 0

    def test_put_errors_cost_nothing_but_uploads(self, dtmb26_chip, tmp_path):
        baseline = flat_estimates(dtmb26_chip)
        engine, store = faulty_engine(
            SharedFSStore(str(tmp_path)), put_error_every=1
        )
        assert flat_estimates(dtmb26_chip, engine) == baseline
        assert store.injected["put_error"] == len(GRID)
        assert engine.store_stats.uploads == 0
        assert engine.store_stats.remote_errors == len(GRID)

    def test_slow_remote_is_only_slow(self, dtmb26_chip, tmp_path):
        baseline = flat_estimates(dtmb26_chip)
        remote = SharedFSStore(str(tmp_path))
        flat_estimates(dtmb26_chip, SweepEngine(cache_store=remote))

        engine, store = faulty_engine(
            remote, get_slow_every=1, slow_seconds=0.001
        )
        assert flat_estimates(dtmb26_chip, engine) == baseline
        assert store.injected["get_slow"] == len(GRID)
        # Slowness is not an error: every read still served the object.
        assert engine.store_stats.remote_errors == 0
        assert engine.store_stats.remote_hits == len(GRID)

    def test_dead_http_remote_degrades_to_local_compute(self, dtmb26_chip):
        baseline = flat_estimates(dtmb26_chip)
        # Port 9 (discard) refuses connections: a genuinely dead remote.
        engine = SweepEngine(
            cache_store=HTTPStore("http://127.0.0.1:9", timeout=0.2)
        )
        assert flat_estimates(dtmb26_chip, engine) == baseline
        assert engine.store_stats.remote_errors > 0
        assert engine.store_stats.remote_hits == 0

    def test_mixed_fault_storm(self, dtmb26_chip, tmp_path):
        """Errors, garbage and truncation interleaved on one remote."""
        baseline = flat_estimates(dtmb26_chip)
        engine, store = faulty_engine(
            SharedFSStore(str(tmp_path)),
            get_error_every=2,
            get_garbage_every=3,
            put_truncate_every=2,
        )
        assert flat_estimates(dtmb26_chip, engine) == baseline
        assert sum(store.injected.values()) > 0


class TestFaultInjectingStore:
    def test_cadence_is_deterministic(self):
        inner = MemoryStore()
        store = FaultInjectingStore(inner, get_error_every=3)
        key = "ab" * 16
        inner.put(key, b"payload")
        outcomes = []
        for _ in range(6):
            try:
                outcomes.append(store.get(key) is not None)
            except StoreError:
                outcomes.append("error")
        assert outcomes == [True, True, "error", True, True, "error"]
        assert store.injected["get_error"] == 2

    def test_truncation_halves_the_payload(self):
        inner = MemoryStore()
        store = FaultInjectingStore(inner, put_truncate_every=1)
        key = "cd" * 16
        store.put(key, b"0123456789")
        assert inner.get(key) == b"01234"


class TestArtifactsByteIdentical:
    def test_registry_result_digest_unchanged_by_faulty_remote(self, tmp_path):
        clean = registry.execute(
            "fig9", runs=60, seed=7, engine=SweepEngine()
        )
        engine, store = faulty_engine(
            SharedFSStore(str(tmp_path)),
            get_error_every=2,
            get_garbage_every=3,
            put_error_every=2,
        )
        chaotic = registry.execute("fig9", runs=60, seed=7, engine=engine)

        assert chaotic.report == clean.report
        assert chaotic.rows == clean.rows
        assert chaotic.provenance.digest == clean.provenance.digest
        # The incidents are visible in provenance, not in the numbers.
        assert chaotic.provenance.cache is not None
        assert chaotic.provenance.cache.get("remote_errors", 0) > 0

    def test_incident_log_warns_but_never_raises(self, dtmb26_chip, caplog):
        engine = SweepEngine(
            cache_store=HTTPStore("http://127.0.0.1:9", timeout=0.2)
        )
        import logging

        with caplog.at_level(logging.WARNING, logger="repro.cachestore"):
            flat_estimates(dtmb26_chip, engine)
        assert any(
            "degraded to miss" in rec.getMessage() for rec in caplog.records
        )
