"""Statistical tests for adaptive sequential budgets.

The claims under test, from strongest to softest:

* the :class:`~repro.yieldsim.stats.StopRule` honors its min/max bounds
  and its batch plan covers exactly the capped budget;
* on synthetic Bernoulli streams, a stopped stream's achieved Wilson
  half-width meets the target (or the stream spent its whole cap);
* adaptive execution at max budget is *exactly* the fixed-budget batched
  result — the stopping logic can end a point early but never perturb a
  number it reports;
* effective budgets are deterministic given the seed, whatever ``jobs``;
* post-stopping coverage: the adaptive estimator still brackets the known
  analytical yield on the degree-1 flower design.

Every stream here is seeded, so the "statistical" assertions are exact
reruns, not flaky tail events — the CI lane (``pytest -m statistical``)
runs them at the same fixed seeds as the tier-1 pass.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.designs.interstitial import build_flower_chip
from repro.errors import SimulationError
from repro.yieldsim.analytical import dtmb16_yield
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.stats import (
    StopRule,
    wilson_half_width,
    wilson_interval,
)

pytestmark = pytest.mark.statistical


def sequential_bernoulli(rule: StopRule, p: float, seed: int, budget: int):
    """Run the rule against a synthetic Bernoulli(p) stream.

    Returns ``(successes, trials)`` at the stopping point — the reference
    semantics the engine's batched path must follow: whole batches, folded
    in order, rule checked after each fold.
    """
    rng = np.random.default_rng(seed)
    successes = 0
    trials = 0
    for size in rule.plan(budget):
        successes += int((rng.random(size) < p).sum())
        trials += size
        if rule.should_stop(successes, trials):
            break
    return successes, trials


class TestStopRuleContract:
    def test_validation(self):
        with pytest.raises(SimulationError):
            StopRule(target_half_width=0.0)
        with pytest.raises(SimulationError):
            StopRule(target_half_width=-0.01)
        with pytest.raises(SimulationError):
            StopRule(target_half_width=0.01, min_runs=0)
        with pytest.raises(SimulationError):
            StopRule(target_half_width=0.01, batch_runs=0)
        with pytest.raises(SimulationError):
            StopRule(target_half_width=0.01, min_runs=500, max_runs=100)
        with pytest.raises(SimulationError):
            StopRule(target_half_width=0.01, z=0.0)

    def test_plan_covers_exactly_the_cap(self):
        rule = StopRule(target_half_width=0.01, min_runs=10, batch_runs=300)
        assert sum(rule.plan(1000)) == 1000
        assert rule.plan(1000) == (300, 300, 300, 100)
        assert rule.plan(300) == (300,)
        assert rule.plan(7) == (7,)
        capped = StopRule(
            target_half_width=0.01, min_runs=10, max_runs=500, batch_runs=200
        )
        assert sum(capped.plan(10_000)) == 500

    def test_cap_respects_budget_and_max_runs(self):
        rule = StopRule(target_half_width=0.01, min_runs=10, max_runs=800)
        assert rule.cap(500) == 500
        assert rule.cap(5000) == 800
        unbounded = StopRule(target_half_width=0.01, min_runs=10)
        assert unbounded.cap(5000) == 5000

    def test_digest_distinguishes_rules(self):
        a = StopRule(target_half_width=0.01)
        b = StopRule(target_half_width=0.02)
        c = StopRule(target_half_width=0.01, batch_runs=500)
        assert a.digest() == StopRule(target_half_width=0.01).digest()
        assert len({a.digest(), b.digest(), c.digest()}) == 3

    def test_should_stop_blocked_below_min_runs(self):
        rule = StopRule(target_half_width=0.5, min_runs=100, batch_runs=10)
        # A huge target is met immediately — but not before min_runs.
        assert not rule.should_stop(10, 10)
        assert rule.should_stop(100, 100)


class TestBernoulliStreams:
    """The rule against raw synthetic Bernoulli streams (no chips)."""

    RULE = StopRule(
        target_half_width=0.02, min_runs=200, batch_runs=200
    )
    BUDGET = 20_000

    @pytest.mark.parametrize("p", [0.5, 0.8, 0.95, 0.99, 1.0])
    def test_achieved_half_width_meets_target(self, p):
        for seed in range(20):
            successes, trials = sequential_bernoulli(
                self.RULE, p, seed, self.BUDGET
            )
            achieved = wilson_half_width(successes, trials)
            assert achieved <= self.RULE.target_half_width or trials == self.BUDGET, (
                f"p={p} seed={seed}: stopped at {trials} with ±{achieved:.4f}"
            )

    @pytest.mark.parametrize("p", [0.3, 0.9, 0.999])
    def test_min_and_max_bounds_honored(self, p):
        rule = StopRule(
            target_half_width=0.5, min_runs=400, max_runs=600, batch_runs=100
        )
        for seed in range(10):
            _, trials = sequential_bernoulli(rule, p, seed, self.BUDGET)
            # Target ±0.5 is trivially met, so the floor binds exactly...
            assert trials == 400
        tight = StopRule(
            target_half_width=1e-9, min_runs=400, max_runs=600, batch_runs=100
        )
        for seed in range(10):
            _, trials = sequential_bernoulli(tight, p, seed, self.BUDGET)
            # ...and an unreachable target runs to the max-runs ceiling.
            assert trials == 600

    def test_easy_streams_stop_early_hard_streams_spend_more(self):
        easy = [
            sequential_bernoulli(self.RULE, 0.999, seed, self.BUDGET)[1]
            for seed in range(10)
        ]
        hard = [
            sequential_bernoulli(self.RULE, 0.5, seed, self.BUDGET)[1]
            for seed in range(10)
        ]
        assert max(easy) < min(hard)
        assert max(easy) <= 600  # near-degenerate streams stop within batches

    def test_stream_estimate_stays_calibrated(self):
        """Coverage after optional stopping: the 95% interval still brackets
        the true p in (at least) 18 of 20 fixed-seed streams."""
        hits = 0
        for seed in range(20):
            successes, trials = sequential_bernoulli(
                self.RULE, 0.9, seed, self.BUDGET
            )
            lo, hi = wilson_interval(successes, trials)
            hits += lo <= 0.9 <= hi
        assert hits >= 18


class TestAdaptiveEngine:
    """The engine's batched path against the reference semantics."""

    def test_adaptive_at_max_budget_equals_flat_batched(self, dtmb26_chip):
        """A rule that never fires spends the whole plan — bit-identical to
        the fixed-budget batched (sharded) run of the same point."""
        never = StopRule(target_half_width=1e-12, min_runs=100, batch_runs=400)
        adaptive = SweepEngine().survival_estimates(
            dtmb26_chip, [(0.93, 7), (0.97, 8)], 2000, stop=never
        )
        flat = SweepEngine(shard_runs=400).survival_estimates(
            dtmb26_chip, [(0.93, 7), (0.97, 8)], 2000
        )
        assert [(e.successes, e.trials) for e in adaptive] == [
            (e.successes, e.trials) for e in flat
        ]
        assert all(e.trials == 2000 for e in adaptive)

    def test_adaptive_deterministic_given_seed(self, dtmb26_chip):
        rule = StopRule(target_half_width=0.02, min_runs=200, batch_runs=200)
        runs = [
            SweepEngine(jobs=jobs).survival_estimates(
                dtmb26_chip, [(0.995, 11)], 20_000, stop=rule
            )[0]
            for jobs in (1, 1, 3)
        ]
        assert len({(e.successes, e.trials) for e in runs}) == 1
        assert runs[0].trials < 20_000  # and it genuinely stopped early

    def test_effective_budget_within_bounds(self, dtmb26_chip):
        rule = StopRule(
            target_half_width=0.05, min_runs=300, max_runs=900, batch_runs=300
        )
        estimates = SweepEngine().survival_estimates(
            dtmb26_chip, [(0.999, 3), (0.5, 4)], 5000, stop=rule
        )
        for estimate in estimates:
            assert 300 <= estimate.trials <= 900

    def test_each_point_meets_target_or_spends_cap(self, dtmb26_chip):
        rule = StopRule(target_half_width=0.03, min_runs=200, batch_runs=200)
        budget = 4000
        points = [(p, 50 + i) for i, p in enumerate((0.90, 0.95, 0.99, 1.0))]
        estimates = SweepEngine().survival_estimates(
            dtmb26_chip, points, budget, stop=rule
        )
        for estimate in estimates:
            achieved = wilson_half_width(estimate.successes, estimate.trials)
            assert achieved <= rule.target_half_width or estimate.trials == budget

    def test_adaptive_estimator_brackets_analytical_yield(self):
        """Post-stopping coverage on the flower design, where the exact
        yield is known analytically: 9 of 10 fixed-seed adaptive estimates
        must bracket it."""
        chip = build_flower_chip(60)
        truth = dtmb16_yield(0.95, 60)
        rule = StopRule(target_half_width=0.015, min_runs=500, batch_runs=500)
        engine = SweepEngine()
        estimates = engine.survival_estimates(
            chip, [(0.95, 1000 + i) for i in range(10)], 20_000, stop=rule
        )
        hits = sum(est.consistent_with(truth) for est in estimates)
        assert hits >= 9
        assert all(est.trials < 20_000 for est in estimates)  # all stopped early

    def test_point_log_records_requested_vs_effective(self, dtmb26_chip):
        rule = StopRule(target_half_width=0.02, min_runs=200, batch_runs=200)
        engine = SweepEngine()
        engine.survival_estimates(dtmb26_chip, [(0.999, 5)], 10_000, stop=rule)
        engine.survival_estimates(dtmb26_chip, [(0.93, 6)], 500)
        adaptive_rec, flat_rec = engine.point_log
        assert adaptive_rec.requested == 10_000
        assert adaptive_rec.effective < 10_000
        assert adaptive_rec.adaptive
        assert (flat_rec.requested, flat_rec.effective) == (500, 500)
        assert not flat_rec.adaptive
        assert engine.runs_requested == 10_500
        assert engine.runs_effective == adaptive_rec.effective + 500
