"""Tests for the DTMB design catalog, builders and structural verification."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.designs.boundary import ModulePlacement, SpareRowArray
from repro.designs.catalog import (
    ALL_DESIGNS,
    DTMB_1_6,
    DTMB_2_6,
    DTMB_2_6_ALT,
    DTMB_3_6,
    DTMB_4_4,
    TABLE1_DESIGNS,
    design_by_name,
    table1_rows,
)
from repro.designs.interstitial import (
    build_chip,
    build_flower_chip,
    build_with_primary_count,
)
from repro.designs.spec import DesignSpec
from repro.designs.verify import inspect_structure, verify_design
from repro.errors import DesignError
from repro.geometry.hex import Hex
from repro.geometry.hexgrid import RectRegion
from repro.geometry.lattice import CongruenceLattice


class TestCatalog:
    def test_table1_redundancy_ratios(self):
        rows = dict(table1_rows())
        assert rows["DTMB(1,6)"] == Fraction(1, 6)
        assert rows["DTMB(2,6)"] == Fraction(1, 3)
        assert rows["DTMB(3,6)"] == Fraction(1, 2)
        assert rows["DTMB(4,4)"] == Fraction(1, 1)

    @pytest.mark.parametrize("spec", ALL_DESIGNS, ids=lambda s: s.name)
    def test_density_consistent_with_sp(self, spec):
        spec.consistency_check()

    def test_lookup(self):
        assert design_by_name("DTMB(2,6)") is DTMB_2_6
        with pytest.raises(DesignError):
            design_by_name("DTMB(9,9)")

    def test_alt_layout_differs_from_primary(self):
        # Same (s, p), different spare pattern.
        a = DTMB_2_6.spare_lattice
        b = DTMB_2_6_ALT.spare_lattice
        window = [Hex(q, r) for q in range(4) for r in range(4)]
        assert [h in a for h in window] != [h in b for h in window]


class TestSpec:
    def test_invalid_parameters_rejected(self):
        lat = CongruenceLattice(1, 0, 2)
        with pytest.raises(DesignError):
            DesignSpec("bad", s=0, p=4, spare_lattice=lat)
        with pytest.raises(DesignError):
            DesignSpec("bad", s=1, p=7, spare_lattice=lat)

    def test_inconsistent_density_detected(self):
        # Claim (1, 6) with a density-1/2 lattice: RR mismatch.
        wrong = DesignSpec(
            "wrong", s=1, p=6, spare_lattice=CongruenceLattice(1, 0, 2)
        )
        with pytest.raises(DesignError):
            wrong.consistency_check()


class TestStructure:
    @pytest.mark.parametrize("spec", ALL_DESIGNS, ids=lambda s: s.name)
    def test_definition1_holds(self, spec):
        chip = build_chip(spec, RectRegion(14, 14))
        report = verify_design(spec, chip)
        assert report.uniform_s() == spec.s
        assert report.uniform_p() == spec.p

    @pytest.mark.parametrize("spec", ALL_DESIGNS, ids=lambda s: s.name)
    def test_coset_invariance(self, spec):
        # Translated patterns are equally valid instances of the design.
        chip = build_chip(spec, RectRegion(14, 14), offset=Hex(1, 1))
        verify_design(spec, chip)

    @pytest.mark.parametrize("spec", TABLE1_DESIGNS, ids=lambda s: s.name)
    def test_finite_rr_approaches_asymptote(self, spec):
        small = build_chip(spec, RectRegion(8, 8)).redundancy_ratio()
        large = build_chip(spec, RectRegion(48, 48)).redundancy_ratio()
        target = float(spec.redundancy_ratio)
        assert abs(large - target) <= abs(small - target) + 1e-9
        assert large == pytest.approx(target, abs=0.02)

    def test_too_small_array_rejected(self):
        chip = build_chip(DTMB_1_6, RectRegion(3, 3))
        with pytest.raises(DesignError):
            verify_design(DTMB_1_6, chip)

    def test_inspect_structure_histograms(self):
        chip = build_chip(DTMB_4_4, RectRegion(10, 10))
        report = inspect_structure(chip)
        assert set(report.interior_primary_spare_degrees) == {4}
        assert set(report.interior_spare_primary_degrees) == {4}
        assert report.primary_count + report.spare_count == len(chip)


class TestPrimaryCountFits:
    @pytest.mark.parametrize("spec", TABLE1_DESIGNS, ids=lambda s: s.name)
    @pytest.mark.parametrize("n", [60, 100, 240])
    def test_exact_primary_count(self, spec, n):
        fit = build_with_primary_count(spec, n)
        chip = fit.build()
        assert chip.primary_count == n
        assert chip.spare_count == fit.spare_count > 0

    def test_deterministic(self):
        a = build_with_primary_count(DTMB_2_6, 100)
        b = build_with_primary_count(DTMB_2_6, 100)
        assert (a.cols, a.rows, a.offset) == (b.cols, b.rows, b.offset)

    def test_invalid_count_rejected(self):
        with pytest.raises(DesignError):
            build_with_primary_count(DTMB_2_6, 0)

    def test_impossible_count_raises(self):
        with pytest.raises(DesignError):
            build_with_primary_count(DTMB_2_6, 61, max_dim=4)


class TestFlowerChip:
    def test_counts(self):
        chip = build_flower_chip(60)
        assert chip.primary_count == 60
        assert chip.spare_count == 10

    def test_every_primary_has_exactly_one_spare(self):
        chip = build_flower_chip(36)
        for cell in chip.primaries():
            assert len(chip.adjacent_spares(cell.coord)) == 1

    def test_spares_serve_six_primaries(self):
        chip = build_flower_chip(36)
        for cell in chip.spares():
            assert len(chip.adjacent_primaries(cell.coord)) == 6

    def test_requires_multiple_of_six(self):
        with pytest.raises(DesignError):
            build_flower_chip(10)
        with pytest.raises(DesignError):
            build_flower_chip(0)


class TestSpareRowArray:
    def test_uniform_construction(self):
        array = SpareRowArray.uniform(6, [2, 2, 2])
        assert array.spare_row == 6
        assert array.rows == 7
        assert [m.name for m in array.modules] == [
            "Module 3",
            "Module 2",
            "Module 1",
        ]

    def test_modules_must_tile(self):
        with pytest.raises(DesignError):
            SpareRowArray(4, [ModulePlacement("A", 0, 2), ModulePlacement("B", 3, 4)])

    def test_module_of_row(self):
        array = SpareRowArray.uniform(4, [2, 3])
        assert array.module_of_row(0).name == "Module 2"
        assert array.module_of_row(4).name == "Module 1"
        with pytest.raises(DesignError):
            array.module_of_row(5)  # spare row belongs to no module

    def test_module_cells(self):
        array = SpareRowArray.uniform(3, [1, 1])
        first = array.modules[0]
        assert len(array.module_cells(first)) == 3

    def test_distance_to_spare_row(self):
        array = SpareRowArray.uniform(4, [2, 2])
        assert array.distance_to_spare_row(0) == 4
        assert array.distance_to_spare_row(4) == 0

    def test_empty_module_rejected(self):
        with pytest.raises(DesignError):
            ModulePlacement("empty", 2, 2)
