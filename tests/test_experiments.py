"""Tests for the experiment drivers: every table/figure regenerates and its
paper-shape assertions hold (with reduced Monte-Carlo budgets for speed;
the benchmarks run the full budgets)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablation_defects,
    ablation_matching,
    fig2,
    fig7,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    figs3to6,
    table1,
)

RUNS = 1200  # reduced from the paper's 10 000 for test speed


class TestTable1:
    def test_asymptotic_ratios_match_paper(self):
        result = table1.run()
        by_name = {row[0]: row for row in result.rows}
        assert by_name["DTMB(1,6)"][1] == "0.1667"
        assert by_name["DTMB(2,6)"][1] == "0.3333"
        assert by_name["DTMB(3,6)"][1] == "0.5000"
        assert by_name["DTMB(4,4)"][1] == "1.0000"

    def test_finite_arrays_converge(self):
        result = table1.run(sizes=[8, 64])
        for row in result.rows:
            target = float(row[1])
            small, large = float(row[3]), float(row[4])
            assert abs(large - target) <= abs(small - target) + 1e-9

    def test_report_renders(self):
        assert "DTMB(4,4)" in table1.run().format_report()


class TestFig2:
    def test_interior_fault_costs_more(self):
        result = fig2.run()
        shifted_cells = [int(row[4]) for row in result.rows]
        assert shifted_cells == sorted(shifted_cells, reverse=True)
        assert shifted_cells[0] > shifted_cells[-1]

    def test_collateral_modules(self):
        result = fig2.run()
        assert result.max_collateral() == 2  # Modules 2 and 1 dragged in

    def test_interstitial_constant_cost(self):
        result = fig2.run()
        assert all(int(row[5]) == 1 for row in result.rows)
        assert all(int(row[6]) == 0 for row in result.rows)


class TestFigs3to6:
    def test_all_designs_verify(self):
        result = figs3to6.run()
        assert len(result.rows) == 5  # four designs + DTMB(2,6) alternative
        for row in result.rows:
            assert "DTMB" in str(row[0])

    def test_renderings_present(self):
        result = figs3to6.run()
        for name, art in result.renderings.items():
            assert art.count("+") > 0, name  # spares visible

    def test_report_with_layouts(self):
        text = figs3to6.run().format_report(with_layouts=True)
        assert "DTMB(3,6)" in text


class TestFig7:
    def test_redundancy_always_helps(self):
        result = fig7.run()
        for n in result.ns:
            for p, y in result.series[f"DTMB(1,6) n={n}"]:
                baseline = dict(result.series[f"no spares n={n}"])[p]
                assert y >= baseline

    def test_montecarlo_validates_cluster_model(self):
        result = fig7.run(ns=[60], runs=4000)
        from repro.yieldsim.analytical import dtmb16_yield

        for p, mc in result.montecarlo_check.items():
            assert mc == pytest.approx(dtmb16_yield(p, 60), abs=0.025)

    def test_chart_and_report_render(self):
        result = fig7.run(ns=[60, 120])
        assert "0.90" in result.format_report()
        assert "Figure 7" in result.format_chart()


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9.run(ns=[60, 120], ps=[0.92, 0.96, 1.0], runs=RUNS)

    def test_redundancy_ordering(self, result):
        # More spares per primary -> higher yield, at every point.
        for n in (60, 120):
            for p in (0.92, 0.96):
                y26 = result.yield_at("DTMB(2,6)", n, p)
                y36 = result.yield_at("DTMB(3,6)", n, p)
                y44 = result.yield_at("DTMB(4,4)", n, p)
                assert y26 <= y36 + 0.03
                assert y36 <= y44 + 0.03

    def test_larger_arrays_yield_less(self, result):
        for design in ("DTMB(2,6)", "DTMB(3,6)"):
            assert result.yield_at(design, 240 if False else 120, 0.92) <= (
                result.yield_at(design, 60, 0.92) + 0.03
            )

    def test_perfect_cells_perfect_yield(self, result):
        for design in ("DTMB(2,6)", "DTMB(3,6)", "DTMB(4,4)"):
            assert result.yield_at(design, 60, 1.0) == 1.0

    def test_chart_renders(self, result):
        assert "Figure 9" in result.format_chart(60)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10.run(ps=[0.90, 0.93, 0.96, 0.99], runs=RUNS)

    def test_heavy_redundancy_wins_at_low_p(self, result):
        assert result.best_design_at(0.90) in ("DTMB(3,6)", "DTMB(4,4)")

    def test_light_redundancy_wins_at_high_p(self, result):
        assert result.best_design_at(0.99) in ("DTMB(1,6)", "DTMB(2,6)")

    def test_crossover_exists(self, result):
        assert len(result.crossovers()) >= 1

    def test_effective_yield_below_yield(self, result):
        for point in result.points:
            assert point.effective <= point.yield_value


class TestFig11:
    def test_paper_headline_number(self):
        result = fig11.run()
        assert result.yield_at(0.99) == pytest.approx(0.3378, abs=5e-4)

    def test_curve_monotone(self):
        result = fig11.run()
        assert list(result.yields) == sorted(result.yields)

    def test_cells_count(self):
        assert fig11.run().cells == 108


class TestFig12:
    def test_ten_faults_repaired(self):
        result = fig12.run(seed=2005, run_assay=False)
        assert len(result.faults) == 10
        assert result.repaired

    def test_assay_runs_on_repaired_chip(self):
        result = fig12.run(seed=2005, run_assay=True)
        assert result.assay_result is not None
        assert result.assay_result.relative_error < 0.02

    def test_rendering_shows_repairs(self):
        result = fig12.run(seed=2005, run_assay=False)
        if result.plan.spares_used:
            assert "#" in result.rendering
            assert "R" in result.rendering

    def test_report_renders(self):
        assert "repair complete" in fig12.run(run_assay=False).format_report()


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13.run(ms=[5, 20, 35, 50], runs=RUNS)

    def test_yield_decreases_with_faults(self, result):
        ys = [result.yield_at(m) for m in (5, 20, 35, 50)]
        assert ys == sorted(ys, reverse=True)

    def test_plateau_shape(self, result):
        # Paper: >= 0.90 through m = 35.  Our layout reads slightly lower
        # at 35 (see EXPERIMENTS.md); assert the qualitative plateau: high
        # yield at 20 faults, well above half at 35, collapsing by 50.
        assert result.yield_at(5) > 0.99
        assert result.yield_at(20) > 0.90
        assert result.yield_at(35) > 0.75
        assert result.yield_at(50) < result.yield_at(20)

    def test_chart_renders(self, result):
        assert "Figure 13" in result.format_chart()


class TestAblations:
    def test_matching_ablation(self):
        result = ablation_matching.run(n=100, p=0.93, runs=250)
        assert result.kuhn_hk_mismatches == 0
        assert result.repaired["greedy"] <= result.repaired["hopcroft-karp"]
        assert result.disagreements >= 0
        assert "greedy" in result.format_report()

    def test_defect_model_ablation(self):
        result = ablation_defects.run(
            n=100, expected_faults=(3.0, 6.0), runs=250
        )
        gaps = result.gaps()
        # Clustered defects must hurt at least as much as independent ones.
        assert all(g >= -0.05 for g in gaps)
