"""CI observability driver — not a pytest module.

Proves the telemetry layer is out-of-band at full-pipeline scale:

1. Reference: ``repro fig9 --adaptive`` with no telemetry at all.
2. Traced:    the identical command with a span trace, JSON event
   logging at DEBUG, and an NDJSON event-log file armed.  Every
   artifact file except ``manifest.json`` (the designated carrier of
   volatile telemetry) must be byte-identical to the reference.
3. The trace must validate against the Chrome trace-event schema, and
   its point spans must reconcile with the manifest: one span per
   sweep point, with the spans' effective Monte-Carlo runs summing to
   the budget's ``mc_runs_effective``.
4. Every line of the event-log file must validate against the NDJSON
   event schema and come from a ``repro.*`` logger.
5. Reference vs traced ``repro all``: the full pipeline, every
   experiment, byte-identical artifacts (minus ``manifest.json`` and
   the intrinsically timing-valued ``ablation-matching``) with
   tracing + JSON logging armed.

Exits non-zero on any mismatch.  Run as::

    PYTHONPATH=src python tests/obs_smoke.py

``REPRO_SMOKE_RUNS`` shrinks the budget for a quick local pass.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs.events import validate_event_line  # noqa: E402
from repro.obs.trace import validate_trace  # noqa: E402

RUNS = os.environ.get("REPRO_SMOKE_RUNS", "50")

#: Timing-valued by nature: its artifacts legitimately differ run to run.
TIMING_VALUED = {"ablation-matching"}


def run(*argv: str) -> None:
    subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        check=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def manifest(out: pathlib.Path) -> dict:
    return json.loads((out / "manifest.json").read_text())


def stable_files(out: pathlib.Path) -> list:
    return sorted(
        p.relative_to(out)
        for p in out.rglob("*")
        if p.is_file()
        and p.name != "manifest.json"
        and p.relative_to(out).parts[0] not in TIMING_VALUED
    )


def assert_bundles_identical(ref: pathlib.Path, other: pathlib.Path,
                             label: str) -> None:
    ref_files = stable_files(ref)
    assert ref_files, "reference run produced no artifacts"
    assert stable_files(other) == ref_files, f"{label}: file sets differ"
    mismatched = [
        str(rel)
        for rel in ref_files
        if (other / rel).read_bytes() != (ref / rel).read_bytes()
    ]
    assert not mismatched, f"{label}: bytes differ:\n  " + "\n  ".join(
        mismatched
    )
    print(f"{label}: {len(ref_files)} artifact files byte-identical")


def check_trace(trace_path: pathlib.Path, out: pathlib.Path) -> None:
    """Schema-validate the trace and reconcile it with the manifest."""
    events = validate_trace(json.loads(trace_path.read_text()))
    assert events, "trace is empty"
    points = [e for e in events if e["name"] == "point"]
    budget = manifest(out)["experiments"]["fig9"]["provenance"]["budget"]
    assert len(points) > 0, "trace has no point spans"
    spent = sum(e["args"]["effective"] for e in points)
    assert spent == budget["mc_runs_effective"], (
        f"trace point spans account for {spent} Monte-Carlo runs, "
        f"manifest says {budget['mc_runs_effective']}"
    )
    for event in points:
        args = event["args"]
        assert args["effective"] <= args["requested"], args
    print(
        f"trace OK: {len(events)} events, {len(points)} point spans, "
        f"{spent} effective runs reconciled with the manifest"
    )


def check_event_log(log_path: pathlib.Path) -> None:
    lines = [
        line for line in log_path.read_text().splitlines() if line.strip()
    ]
    assert lines, "event log is empty"
    events = [validate_event_line(line) for line in lines]
    named = sorted({e["event"] for e in events if e.get("event")})
    print(f"event log OK: {len(events)} NDJSON lines, events {named}")


def main() -> int:
    base = pathlib.Path(tempfile.mkdtemp(prefix="repro-obs-"))
    out_ref, out_traced = base / "fig9-ref", base / "fig9-traced"
    trace_path = base / "fig9.trace.json"
    log_path = base / "fig9.events.ndjson"

    # Adaptive stopping exercises the most telemetry surface per run:
    # early-stopped points, per-point effective budgets, funnel phases.
    fig9 = ("fig9", "--runs", RUNS, "--adaptive")
    run(*fig9, "--out", str(out_ref))
    run(
        *fig9, "--out", str(out_traced),
        "--trace", str(trace_path),
        "--log-level", "debug", "--log-json", "--log-file", str(log_path),
    )

    assert_bundles_identical(out_ref, out_traced, "fig9 traced vs reference")
    check_trace(trace_path, out_traced)
    check_event_log(log_path)

    # Full pipeline: telemetry armed across every experiment.
    all_ref, all_traced = base / "all-ref", base / "all-traced"
    all_trace = base / "all.trace.json"
    run("all", "--runs", RUNS, "--out", str(all_ref))
    run(
        "all", "--runs", RUNS, "--out", str(all_traced),
        "--trace", str(all_trace), "--log-json",
    )
    assert_bundles_identical(all_ref, all_traced, "all traced vs reference")
    events = validate_trace(json.loads(all_trace.read_text()))
    experiments = len(manifest(all_traced)["experiments"])
    print(f"all trace OK: {len(events)} events across {experiments} experiments")

    print("obs smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
