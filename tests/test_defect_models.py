"""Tests for the pluggable spatial defect-model subsystem.

Covers the satellite checklist of the defect-model PR: per-model
distribution sanity (mean kill rate, cluster size), digest discipline
(params change -> digest changes; distinct models never share a cache
key at equal severity), bit-identity of the ``IIDBernoulli`` path with
the pre-model engine stream, the ``ClusteredInjector`` -> ``SpotDefects``
delegation, ``SeedSequence`` seed normalization, CRN nesting, and the
scenario-pack experiments' defect-model provenance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FaultModelError, SimulationError
from repro.experiments import registry
from repro.faults.injection import ClusteredInjector, make_rng
from repro.yieldsim.defects import (
    DefectModel,
    FixedCount,
    IIDBernoulli,
    NegativeBinomialClustered,
    RadialGradient,
    SpotDefects,
    family_from_spec,
    geometry_for,
)
from repro.yieldsim.engine import EnginePoint, SweepEngine
from repro.yieldsim.kernel import (
    PointSpec,
    RepairStructure,
    count_repairable,
    model_successes,
    point_model,
    survival_batch_sizes,
    survival_successes,
)
from repro.yieldsim.sweeps import defect_model_sweep, survival_sweep

ALL_MODELS = (
    IIDBernoulli(0.95),
    FixedCount(6),
    SpotDefects(0.004, radius=1),
    NegativeBinomialClustered(0.95, alpha=1.5),
    RadialGradient(0.98, 0.90),
)


class TestGeometry:
    def test_ball_matches_injector_footprint(self, dtmb26_chip):
        """Radius-r balls equal the BFS spot the old injector killed."""
        geometry = geometry_for(dtmb26_chip)
        coords = dtmb26_chip.coords
        idx, mask = geometry.ball(1)
        for c in (0, 17, len(coords) - 1):
            got = {coords[i] for i in idx[c][mask[c]]}
            want = {coords[c]} | set(dtmb26_chip.neighbors(coords[c]))
            assert got == want

    def test_ball_radius_zero_is_self(self, dtmb26_chip):
        geometry = geometry_for(dtmb26_chip)
        idx, mask = geometry.ball(0)
        assert (mask.sum(axis=1) == 1).all()
        assert (idx[:, 0] == np.arange(geometry.n_cells)).all()

    def test_geometry_cached_per_chip(self, dtmb26_chip):
        assert geometry_for(dtmb26_chip) is geometry_for(dtmb26_chip)

    def test_radial_t_spans_unit_interval(self, dtmb26_chip):
        t = geometry_for(dtmb26_chip).radial_t
        assert t.min() >= 0.0 and t.max() == pytest.approx(1.0)

    def test_structure_geometry_is_lazy_and_cached(self, dtmb26_chip):
        struct = RepairStructure(dtmb26_chip)
        assert struct._geometry is None
        assert struct.geometry is struct.geometry


class TestProtocol:
    def test_all_models_satisfy_protocol(self):
        for model in ALL_MODELS:
            assert isinstance(model, DefectModel)
            assert isinstance(model.severity, float)
            assert isinstance(model.params(), dict)
            assert len(model.digest()) == 16

    def test_digest_changes_when_params_change(self):
        assert IIDBernoulli(0.95).digest() != IIDBernoulli(0.96).digest()
        assert FixedCount(5).digest() != FixedCount(6).digest()
        assert (
            SpotDefects(0.004, radius=1).digest()
            != SpotDefects(0.004, radius=2).digest()
        )
        assert (
            SpotDefects(0.004, radius=1).digest()
            != SpotDefects(0.004, radius=1, rate_cap=0.01).digest()
        )
        assert (
            NegativeBinomialClustered(0.95, alpha=1.0).digest()
            != NegativeBinomialClustered(0.95, alpha=2.0).digest()
        )
        assert (
            RadialGradient(0.98, 0.90).digest()
            != RadialGradient(0.98, 0.90, power=2.0).digest()
        )

    def test_distinct_models_distinct_digests_at_equal_severity(self):
        digests = {
            model.name: model.digest()
            for model in (
                IIDBernoulli(0.95),
                NegativeBinomialClustered(0.95, alpha=1.5),
                RadialGradient(0.95, 0.95),
            )
        }
        assert len(set(digests.values())) == len(digests)

    def test_parameter_validation(self):
        with pytest.raises(FaultModelError):
            IIDBernoulli(1.5)
        with pytest.raises(FaultModelError):
            FixedCount(-1)
        with pytest.raises(FaultModelError):
            SpotDefects(-0.1)
        with pytest.raises(FaultModelError):
            SpotDefects(0.5, rate_cap=0.1)  # cap below rate
        with pytest.raises(FaultModelError):
            NegativeBinomialClustered(0.9, alpha=0.0)
        with pytest.raises(FaultModelError):
            RadialGradient(1.2, 0.9)


class TestDistributions:
    """Fixed-seed sanity checks on each model's sampling distribution."""

    RUNS = 4000

    def test_iid_mean_kill_rate(self, dtmb26_chip):
        geometry = geometry_for(dtmb26_chip)
        alive = IIDBernoulli(0.95).sample_batch(
            geometry, self.RUNS, make_rng(1)
        )
        assert alive.shape == (self.RUNS, geometry.n_cells)
        assert (~alive).mean() == pytest.approx(0.05, abs=0.005)

    def test_fixed_count_exact_per_run(self, dtmb26_chip):
        geometry = geometry_for(dtmb26_chip)
        alive = FixedCount(7).sample_batch(geometry, 200, make_rng(2))
        assert ((~alive).sum(axis=1) == 7).all()

    def test_spot_mean_kill_matches_closed_form(self, dtmb26_chip):
        geometry = geometry_for(dtmb26_chip)
        model = SpotDefects(0.004, radius=1)
        alive = model.sample_batch(geometry, self.RUNS, make_rng(3))
        assert (~alive).mean() == pytest.approx(
            model.mean_kill_fraction(geometry), abs=0.004
        )

    def test_spot_kills_come_in_clusters(self, dtmb26_chip):
        """Conditional on any kill, a spot run loses ~a whole ball of
        cells — far more than the single cells an i.i.d. model loses."""
        geometry = geometry_for(dtmb26_chip)
        model = SpotDefects(0.0008, radius=1)
        alive = model.sample_batch(geometry, self.RUNS, make_rng(4))
        kills = (~alive).sum(axis=1)
        hit = kills[kills > 0]
        assert hit.size > 30
        assert hit.mean() > 3.0  # radius-1 balls kill up to 7 cells

    def test_spot_calibration_matches_iid_severity(self, dtmb26_chip):
        geometry = geometry_for(dtmb26_chip)
        model = SpotDefects.calibrate(geometry, 0.05, radius=1)
        assert model.mean_kill_fraction(geometry) == pytest.approx(0.05, abs=1e-9)

    def test_negbin_mean_matches_but_overdisperses(self, dtmb26_chip):
        geometry = geometry_for(dtmb26_chip)
        rng = make_rng(5)
        alive = NegativeBinomialClustered(0.95, alpha=0.5).sample_batch(
            geometry, self.RUNS, rng
        )
        kills = (~alive).sum(axis=1)
        n = geometry.n_cells
        assert kills.mean() / n == pytest.approx(0.05, abs=0.006)
        # Rate mixing inflates the fault-count variance well past binomial.
        binomial_var = n * 0.05 * 0.95
        assert kills.var() > 2.0 * binomial_var

    def test_gradient_edge_cells_die_more(self, dtmb26_chip):
        geometry = geometry_for(dtmb26_chip)
        model = RadialGradient(0.99, 0.85)
        alive = model.sample_batch(geometry, self.RUNS, make_rng(6))
        death = (~alive).mean(axis=0)
        inner = geometry.radial_t < 0.3
        outer = geometry.radial_t > 0.8
        assert death[outer].mean() > death[inner].mean() + 0.05

    def test_gradient_calibration_hits_mean(self, dtmb26_chip):
        geometry = geometry_for(dtmb26_chip)
        model = RadialGradient.calibrate(geometry, 0.95, spread=0.08)
        assert model.mean_survival(geometry) == pytest.approx(0.95, abs=1e-9)
        assert model.p_center - model.p_edge == pytest.approx(0.08)
        # A perfect process has no room for a gradient: degenerates cleanly.
        flat = RadialGradient.calibrate(geometry, 1.0, spread=0.08)
        assert flat.p_center == flat.p_edge == 1.0


class TestCRNNesting:
    def test_capped_spot_fault_sets_nested_across_rates(self, dtmb26_chip):
        geometry = geometry_for(dtmb26_chip)
        cap = 0.01
        lo = SpotDefects(0.002, radius=1, rate_cap=cap)
        hi = SpotDefects(0.008, radius=1, rate_cap=cap)
        alive_lo = lo.sample_batch(geometry, 500, make_rng(7))
        alive_hi = hi.sample_batch(geometry, 500, make_rng(7))
        # Every cell dead at the low rate is dead at the high rate.
        assert (alive_hi <= alive_lo).all()
        assert (~alive_hi).sum() > (~alive_lo).sum()

    def test_spot_family_shares_cap_and_orders_yield(self, dtmb26_chip):
        geometry = geometry_for(dtmb26_chip)
        family = SpotDefects.family(geometry, (0.02, 0.05, 0.08), radius=1)
        caps = {model.rate_cap for model in family}
        assert len(caps) == 1
        points = defect_model_sweep(
            dtmb26_chip, family, runs=400, seed=11
        )
        yields = [pt.yield_value for pt in points]
        assert yields == sorted(yields, reverse=True)  # monotone, no slack

    def test_negbin_nested_across_p(self, dtmb26_chip):
        geometry = geometry_for(dtmb26_chip)
        worse = NegativeBinomialClustered(0.92, alpha=1.0)
        better = NegativeBinomialClustered(0.97, alpha=1.0)
        alive_worse = worse.sample_batch(geometry, 300, make_rng(8))
        alive_better = better.sample_batch(geometry, 300, make_rng(8))
        assert (alive_worse <= alive_better).all()


class TestBitIdentity:
    """The model path must reproduce the pre-model engine streams exactly."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_iid_reproduces_legacy_survival_stream(self, dtmb26_chip, dtype):
        struct = RepairStructure(dtmb26_chip)
        runs, p, seed = 3000, 0.94, 123
        # The pre-model engine loop, inlined: batched uniform draws
        # thresholded at p, decided by the screening funnel.
        rng = make_rng(seed)
        legacy = 0
        for size in survival_batch_sizes(runs, struct.n_cells):
            alive = rng.random((size, struct.n_cells), dtype=dtype) < p
            got, _ = count_repairable(struct, alive)
            legacy += got
        via_wrapper, _ = survival_successes(struct, p, runs, seed, dtype=dtype)
        via_model, _ = model_successes(
            struct, IIDBernoulli(p), runs, seed, dtype=dtype
        )
        assert legacy == via_wrapper == via_model

    def test_model_point_equals_survival_point(self, dtmb26_chip):
        """An explicit IIDBernoulli point computes the same number as the
        legacy "survival" kind at equal seed (same stream, same screen)."""
        engine = SweepEngine()
        legacy = engine.run_points(
            [EnginePoint(dtmb26_chip, PointSpec("survival", 0.93, 800, 42))]
        )[0]
        explicit = engine.run_points(
            [
                EnginePoint(
                    dtmb26_chip,
                    PointSpec.from_model(IIDBernoulli(0.93), 800, 42),
                )
            ]
        )[0]
        assert legacy.successes == explicit.successes
        assert legacy.trials == explicit.trials

    def test_point_model_resolves_legacy_kinds(self):
        assert point_model(PointSpec("survival", 0.9, 10, 1)) == IIDBernoulli(0.9)
        assert point_model(PointSpec("fixed", 4, 10, 1)) == FixedCount(4)
        spot = SpotDefects(0.003)
        assert point_model(PointSpec.from_model(spot, 10, 1)) is spot
        with pytest.raises(SimulationError):
            point_model(PointSpec("model", 0.5, 10, 1))

    def test_serial_parallel_sharded_identical_for_model_points(
        self, dtmb26_chip
    ):
        geometry = geometry_for(dtmb26_chip)
        models = [
            SpotDefects.calibrate(geometry, 0.05, radius=1),
            NegativeBinomialClustered(0.95, alpha=1.0),
            RadialGradient.calibrate(geometry, 0.95, spread=0.06),
        ]
        serial = defect_model_sweep(dtmb26_chip, models, runs=600, seed=9)
        parallel = defect_model_sweep(
            dtmb26_chip, models, runs=600, seed=9, engine=SweepEngine(jobs=2)
        )
        sharded = defect_model_sweep(
            dtmb26_chip,
            models,
            runs=600,
            seed=9,
            engine=SweepEngine(jobs=2, shard_runs=200),
        )
        for a, b in zip(serial, parallel):
            assert a.estimate == b.estimate
        for a, b in zip(
            defect_model_sweep(
                dtmb26_chip, models, runs=600, seed=9,
                engine=SweepEngine(shard_runs=200),
            ),
            sharded,
        ):
            assert a.estimate == b.estimate


class TestEngineCache:
    def test_no_collision_across_models_at_equal_p(self, dtmb26_chip, tmp_path):
        """Same chip, runs, seed and severity p: every model family gets
        its own cache entry and its own (different) estimate."""
        p = 0.94
        geometry = geometry_for(dtmb26_chip)
        models = [
            IIDBernoulli(p),
            NegativeBinomialClustered(p, alpha=0.5),
            RadialGradient.calibrate(geometry, p, spread=0.08),
            SpotDefects.calibrate(geometry, 1.0 - p, radius=1),
        ]
        engine = SweepEngine(cache_dir=str(tmp_path / "cache"))
        first = defect_model_sweep(
            dtmb26_chip, models, runs=1200, seed=21, engine=engine
        )
        assert engine.cache_misses == len(models)
        # Distinct distributions at the same severity: the estimates must
        # not all coincide (collision would make them identical).
        assert len({pt.estimate.successes for pt in first}) > 1
        again = defect_model_sweep(
            dtmb26_chip, models, runs=1200, seed=21, engine=engine
        )
        assert engine.cache_hits == len(models)
        for a, b in zip(first, again):
            assert a.estimate == b.estimate

    def test_model_point_does_not_collide_with_legacy_key(
        self, dtmb26_chip, tmp_path
    ):
        engine = SweepEngine(cache_dir=str(tmp_path / "cache"))
        spec_legacy = PointSpec("survival", 0.93, 500, 3)
        spec_model = PointSpec.from_model(IIDBernoulli(0.93), 500, 3, param=0.93)
        engine.run_points([EnginePoint(dtmb26_chip, spec_legacy)])
        engine.run_points([EnginePoint(dtmb26_chip, spec_model)])
        # Same numbers, but two cache entries: the digest keys them apart.
        assert engine.cache_misses == 2 and engine.cache_hits == 0

    def test_adaptive_stop_applies_to_model_points(self, dtmb26_chip):
        from repro.yieldsim.stats import StopRule

        rule = StopRule(target_half_width=0.05, min_runs=100, batch_runs=100)
        engine = SweepEngine()
        models = [IIDBernoulli(0.999)]  # easy point: stops at min_runs
        points = defect_model_sweep(
            dtmb26_chip, models, runs=2000, seed=5, engine=engine, stop=rule
        )
        assert points[0].estimate.trials < 2000


class TestClusteredInjectorDelegation:
    def test_sample_matches_vectorized_model(self, dtmb26_chip):
        """The object-level injector kills exactly the cells the
        vectorized SpotDefects model kills at the same seed."""
        injector = ClusteredInjector(centers_per_cell=0.01, radius=1)
        geometry = geometry_for(dtmb26_chip)
        model = SpotDefects(0.01, radius=1)
        coords = dtmb26_chip.coords
        for seed in range(12):
            fault_map = injector.sample(dtmb26_chip, seed=seed)
            alive = model.sample_batch(geometry, 1, make_rng(seed))[0]
            dead = {coords[i] for i in np.flatnonzero(~alive)}
            assert {f.coord for f in fault_map} == dead

    def test_sample_deterministic_given_seed(self, dtmb26_chip):
        injector = ClusteredInjector(centers_per_cell=0.02, radius=1)
        a = injector.sample(dtmb26_chip, seed=77)
        b = injector.sample(dtmb26_chip, seed=77)
        assert {f.coord for f in a} == {f.coord for f in b}

    def test_survival_matrix_requires_chip(self, dtmb26_chip):
        injector = ClusteredInjector(0.01)
        with pytest.raises(FaultModelError):
            injector.sample_survival_matrix(64, 10, seed=1)
        matrix = injector.sample_survival_matrix(dtmb26_chip, 10, seed=1)
        assert matrix.shape == (10, len(dtmb26_chip))


class TestSeedNormalization:
    def test_make_rng_accepts_seed_sequence(self):
        ss = np.random.SeedSequence(1234)
        a = make_rng(ss).random(8)
        b = np.random.default_rng(np.random.SeedSequence(1234)).random(8)
        assert (a == b).all()

    def test_model_successes_accepts_seed_sequence(self, dtmb26_chip):
        """A spawned shard seed feeds model sampling directly — the
        engine's shard plumbing needs no int round-trip."""
        struct = RepairStructure(dtmb26_chip)
        ss = np.random.SeedSequence(99, spawn_key=(3,))
        got_a, _ = model_successes(struct, IIDBernoulli(0.95), 400, seed=ss)
        got_b, _ = model_successes(
            struct,
            IIDBernoulli(0.95),
            400,
            seed=np.random.SeedSequence(99, spawn_key=(3,)),
        )
        assert got_a == got_b


class TestModelFamilies:
    def test_known_specs_parse(self, dtmb26_chip):
        for text in (
            "iid",
            "spot",
            "spot:radius=2",
            "negbin:alpha=0.5",
            "gradient:spread=0.08,power=2",
        ):
            family = family_from_spec(text)
            model = family(dtmb26_chip, 0.95)
            assert isinstance(model, DefectModel)

    def test_spot_family_calibrates_severity(self, dtmb26_chip):
        family = family_from_spec("spot:radius=1")
        model = family(dtmb26_chip, 0.95)
        assert model.mean_kill_fraction(
            geometry_for(dtmb26_chip)
        ) == pytest.approx(0.05, abs=1e-9)

    def test_bad_specs_rejected(self):
        with pytest.raises(FaultModelError):
            family_from_spec("nope")
        with pytest.raises(FaultModelError):
            family_from_spec("spot:radius")
        with pytest.raises(FaultModelError):
            family_from_spec("spot:radius=abc")
        with pytest.raises(FaultModelError):
            family_from_spec("spot:bogus=1")

    def test_survival_sweep_model_knob_labels_points(self):
        from repro.designs.catalog import DTMB_2_6

        points = survival_sweep(
            [DTMB_2_6], [60], [0.94], runs=200, seed=3,
            model=family_from_spec("negbin:alpha=1"),
        )
        assert points[0].model == "negbin"
        default = survival_sweep([DTMB_2_6], [60], [0.94], runs=200, seed=3)
        assert default[0].model is None


class TestScenarioExperiments:
    def test_provenance_names_defect_model_and_digest(self):
        result = registry.execute(
            "fig9-clustered",
            runs=60,
            seed=7,
            knobs={"ns": [60], "ps": (0.95,)},
        )
        prov = result.provenance
        assert prov.defect_models, "scenario must record its defect models"
        for name, digest in prov.defect_models:
            assert name == "spot"
            assert len(digest) == 16
        block = prov.as_dict()["budget"]["defect_models"]
        assert block and block[0]["name"] == "spot"
        assert prov.stable_dict()["defect_models"] == block

    def test_gradient_scenario_runs_all_regimes(self):
        result = registry.execute(
            "scenario-gradient",
            runs=60,
            seed=7,
            knobs={"n": 60, "ps": (0.95,)},
        )
        names = {name for name, _ in result.provenance.defect_models}
        assert names == {"iid", "gradient", "negbin"}

    def test_classic_fig9_records_no_defect_models(self):
        result = registry.execute(
            "fig9", runs=60, seed=7, knobs={"ns": [60], "ps": (0.95,)}
        )
        assert result.provenance.defect_models == ()

    def test_fig9_clustered_yield_below_iid_at_high_p(self):
        """The headline scenario claim: clustered defects beat the
        independence assumption's yield at high survival probability."""
        clustered = registry.execute(
            "fig9-clustered", runs=800, seed=7,
            knobs={"ns": [60], "ps": (0.97,)},
        )
        classic = registry.execute(
            "fig9", runs=800, seed=7, knobs={"ns": [60], "ps": (0.97,)}
        )
        for design in ("DTMB(2,6)", "DTMB(3,6)", "DTMB(4,4)"):
            assert (
                clustered.raw.yield_at(design, 60, 0.97)
                < classic.raw.yield_at(design, 60, 0.97) + 0.02
            )


class TestCLIDefectModel:
    def test_defect_model_flag_reruns_fig9(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "bundle"
        assert main(
            [
                "fig9", "--runs", "60", "--seed", "5",
                "--defect-model", "spot:radius=1", "--out", str(out),
            ]
        ) == 0
        import json

        manifest = json.loads((out / "manifest.json").read_text())
        models = manifest["experiments"]["fig9"]["provenance"]["budget"][
            "defect_models"
        ]
        assert models and models[0]["name"] == "spot"

    def test_defect_model_rejected_on_fixed_regime_experiment(self, capsys):
        from repro.cli import main

        code = main(["fig13", "--defect-model", "spot"])
        assert code == 2
        assert "--defect-model" in capsys.readouterr().err

    def test_malformed_defect_model_fails_cleanly(self, capsys):
        from repro.cli import main

        code = main(["fig9", "--defect-model", "spot:radius=?"])
        assert code == 2
        assert "numeric" in capsys.readouterr().err
