"""Tests for local reconfiguration planning and coordinate remapping."""

from __future__ import annotations

import pytest

from repro.chip.biochip import Biochip
from repro.chip.cell import Cell, CellRole
from repro.designs.catalog import DTMB_1_6, DTMB_2_6
from repro.designs.interstitial import build_chip, build_flower_chip
from repro.errors import IrreparableChipError, ReconfigurationError
from repro.geometry.hex import Hex
from repro.geometry.hexgrid import RectRegion
from repro.reconfig.local import (
    RepairPlan,
    build_repair_graph,
    is_repairable,
    plan_local_repair,
)
from repro.reconfig.remap import CellRemap


class TestRepairGraph:
    def test_graph_structure_matches_faults(self, dtmb26_chip):
        chip = dtmb26_chip
        faulty = [c.coord for c in chip.primaries()][:3]
        chip.apply_fault_map(faulty)
        graph = build_repair_graph(chip)
        assert set(graph.left) == set(faulty)
        for u in graph.left:
            for v in graph.adj[u]:
                assert chip[v].is_spare and chip[v].is_good
                assert v in chip.neighbors(u)

    def test_faulty_spares_excluded_from_right(self, dtmb26_chip):
        chip = dtmb26_chip
        spare = chip.spares()[0].coord
        chip.mark_faulty(spare)
        graph = build_repair_graph(chip)
        assert spare not in graph.right

    def test_needed_restricts_left_side(self, dtmb26_chip):
        chip = dtmb26_chip
        faulty = [c.coord for c in chip.primaries()][:4]
        chip.apply_fault_map(faulty)
        graph = build_repair_graph(chip, needed=faulty[:2])
        assert set(graph.left) == set(faulty[:2])


class TestPlanLocalRepair:
    def test_no_faults_trivially_complete(self, dtmb26_chip):
        plan = plan_local_repair(dtmb26_chip)
        assert plan.complete
        assert plan.spares_used == 0

    def test_single_fault_repaired_by_adjacent_spare(self, dtmb26_chip):
        chip = dtmb26_chip
        victim = next(
            c.coord for c in chip.primaries() if len(chip.adjacent_spares(c.coord)) == 2
        )
        chip.mark_faulty(victim)
        plan = plan_local_repair(chip)
        assert plan.complete
        spare = plan.spare_for(victim)
        assert spare in chip.neighbors(victim)
        assert chip[spare].is_spare
        plan.validate_against(chip)

    def test_dtmb16_contention_is_irreparable(self):
        # Two faulty primaries sharing the single flower spare: only one
        # can be repaired.
        chip = build_flower_chip(6)
        primaries = [c.coord for c in chip.primaries()]
        chip.apply_fault_map(primaries[:2])
        plan = plan_local_repair(chip)
        assert not plan.complete
        assert len(plan.unrepaired) == 1
        assert not is_repairable(chip)

    def test_require_complete_raises(self):
        chip = build_flower_chip(6)
        primaries = [c.coord for c in chip.primaries()]
        chip.apply_fault_map(primaries[:2])
        with pytest.raises(IrreparableChipError):
            plan_local_repair(chip, require_complete=True)

    def test_faulty_spare_blocks_its_primary(self):
        chip = build_flower_chip(6)
        chip.mark_faulty(Hex(0, 0))  # the only spare
        victim = chip.primaries()[0].coord
        chip.mark_faulty(victim)
        assert not is_repairable(chip)

    def test_needed_subset_ignores_other_faults(self, dtmb26_chip):
        chip = dtmb26_chip
        primaries = [c.coord for c in chip.primaries()]
        needed = primaries[:5]
        unneeded_fault = primaries[-1]
        chip.mark_faulty(unneeded_fault)
        plan = plan_local_repair(chip, needed=needed)
        assert plan.complete
        assert plan.spares_used == 0

    def test_dtmb26_tolerates_many_scattered_faults(self, dtmb26_chip):
        # Faults whose spare neighborhoods are pairwise disjoint are
        # always repairable, however many there are.
        chip = dtmb26_chip
        claimed_spares: set = set()
        targets = []
        for cell in chip.primaries():
            spares = {s.coord for s in chip.adjacent_spares(cell.coord)}
            if len(spares) == 2 and not (spares & claimed_spares):
                targets.append(cell.coord)
                claimed_spares |= spares
        assert len(targets) >= 5
        chip.apply_fault_map(targets)
        assert is_repairable(chip)


class TestPlanValidation:
    def test_plan_using_non_adjacent_spare_rejected(self, dtmb26_chip):
        chip = dtmb26_chip
        victim = chip.primaries()[0].coord
        chip.mark_faulty(victim)
        far_spare = next(
            s.coord
            for s in chip.spares()
            if s.coord not in chip.neighbors(victim)
        )
        bogus = RepairPlan(assignment={victim: far_spare})
        with pytest.raises(ReconfigurationError):
            bogus.validate_against(chip)

    def test_plan_repairing_healthy_cell_rejected(self, dtmb26_chip):
        chip = dtmb26_chip
        healthy = chip.primaries()[0].coord
        spare = chip.adjacent_spares(healthy)
        if spare:
            bogus = RepairPlan(assignment={healthy: spare[0].coord})
            with pytest.raises(ReconfigurationError):
                bogus.validate_against(chip)

    def test_spare_for_unknown_cell(self):
        plan = RepairPlan(assignment={})
        with pytest.raises(ReconfigurationError):
            plan.spare_for(Hex(0, 0))


class TestCellRemap:
    def _repaired_chip(self):
        chip = build_chip(DTMB_2_6, RectRegion(10, 10))
        victim = next(
            c.coord
            for c in chip.primaries()
            if len(chip.adjacent_spares(c.coord)) == 2
        )
        chip.mark_faulty(victim)
        plan = plan_local_repair(chip)
        return chip, victim, CellRemap(chip, plan)

    def test_identity_for_healthy_cells(self):
        chip, victim, remap = self._repaired_chip()
        healthy = next(c.coord for c in chip.primaries() if c.coord != victim)
        assert remap.physical(healthy) == healthy

    def test_faulty_cell_maps_to_adjacent_spare(self):
        chip, victim, remap = self._repaired_chip()
        phys = remap.physical(victim)
        assert phys != victim
        assert phys in chip.neighbors(victim)
        assert chip[phys].is_spare

    def test_inverse_mapping(self):
        chip, victim, remap = self._repaired_chip()
        assert remap.logical(remap.physical(victim)) == victim

    def test_remapped_count_and_flags(self):
        chip, victim, remap = self._repaired_chip()
        assert remap.remapped_count == 1
        assert remap.is_remapped(victim)
        assert remap.dead_cells == ()

    def test_dead_cell_lookup_raises(self):
        chip = build_flower_chip(6)
        primaries = [c.coord for c in chip.primaries()]
        chip.apply_fault_map(primaries[:2])
        plan = plan_local_repair(chip)
        remap = CellRemap(chip, plan)
        assert len(remap.dead_cells) == 1
        with pytest.raises(ReconfigurationError):
            remap.physical(remap.dead_cells[0])

    def test_physical_path_translation(self):
        chip, victim, remap = self._repaired_chip()
        neighbors = list(chip.neighbors(victim))
        path = [neighbors[0], victim]
        physical = remap.physical_path(path)
        assert physical[0] == neighbors[0]
        assert physical[1] == remap.physical(victim)
