"""CI kill-and-resume driver — not a pytest module.

SIGKILLs a real adaptive CLI run mid-sweep, resumes it from its cache and
fold checkpoints, and asserts the resumed artifacts are byte-identical to
an uninterrupted reference run:

1. Launch ``repro fig9 --adaptive --cache --checkpoint --out`` and kill
   it dead (SIGKILL, no cleanup) partway through the sweep.  If the run
   outpaces the kill, retry with an earlier kill until it really dies
   mid-flight.
2. Re-run the identical command to completion.  The resume must reuse
   the dead run's state: completed points from the cache, the in-flight
   point from its fold checkpoint.
3. Run the same command against a fresh cache as the reference.
4. Every artifact file must match byte for byte, and the two manifests'
   result digests must be equal.  (``manifest.json`` itself contains
   wall-clock and cache-traffic telemetry, so it is compared by digest,
   not by bytes.)

Exits non-zero on any mismatch.  Run as::

    PYTHONPATH=src python tests/kill_resume_smoke.py

``REPRO_CHAOS_RUNS`` / ``REPRO_CHAOS_TARGET_CI`` shrink the budget for a
quick local pass.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile
import time

RUNS = os.environ.get("REPRO_CHAOS_RUNS", "100000")
TARGET_CI = os.environ.get("REPRO_CHAOS_TARGET_CI", "0.003")
KILL_DELAYS = (3.0, 2.0, 1.2, 0.8, 0.5)


def command(cache: pathlib.Path, out: pathlib.Path) -> list:
    return [
        sys.executable, "-m", "repro", "fig9",
        "--runs", RUNS, "--adaptive", "--target-ci", TARGET_CI,
        "--shard-runs", "2000",
        "--cache", str(cache), "--checkpoint", "--out", str(out),
    ]


def killed_mid_run(cache: pathlib.Path, out: pathlib.Path) -> bool:
    """One kill attempt per delay; True once a run died mid-sweep."""
    for delay in KILL_DELAYS:
        for stale in (cache, out):
            shutil.rmtree(stale, ignore_errors=True)
        proc = subprocess.Popen(
            command(cache, out),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        time.sleep(delay)
        if proc.poll() is not None:
            print(f"kill at {delay}s: run already finished, retrying earlier")
            continue
        proc.kill()
        proc.wait()
        state = sorted(p.name for p in cache.glob("*.json"))
        print(
            f"kill at {delay}s: SIGKILL mid-run, "
            f"{len(state)} cache/checkpoint files left behind"
        )
        if state:
            return True
        print("  ...but no state was journaled yet; retrying later kill")
    return False


def run_to_completion(cache: pathlib.Path, out: pathlib.Path) -> None:
    shutil.rmtree(out, ignore_errors=True)
    subprocess.run(command(cache, out), check=True, stdout=subprocess.DEVNULL)


def manifest_digests(out: pathlib.Path) -> dict:
    manifest = json.loads((out / "manifest.json").read_text())
    return {
        name: entry["provenance"]["digest"]
        for name, entry in manifest["experiments"].items()
    }


def main() -> int:
    base = pathlib.Path(tempfile.mkdtemp(prefix="repro-kill-resume-"))
    cache, out_resumed = base / "cache", base / "out-resumed"
    cache_ref, out_ref = base / "cache-ref", base / "out-ref"

    interrupted = killed_mid_run(cache, out_resumed)
    if not interrupted:
        print("WARNING: could not interrupt the run; identity check only")

    run_to_completion(cache, out_resumed)
    run_to_completion(cache_ref, out_ref)

    # Per-experiment artifact files must be byte-identical.
    ref_files = sorted(
        p.relative_to(out_ref)
        for p in out_ref.rglob("*")
        if p.is_file() and p.name != "manifest.json"
    )
    assert ref_files, "reference run produced no artifacts"
    mismatched = []
    for rel in ref_files:
        resumed_path = out_resumed / rel
        if not resumed_path.is_file():
            mismatched.append(f"{rel}: missing from resumed run")
        elif resumed_path.read_bytes() != (out_ref / rel).read_bytes():
            mismatched.append(f"{rel}: bytes differ")
    assert not mismatched, "resumed artifacts diverged:\n  " + "\n  ".join(
        mismatched
    )
    print(f"artifact files byte-identical: {len(ref_files)}")

    # Manifests agree on every result digest (telemetry fields aside).
    resumed_digests = manifest_digests(out_resumed)
    ref_digests = manifest_digests(out_ref)
    assert resumed_digests == ref_digests, (resumed_digests, ref_digests)
    print(f"manifest result digests equal: {sorted(resumed_digests)}")

    # The resume actually reused the dead run's state.
    if interrupted:
        manifest = json.loads((out_resumed / "manifest.json").read_text())
        [entry] = manifest["experiments"].values()
        engine = entry["provenance"]["engine"]
        reused = engine["cache_hits"] + sum(
            engine.get("resilience", {}).get(k, 0)
            for k in ("checkpoint_resumes", "folds_resumed")
        )
        print(
            f"resume reuse: cache_hits={engine['cache_hits']} "
            f"resilience={engine.get('resilience', {})}"
        )
        assert reused > 0, "resumed run reused nothing from the killed run"

    shutil.rmtree(base, ignore_errors=True)
    print("kill-and-resume smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
