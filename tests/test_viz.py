"""Tests for ASCII rendering, charts, SVG export and CSV writing."""

from __future__ import annotations

import csv
import io
import xml.etree.ElementTree as ET

import pytest

from repro.chip.builders import plain_chip, square_chip
from repro.designs.catalog import DTMB_2_6
from repro.designs.interstitial import build_chip
from repro.errors import ReproError
from repro.geometry.hexgrid import RectRegion
from repro.reconfig.local import plan_local_repair
from repro.viz.ascii_art import render_chip, render_legend
from repro.viz.export import write_csv
from repro.viz.plot import ascii_chart
from repro.viz.svg import chip_to_svg, write_svg


class TestAsciiArt:
    def test_glyph_counts_match_roles(self, dtmb26_chip):
        art = render_chip(dtmb26_chip)
        assert art.count(".") == dtmb26_chip.primary_count
        assert art.count("+") == dtmb26_chip.spare_count

    def test_faulty_cells_marked(self, dtmb26_chip):
        primary = dtmb26_chip.primaries()[0].coord
        spare = dtmb26_chip.spares()[0].coord
        dtmb26_chip.mark_faulty(primary)
        dtmb26_chip.mark_faulty(spare)
        art = render_chip(dtmb26_chip)
        assert art.count("X") == 1
        assert art.count("x") == 1

    def test_repair_plan_highlighted(self, dtmb26_chip):
        chip = dtmb26_chip
        victim = next(
            c.coord
            for c in chip.primaries()
            if len(chip.adjacent_spares(c.coord)) >= 1
        )
        chip.mark_faulty(victim)
        plan = plan_local_repair(chip)
        art = render_chip(chip, plan=plan)
        assert art.count("#") == 1  # repaired primary
        assert art.count("R") == 1  # spare in use

    def test_used_cells_marked(self, dtmb26_chip):
        used = [c.coord for c in dtmb26_chip.primaries()][:5]
        art = render_chip(dtmb26_chip, used=used)
        assert art.count("o") == 5

    def test_square_chip_rendering(self):
        chip = square_chip(4, 3)
        art = render_chip(chip)
        assert art.count(".") == 12
        assert len(art.splitlines()) == 3

    def test_odd_rows_indented(self):
        chip = plain_chip(RectRegion(4, 4))
        lines = render_chip(chip).splitlines()
        assert not lines[0].startswith(" ")
        assert lines[1].startswith(" ")

    def test_legend_mentions_all_glyphs(self):
        legend = render_legend()
        for glyph in (".", "o", "+", "R", "X", "x", "#"):
            assert glyph in legend


class TestAsciiChart:
    def test_contains_series_markers_and_legend(self):
        chart = ascii_chart(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            title="demo",
        )
        assert "demo" in chart
        assert "* a" in chart
        assert "o b" in chart

    def test_axis_labels_show_ranges(self):
        chart = ascii_chart({"s": [(0.9, 0.25), (1.0, 0.75)]})
        assert "0.900" in chart
        assert "1.000" in chart
        assert "0.250" in chart
        assert "0.750" in chart

    def test_flat_series_does_not_crash(self):
        ascii_chart({"flat": [(0, 0.5), (1, 0.5)]})

    def test_validation(self):
        with pytest.raises(ReproError):
            ascii_chart({})
        with pytest.raises(ReproError):
            ascii_chart({"s": [(0, 0)]}, width=5)


class TestSvg:
    def test_well_formed_xml_with_one_shape_per_cell(self, dtmb26_chip):
        svg = chip_to_svg(dtmb26_chip)
        root = ET.fromstring(svg)
        polygons = root.findall(".//{http://www.w3.org/2000/svg}polygon")
        assert len(polygons) == len(dtmb26_chip)

    def test_repair_arrows_drawn(self, dtmb26_chip):
        chip = dtmb26_chip
        victim = chip.primaries()[10].coord
        chip.mark_faulty(victim)
        plan = plan_local_repair(chip)
        svg = chip_to_svg(chip, plan=plan)
        root = ET.fromstring(svg)
        lines = root.findall(".//{http://www.w3.org/2000/svg}line")
        assert len(lines) == plan.spares_used

    def test_square_chip_uses_rects(self):
        chip = square_chip(3, 3)
        root = ET.fromstring(chip_to_svg(chip))
        rects = root.findall(".//{http://www.w3.org/2000/svg}rect")
        assert len(rects) == 9

    def test_write_svg_to_file(self, tmp_path, dtmb26_chip):
        path = tmp_path / "chip.svg"
        write_svg(dtmb26_chip, str(path))
        assert path.read_text().startswith("<svg")


class TestCsvExport:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "data.csv"
        count = write_csv(
            str(path), ["p", "yield"], [(0.95, 0.8), (0.99, 0.97)]
        )
        assert count == 2
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["p", "yield"]
        assert rows[1] == ["0.95", "0.8"]

    def test_stream_target(self):
        buffer = io.StringIO()
        write_csv(buffer, ["a"], [(1,), (2,)])
        assert buffer.getvalue().splitlines()[0] == "a"

    def test_row_width_validation(self):
        with pytest.raises(ReproError):
            write_csv(io.StringIO(), ["a", "b"], [(1,)])
        with pytest.raises(ReproError):
            write_csv(io.StringIO(), [], [])
