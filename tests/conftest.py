"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.designs.catalog import DTMB_1_6, DTMB_2_6, DTMB_3_6, DTMB_4_4
from repro.designs.interstitial import build_chip
from repro.geometry.hexgrid import RectRegion


@pytest.fixture
def small_region():
    """A 10x10 rectangular hex footprint."""
    return RectRegion(10, 10)


@pytest.fixture
def dtmb26_chip(small_region):
    """A DTMB(2,6) chip on the 10x10 footprint."""
    return build_chip(DTMB_2_6, small_region)


@pytest.fixture
def dtmb16_chip(small_region):
    return build_chip(DTMB_1_6, small_region)


@pytest.fixture
def dtmb44_chip(small_region):
    return build_chip(DTMB_4_4, small_region)
