"""Tests for chip builders, serialization and graph export."""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chip.builders import chip_from_lattice, chip_from_roles, plain_chip, square_chip
from repro.chip.cell import Cell, CellHealth, CellRole
from repro.chip.biochip import Biochip
from repro.chip.graph import adjacency_lists, spare_adjacency, to_networkx
from repro.chip.serialize import chip_from_dict, chip_to_dict, dump_chip, load_chip
from repro.errors import ChipError
from repro.geometry.hex import Hex
from repro.geometry.hexgrid import RectRegion
from repro.geometry.lattice import CongruenceLattice
from repro.geometry.square import Square


class TestBuilders:
    def test_plain_chip_all_primary(self):
        chip = plain_chip(RectRegion(4, 4))
        assert chip.primary_count == 16
        assert chip.spare_count == 0

    def test_chip_from_lattice_roles(self):
        chip = chip_from_lattice(RectRegion(8, 8), CongruenceLattice(1, 3, 7))
        for cell in chip:
            expected = CellRole.SPARE if cell.coord in CongruenceLattice(1, 3, 7) else CellRole.PRIMARY
            assert cell.role is expected

    def test_chip_from_lattice_requires_spares(self):
        # A lattice that misses the region entirely is a usage error.
        far = CongruenceLattice(1, 0, 50, c=25)
        with pytest.raises(ChipError):
            chip_from_lattice(RectRegion(3, 3), far)

    def test_chip_from_roles_with_labels(self):
        roles = {Hex(0, 0): CellRole.SPARE, Hex(1, 0): CellRole.PRIMARY}
        chip = chip_from_roles(roles, labels={Hex(1, 0): "port"})
        assert chip[Hex(1, 0)].label == "port"
        assert chip[Hex(0, 0)].is_spare

    def test_chip_from_roles_empty_rejected(self):
        with pytest.raises(ChipError):
            chip_from_roles({})

    def test_square_chip_spare_predicate(self):
        chip = square_chip(4, 4, spare_predicate=lambda s: s.x == 0)
        assert chip.spare_count == 4
        assert chip.primary_count == 12


role_strategy = st.sampled_from([CellRole.PRIMARY, CellRole.SPARE])
health_strategy = st.sampled_from([CellHealth.GOOD, CellHealth.FAULTY])


class TestSerialization:
    def test_round_trip_hex(self):
        chip = chip_from_lattice(RectRegion(6, 6), CongruenceLattice(1, 3, 7))
        chip.mark_faulty(chip.coords[3])
        chip.set_label(chip.coords[0], "port")
        restored = chip_from_dict(chip_to_dict(chip))
        assert restored.name == chip.name
        for original, loaded in zip(chip, restored):
            assert original.coord == loaded.coord
            assert original.role == loaded.role
            assert original.health == loaded.health
            assert original.label == loaded.label

    def test_round_trip_square(self):
        chip = square_chip(3, 3)
        chip.mark_faulty(Square(1, 1))
        restored = chip_from_dict(chip_to_dict(chip))
        assert restored[Square(1, 1)].is_faulty

    @given(
        st.dictionaries(
            st.builds(Hex, st.integers(-5, 5), st.integers(-5, 5)),
            st.tuples(role_strategy, health_strategy),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40)
    def test_round_trip_arbitrary(self, spec):
        cells = [Cell(h, role, health) for h, (role, health) in spec.items()]
        chip = Biochip(cells, name="prop")
        restored = chip_from_dict(chip_to_dict(chip))
        assert {c.coord: (c.role, c.health) for c in restored} == {
            c.coord: (c.role, c.health) for c in chip
        }

    def test_file_round_trip(self, tmp_path):
        chip = square_chip(3, 2, name="disked")
        path = str(tmp_path / "chip.json")
        dump_chip(chip, path)
        assert load_chip(path).name == "disked"

    def test_stream_round_trip(self):
        chip = plain_chip(RectRegion(2, 2))
        buffer = io.StringIO()
        dump_chip(chip, buffer)
        buffer.seek(0)
        assert len(load_chip(buffer)) == 4

    def test_malformed_rejected(self):
        with pytest.raises(ChipError):
            chip_from_dict({"cells": []})
        with pytest.raises(ChipError):
            chip_from_dict({"format": 99, "coords": "hex", "cells": []})
        with pytest.raises(ChipError):
            chip_from_dict({"format": 1, "coords": "triangle", "cells": []})

    def test_mixed_coordinates_rejected(self):
        with pytest.raises(ChipError):
            Biochip([Cell(Hex(0, 0)), Cell(Square(1, 1))])


class TestGraphViews:
    def test_adjacency_lists_cover_all_cells(self):
        chip = plain_chip(RectRegion(4, 4))
        adj = adjacency_lists(chip)
        assert set(adj) == set(chip.coords)

    def test_spare_adjacency_only_primaries(self):
        chip = chip_from_lattice(RectRegion(8, 8), CongruenceLattice(1, 3, 7))
        mapping = spare_adjacency(chip)
        assert set(mapping) == {c.coord for c in chip.primaries()}
        for primary, spares in mapping.items():
            for spare in spares:
                assert chip[spare].is_spare
                assert spare in chip.neighbors(primary)

    def test_to_networkx_structure(self):
        chip = chip_from_lattice(RectRegion(6, 6), CongruenceLattice(1, 3, 7))
        graph = to_networkx(chip)
        assert graph.number_of_nodes() == len(chip)
        assert graph.number_of_edges() == len(chip.edges())
        roles = {data["role"] for _, data in graph.nodes(data=True)}
        assert roles == {"primary", "spare"}
