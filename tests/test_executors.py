"""Scheduler/executor split: the execution backend never changes a number.

The refactor's contract: :class:`~repro.yieldsim.scheduler.PointScheduler`
owns every decision that affects results (key derivation, fold order,
stop-rule checks, speculation discard) while the
:class:`~repro.yieldsim.executors.Executor` owns only *where* compute
units run.  These tests sweep the executor grid — serial, process pool,
inline test executor at several capacities — over flat, adaptive and
sharded points and assert bit-identical estimates, then pin the shim that
keeps old ``repro.yieldsim.engine`` deep imports alive.
"""

from __future__ import annotations

import warnings

import pytest

from repro.yieldsim.engine import EnginePoint, SweepEngine
from repro.yieldsim.executors import (
    InlineExecutor,
    PoolExecutor,
    SerialExecutor,
    default_executor,
)
from repro.yieldsim.kernel import PointSpec
from repro.yieldsim.scheduler import PointScheduler
from repro.yieldsim.stats import StopRule

RULE = StopRule(target_half_width=0.02, min_runs=200, batch_runs=200)
TIGHT = StopRule(target_half_width=0.004, min_runs=200, batch_runs=200)


def _tasks(dtmb26_chip, dtmb16_chip):
    """A mixed workload: flat, adaptive (early-stop and ceiling-bound),
    fixed-regime, across two chips."""
    return [
        EnginePoint(dtmb26_chip, PointSpec("survival", 0.95, 1200, 11)),
        EnginePoint(dtmb26_chip, PointSpec("survival", 0.90, 2000, 12),
                    stop=RULE),
        EnginePoint(dtmb16_chip, PointSpec("survival", 0.97, 2000, 13),
                    stop=TIGHT),
        EnginePoint(dtmb16_chip, PointSpec("fixed", 4, 800, 14)),
        EnginePoint(dtmb26_chip, PointSpec("survival", 0.93, 1500, 15)),
    ]


def _estimates(engine, tasks):
    return [
        (e.successes, e.trials)
        for e in engine.run_points([t for t in tasks])
    ]


class TestExecutorBitIdentity:
    """serial == pool == inline, flat and adaptive and sharded."""

    @pytest.fixture()
    def reference(self, dtmb26_chip, dtmb16_chip):
        return _estimates(SweepEngine(), _tasks(dtmb26_chip, dtmb16_chip))

    @pytest.mark.parametrize(
        "make_executor",
        [
            pytest.param(lambda: SerialExecutor(), id="serial-explicit"),
            pytest.param(lambda: InlineExecutor(), id="inline-c1"),
            pytest.param(lambda: InlineExecutor(capacity=3), id="inline-c3"),
            pytest.param(lambda: InlineExecutor(capacity=8), id="inline-c8"),
            pytest.param(lambda: PoolExecutor(3), id="pool-j3"),
        ],
    )
    def test_injected_executor_matches_serial(
        self, reference, dtmb26_chip, dtmb16_chip, make_executor
    ):
        engine = SweepEngine(executor=make_executor())
        assert _estimates(engine, _tasks(dtmb26_chip, dtmb16_chip)) == reference

    @pytest.mark.parametrize("jobs", [1, 2, 3])
    def test_jobs_flag_matches_serial(
        self, reference, dtmb26_chip, dtmb16_chip, jobs
    ):
        engine = SweepEngine(jobs=jobs)
        assert _estimates(engine, _tasks(dtmb26_chip, dtmb16_chip)) == reference

    @pytest.mark.parametrize("shard_runs", [500, 700])
    @pytest.mark.parametrize("capacity", [1, 4])
    def test_sharded_inline_matches_sharded_serial(
        self, dtmb26_chip, dtmb16_chip, shard_runs, capacity
    ):
        # Sharding derives per-shard seed streams, so sharded numbers
        # legitimately differ from unsharded ones — the invariant is that
        # they never depend on the executor.
        sharded_reference = _estimates(
            SweepEngine(shard_runs=shard_runs), _tasks(dtmb26_chip, dtmb16_chip)
        )
        engine = SweepEngine(
            shard_runs=shard_runs, executor=InlineExecutor(capacity=capacity)
        )
        assert (
            _estimates(engine, _tasks(dtmb26_chip, dtmb16_chip))
            == sharded_reference
        )

    def test_default_executor_selection(self):
        assert isinstance(default_executor(1), SerialExecutor)
        assert isinstance(default_executor(4), PoolExecutor)


class TestInlineExecutorObservability:
    """The test executor exposes what the scheduler actually scheduled."""

    def test_speculation_is_visible_and_discarded(self, dtmb26_chip):
        # A stop rule that halts well before the flat ceiling, with
        # capacity > 1: the scheduler must speculate past the stop point
        # and discard the overshoot without folding it.
        # A Wilson half-width target of 0.4 is met at any outcome once
        # min_runs is reached, so the point stops at its very first fold
        # — while capacity 4 has already scheduled three more batches.
        executor = InlineExecutor(capacity=4)
        engine = SweepEngine(executor=executor)
        wide = StopRule(target_half_width=0.4, min_runs=200, batch_runs=200)
        task = EnginePoint(
            dtmb26_chip, PointSpec("survival", 0.90, 20_000, 3), stop=wide
        )
        folds = []
        [estimate] = engine.run_points(
            [task], on_fold=lambda i, s, t: folds.append(t)
        )
        assert estimate.trials == 200  # stopped at the first fold
        assert len(folds) == 1
        assert executor.completed == executor.submitted
        # Speculation: more units were scheduled than were folded into
        # the estimate; the overshoot was computed and thrown away.
        assert executor.submitted == 4

    def test_capacity_one_never_speculates(self, dtmb26_chip):
        executor = InlineExecutor(capacity=1)
        engine = SweepEngine(executor=executor)
        task = EnginePoint(
            dtmb26_chip, PointSpec("survival", 0.90, 20_000, 3), stop=RULE
        )
        folds = []
        [estimate] = engine.run_points(
            [task], on_fold=lambda i, s, t: folds.append(t)
        )
        # capacity 1 degenerates to exact serial: every scheduled unit
        # is folded, nothing thrown away.
        assert executor.submitted == len(folds)
        assert folds[-1] == estimate.trials


class TestCacheCounters:
    def test_cache_hit_miss_accounting(self, tmp_path, dtmb26_chip):
        task = lambda: EnginePoint(  # noqa: E731 - fresh task per run
            dtmb26_chip, PointSpec("survival", 0.95, 400, 9)
        )
        first = SweepEngine(cache_dir=str(tmp_path))
        [a] = first.run_points([task()])
        assert (first.cache_hits, first.cache_misses) == (0, 1)
        second = SweepEngine(cache_dir=str(tmp_path))
        [b] = second.run_points([task()])
        assert (second.cache_hits, second.cache_misses) == (1, 0)
        assert (a.successes, a.trials) == (b.successes, b.trials)

    def test_uncached_engine_counts_nothing(self, dtmb26_chip):
        engine = SweepEngine()
        engine.run_points(
            [EnginePoint(dtmb26_chip, PointSpec("survival", 0.95, 200, 1))]
        )
        assert (engine.cache_hits, engine.cache_misses) == (0, 0)


class TestFoldHook:
    def test_on_fold_reports_in_order_cumulative_counts(self, dtmb26_chip):
        seen = []
        engine = SweepEngine(executor=InlineExecutor(capacity=4))
        task = EnginePoint(
            dtmb26_chip, PointSpec("survival", 0.90, 3000, 21), stop=RULE
        )
        [estimate] = engine.run_points(
            [task], on_fold=lambda i, s, t: seen.append((i, s, t))
        )
        assert seen  # adaptive points stream their folds
        indices = [i for i, _, _ in seen]
        assert indices == sorted(indices)
        trials = [t for _, _, t in seen]
        assert all(a < b for a, b in zip(trials, trials[1:]))
        assert seen[-1][1:] == (estimate.successes, estimate.trials)


class TestDeprecationShim:
    """Old deep imports from ``repro.yieldsim.engine`` keep resolving."""

    @pytest.mark.parametrize(
        "name",
        [
            "SerialExecutor",
            "InlineExecutor",
            "PoolExecutor",
            "_compute_batch",
            "_compute_shard",
            "_structure_from_payload",
        ],
    )
    def test_moved_names_warn_and_resolve(self, name):
        import repro.yieldsim.engine as engine_mod

        with pytest.warns(DeprecationWarning, match=name):
            value = getattr(engine_mod, name)
        assert value is not None

    def test_shim_resolves_to_the_real_objects(self):
        import repro.yieldsim.engine as engine_mod
        import repro.yieldsim.scheduler as scheduler_mod

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert engine_mod._compute_batch is scheduler_mod.compute_chunk
            assert engine_mod.PointScheduler is PointScheduler

    def test_unknown_names_still_raise(self):
        import repro.yieldsim.engine as engine_mod

        with pytest.raises(AttributeError):
            engine_mod.definitely_not_a_name
