"""Tests for the fault taxonomy, injectors and parametric process model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chip.builders import plain_chip
from repro.designs.catalog import DTMB_2_6
from repro.designs.interstitial import build_chip
from repro.errors import FaultModelError
from repro.faults.injection import (
    BernoulliInjector,
    ClusteredInjector,
    FixedCountInjector,
    make_rng,
)
from repro.faults.model import Fault, FaultClass, FaultKind, FaultMap
from repro.faults.parametric import (
    DEFAULT_PROCESS,
    PARYLENE_THICKNESS,
    GeometricParameter,
    ParametricProcess,
)
from repro.geometry.hex import Hex
from repro.geometry.hexgrid import RectRegion


class TestFaultModel:
    def test_classification(self):
        assert FaultKind.DIELECTRIC_BREAKDOWN.fault_class is FaultClass.CATASTROPHIC
        assert FaultKind.ELECTRODE_SHORT.fault_class is FaultClass.CATASTROPHIC
        assert FaultKind.OPEN_CONNECTION.fault_class is FaultClass.CATASTROPHIC
        assert FaultKind.INSULATOR_THICKNESS.fault_class is FaultClass.PARAMETRIC
        assert FaultKind.PLATE_GAP.fault_class is FaultClass.PARAMETRIC

    def test_parametric_fault_needs_deviation(self):
        with pytest.raises(FaultModelError):
            Fault(Hex(0, 0), FaultKind.PLATE_GAP)
        Fault(Hex(0, 0), FaultKind.PLATE_GAP, deviation=0.1)  # fine

    def test_fault_map_dedupes_per_cell(self):
        fm = FaultMap(
            [
                Fault(Hex(0, 0), FaultKind.ELECTRODE_SHORT),
                Fault(Hex(0, 0), FaultKind.OPEN_CONNECTION),
            ]
        )
        assert len(fm) == 1
        assert fm.fault_at(Hex(0, 0)).kind is FaultKind.ELECTRODE_SHORT

    def test_apply_to_unknown_coordinate_rejected(self):
        chip = plain_chip(RectRegion(2, 2))
        fm = FaultMap([Fault(Hex(99, 99), FaultKind.ELECTRODE_SHORT)])
        with pytest.raises(FaultModelError):
            fm.apply_to(chip)

    def test_apply_marks_cells(self):
        chip = plain_chip(RectRegion(3, 3))
        target = chip.coords[4]
        FaultMap([Fault(target, FaultKind.OPEN_CONNECTION)]).apply_to(chip)
        assert chip[target].is_faulty

    def test_partition_and_histogram(self):
        fm = FaultMap(
            [
                Fault(Hex(0, 0), FaultKind.ELECTRODE_SHORT),
                Fault(Hex(1, 0), FaultKind.PLATE_GAP, deviation=0.2),
            ]
        )
        assert len(fm.catastrophic()) == 1
        assert len(fm.parametric()) == 1
        assert fm.by_kind()[FaultKind.PLATE_GAP] == 1


class TestBernoulliInjector:
    def test_probability_bounds(self):
        with pytest.raises(FaultModelError):
            BernoulliInjector(1.5)

    def test_deterministic_from_seed(self):
        chip = plain_chip(RectRegion(10, 10))
        inj = BernoulliInjector(0.9)
        assert inj.sample(chip, seed=42).coords == inj.sample(chip, seed=42).coords

    def test_extreme_probabilities(self):
        chip = plain_chip(RectRegion(5, 5))
        assert len(BernoulliInjector(1.0).sample(chip, seed=1)) == 0
        assert len(BernoulliInjector(0.0).sample(chip, seed=1)) == len(chip)

    def test_empirical_rate(self):
        chip = plain_chip(RectRegion(20, 20))
        inj = BernoulliInjector(0.9)
        total = sum(len(inj.sample(chip, seed=s)) for s in range(50))
        rate = total / (50 * len(chip))
        assert rate == pytest.approx(0.1, abs=0.02)

    def test_survival_matrix_shape_and_rate(self):
        inj = BernoulliInjector(0.8)
        matrix = inj.sample_survival_matrix(200, 300, seed=3)
        assert matrix.shape == (300, 200)
        assert matrix.mean() == pytest.approx(0.8, abs=0.02)

    def test_survival_matrix_validates(self):
        with pytest.raises(FaultModelError):
            BernoulliInjector(0.5).sample_survival_matrix(0, 10)


class TestFixedCountInjector:
    def test_exact_count_distinct_cells(self):
        chip = plain_chip(RectRegion(8, 8))
        fm = FixedCountInjector(7).sample(chip, seed=5)
        assert len(fm) == 7

    def test_count_validation(self):
        with pytest.raises(FaultModelError):
            FixedCountInjector(-1)
        chip = plain_chip(RectRegion(2, 2))
        with pytest.raises(FaultModelError):
            FixedCountInjector(10).sample(chip)

    def test_zero_faults(self):
        chip = plain_chip(RectRegion(2, 2))
        assert len(FixedCountInjector(0).sample(chip, seed=1)) == 0

    def test_uniform_coverage(self):
        # Over many draws every cell should get hit roughly equally.
        chip = plain_chip(RectRegion(6, 6))
        counts = {c: 0 for c in chip.coords}
        inj = FixedCountInjector(6)
        draws = 400
        for s in range(draws):
            for coord in inj.sample(chip, seed=s).coords:
                counts[coord] += 1
        expected = draws * 6 / len(chip)
        for count in counts.values():
            assert abs(count - expected) < expected  # loose 2x band

    def test_fault_indices_matrix(self):
        inj = FixedCountInjector(4)
        picks = inj.sample_fault_indices(50, 20, seed=9)
        assert picks.shape == (20, 4)
        for row in picks:
            assert len(set(row.tolist())) == 4


class TestClusteredInjector:
    def test_spot_kills_neighborhood(self):
        chip = plain_chip(RectRegion(10, 10))
        inj = ClusteredInjector(centers_per_cell=0.01, radius=1)
        # With a positive rate, over several seeds we should observe at
        # least one spot whose cells form a connected cluster.
        found_cluster = False
        for seed in range(30):
            fm = inj.sample(chip, seed=seed)
            if len(fm) >= 5:
                found_cluster = True
                break
        assert found_cluster

    def test_zero_rate_no_faults(self):
        chip = plain_chip(RectRegion(4, 4))
        assert len(ClusteredInjector(0.0).sample(chip, seed=1)) == 0

    def test_radius_zero_kills_single_cells(self):
        chip = plain_chip(RectRegion(6, 6))
        inj = ClusteredInjector(centers_per_cell=0.05, radius=0)
        fm = inj.sample(chip, seed=2)
        # every fault is an isolated kill of the center itself
        assert all(f.coord in chip for f in fm)

    def test_parameter_validation(self):
        with pytest.raises(FaultModelError):
            ClusteredInjector(-0.1)
        with pytest.raises(FaultModelError):
            ClusteredInjector(0.1, radius=-1)


class TestParametricProcess:
    def test_out_of_tolerance_probability_matches_simulation(self):
        param = PARYLENE_THICKNESS
        analytical = param.out_of_tolerance_probability()
        rng = make_rng(7)
        samples = rng.normal(param.nominal, param.sigma, size=200_000)
        empirical = np.mean(np.abs(samples - param.nominal) > param.tolerance)
        assert empirical == pytest.approx(analytical, abs=0.003)

    def test_sample_faults_marks_out_of_tolerance_cells(self):
        chip = build_chip(DTMB_2_6, RectRegion(12, 12))
        # A hair-trigger process: tolerance below one sigma fails often.
        loose = ParametricProcess(
            (
                GeometricParameter(
                    name="test param",
                    kind=PARYLENE_THICKNESS.kind,
                    nominal=1.0,
                    sigma=0.1,
                    tolerance=0.05,
                ),
            )
        )
        fm = loose.sample_faults(chip, seed=3)
        assert len(fm) > 0
        for fault in fm:
            assert fault.deviation is not None
            assert abs(fault.deviation) > 0.05  # relative deviation past tolerance

    def test_cell_failure_probability_composes(self):
        p = DEFAULT_PROCESS.cell_failure_probability()
        individual = [
            param.out_of_tolerance_probability()
            for param in DEFAULT_PROCESS.parameters
        ]
        assert p <= sum(individual) + 1e-12
        assert p >= max(individual) - 1e-12

    def test_invalid_parameters_rejected(self):
        with pytest.raises(FaultModelError):
            GeometricParameter("bad", FaultKind.PLATE_GAP, nominal=-1, sigma=1, tolerance=1)
        with pytest.raises(FaultModelError):
            ParametricProcess(())
