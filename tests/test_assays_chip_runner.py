"""Tests for the diagnostics chip specs and the end-to-end assay runner."""

from __future__ import annotations

import pytest

from repro.assays.chipspec import (
    PAPER_PRIMARY_COUNT,
    PAPER_SPARE_COUNT,
    PAPER_USED_COUNT,
    fabricated_chip,
    redesigned_chip,
)
from repro.assays.library import GLUCOSE_ASSAY, PANEL
from repro.assays.runner import CalibrationCurve, MultiplexedRunner
from repro.assays.chemistry import Species
from repro.errors import AssayError
from repro.faults.injection import FixedCountInjector


class TestFabricatedChip:
    def test_paper_cell_count(self):
        chip = fabricated_chip()
        assert len(chip) == PAPER_USED_COUNT == 108
        assert chip.spare_count == 0

    def test_ports_labeled(self):
        chip = fabricated_chip()
        labels = {c.label for c in chip if c.label}
        assert labels == {"SAMPLE1", "SAMPLE2", "REAGENT1", "REAGENT2"}

    def test_square_adjacency(self):
        chip = fabricated_chip()
        interior = [c for c in chip if chip.degree(c.coord) == 4]
        assert interior  # a 12x9 grid has interior cells


class TestRedesignedChip:
    @pytest.fixture(scope="class")
    def layout(self):
        return redesigned_chip()

    def test_paper_counts(self, layout):
        assert layout.chip.primary_count == PAPER_PRIMARY_COUNT == 252
        assert layout.chip.spare_count == PAPER_SPARE_COUNT == 91
        assert layout.used_count == PAPER_USED_COUNT == 108
        assert len(layout.chip) == 343

    def test_connected(self, layout):
        assert layout.chip.is_connected()

    def test_every_primary_has_an_adjacent_spare(self, layout):
        for cell in layout.chip.primaries():
            assert len(layout.chip.adjacent_spares(cell.coord)) >= 1

    def test_used_cells_are_primaries(self, layout):
        for coord in layout.used:
            assert layout.chip[coord].is_primary

    def test_used_cells_have_two_spares_mostly(self, layout):
        # The used region is interior: all used cells keep both spares.
        counts = [
            len(layout.chip.adjacent_spares(c)) for c in layout.used
        ]
        assert min(counts) >= 1
        assert sum(1 for c in counts if c == 2) / len(counts) > 0.9

    def test_functional_sites_distinct_and_used(self, layout):
        sites = list(layout.ports.values()) + list(layout.mixers) + list(
            layout.detectors
        )
        assert len(sites) == len(set(sites))
        for site in sites:
            assert site in set(layout.used)

    def test_labels_present(self, layout):
        assert layout.chip.cells_labeled("MIXER1")
        assert layout.chip.cells_labeled("DETECTOR1")
        assert layout.chip.cells_labeled("SAMPLE1")

    def test_deterministic_construction(self, layout):
        again = redesigned_chip()
        assert [c.coord for c in again.chip] == [c.coord for c in layout.chip]
        assert again.ports == layout.ports


class TestCalibration:
    def test_monotone_inversion(self):
        cal = CalibrationCurve(GLUCOSE_ASSAY)
        lo, hi = GLUCOSE_ASSAY.reference_range
        for truth in (lo, (lo + hi) / 2, hi):
            contents = {GLUCOSE_ASSAY.analyte: truth / 2}
            contents.update(
                {k: v / 2 for k, v in GLUCOSE_ASSAY.reagent_contents.items()}
            )
            final = GLUCOSE_ASSAY.cascade.simulate(contents, 30.0)
            from repro.assays.detection import OpticalDetector

            measured = cal.concentration(OpticalDetector().measure(final))
            assert measured == pytest.approx(truth, rel=0.02)

    def test_saturated_reading_rejected(self):
        cal = CalibrationCurve(GLUCOSE_ASSAY)
        with pytest.raises(AssayError):
            cal.concentration(1e9)


class TestMultiplexedRunner:
    def test_full_panel_on_clean_chip(self):
        runner = MultiplexedRunner(redesigned_chip())
        truths = {
            Species.GLUCOSE: 5e-3,
            Species.LACTATE: 1.5e-3,
            Species.GLUTAMATE: 1e-4,
            Species.PYRUVATE: 8e-5,
        }
        results = runner.run_panel(truths)
        assert len(results) == 4
        for result in results:
            assert result.relative_error < 0.02
            assert result.in_reference_range
            assert result.droplet_moves > 0

    def test_out_of_range_flagged(self):
        runner = MultiplexedRunner(redesigned_chip())
        results = runner.run_panel({Species.GLUCOSE: 15e-3})  # hyperglycemia
        assert not results[0].in_reference_range

    def test_panel_subset(self):
        runner = MultiplexedRunner(redesigned_chip())
        results = runner.run_panel({Species.LACTATE: 1e-3})
        assert [r.analyte for r in results] == [Species.LACTATE]

    def test_runs_after_repairing_faults(self):
        layout = redesigned_chip()
        FixedCountInjector(10).sample(layout.chip, seed=2005).apply_to(
            layout.chip
        )
        runner = MultiplexedRunner(layout)
        results = runner.run_panel({Species.GLUCOSE: 5e-3})
        assert results[0].relative_error < 0.02

    def test_irreparable_chip_raises(self):
        layout = redesigned_chip()
        # Kill one used cell and every spare around it.
        victim = layout.used[50]
        layout.chip.mark_faulty(victim)
        for spare in layout.chip.adjacent_spares(victim):
            layout.chip.mark_faulty(spare.coord)
        with pytest.raises(AssayError):
            MultiplexedRunner(layout)

    def test_auto_repair_disabled_raises_on_faults(self):
        layout = redesigned_chip()
        layout.chip.mark_faulty(layout.used[0])
        with pytest.raises(AssayError):
            MultiplexedRunner(layout, auto_repair=False)
