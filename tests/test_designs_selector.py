"""Tests for the design selector (target-yield driven design choice)."""

from __future__ import annotations

import pytest

from repro.designs.catalog import DTMB_1_6, DTMB_2_6, DTMB_4_4, TABLE1_DESIGNS
from repro.designs.selector import (
    recommend_design,
    required_survival_probability,
)
from repro.errors import DesignError, SimulationError


class TestRecommendDesign:
    def test_easy_target_picks_cheapest(self):
        # Any design clears 10% yield at p = 0.99; the cheapest (lowest RR)
        # must be chosen.
        rec = recommend_design(0.10, p=0.99, n=60, runs=800, seed=1)
        assert rec.feasible
        assert rec.chosen is DTMB_1_6

    def test_hard_target_needs_heavier_design(self):
        rec = recommend_design(0.95, p=0.94, n=100, runs=1500, seed=2)
        assert rec.feasible
        assert rec.chosen is not DTMB_1_6
        assert float(rec.chosen.redundancy_ratio) >= 0.5

    def test_impossible_target_reports_infeasible(self):
        rec = recommend_design(0.999, p=0.80, n=100, runs=600, seed=3)
        assert not rec.feasible
        assert rec.chosen is None
        assert "no catalog design" in rec.format_report()

    def test_candidates_ordered_by_cost(self):
        rec = recommend_design(0.5, p=0.95, n=60, runs=500, seed=4)
        names = [name for name, _ in rec.candidates]
        assert names == [d.name for d in sorted(
            TABLE1_DESIGNS, key=lambda d: d.redundancy_ratio
        )]

    def test_confident_mode_is_stricter(self):
        # With the CI lower bound required to clear the target, the chosen
        # design can only get heavier (or stay the same).
        loose = recommend_design(
            0.9, p=0.95, n=60, runs=800, seed=5, confident=False
        )
        strict = recommend_design(
            0.9, p=0.95, n=60, runs=800, seed=5, confident=True
        )
        if loose.feasible and strict.feasible:
            assert float(strict.chosen.redundancy_ratio) >= float(
                loose.chosen.redundancy_ratio
            )

    def test_validation(self):
        with pytest.raises(SimulationError):
            recommend_design(0.0, p=0.9)
        with pytest.raises(SimulationError):
            recommend_design(0.9, p=1.5)
        with pytest.raises(DesignError):
            recommend_design(0.9, p=0.9, designs=[])

    def test_report_lists_all_candidates(self):
        rec = recommend_design(0.5, p=0.95, n=60, runs=400, seed=6)
        report = rec.format_report()
        for design in TABLE1_DESIGNS:
            assert design.name in report


class TestRequiredSurvivalProbability:
    def test_heavier_design_tolerates_worse_cells(self):
        p_light = required_survival_probability(
            DTMB_2_6, 0.9, n=60, runs=1200, seed=7
        )
        p_heavy = required_survival_probability(
            DTMB_4_4, 0.9, n=60, runs=1200, seed=7
        )
        assert p_heavy <= p_light + 0.01

    def test_result_actually_achieves_target(self):
        from repro.designs.interstitial import build_with_primary_count
        from repro.yieldsim.montecarlo import YieldSimulator

        target = 0.85
        p_req = required_survival_probability(
            DTMB_2_6, target, n=60, runs=1500, seed=8
        )
        chip = build_with_primary_count(DTMB_2_6, 60).build()
        est = YieldSimulator(chip).run_survival(p_req, runs=4000, seed=9)
        assert est.value >= target - 0.04  # MC noise allowance

    def test_validation(self):
        with pytest.raises(SimulationError):
            required_survival_probability(DTMB_2_6, 1.0)
        with pytest.raises(SimulationError):
            required_survival_probability(DTMB_2_6, 0.0)
