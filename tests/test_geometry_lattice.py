"""Tests for sublattice predicates (the spare-cell patterns)."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.hex import Hex
from repro.geometry.lattice import (
    CongruenceLattice,
    IntersectionLattice,
    lattice_density,
)

hexes = st.builds(Hex, st.integers(-30, 30), st.integers(-30, 30))


class TestCongruenceLattice:
    def test_membership(self):
        lat = CongruenceLattice(a=1, b=3, m=7)
        assert Hex(0, 0) in lat
        assert Hex(7, 0) in lat
        assert Hex(1, 2) in lat  # 1 + 6 = 7
        assert Hex(1, 0) not in lat

    def test_contains_alias(self):
        lat = CongruenceLattice(1, 0, 2)
        assert lat.contains(Hex(2, 5)) == (Hex(2, 5) in lat)

    @given(hexes)
    def test_periodicity(self, h):
        lat = CongruenceLattice(a=1, b=3, m=7)
        assert (h in lat) == (h + Hex(7, 0) in lat)
        assert (h in lat) == (h + Hex(0, 7) in lat)

    def test_density_dtmb16(self):
        assert CongruenceLattice(1, 3, 7).density() == Fraction(1, 7)

    def test_density_dtmb44(self):
        assert CongruenceLattice(1, 0, 2).density() == Fraction(1, 2)

    def test_density_dtmb36(self):
        assert CongruenceLattice(1, -1, 3).density() == Fraction(1, 3)

    def test_density_with_common_factor(self):
        # 2q + 2r ≡ 0 (mod 4) has gcd 2: density 1/2.
        assert CongruenceLattice(2, 2, 4).density() == Fraction(1, 2)

    @given(hexes, hexes)
    def test_translation_moves_membership(self, h, offset):
        lat = CongruenceLattice(1, 2, 4)
        moved = lat.translated(offset)
        assert (h + offset in moved) == (h in lat)

    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            CongruenceLattice(0, 0, 3)
        with pytest.raises(GeometryError):
            CongruenceLattice(4, 0, 4)

    def test_small_modulus_rejected(self):
        with pytest.raises(GeometryError):
            CongruenceLattice(1, 1, 1)


class TestIntersectionLattice:
    def _dtmb26(self):
        return IntersectionLattice(
            [CongruenceLattice(1, 0, 2), CongruenceLattice(0, 1, 2)]
        )

    def test_membership_requires_both(self):
        lat = self._dtmb26()
        assert Hex(0, 0) in lat
        assert Hex(2, 4) in lat
        assert Hex(1, 0) not in lat
        assert Hex(0, 1) not in lat

    def test_density(self):
        assert self._dtmb26().density() == Fraction(1, 4)

    @given(hexes, hexes)
    def test_translation(self, h, offset):
        lat = self._dtmb26()
        moved = lat.translated(offset)
        assert (h + offset in moved) == (h in lat)

    def test_empty_intersection_rejected(self):
        with pytest.raises(GeometryError):
            IntersectionLattice([])


class TestDensityByCounting:
    @pytest.mark.parametrize(
        "a,b,m,expected",
        [(1, 3, 7, Fraction(1, 7)), (1, 2, 4, Fraction(1, 4)), (1, -1, 3, Fraction(1, 3))],
    )
    def test_density_matches_large_window_count(self, a, b, m, expected):
        lat = CongruenceLattice(a, b, m)
        window = 84  # multiple of all moduli involved
        hits = sum(
            1 for q in range(window) for r in range(window) if Hex(q, r) in lat
        )
        assert Fraction(hits, window * window) == expected == lattice_density(lat)
