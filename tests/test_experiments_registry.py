"""Tests for the experiment registry, generic dispatch and artifact pipeline.

Every registered experiment must run at a tiny budget through the generic
dispatcher, its CSV/JSON artifacts must round-trip (headers <-> rows <->
parsed file), and its manifest provenance must record the seed and budget
actually used.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.experiments import registry
from repro.experiments.artifacts import MANIFEST_NAME, ArtifactRun
from repro.experiments.registry import BudgetPolicy, ExperimentResult
from repro.viz.export import read_csv, read_json

TINY_SEED = 77
TINY_RUNS = 60

#: Per-experiment grid shrinks so the whole registry dispatches in seconds.
TINY_KNOBS = {
    "table1": {"sizes": [8, 16]},
    "figs3to6": {"size": 8},
    "fig7": {"ns": [60]},
    "fig9": {"ns": [60], "ps": [0.92, 1.0]},
    "fig10": {"ps": [0.90, 0.99]},
    "fig13": {"ms": [5, 35]},
    "ablation-matching": {"n": 60},
    "ablation-defects": {"n": 60, "expected_faults": (2.0,)},
    "ablation-hexsquare": {"side": 8},
    "targeting": {"n": 60, "targets": (0.50,), "ps": (0.99,)},
    "fig7-clustered": {"n": 60, "ps": (0.92, 1.0)},
    "fig9-clustered": {"ns": [60], "ps": (0.92, 1.0)},
    "scenario-gradient": {"n": 60, "ps": (0.92, 0.99)},
    "fig7-functional": {"n": 60, "ps": (0.92, 1.0)},
    "fig9-functional": {"ns": [60], "ps": (0.92, 1.0)},
    "scenario-multiplexed": {"ps": (0.93, 0.99)},
}


@pytest.fixture(scope="module")
def results():
    """Every experiment executed once through the generic dispatcher."""
    out = {}
    for experiment in registry.all_experiments():
        out[experiment.name] = registry.execute(
            experiment,
            runs=TINY_RUNS,
            seed=TINY_SEED,
            options={"mc_check": True},
            knobs=TINY_KNOBS.get(experiment.name, {}),
        )
    return out


@pytest.fixture(scope="module")
def run_dir(results, tmp_path_factory):
    """An artifact run directory holding every experiment's artifacts."""
    out = tmp_path_factory.mktemp("artifacts")
    run = ArtifactRun(str(out), runs=TINY_RUNS, seed=TINY_SEED)
    for result in results.values():
        run.add(result)
    run.finalize()
    return out


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert registry.names() == [
            "table1",
            "fig2",
            "figs3to6",
            "fig7",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "ablation-matching",
            "ablation-defects",
            "ablation-hexsquare",
            "targeting",
            "fig7-clustered",
            "fig9-clustered",
            "scenario-gradient",
            "fig7-functional",
            "fig9-functional",
            "scenario-multiplexed",
        ]

    def test_alias_resolves(self):
        assert registry.get("design-targeting").name == "targeting"

    def test_unknown_name_lists_known(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="fig9"):
            registry.get("fig99")

    def test_duplicate_registration_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="already registered"):
            registry.register(
                "other", title="x", paper_ref="x", order=999, aliases=("fig9",)
            )(lambda **kwargs: None)

    def test_budget_policies(self):
        assert BudgetPolicy().effective(123, {}) == 123
        assert BudgetPolicy(divisor=5, floor=100).effective(10_000, {}) == 2000
        assert BudgetPolicy(divisor=5, floor=100).effective(50, {}) == 100
        assert BudgetPolicy(deterministic=True).effective(10_000, {}) == 0
        gated = BudgetPolicy(gate="mc_check")
        assert gated.effective(500, {}) == 0
        assert gated.effective(500, {"mc_check": True}) == 500

    def test_budget_policy_resolves_stop_rule(self):
        from repro.yieldsim.stats import StopRule

        rule = StopRule(target_half_width=0.01, min_runs=500, batch_runs=250)
        override = StopRule(target_half_width=0.05)
        capable = BudgetPolicy(stop_rule=rule)
        # Opt-in only: flat unless adaptive is requested.
        assert capable.resolve_stop(False) is None
        assert capable.resolve_stop(True) is rule
        assert capable.resolve_stop(False, override=override) is override
        assert capable.resolve_stop(True, override=override) is override
        # --target-ci re-targets the registered rule, keeping its
        # batching (and therefore the RNG stream and cache identity).
        retargeted = capable.resolve_stop(True, target=0.03)
        assert retargeted.target_half_width == 0.03
        assert retargeted.batch_runs == rule.batch_runs
        assert retargeted.min_runs == rule.min_runs
        # Non-capable experiments stay flat whatever was requested.
        flat = BudgetPolicy()
        assert flat.resolve_stop(True) is None
        assert flat.resolve_stop(True, override=override) is None
        assert flat.resolve_stop(True, target=0.03) is None
        assert capable.adaptive_capable and not flat.adaptive_capable
        assert "--adaptive" in capable.describe()

    def test_sweep_experiments_registered_adaptive_capable(self):
        for name in ("fig7", "fig9", "fig10", "fig13"):
            assert registry.get(name).budget.adaptive_capable, name
        for name in ("table1", "fig2", "figs3to6", "ablation-matching"):
            assert not registry.get(name).budget.adaptive_capable, name


class TestGenericDispatch:
    def test_every_experiment_runs(self, results):
        for name, result in results.items():
            assert isinstance(result, ExperimentResult)
            assert result.report.strip(), name

    def test_tabular_results_carry_consistent_tables(self, results):
        for name, result in results.items():
            if not result.experiment.tabular:
                assert result.headers is None and result.rows is None
                continue
            assert result.headers and result.rows, name
            for row in result.rows:
                assert len(row) == len(result.headers), name

    def test_provenance_records_dispatch(self, results):
        for name, result in results.items():
            prov = result.provenance
            assert prov.experiment == name
            assert prov.seed == TINY_SEED
            assert prov.runs_requested == TINY_RUNS
            assert prov.runs_effective == result.experiment.budget.effective(
                TINY_RUNS, {"mc_check": True}
            )
            assert prov.wall_time_s >= 0
            assert len(prov.digest) == 64 and int(prov.digest, 16) >= 0

    def test_report_matches_direct_driver_call(self):
        """The dispatcher adds nothing to what the driver itself renders."""
        from repro.experiments import table1

        via_registry = registry.execute("table1", runs=50, seed=1).report
        assert via_registry == table1.run().format_report()

    def test_seed_threads_through_to_driver(self):
        a = registry.execute("fig13", runs=80, seed=3, knobs={"ms": [10]})
        b = registry.execute("fig13", runs=80, seed=3, knobs={"ms": [10]})
        c = registry.execute("fig13", runs=80, seed=4, knobs={"ms": [10]})
        assert a.rows == b.rows
        assert a.provenance.digest == b.provenance.digest
        assert c.provenance.seed == 4

    def test_engine_config_recorded(self, tmp_path):
        from repro.yieldsim.engine import SweepEngine

        cache = str(tmp_path / "cache")
        engine = SweepEngine(jobs=1, cache_dir=cache)
        first = registry.execute(
            "fig13", runs=60, seed=9, engine=engine, knobs={"ms": [5, 10]}
        )
        again = registry.execute(
            "fig13", runs=60, seed=9, engine=engine, knobs={"ms": [5, 10]}
        )
        assert first.provenance.engine_cache_dir == cache
        assert first.provenance.cache_misses == 2
        assert again.provenance.cache_hits == 2
        assert again.rows == first.rows

    def test_provenance_records_requested_vs_effective_per_point(self):
        """Flat dispatch: every executed Monte-Carlo point appears in the
        provenance with requested == effective."""
        result = registry.execute("fig13", runs=80, seed=3, knobs={"ms": [5, 10]})
        prov = result.provenance
        assert len(prov.mc_points) == 2
        for kind, param, requested, effective in prov.mc_points:
            assert kind == "fixed" and param in (5, 10)
            assert requested == effective == 80
        assert prov.mc_runs_requested == prov.mc_runs_effective == 160
        assert prov.stop_rule is None

    def test_adaptive_dispatch_records_stop_rule_and_savings(self):
        from repro.yieldsim.stats import StopRule

        rule = StopRule(target_half_width=0.05, min_runs=100, batch_runs=100)
        result = registry.execute(
            "fig13", runs=2000, seed=3, knobs={"ms": [5, 50]}, stop=rule
        )
        prov = result.provenance
        assert prov.stop_rule is not None
        assert prov.stop_rule["target_half_width"] == 0.05
        assert prov.stop_rule["digest"] == rule.digest()
        assert prov.mc_runs_effective < prov.mc_runs_requested == 4000
        for _kind, _param, requested, effective in prov.mc_points:
            assert effective <= requested == 2000
        # The easy point (m=5, yield ~1) stops well before the hard one.
        assert prov.mc_points[0][3] < prov.mc_points[1][3]

    def test_adaptive_option_uses_registered_rule_and_skips_flat_experiments(self):
        adaptive = registry.execute(
            "fig13", runs=2000, seed=3, knobs={"ms": [5]},
            options={"adaptive": True},
        )
        assert adaptive.provenance.stop_rule is not None
        expected = registry.get("fig13").budget.stop_rule
        assert adaptive.provenance.stop_rule["digest"] == expected.digest()
        # Non-capable experiments quietly ignore the option.
        flat = registry.execute(
            "table1", runs=50, seed=1, options={"adaptive": True},
            knobs={"sizes": [8]},
        )
        assert flat.provenance.stop_rule is None


class TestArtifacts:
    def test_manifest_lists_every_experiment(self, run_dir, results):
        manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
        assert sorted(manifest["experiments"]) == sorted(results)
        assert manifest["command"]["seed"] == TINY_SEED
        assert manifest["command"]["runs"] == TINY_RUNS

    def test_tabular_experiments_get_csv_json_pair(self, run_dir, results):
        manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
        for name, result in results.items():
            files = manifest["experiments"][name]["files"]
            assert os.path.exists(run_dir / files["report"])
            if result.experiment.tabular:
                assert files["csv"] == f"{name}/{name}.csv"
                assert files["json"] == f"{name}/{name}.json"
            else:
                assert "csv" not in files and "json" not in files

    def test_csv_roundtrip(self, run_dir, results):
        for name, result in results.items():
            if not result.experiment.tabular:
                continue
            header, rows = read_csv(str(run_dir / name / f"{name}.csv"))
            assert header == list(result.headers)
            assert rows == [[str(v) for v in row] for row in result.rows]

    def test_json_roundtrip_and_provenance(self, run_dir, results):
        for name, result in results.items():
            if not result.experiment.tabular:
                continue
            payload = read_json(str(run_dir / name / f"{name}.json"))
            assert payload["headers"] == list(result.headers)
            got = [[str(v) for v in row] for row in payload["rows"]]
            want = [[str(v) for v in row] for row in result.rows]
            assert got == want
            prov = payload["provenance"]
            assert prov["seed"] == TINY_SEED
            assert prov["digest"] == result.provenance.digest
            # The JSON artifact must be byte-identical across engine
            # configurations and machines: volatile/engine fields live
            # only in manifest.json.
            assert "engine" not in prov and "wall_time_s" not in prov

    def test_manifest_provenance_matches_result(self, run_dir, results):
        manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
        for name, result in results.items():
            prov = manifest["experiments"][name]["provenance"]
            assert prov["seed"] == result.provenance.seed
            assert prov["runs_effective"] == result.provenance.runs_effective
            assert prov["digest"] == result.provenance.digest
            assert prov["engine"]["jobs"] == result.provenance.engine_jobs

    def test_report_artifact_includes_epilogue(self, run_dir, results):
        text = (run_dir / "fig10" / "report.txt").read_text()
        assert "crossovers:" in text

    def test_report_artifact_independent_of_chart_flag(self, tmp_path):
        """report.txt is canonical: --chart must not leak layout art into
        the figs3to6 artifact (bundles stay diffable across flag sets)."""
        texts = []
        for tag, chart in (("a", True), ("b", False)):
            out = tmp_path / tag
            run = ArtifactRun(str(out), runs=0, seed=TINY_SEED)
            run.add(
                registry.execute(
                    "figs3to6",
                    runs=0,
                    seed=TINY_SEED,
                    options={"chart": chart},
                    knobs={"size": 8},
                )
            )
            run.finalize()
            texts.append((out / "figs3to6" / "report.txt").read_text())
        assert texts[0] == texts[1]

    def test_charts_written(self, run_dir):
        assert (run_dir / "fig9" / "chart-n-60.txt").exists()

    def test_bundle_byte_identical_except_manifest(self, tmp_path, results):
        """Equal (runs, seed) bundles differ only in manifest.json, which
        alone carries the volatile wall time / timestamp / cache fields."""
        import filecmp

        dirs = []
        for tag in ("a", "b"):
            out = tmp_path / tag
            run = ArtifactRun(str(out), runs=TINY_RUNS, seed=TINY_SEED)
            result = registry.execute(
                "fig13", runs=TINY_RUNS, seed=TINY_SEED, knobs={"ms": [5, 10]}
            )
            run.add(result)
            run.finalize()
            dirs.append(out)
        match, mismatch, errors = filecmp.cmpfiles(
            dirs[0] / "fig13",
            dirs[1] / "fig13",
            os.listdir(dirs[0] / "fig13"),
            shallow=False,
        )
        assert not mismatch and not errors
        assert {"fig13.csv", "fig13.json", "report.txt"} <= set(match)

    def test_manifest_provenance_lists_per_point_budgets(self, run_dir, results):
        """Satellite: the manifest records requested vs. effective runs for
        every Monte-Carlo point each experiment executed."""
        manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
        budget = manifest["experiments"]["fig13"]["provenance"]["budget"]
        assert budget["points"], "fig13 must log its sweep points"
        for kind, _param, requested, effective in budget["points"]:
            assert kind == "fixed"
            assert requested == TINY_RUNS
            assert effective == TINY_RUNS  # flat dispatch spends the ceiling
        assert budget["mc_runs_requested"] == sum(
            point[2] for point in budget["points"]
        )
        assert budget["mc_runs_effective"] == sum(
            point[3] for point in budget["points"]
        )
        assert budget["stop_rule"] is None

    def test_adaptive_and_flat_bundles_differ_only_where_documented(
        self, tmp_path
    ):
        """Satellite: at equal seed, an adaptive bundle differs from the
        flat one only in the Monte-Carlo values (tables/report/charts) and
        the provenance budget block — same file set, same schema, and the
        adaptive JSON declares its stop rule."""
        bundles = {}
        for tag, options in (("flat", {}), ("adaptive", {"adaptive": True})):
            out = tmp_path / tag
            run = ArtifactRun(str(out), runs=2000, seed=TINY_SEED)
            run.add(
                registry.execute(
                    "fig13", runs=2000, seed=TINY_SEED,
                    options=options, knobs={"ms": [5, 50]},
                )
            )
            run.finalize()
            bundles[tag] = out

        flat_files = sorted(
            p.relative_to(bundles["flat"]).as_posix()
            for p in bundles["flat"].rglob("*") if p.is_file()
        )
        adaptive_files = sorted(
            p.relative_to(bundles["adaptive"]).as_posix()
            for p in bundles["adaptive"].rglob("*") if p.is_file()
        )
        assert flat_files == adaptive_files

        flat_json = read_json(str(bundles["flat"] / "fig13" / "fig13.json"))
        adaptive_json = read_json(str(bundles["adaptive"] / "fig13" / "fig13.json"))
        assert flat_json["headers"] == adaptive_json["headers"]
        assert len(flat_json["rows"]) == len(adaptive_json["rows"])
        flat_prov = flat_json["provenance"]
        adaptive_prov = adaptive_json["provenance"]
        assert flat_prov["stop_rule"] is None
        assert adaptive_prov["stop_rule"] is not None
        assert (
            adaptive_prov["mc_runs_effective"] < flat_prov["mc_runs_effective"]
        )
        # Identical schema: adaptive adds no fields, it only fills them.
        assert sorted(flat_prov) == sorted(adaptive_prov)

    def test_incremental_fill_preserves_entries(self, tmp_path, results):
        out = str(tmp_path / "run")
        first = ArtifactRun(out, runs=TINY_RUNS, seed=TINY_SEED)
        first.add(results["table1"])
        first.finalize()
        second = ArtifactRun(out, runs=TINY_RUNS, seed=TINY_SEED)
        second.add(results["fig2"])
        second.finalize()
        manifest = json.loads(
            open(os.path.join(out, MANIFEST_NAME)).read()
        )
        assert set(manifest["experiments"]) == {"table1", "fig2"}


class TestExportReaders:
    def test_malformed_json_tables_raise_repro_error(self, tmp_path):
        import io

        from repro.errors import ReproError

        for payload in ('{"headers": ["a"], "rows": 5}',
                        '{"headers": ["a"], "rows": [3]}',
                        '{"headers": [], "rows": []}',
                        '{"rows": []}',
                        '[1, 2]'):
            with pytest.raises(ReproError):
                read_json(io.StringIO(payload))

    def test_write_csv_validates_before_opening(self, tmp_path):
        from repro.errors import ReproError
        from repro.viz.export import write_csv

        target = tmp_path / "out.csv"
        with pytest.raises(ReproError):
            write_csv(str(target), ["a", "b"], [(1,)])
        assert not target.exists()  # nothing written on invalid input


class TestCLI:
    def test_list_enumerates_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in registry.names():
            assert name in out
        assert "ablation-hexsquare" in out

    def test_show_describes_experiment(self, capsys):
        assert main(["show", "ablation-hexsquare"]) == 0
        out = capsys.readouterr().out
        assert "Section 3 (ablation)" in out
        assert "ablation_hexsquare.run" in out

    def test_ablation_hexsquare_smoke(self, capsys):
        """Satellite: the hex-vs-square ablation is reachable from the CLI."""
        assert main(["ablation-hexsquare", "--runs", "50", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "hex route advantage" in out
        assert "neighbors per interior cell" in out

    def test_single_experiment_out_dir(self, capsys, tmp_path):
        out = tmp_path / "bundle"
        assert main(
            ["fig2", "--out", str(out)]
        ) == 0
        assert (out / MANIFEST_NAME).exists()
        assert (out / "fig2" / "fig2.csv").exists()
        assert (out / "fig2" / "fig2.json").exists()

    def test_csv_on_report_only_experiment_fails(self, tmp_path, capsys):
        code = main(["fig12", "--csv", str(tmp_path / "nope.csv")])
        assert code == 2
        assert "no tabular data" in capsys.readouterr().err

    def test_all_rejects_csv(self, tmp_path, capsys):
        code = main(["all", "--csv", str(tmp_path / "nope.csv")])
        assert code == 2
        assert "--out" in capsys.readouterr().err

    def test_unknown_show_target_fails_cleanly(self, capsys):
        code = main(["show", "not-an-experiment"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_adaptive_flag_cuts_budget_and_reports(self, capsys, tmp_path):
        out = tmp_path / "bundle"
        assert main(
            ["fig13", "--runs", "2000", "--seed", "5", "--adaptive",
             "--out", str(out)]
        ) == 0
        err = capsys.readouterr().err
        assert "adaptive budget:" in err
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        budget = manifest["experiments"]["fig13"]["provenance"]["budget"]
        assert budget["stop_rule"] is not None
        assert budget["mc_runs_effective"] < budget["mc_runs_requested"]
        assert all(eff <= req for _k, _p, req, eff in budget["points"])

    def test_target_ci_overrides_registered_target(self, capsys):
        assert main(
            ["fig13", "--runs", "1500", "--target-ci", "0.05"]
        ) == 0
        err = capsys.readouterr().err
        assert "adaptive budget:" in err

    def test_target_ci_validation(self, capsys):
        code = main(["fig13", "--target-ci", "-0.5"])
        assert code == 2
        assert "--target-ci" in capsys.readouterr().err

    def test_unwritable_out_fails_cleanly(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        code = main(["fig2", "--out", str(blocker)])
        assert code == 2
        assert "not a directory" in capsys.readouterr().err
