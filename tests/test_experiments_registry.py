"""Tests for the experiment registry, generic dispatch and artifact pipeline.

Every registered experiment must run at a tiny budget through the generic
dispatcher, its CSV/JSON artifacts must round-trip (headers <-> rows <->
parsed file), and its manifest provenance must record the seed and budget
actually used.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.experiments import registry
from repro.experiments.artifacts import MANIFEST_NAME, ArtifactRun
from repro.experiments.registry import BudgetPolicy, ExperimentResult
from repro.viz.export import read_csv, read_json

TINY_SEED = 77
TINY_RUNS = 60

#: Per-experiment grid shrinks so the whole registry dispatches in seconds.
TINY_KNOBS = {
    "table1": {"sizes": [8, 16]},
    "figs3to6": {"size": 8},
    "fig7": {"ns": [60]},
    "fig9": {"ns": [60], "ps": [0.92, 1.0]},
    "fig10": {"ps": [0.90, 0.99]},
    "fig13": {"ms": [5, 35]},
    "ablation-matching": {"n": 60},
    "ablation-defects": {"n": 60, "expected_faults": (2.0,)},
    "ablation-hexsquare": {"side": 8},
    "targeting": {"n": 60, "targets": (0.50,), "ps": (0.99,)},
}


@pytest.fixture(scope="module")
def results():
    """Every experiment executed once through the generic dispatcher."""
    out = {}
    for experiment in registry.all_experiments():
        out[experiment.name] = registry.execute(
            experiment,
            runs=TINY_RUNS,
            seed=TINY_SEED,
            options={"mc_check": True},
            knobs=TINY_KNOBS.get(experiment.name, {}),
        )
    return out


@pytest.fixture(scope="module")
def run_dir(results, tmp_path_factory):
    """An artifact run directory holding every experiment's artifacts."""
    out = tmp_path_factory.mktemp("artifacts")
    run = ArtifactRun(str(out), runs=TINY_RUNS, seed=TINY_SEED)
    for result in results.values():
        run.add(result)
    run.finalize()
    return out


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert registry.names() == [
            "table1",
            "fig2",
            "figs3to6",
            "fig7",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "ablation-matching",
            "ablation-defects",
            "ablation-hexsquare",
            "targeting",
        ]

    def test_alias_resolves(self):
        assert registry.get("design-targeting").name == "targeting"

    def test_unknown_name_lists_known(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="fig9"):
            registry.get("fig99")

    def test_duplicate_registration_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="already registered"):
            registry.register(
                "other", title="x", paper_ref="x", order=999, aliases=("fig9",)
            )(lambda **kwargs: None)

    def test_budget_policies(self):
        assert BudgetPolicy().effective(123, {}) == 123
        assert BudgetPolicy(divisor=5, floor=100).effective(10_000, {}) == 2000
        assert BudgetPolicy(divisor=5, floor=100).effective(50, {}) == 100
        assert BudgetPolicy(deterministic=True).effective(10_000, {}) == 0
        gated = BudgetPolicy(gate="mc_check")
        assert gated.effective(500, {}) == 0
        assert gated.effective(500, {"mc_check": True}) == 500


class TestGenericDispatch:
    def test_every_experiment_runs(self, results):
        for name, result in results.items():
            assert isinstance(result, ExperimentResult)
            assert result.report.strip(), name

    def test_tabular_results_carry_consistent_tables(self, results):
        for name, result in results.items():
            if not result.experiment.tabular:
                assert result.headers is None and result.rows is None
                continue
            assert result.headers and result.rows, name
            for row in result.rows:
                assert len(row) == len(result.headers), name

    def test_provenance_records_dispatch(self, results):
        for name, result in results.items():
            prov = result.provenance
            assert prov.experiment == name
            assert prov.seed == TINY_SEED
            assert prov.runs_requested == TINY_RUNS
            assert prov.runs_effective == result.experiment.budget.effective(
                TINY_RUNS, {"mc_check": True}
            )
            assert prov.wall_time_s >= 0
            assert len(prov.digest) == 64 and int(prov.digest, 16) >= 0

    def test_report_matches_direct_driver_call(self):
        """The dispatcher adds nothing to what the driver itself renders."""
        from repro.experiments import table1

        via_registry = registry.execute("table1", runs=50, seed=1).report
        assert via_registry == table1.run().format_report()

    def test_seed_threads_through_to_driver(self):
        a = registry.execute("fig13", runs=80, seed=3, knobs={"ms": [10]})
        b = registry.execute("fig13", runs=80, seed=3, knobs={"ms": [10]})
        c = registry.execute("fig13", runs=80, seed=4, knobs={"ms": [10]})
        assert a.rows == b.rows
        assert a.provenance.digest == b.provenance.digest
        assert c.provenance.seed == 4

    def test_engine_config_recorded(self, tmp_path):
        from repro.yieldsim.engine import SweepEngine

        cache = str(tmp_path / "cache")
        engine = SweepEngine(jobs=1, cache_dir=cache)
        first = registry.execute(
            "fig13", runs=60, seed=9, engine=engine, knobs={"ms": [5, 10]}
        )
        again = registry.execute(
            "fig13", runs=60, seed=9, engine=engine, knobs={"ms": [5, 10]}
        )
        assert first.provenance.engine_cache_dir == cache
        assert first.provenance.cache_misses == 2
        assert again.provenance.cache_hits == 2
        assert again.rows == first.rows


class TestArtifacts:
    def test_manifest_lists_every_experiment(self, run_dir, results):
        manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
        assert sorted(manifest["experiments"]) == sorted(results)
        assert manifest["command"]["seed"] == TINY_SEED
        assert manifest["command"]["runs"] == TINY_RUNS

    def test_tabular_experiments_get_csv_json_pair(self, run_dir, results):
        manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
        for name, result in results.items():
            files = manifest["experiments"][name]["files"]
            assert os.path.exists(run_dir / files["report"])
            if result.experiment.tabular:
                assert files["csv"] == f"{name}/{name}.csv"
                assert files["json"] == f"{name}/{name}.json"
            else:
                assert "csv" not in files and "json" not in files

    def test_csv_roundtrip(self, run_dir, results):
        for name, result in results.items():
            if not result.experiment.tabular:
                continue
            header, rows = read_csv(str(run_dir / name / f"{name}.csv"))
            assert header == list(result.headers)
            assert rows == [[str(v) for v in row] for row in result.rows]

    def test_json_roundtrip_and_provenance(self, run_dir, results):
        for name, result in results.items():
            if not result.experiment.tabular:
                continue
            payload = read_json(str(run_dir / name / f"{name}.json"))
            assert payload["headers"] == list(result.headers)
            got = [[str(v) for v in row] for row in payload["rows"]]
            want = [[str(v) for v in row] for row in result.rows]
            assert got == want
            prov = payload["provenance"]
            assert prov["seed"] == TINY_SEED
            assert prov["digest"] == result.provenance.digest
            # The JSON artifact must be byte-identical across engine
            # configurations and machines: volatile/engine fields live
            # only in manifest.json.
            assert "engine" not in prov and "wall_time_s" not in prov

    def test_manifest_provenance_matches_result(self, run_dir, results):
        manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
        for name, result in results.items():
            prov = manifest["experiments"][name]["provenance"]
            assert prov["seed"] == result.provenance.seed
            assert prov["runs_effective"] == result.provenance.runs_effective
            assert prov["digest"] == result.provenance.digest
            assert prov["engine"]["jobs"] == result.provenance.engine_jobs

    def test_report_artifact_includes_epilogue(self, run_dir, results):
        text = (run_dir / "fig10" / "report.txt").read_text()
        assert "crossovers:" in text

    def test_report_artifact_independent_of_chart_flag(self, tmp_path):
        """report.txt is canonical: --chart must not leak layout art into
        the figs3to6 artifact (bundles stay diffable across flag sets)."""
        texts = []
        for tag, chart in (("a", True), ("b", False)):
            out = tmp_path / tag
            run = ArtifactRun(str(out), runs=0, seed=TINY_SEED)
            run.add(
                registry.execute(
                    "figs3to6",
                    runs=0,
                    seed=TINY_SEED,
                    options={"chart": chart},
                    knobs={"size": 8},
                )
            )
            run.finalize()
            texts.append((out / "figs3to6" / "report.txt").read_text())
        assert texts[0] == texts[1]

    def test_charts_written(self, run_dir):
        assert (run_dir / "fig9" / "chart-n-60.txt").exists()

    def test_bundle_byte_identical_except_manifest(self, tmp_path, results):
        """Equal (runs, seed) bundles differ only in manifest.json, which
        alone carries the volatile wall time / timestamp / cache fields."""
        import filecmp

        dirs = []
        for tag in ("a", "b"):
            out = tmp_path / tag
            run = ArtifactRun(str(out), runs=TINY_RUNS, seed=TINY_SEED)
            result = registry.execute(
                "fig13", runs=TINY_RUNS, seed=TINY_SEED, knobs={"ms": [5, 10]}
            )
            run.add(result)
            run.finalize()
            dirs.append(out)
        match, mismatch, errors = filecmp.cmpfiles(
            dirs[0] / "fig13",
            dirs[1] / "fig13",
            os.listdir(dirs[0] / "fig13"),
            shallow=False,
        )
        assert not mismatch and not errors
        assert {"fig13.csv", "fig13.json", "report.txt"} <= set(match)

    def test_incremental_fill_preserves_entries(self, tmp_path, results):
        out = str(tmp_path / "run")
        first = ArtifactRun(out, runs=TINY_RUNS, seed=TINY_SEED)
        first.add(results["table1"])
        first.finalize()
        second = ArtifactRun(out, runs=TINY_RUNS, seed=TINY_SEED)
        second.add(results["fig2"])
        second.finalize()
        manifest = json.loads(
            open(os.path.join(out, MANIFEST_NAME)).read()
        )
        assert set(manifest["experiments"]) == {"table1", "fig2"}


class TestExportReaders:
    def test_malformed_json_tables_raise_repro_error(self, tmp_path):
        import io

        from repro.errors import ReproError

        for payload in ('{"headers": ["a"], "rows": 5}',
                        '{"headers": ["a"], "rows": [3]}',
                        '{"headers": [], "rows": []}',
                        '{"rows": []}',
                        '[1, 2]'):
            with pytest.raises(ReproError):
                read_json(io.StringIO(payload))

    def test_write_csv_validates_before_opening(self, tmp_path):
        from repro.errors import ReproError
        from repro.viz.export import write_csv

        target = tmp_path / "out.csv"
        with pytest.raises(ReproError):
            write_csv(str(target), ["a", "b"], [(1,)])
        assert not target.exists()  # nothing written on invalid input


class TestCLI:
    def test_list_enumerates_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in registry.names():
            assert name in out
        assert "ablation-hexsquare" in out

    def test_show_describes_experiment(self, capsys):
        assert main(["show", "ablation-hexsquare"]) == 0
        out = capsys.readouterr().out
        assert "Section 3 (ablation)" in out
        assert "ablation_hexsquare.run" in out

    def test_ablation_hexsquare_smoke(self, capsys):
        """Satellite: the hex-vs-square ablation is reachable from the CLI."""
        assert main(["ablation-hexsquare", "--runs", "50", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "hex route advantage" in out
        assert "neighbors per interior cell" in out

    def test_single_experiment_out_dir(self, capsys, tmp_path):
        out = tmp_path / "bundle"
        assert main(
            ["fig2", "--out", str(out)]
        ) == 0
        assert (out / MANIFEST_NAME).exists()
        assert (out / "fig2" / "fig2.csv").exists()
        assert (out / "fig2" / "fig2.json").exists()

    def test_csv_on_report_only_experiment_fails(self, tmp_path, capsys):
        code = main(["fig12", "--csv", str(tmp_path / "nope.csv")])
        assert code == 2
        assert "no tabular data" in capsys.readouterr().err

    def test_all_rejects_csv(self, tmp_path, capsys):
        code = main(["all", "--csv", str(tmp_path / "nope.csv")])
        assert code == 2
        assert "--out" in capsys.readouterr().err

    def test_unknown_show_target_fails_cleanly(self, capsys):
        code = main(["show", "not-an-experiment"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unwritable_out_fails_cleanly(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        code = main(["fig2", "--out", str(blocker)])
        assert code == 2
        assert "not a directory" in capsys.readouterr().err
