"""Concurrent-writer races on :class:`SharedFSStore`.

The shared store's whole claim is that any number of uncoordinated
writers — separate *processes*, as in a sweep fleet sharing one
filesystem — converge on exactly one object per key, and that a reader
racing those writers sees either nothing or a complete, digest-verified
payload.  These tests hammer one store from several processes and check
both halves of the claim.
"""

from __future__ import annotations

import multiprocessing as mp
import os

from repro.yieldsim.cachestore import (
    SharedFSStore,
    content_digest,
    decode_entry,
    encode_entry,
)

N_PROCS = 6
N_KEYS = 16
ROUNDS = 8


def _payload(i: int) -> bytes:
    return encode_entry({"successes": i, "trials": i + 5, "round": "race"})


def _keys():
    return [(content_digest(_payload(i)), _payload(i)) for i in range(N_KEYS)]


def _writer(root: str, worker: int, out: "mp.Queue") -> None:
    """Repeatedly put every key; report how many puts claimed the write."""
    store = SharedFSStore(root)
    wins = 0
    pairs = _keys()
    for round_no in range(ROUNDS):
        # Stagger the order per worker so collisions hit mid-write, not
        # in lockstep.
        offset = (worker * 5 + round_no) % N_KEYS
        for key, data in pairs[offset:] + pairs[:offset]:
            if store.put(key, data):
                wins += 1
    out.put(("writer", worker, wins))


def _reader(root: str, worker: int, out: "mp.Queue") -> None:
    """Poll every key while writers run; every observed payload must be
    complete and must decode as a valid self-verifying entry."""
    store = SharedFSStore(root)
    pairs = _keys()
    torn = 0
    seen = 0
    for _ in range(ROUNDS * 4):
        for key, data in pairs:
            blob = store.get(key)
            if blob is None:
                continue
            seen += 1
            if blob != data or decode_entry(blob) is None:
                torn += 1
    out.put(("reader", worker, (seen, torn, store.corrupt)))


def test_concurrent_writers_converge_on_one_object_per_key(tmp_path):
    root = str(tmp_path / "shared")
    ctx = mp.get_context("spawn")
    out: mp.Queue = ctx.Queue()
    procs = [
        ctx.Process(target=_writer, args=(root, i, out))
        for i in range(N_PROCS)
    ]
    for proc in procs:
        proc.start()
    results = [out.get(timeout=120) for _ in procs]
    for proc in procs:
        proc.join(timeout=120)
        assert proc.exitcode == 0

    # Every put claimed by exactly one winner per (key, lifetime): the
    # object tree holds one file per key and no stray tmp files.
    total_wins = sum(wins for kind, _, wins in results if kind == "writer")
    assert total_wins == N_KEYS

    store = SharedFSStore(root)
    assert store.list_keys() == sorted(k for k, _ in _keys())
    for key, data in _keys():
        assert store.get(key) == data
    objects = os.path.join(root, "objects")
    for shard in os.listdir(objects):
        for name in os.listdir(os.path.join(objects, shard)):
            assert ".tmp." not in name and not name.endswith(".corrupt")


def test_readers_racing_writers_never_see_torn_objects(tmp_path):
    root = str(tmp_path / "shared")
    ctx = mp.get_context("spawn")
    out: mp.Queue = ctx.Queue()
    writers = [
        ctx.Process(target=_writer, args=(root, i, out))
        for i in range(N_PROCS // 2)
    ]
    readers = [
        ctx.Process(target=_reader, args=(root, i, out))
        for i in range(N_PROCS // 2)
    ]
    for proc in writers + readers:
        proc.start()
    results = [out.get(timeout=120) for _ in writers + readers]
    for proc in writers + readers:
        proc.join(timeout=120)
        assert proc.exitcode == 0

    reader_results = [val for kind, _, val in results if kind == "reader"]
    assert reader_results
    total_seen = sum(seen for seen, _, _ in reader_results)
    assert total_seen > 0  # the race actually overlapped
    for seen, torn, corrupt in reader_results:
        assert torn == 0
        assert corrupt == 0
