"""Within-point run sharding: bit-identity and seed-derivation properties.

Sharded execution claims its result is a pure function of
``(spec, batch size)`` — never of where the batches run.  These tests
sweep a seeded grid of (batch size, shard count, jobs, seed) combinations
(hypothesis-style property checks with explicit examples, so failures are
exactly reproducible) and verify:

* sharded results are bit-identical for arbitrary shard counts, serial or
  parallel;
* ``SeedSequence.spawn``-derived shard seeds never collide — across the
  shards of a point, or across distinct points at any shard index;
* the per-shard seed is constructible in isolation and matches the
  canonical ``SeedSequence(seed).spawn(n)`` derivation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.yieldsim.engine import EnginePoint, SweepEngine
from repro.yieldsim.kernel import (
    PointSpec,
    point_entropy,
    shard_plan,
    shard_seed,
)

RUNS = 1500


class TestShardSeedDerivation:
    def test_matches_canonical_seedsequence_spawn(self):
        for seed in (0, 7, 2005, 2**40 + 1):
            spawned = np.random.SeedSequence(seed).spawn(6)
            for k in range(6):
                ours = shard_seed(seed, k)
                assert (
                    ours.generate_state(4).tolist()
                    == spawned[k].generate_state(4).tolist()
                )

    def test_shard_seeds_never_collide_across_points(self):
        """No (point seed, shard index) pair shares a stream with any
        other — the property that lets every point of a sweep shard
        itself without any cross-point coordination."""
        states = set()
        for point_seed in range(150):
            for index in range(8):
                state = tuple(shard_seed(point_seed, index).generate_state(2))
                assert state not in states, (point_seed, index)
                states.add(state)
        assert len(states) == 150 * 8

    def test_shard_seed_differs_from_parent_stream(self):
        parent = tuple(np.random.SeedSequence(42).generate_state(2))
        child = tuple(shard_seed(42, 0).generate_state(2))
        assert parent != child

    def test_shard_seed_rejects_negative_index(self):
        with pytest.raises(SimulationError):
            shard_seed(1, -1)

    def test_point_entropy_normalization(self):
        assert point_entropy(17) == 17
        assert point_entropy(np.int64(17)) == 17
        a, b = point_entropy(None), point_entropy(None)
        assert a != b  # fresh entropy every time
        with pytest.raises(SimulationError):
            point_entropy(-3)
        with pytest.raises(SimulationError):
            point_entropy(np.random.default_rng(1))
        with pytest.raises(SimulationError):
            point_entropy(True)

    def test_shard_plan_partitions_exactly(self):
        for runs in (1, 99, 100, 101, 1500, 10_007):
            for batch in (1, 7, 100, 256, 1500, 20_000):
                plan = shard_plan(runs, batch)
                assert sum(plan) == runs
                assert all(1 <= size <= batch for size in plan)
                assert len(plan) == -(-runs // batch)  # ceil division
        with pytest.raises(SimulationError):
            shard_plan(0, 10)
        with pytest.raises(SimulationError):
            shard_plan(10, 0)


class TestShardedBitIdentity:
    """Seeded grid: sharded == unsharded-batched == parallel, always."""

    @pytest.mark.parametrize("batch", [128, 500, 1024])
    @pytest.mark.parametrize("seed", [3, 77])
    def test_shard_count_never_changes_survival_result(
        self, dtmb26_chip, batch, seed
    ):
        """All engines below compute the same batch plan from the same
        spawned streams; only the shard unit (and thus shard count)
        varies the schedule, never the fold."""
        reference = SweepEngine(shard_runs=batch).survival_estimates(
            dtmb26_chip, [(0.94, seed)], RUNS
        )[0]
        parallel = SweepEngine(jobs=3, shard_runs=batch).survival_estimates(
            dtmb26_chip, [(0.94, seed)], RUNS
        )[0]
        assert (reference.successes, reference.trials) == (
            parallel.successes,
            parallel.trials,
        )

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_fixed_fault_sharding_identity(self, dtmb26_chip, jobs):
        engine = SweepEngine(jobs=jobs, shard_runs=400)
        estimates = engine.fixed_fault_estimates(
            dtmb26_chip, [(4, 9), (12, 9)], RUNS
        )
        baseline = SweepEngine(shard_runs=400).fixed_fault_estimates(
            dtmb26_chip, [(4, 9), (12, 9)], RUNS
        )
        assert [(e.successes, e.trials) for e in estimates] == [
            (e.successes, e.trials) for e in baseline
        ]

    def test_mixed_sweep_flat_and_sharded_points(self, dtmb26_chip, dtmb16_chip):
        """A sweep mixing legacy flat points (below the shard threshold)
        and sharded ones stays bit-identical across jobs."""
        tasks = [
            EnginePoint(dtmb26_chip, PointSpec("survival", 0.93, 200, 5)),
            EnginePoint(dtmb26_chip, PointSpec("survival", 0.97, RUNS, 6)),
            EnginePoint(dtmb16_chip, PointSpec("survival", 0.95, RUNS, 7)),
            EnginePoint(dtmb16_chip, PointSpec("fixed", 6, 200, 8)),
        ]
        outcomes = []
        for jobs in (1, 3):
            engine = SweepEngine(jobs=jobs, shard_runs=512)
            outcomes.append(
                [(e.successes, e.trials) for e in engine.run_points(tasks)]
            )
        assert outcomes[0] == outcomes[1]
        # The two small points stayed on the legacy path at full budget.
        assert outcomes[0][0][1] == 200 and outcomes[0][3][1] == 200

    def test_sharded_point_below_threshold_uses_legacy_stream(self, dtmb26_chip):
        """shard_runs only reroutes points *bigger* than the threshold:
        smaller points keep the legacy single-stream result."""
        legacy = SweepEngine().survival_estimates(dtmb26_chip, [(0.93, 4)], 600)
        thresholded = SweepEngine(shard_runs=600).survival_estimates(
            dtmb26_chip, [(0.93, 4)], 600
        )
        assert legacy[0].successes == thresholded[0].successes

    def test_single_shard_stream_is_the_spawned_stream(self, dtmb26_chip):
        """A one-batch sharded point equals a point computed directly from
        the spawn-derived generator — pinning the stream definition."""
        from repro.yieldsim.kernel import RepairStructure, survival_successes

        est = SweepEngine(shard_runs=500).survival_estimates(
            dtmb26_chip, [(0.95, 21)], 800
        )[0]
        struct = RepairStructure(dtmb26_chip)
        rng0 = np.random.default_rng(shard_seed(21, 0))
        rng1 = np.random.default_rng(shard_seed(21, 1))
        got0, _ = survival_successes(struct, 0.95, 500, seed=rng0)
        got1, _ = survival_successes(struct, 0.95, 300, seed=rng1)
        assert est.successes == got0 + got1

    def test_shard_runs_validation(self):
        with pytest.raises(SimulationError):
            SweepEngine(shard_runs=0)
