"""Tests for droplets and the electrowetting actuation model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FluidicsError
from repro.fluidics.droplet import Droplet
from repro.fluidics.electrowetting import DEFAULT_MODEL, ElectrowettingModel
from repro.geometry.hex import Hex

volumes = st.floats(min_value=1e-10, max_value=1e-6)
concentrations = st.floats(min_value=0.0, max_value=1.0)


class TestDroplet:
    def test_defaults(self):
        d = Droplet(position=Hex(0, 0))
        assert d.volume == 1e-9
        assert d.concentration("glucose") == 0.0

    def test_validation(self):
        with pytest.raises(FluidicsError):
            Droplet(position=Hex(0, 0), volume=0.0)
        with pytest.raises(FluidicsError):
            Droplet(position=Hex(0, 0), contents={"x": -1.0})

    def test_unique_ids(self):
        a = Droplet(position=Hex(0, 0))
        b = Droplet(position=Hex(1, 0))
        assert a.uid != b.uid

    @given(volumes, volumes, concentrations, concentrations)
    @settings(max_examples=60)
    def test_merge_conserves_moles(self, v1, v2, c1, c2):
        a = Droplet(position=Hex(0, 0), volume=v1, contents={"glucose": c1})
        b = Droplet(position=Hex(1, 0), volume=v2, contents={"glucose": c2})
        merged = a.merged_with(b)
        assert merged.volume == pytest.approx(v1 + v2)
        assert merged.moles("glucose") == pytest.approx(
            a.moles("glucose") + b.moles("glucose")
        )

    def test_merge_unites_species(self):
        a = Droplet(position=Hex(0, 0), contents={"glucose": 1e-3})
        b = Droplet(position=Hex(1, 0), contents={"enzyme": 1e-6})
        merged = a.merged_with(b)
        assert merged.concentration("glucose") == pytest.approx(0.5e-3)
        assert merged.concentration("enzyme") == pytest.approx(0.5e-6)

    def test_merge_position_is_receivers(self):
        a = Droplet(position=Hex(0, 0))
        b = Droplet(position=Hex(1, 0))
        assert a.merged_with(b).position == a.position

    @given(volumes, concentrations)
    @settings(max_examples=40)
    def test_split_halves_volume_keeps_concentration(self, v, c):
        d = Droplet(position=Hex(0, 0), volume=v, contents={"x": c})
        p, q = d.split()
        assert p.volume == pytest.approx(v / 2)
        assert q.volume == pytest.approx(v / 2)
        assert p.concentration("x") == c
        assert q.concentration("x") == c
        assert p.uid != q.uid


class TestElectrowettingModel:
    def test_paper_operating_point(self):
        # 90 V and 20 cm/s are the paper's quoted numbers.
        assert DEFAULT_MODEL.max_voltage == 90.0
        assert DEFAULT_MODEL.velocity(90.0) == pytest.approx(0.20)

    def test_zero_below_threshold(self):
        model = ElectrowettingModel(threshold_voltage=20.0)
        assert model.velocity(0.0) == 0.0
        assert model.velocity(19.9) == 0.0
        assert model.velocity(20.0) == 0.0

    def test_monotone_above_threshold(self):
        vs = [DEFAULT_MODEL.velocity(v) for v in (20, 40, 60, 80, 90)]
        assert vs == sorted(vs)
        assert vs[0] > 0.0

    def test_quadratic_shape(self):
        # Velocity follows (V^2 - Vt^2): doubling the voltage margin more
        # than doubles velocity.
        model = ElectrowettingModel(threshold_voltage=0.0)
        assert model.velocity(60.0) == pytest.approx(
            model.max_velocity * 60.0**2 / 90.0**2
        )

    def test_out_of_range_rejected(self):
        with pytest.raises(FluidicsError):
            DEFAULT_MODEL.velocity(-1.0)
        with pytest.raises(FluidicsError):
            DEFAULT_MODEL.velocity(90.1)

    def test_step_time(self):
        t = DEFAULT_MODEL.step_time(90.0)
        assert t == pytest.approx(DEFAULT_MODEL.pitch / 0.20)
        assert DEFAULT_MODEL.min_step_time() == pytest.approx(t)

    def test_step_time_below_threshold_rejected(self):
        with pytest.raises(FluidicsError):
            DEFAULT_MODEL.step_time(5.0)

    def test_invalid_construction(self):
        with pytest.raises(FluidicsError):
            ElectrowettingModel(max_voltage=-5.0)
        with pytest.raises(FluidicsError):
            ElectrowettingModel(threshold_voltage=100.0, max_voltage=90.0)
        with pytest.raises(FluidicsError):
            ElectrowettingModel(pitch=0.0)
