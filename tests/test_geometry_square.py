"""Tests for the square-electrode grid substrate."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.square import Square, SquareRegion, square_distance

squares = st.builds(Square, st.integers(-30, 30), st.integers(-30, 30))


class TestSquare:
    def test_four_neighbors(self):
        neighbors = Square(2, 3).neighbors()
        assert len(neighbors) == 4
        assert Square(2, 2) in neighbors
        assert Square(3, 3) in neighbors
        assert Square(3, 2) not in neighbors  # no diagonal moves

    @given(squares, squares)
    def test_distance_symmetry(self, a, b):
        assert square_distance(a, b) == square_distance(b, a)

    @given(squares, squares, squares)
    def test_triangle_inequality(self, a, b, c):
        assert square_distance(a, c) <= square_distance(a, b) + square_distance(b, c)

    @given(squares)
    def test_neighbors_at_distance_one(self, a):
        for n in a.neighbors():
            assert a.is_adjacent(n)
            assert square_distance(a, n) == 1

    def test_arithmetic(self):
        assert Square(1, 2) + Square(3, 4) == Square(4, 6)
        assert Square(3, 4) - Square(1, 2) == Square(2, 2)


class TestSquareRegion:
    def test_size_and_iteration_order(self):
        region = SquareRegion(3, 2)
        assert len(region) == 6
        assert list(region)[0] == Square(0, 0)

    def test_membership_with_origin(self):
        region = SquareRegion(2, 2, x0=5, y0=5)
        assert Square(5, 5) in region
        assert Square(0, 0) not in region

    def test_boundary_interior_partition(self):
        region = SquareRegion(5, 5)
        interior = set(region.interior())
        boundary = set(region.boundary())
        assert interior | boundary == set(region.cells)
        assert len(interior) == 9  # the inner 3x3

    def test_neighbors_in_clipped_at_edges(self):
        region = SquareRegion(3, 3)
        assert len(region.neighbors_in(Square(0, 0))) == 2
        assert len(region.neighbors_in(Square(1, 1))) == 4

    def test_is_boundary_raises_outside(self):
        with pytest.raises(GeometryError):
            SquareRegion(2, 2).is_boundary(Square(9, 9))

    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            SquareRegion(0, 3)
