"""Chaos lane: recovery is invisible in the numbers, byte for byte.

The engine's seed-derivation contract makes every compute unit a pure
function of (chip payload, spec, shard seed), so any unit may crash,
hang, return garbage, take its worker process down, or be preempted
mid-sweep — and the recovered run must still produce results
*bit-identical* to an uninterrupted one.  These tests inject each fault
mode deterministically (:class:`~repro.yieldsim.resilience.FaultSchedule`)
and assert exactly that, plus the supporting machinery: fold-level
checkpoint resume, corrupt cache/checkpoint quarantine, pool rebuilds,
and the serving layer's saturation/deadline/promotion/drain behaviour.

Run standalone with ``pytest -m chaos``; the suite also runs in tier 1.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import SimulationError, UnitFailure
from repro.serve import BackgroundServer, ServeConfig
from repro.yieldsim.engine import EnginePoint, SweepEngine
from repro.yieldsim.executors import InlineExecutor, PoolExecutor, SerialExecutor
from repro.yieldsim.kernel import PointSpec
from repro.yieldsim.resilience import (
    FaultInjectingExecutor,
    FaultSchedule,
    InjectedFault,
    Preemption,
    RetryPolicy,
    UnitRunner,
)
from repro.yieldsim.stats import StopRule

pytestmark = pytest.mark.chaos

RUNS = 400

#: A fig7-style flat survival grid: 9 points on one chip = 3 chunks of
#: ``_CHUNK_POINTS=4,4,1`` logical units, so ``crash_every=3`` is
#: guaranteed to fault a unit.
GRID = [(0.90 + 0.01 * i, 11 + i) for i in range(9)]

#: Retries without the production backoff sleeps — determinism is what
#: the lane asserts; wall clock is not part of the contract.
FAST = RetryPolicy(attempts=3, backoff_base=0.0)


def flat_estimates(chip, engine=None):
    engine = engine if engine is not None else SweepEngine()
    return [
        (e.successes, e.trials)
        for e in engine.survival_estimates(chip, GRID, RUNS)
    ]


def faulted_engine(schedule, inner=None, **engine_kwargs):
    inner = inner if inner is not None else SerialExecutor()
    executor = FaultInjectingExecutor(inner, schedule)
    engine = SweepEngine(executor=executor, **engine_kwargs)
    return engine, executor


# -- retry policy semantics ---------------------------------------------------

class TestRetryPolicy:
    def test_backoff_is_a_pure_function_of_the_attempt(self):
        policy = RetryPolicy(
            attempts=5, backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3
        )
        assert [policy.delay(n) for n in range(1, 5)] == [0.1, 0.2, 0.3, 0.3]
        assert policy.delay(0) == 0.0
        # Two evaluations agree exactly: no jitter, no clock reads.
        assert policy.delay(3) == policy.delay(3)

    def test_validation(self):
        with pytest.raises(SimulationError):
            RetryPolicy(attempts=0)
        with pytest.raises(SimulationError):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(SimulationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(SimulationError):
            RetryPolicy(unit_timeout=0.0)
        with pytest.raises(SimulationError):
            RetryPolicy(pool_rebuilds=-1)

    def test_as_dict_round_trips(self):
        policy = RetryPolicy(attempts=4, unit_timeout=1.5)
        assert RetryPolicy(**policy.as_dict()) == policy


# -- flat sweeps under injected faults ---------------------------------------

class TestFlatFaultIdentity:
    """The acceptance grid: fig7-style flat sweep, every fault mode."""

    def test_crash_every_third_unit_retries_bit_identically(self, dtmb26_chip):
        clean = flat_estimates(dtmb26_chip)
        engine, executor = faulted_engine(
            FaultSchedule(crash_every=3), retry=FAST
        )
        assert flat_estimates(dtmb26_chip, engine) == clean
        assert executor.injected.get("crash", 0) >= 1
        assert engine.resilience.retries >= 1
        # The recovery work is attributed to the points the chunk carried.
        assert any(
            record.incidents and record.incidents.get("retries")
            for record in engine.point_log
        )

    def test_corrupt_payloads_are_rejected_and_recomputed(self, dtmb26_chip):
        clean = flat_estimates(dtmb26_chip)
        engine, executor = faulted_engine(
            FaultSchedule(corrupt_every=1), retry=FAST
        )
        assert flat_estimates(dtmb26_chip, engine) == clean
        assert executor.injected.get("corrupt", 0) >= 3
        assert engine.resilience.corrupt_units >= 3
        assert engine.resilience.retries >= 3

    def test_without_a_policy_the_first_crash_propagates(self, dtmb26_chip):
        engine, _ = faulted_engine(FaultSchedule(crash_every=1))
        with pytest.raises(InjectedFault):
            engine.survival_estimates(dtmb26_chip, GRID, RUNS)

    def test_exhausted_attempts_raise_unit_failure(self, dtmb26_chip):
        engine, _ = faulted_engine(
            FaultSchedule(crash_every=1, fault_attempts=99),
            retry=RetryPolicy(attempts=2, backoff_base=0.0),
        )
        with pytest.raises(UnitFailure):
            engine.survival_estimates(dtmb26_chip, GRID, RUNS)


# -- pool survival ------------------------------------------------------------

class TestPoolSurvival:
    def test_killed_worker_breaks_then_rebuilds_the_pool(self, dtmb26_chip):
        clean = flat_estimates(dtmb26_chip)
        inner = PoolExecutor(jobs=2)
        engine, executor = faulted_engine(
            FaultSchedule(kill_every=3), inner=inner, retry=FAST
        )
        assert flat_estimates(dtmb26_chip, engine) == clean
        assert executor.injected.get("kill", 0) >= 1
        assert engine.resilience.pool_rebuilds >= 1
        assert inner.rebuilds >= 1

    def test_hung_unit_times_out_and_is_retried(self, dtmb26_chip):
        clean = flat_estimates(dtmb26_chip)
        inner = PoolExecutor(jobs=2)
        schedule = FaultSchedule(hang_every=3)
        executor = FaultInjectingExecutor(inner, schedule, hang_seconds=5.0)
        engine = SweepEngine(
            executor=executor,
            retry=RetryPolicy(attempts=3, backoff_base=0.0, unit_timeout=0.25),
        )
        assert flat_estimates(dtmb26_chip, engine) == clean
        assert engine.resilience.timeouts >= 1
        assert engine.resilience.retries >= 1

    def test_late_but_complete_result_is_kept_serially(self, dtmb26_chip):
        # A serial executor computes inside submit(), so a "hang" merely
        # finishes late: the incident is counted, the value kept.
        clean = flat_estimates(dtmb26_chip)
        schedule = FaultSchedule(hang_every=3)
        executor = FaultInjectingExecutor(
            SerialExecutor(), schedule, hang_seconds=0.05
        )
        engine = SweepEngine(
            executor=executor,
            retry=RetryPolicy(attempts=3, backoff_base=0.0, unit_timeout=0.01),
        )
        assert flat_estimates(dtmb26_chip, engine) == clean
        assert engine.resilience.timeouts >= 1


# -- fold-level checkpoint resume ---------------------------------------------

#: An adaptive (fig9-style) point hard enough that its stop rule never
#: fires before the preemption point: 10 folds of 200 runs.
ADAPTIVE_RULE = StopRule(target_half_width=0.005, min_runs=200, batch_runs=200)


def adaptive_point(chip):
    return EnginePoint(
        chip, PointSpec("survival", 0.93, 2000, 7), None, ADAPTIVE_RULE
    )


class TestCheckpointResume:
    def test_preempted_adaptive_point_resumes_byte_identically(
        self, dtmb26_chip, tmp_path
    ):
        cache = str(tmp_path / "cache")
        [clean] = SweepEngine().run_points([adaptive_point(dtmb26_chip)])

        # Preempt the run after two submitted folds: the journal must
        # hold exactly those folds when the "process" dies.
        engine, _ = faulted_engine(
            FaultSchedule(preempt_after=2),
            cache_dir=cache, checkpoint=True,
        )
        with pytest.raises(Preemption):
            engine.run_points([adaptive_point(dtmb26_chip)])
        checkpoints = list((tmp_path / "cache").glob("*.ckpt.json"))
        assert len(checkpoints) == 1

        # A fresh process resumes from the journal, skips the completed
        # folds, and lands on the identical estimate.
        resumed_engine = SweepEngine(cache_dir=cache, checkpoint=True)
        [resumed] = resumed_engine.run_points([adaptive_point(dtmb26_chip)])
        assert (resumed.successes, resumed.trials) == (
            clean.successes,
            clean.trials,
        )
        assert resumed_engine.resilience.checkpoint_resumes == 1
        assert resumed_engine.resilience.folds_resumed == 2
        # The journal is cleared once the point completes (the cache
        # entry takes over).
        assert not list((tmp_path / "cache").glob("*.ckpt.json"))

        # And a third run is a pure cache hit — still identical.
        third_engine = SweepEngine(cache_dir=cache, checkpoint=True)
        [third] = third_engine.run_points([adaptive_point(dtmb26_chip)])
        assert (third.successes, third.trials) == (clean.successes, clean.trials)
        assert third_engine.cache_hits == 1

    def test_corrupt_checkpoint_is_quarantined_not_trusted(
        self, dtmb26_chip, tmp_path
    ):
        cache = str(tmp_path / "cache")
        [clean] = SweepEngine().run_points([adaptive_point(dtmb26_chip)])
        engine, _ = faulted_engine(
            FaultSchedule(preempt_after=2), cache_dir=cache, checkpoint=True
        )
        with pytest.raises(Preemption):
            engine.run_points([adaptive_point(dtmb26_chip)])
        [ckpt] = list((tmp_path / "cache").glob("*.ckpt.json"))
        # Flip the journal's content without keeping its digest honest.
        data = json.loads(ckpt.read_text())
        data["successes"] = int(data["successes"]) + 1
        ckpt.write_text(json.dumps(data))

        resumed_engine = SweepEngine(cache_dir=cache, checkpoint=True)
        [resumed] = resumed_engine.run_points([adaptive_point(dtmb26_chip)])
        assert (resumed.successes, resumed.trials) == (
            clean.successes,
            clean.trials,
        )
        assert resumed_engine.resilience.checkpoint_resumes == 0
        assert resumed_engine.resilience.quarantined >= 1
        assert list((tmp_path / "cache").glob("*.ckpt.json.corrupt"))

    def test_preemption_under_fault_storm_still_resumes(
        self, dtmb26_chip, tmp_path
    ):
        """Crashes *and* a preemption in one run: the survivors' journal
        is still enough for a byte-identical resume."""
        cache = str(tmp_path / "cache")
        [clean] = SweepEngine().run_points([adaptive_point(dtmb26_chip)])
        engine, _ = faulted_engine(
            FaultSchedule(crash_every=2, preempt_after=4),
            cache_dir=cache, checkpoint=True, retry=FAST,
        )
        with pytest.raises(Preemption):
            engine.run_points([adaptive_point(dtmb26_chip)])
        resumed_engine = SweepEngine(cache_dir=cache, checkpoint=True)
        [resumed] = resumed_engine.run_points([adaptive_point(dtmb26_chip)])
        assert (resumed.successes, resumed.trials) == (
            clean.successes,
            clean.trials,
        )
        assert resumed_engine.resilience.checkpoint_resumes == 1


# -- cache read-path hardening ------------------------------------------------

class TestCacheQuarantine:
    def _populate(self, chip, cache_dir):
        engine = SweepEngine(cache_dir=cache_dir)
        reference = flat_estimates(chip, engine)
        return reference

    def test_truncated_entries_quarantine_and_recompute(
        self, dtmb26_chip, tmp_path
    ):
        cache = tmp_path / "cache"
        reference = self._populate(dtmb26_chip, str(cache))
        entries = [p for p in cache.iterdir() if p.suffix == ".json"]
        assert entries
        for path in entries:
            path.write_text("{\"truncated\": tru")

        engine = SweepEngine(cache_dir=str(cache))
        assert flat_estimates(dtmb26_chip, engine) == reference
        assert engine.cache_hits == 0
        assert engine.resilience.quarantined == len(entries)
        corpses = [p for p in cache.iterdir() if p.name.endswith(".corrupt")]
        assert len(corpses) == len(entries)

    def test_digest_mismatch_quarantines_valid_json(
        self, dtmb26_chip, tmp_path
    ):
        cache = tmp_path / "cache"
        reference = self._populate(dtmb26_chip, str(cache))
        [victim] = [p for p in cache.iterdir() if p.suffix == ".json"][:1]
        data = json.loads(victim.read_text())
        # Valid JSON, plausible shape, silently wrong numbers: exactly
        # what bit-rot produces.  The digest must catch it.
        data["successes"] = int(data["successes"]) + 1
        victim.write_text(json.dumps(data))

        engine = SweepEngine(cache_dir=str(cache))
        assert flat_estimates(dtmb26_chip, engine) == reference
        assert engine.resilience.quarantined >= 1

    def test_quarantine_never_raises_to_the_caller(self, dtmb26_chip, tmp_path):
        cache = tmp_path / "cache"
        self._populate(dtmb26_chip, str(cache))
        for path in cache.iterdir():
            path.write_bytes(b"\x00\xff garbage")
        # A cache full of garbage behaves exactly like an empty cache.
        engine = SweepEngine(cache_dir=str(cache))
        estimates = flat_estimates(dtmb26_chip, engine)
        assert len(estimates) == len(GRID)


# -- the runner itself --------------------------------------------------------

def _identity(x):
    return x


class TestUnitRunner:
    def test_collect_returns_validated_values(self):
        executor = InlineExecutor(capacity=4)
        executor.start(4)
        runner = UnitRunner(executor, FAST)
        for i in range(4):
            runner.submit(("tok", i), _identity, (i,))
        got = {}
        while len(runner):
            got.update(dict(runner.collect()))
        assert got == {("tok", i): i for i in range(4)}

    def test_validator_rejection_counts_and_retries(self):
        executor = FaultInjectingExecutor(
            InlineExecutor(capacity=1), FaultSchedule(corrupt_every=1)
        )
        executor.start(1)
        runner = UnitRunner(executor, FAST)
        runner.submit("unit", _identity, ((7,),), validator=lambda v: v == (7,))
        [(token, value)] = runner.collect()
        assert (token, value) == ("unit", (7,))
        assert runner.stats.corrupt_units == 1
        assert runner.incidents["unit"]["corrupt_units"] == 1

    def test_no_rebuild_hook_fails_cleanly(self):
        class BrokenSubmit:
            name, capacity = "broken", 1

            def start(self, units_hint):
                pass

            def submit(self, fn, *args):
                from concurrent.futures import BrokenExecutor

                raise BrokenExecutor("pool is gone")

        runner = UnitRunner(BrokenSubmit(), FAST)
        with pytest.raises(UnitFailure):
            runner.submit("unit", _identity, (1,))


# -- serving under pressure ---------------------------------------------------

RUNS_SERVE = 200
POINT_BODY = {
    "kind": "survival", "param": 0.95, "runs": RUNS_SERVE, "seed": 5,
    "design": "DTMB(2,6)", "n": 60,
}


def http_raw(base, path, body=None, timeout=120):
    """(status, headers dict, parsed JSON body), errors included."""
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        base + path, data=data, method="POST" if body is not None else "GET"
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, dict(response.headers), json.loads(
                response.read()
            )
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


class GatedEngine(SweepEngine):
    """Holds every computation until the test opens the gate."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.gate = threading.Event()

    def run_points(self, tasks, on_fold=None):
        assert self.gate.wait(timeout=60), "test never opened the gate"
        return super().run_points(tasks, on_fold=on_fold)


def _wait_until(predicate, timeout=30):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestServeResilience:
    def test_health_reports_the_resilience_stack(self, tmp_path):
        config = ServeConfig(
            port=0,
            cache_dir=str(tmp_path / "cache"),
            checkpoint=True,
            retry=RetryPolicy(attempts=5, unit_timeout=30.0),
        )
        with BackgroundServer(config) as handle:
            url = f"http://127.0.0.1:{handle.port}"
            status, _, health = http_raw(url, "/health")
            assert status == 200
            assert health["status"] == "ok"
            assert health["retry"]["attempts"] == 5
            assert health["checkpoint"]["enabled"] is True
            assert health["executor"]["jobs"] == 1
            assert health["saturated"] is False
            assert set(health["resilience"]) >= {"retries", "pool_rebuilds"}

    def test_saturation_rejects_with_503_and_retry_after(self):
        engine = GatedEngine()
        config = ServeConfig(port=0, max_inflight=1, retry_after_s=2.0)
        with BackgroundServer(config, engine=engine) as handle:
            url = f"http://127.0.0.1:{handle.port}"
            results = []

            def leader():
                results.append(http_raw(url, "/points", POINT_BODY, timeout=300))

            thread = threading.Thread(target=leader)
            thread.start()
            assert _wait_until(lambda: len(handle.server.points) == 1)
            # Distinct request while saturated: refused, not queued.
            status, headers, error = http_raw(
                url, "/points", dict(POINT_BODY, seed=6)
            )
            assert status == 503
            assert error["error"] == "ServiceUnavailable"
            assert headers.get("Retry-After") == "2"
            # Joining the *existing* computation is always admitted.
            engine.gate.set()
            thread.join(timeout=300)
            [(status, _, _)] = results
            assert status == 200
            assert handle.server.rejected == 1

    def test_request_deadline_expires_into_503_compute_survives(self, tmp_path):
        engine = GatedEngine(cache_dir=str(tmp_path / "cache"))
        config = ServeConfig(port=0, request_timeout=0.3, retry_after_s=1.0)
        with BackgroundServer(config, engine=engine) as handle:
            url = f"http://127.0.0.1:{handle.port}"
            status, headers, error = http_raw(url, "/points", POINT_BODY)
            assert status == 503
            assert error["error"] == "ServiceUnavailable"
            assert "Retry-After" in headers
            # The leader's computation was not cancelled: open the gate
            # and the same request is eventually answered (via the entry
            # or the cache it fills).
            engine.gate.set()
            assert _wait_until(
                lambda: http_raw(url, "/points", POINT_BODY)[0] == 200,
                timeout=60,
            )

    def test_waiters_are_re_led_when_the_leader_dies(self):
        class FailOnceEngine(GatedEngine):
            def __init__(self, **kwargs):
                super().__init__(**kwargs)
                self.calls = 0
                self.lock = threading.Lock()

            def run_points(self, tasks, on_fold=None):
                assert self.gate.wait(timeout=60)
                with self.lock:
                    self.calls += 1
                    first = self.calls == 1
                if first:
                    raise RuntimeError("leader evicted mid-compute")
                return SweepEngine.run_points(self, tasks, on_fold=on_fold)

        engine = FailOnceEngine()
        with BackgroundServer(ServeConfig(port=0), engine=engine) as handle:
            url = f"http://127.0.0.1:{handle.port}"
            results = []

            def request():
                results.append(http_raw(url, "/points", POINT_BODY, timeout=300))

            threads = [threading.Thread(target=request) for _ in range(2)]
            for thread in threads:
                thread.start()
            assert _wait_until(lambda: handle.server.points.followers == 1)
            engine.gate.set()
            for thread in threads:
                thread.join(timeout=300)
            statuses = [status for status, _, _ in results]
            # A non-deterministic leader death is retried for *every*
            # waiter: both re-join, one re-leads, everyone gets a real
            # answer — the computation ran exactly twice, not three times.
            assert statuses == [200, 200]
            assert handle.server.points.promotions == 2
            assert engine.calls == 2

    def test_stop_drains_inflight_requests_before_exiting(self, tmp_path):
        engine = GatedEngine(cache_dir=str(tmp_path / "cache"))
        config = ServeConfig(port=0, drain_timeout=30.0)
        handle = BackgroundServer(config, engine=engine).start()
        url = f"http://127.0.0.1:{handle.port}"
        results = []

        def request():
            results.append(http_raw(url, "/points", POINT_BODY, timeout=300))

        thread = threading.Thread(target=request)
        thread.start()
        assert _wait_until(lambda: handle.server.active >= 1)

        stopper = threading.Thread(target=lambda: handle.stop(deadline=60))
        stopper.start()
        time.sleep(0.2)  # shutdown initiated while the request is in flight
        engine.gate.set()
        thread.join(timeout=300)
        stopper.join(timeout=300)
        assert not handle._thread.is_alive()
        [(status, _, payload)] = results
        # The in-flight request was drained to completion, not dropped.
        assert status == 200
        assert payload["trials"] == RUNS_SERVE
