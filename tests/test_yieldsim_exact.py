"""Tests for exact yield enumeration — the Monte-Carlo ground truth."""

from __future__ import annotations

import pytest

from repro.chip.biochip import Biochip
from repro.chip.cell import Cell, CellRole
from repro.designs.catalog import DTMB_2_6
from repro.designs.interstitial import build_chip, build_flower_chip
from repro.errors import SimulationError
from repro.geometry.hex import Hex
from repro.geometry.hexgrid import RectRegion
from repro.yieldsim.analytical import dtmb16_yield, yield_no_redundancy
from repro.yieldsim.exact import MAX_EXACT_CELLS, exact_yield
from repro.yieldsim.montecarlo import YieldSimulator


def flower():
    cells = [Cell(Hex(0, 0), CellRole.SPARE)]
    cells += [Cell(n, CellRole.PRIMARY) for n in Hex(0, 0).neighbors()]
    return Biochip(cells, name="flower")


class TestExactAgainstClosedForms:
    def test_no_redundancy_chip(self):
        chip = Biochip([Cell(Hex(i, 0)) for i in range(6)])
        for p in (0.8, 0.95, 0.99):
            assert exact_yield(chip, p) == pytest.approx(
                yield_no_redundancy(p, 6)
            )

    def test_single_flower_matches_formula(self):
        chip = flower()
        for p in (0.7, 0.9, 0.99):
            # Yc = p^7 + 7 p^6 q, exactly.
            q = 1 - p
            assert exact_yield(chip, p) == pytest.approx(p**7 + 7 * p**6 * q)

    @pytest.mark.parametrize("n", [6, 12, 18])
    def test_flower_chips_match_cluster_model(self, n):
        chip = build_flower_chip(n)
        for p in (0.9, 0.97):
            assert exact_yield(chip, p) == pytest.approx(dtmb16_yield(p, n))

    def test_extremes(self):
        chip = flower()
        assert exact_yield(chip, 1.0) == pytest.approx(1.0)
        assert exact_yield(chip, 0.0) == pytest.approx(0.0)


class TestExactAgainstMonteCarlo:
    def test_dtmb26_small_array(self):
        chip = build_chip(DTMB_2_6, RectRegion(4, 5))  # 20 cells
        p = 0.92
        truth = exact_yield(chip, p)
        estimate = YieldSimulator(chip).run_survival(p, runs=20_000, seed=5)
        assert estimate.consistent_with(truth)

    def test_needed_subset(self):
        chip = build_chip(DTMB_2_6, RectRegion(4, 4))
        needed = [c.coord for c in chip.primaries()][:4]
        p = 0.9
        truth = exact_yield(chip, p, needed=needed)
        full = exact_yield(chip, p)
        # Protecting fewer cells can only raise yield.
        assert truth >= full
        estimate = YieldSimulator(chip, needed=needed).run_survival(
            p, runs=20_000, seed=6
        )
        assert estimate.consistent_with(truth)


class TestExactValidation:
    def test_size_cap(self):
        chip = build_chip(DTMB_2_6, RectRegion(8, 8))
        assert len(chip) > MAX_EXACT_CELLS
        with pytest.raises(SimulationError):
            exact_yield(chip, 0.95)

    def test_probability_bounds(self):
        with pytest.raises(SimulationError):
            exact_yield(flower(), 1.5)

    def test_needed_must_be_primary(self):
        chip = flower()
        with pytest.raises(SimulationError):
            exact_yield(chip, 0.9, needed=[Hex(0, 0)])  # the spare

    def test_monotone_in_p(self):
        chip = build_chip(DTMB_2_6, RectRegion(4, 4))
        ys = [exact_yield(chip, p) for p in (0.8, 0.9, 0.95, 0.99)]
        assert ys == sorted(ys)
