"""Property-based tests of the repair engine's core invariants.

Hypothesis drives random fault maps on random footprints; every invariant
here is something the paper's method silently relies on:

* a computed plan is always *valid* (locality, roles, health, no
  double-booking) — whatever the faults;
* completeness verdicts agree between Kuhn and Hopcroft-Karp;
* the verdict matches a brute-force optimum on small instances;
* repairing is monotone: removing a fault never turns a repairable chip
  irreparable.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs.catalog import ALL_DESIGNS, DTMB_2_6
from repro.designs.interstitial import build_chip
from repro.geometry.hexgrid import RectRegion
from repro.reconfig.bipartite import (
    BipartiteGraph,
    hopcroft_karp,
    kuhn_matching,
    saturates_left,
)
from repro.reconfig.local import build_repair_graph, is_repairable, plan_local_repair
from repro.reconfig.remap import CellRemap

# Small DTMB(2,6) array reused across examples (construction is pure).
_REGION = RectRegion(7, 7)


def _chip_with_faults(fault_indices):
    chip = build_chip(DTMB_2_6, _REGION)
    coords = chip.coords
    for i in fault_indices:
        chip.mark_faulty(coords[i % len(coords)])
    return chip


fault_sets = st.sets(st.integers(0, 48), max_size=12)


class TestPlanValidity:
    @given(fault_sets)
    @settings(max_examples=120, deadline=None)
    def test_any_plan_validates(self, faults):
        chip = _chip_with_faults(faults)
        plan = plan_local_repair(chip)
        plan.validate_against(chip)  # raises on any violation

    @given(fault_sets)
    @settings(max_examples=120, deadline=None)
    def test_plan_covers_exactly_when_saturating(self, faults):
        chip = _chip_with_faults(faults)
        plan = plan_local_repair(chip)
        covered = set(plan.assignment) | set(plan.unrepaired)
        assert covered == {c.coord for c in chip.faulty_primaries()}

    @given(fault_sets)
    @settings(max_examples=80, deadline=None)
    def test_algorithms_agree_on_completeness(self, faults):
        chip = _chip_with_faults(faults)
        a = plan_local_repair(chip, algorithm="kuhn")
        b = plan_local_repair(chip, algorithm="hopcroft-karp")
        assert a.complete == b.complete
        assert len(a.assignment) == len(b.assignment)

    @given(fault_sets)
    @settings(max_examples=60, deadline=None)
    def test_remap_is_injective(self, faults):
        chip = _chip_with_faults(faults)
        plan = plan_local_repair(chip)
        if not plan.complete:
            return
        remap = CellRemap(chip, plan)
        images = [
            remap.physical(c.coord)
            for c in chip.primaries()
            if c.coord not in remap.dead_cells
        ]
        assert len(images) == len(set(images))


class TestVerdictCorrectness:
    @given(st.sets(st.integers(0, 48), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_matches_bruteforce_assignment(self, faults):
        # Exhaustively try all injective spare assignments for up to 5
        # faulty primaries; compare with the matching verdict.
        chip = _chip_with_faults(faults)
        faulty = [c.coord for c in chip.faulty_primaries()]
        options = [
            [
                s.coord
                for s in chip.adjacent_spares(f)
                if chip[s.coord].is_good
            ]
            for f in faulty
        ]
        bruteforce = False
        if all(options):
            for combo in itertools.product(*options):
                if len(set(combo)) == len(combo):
                    bruteforce = True
                    break
        else:
            bruteforce = False if faulty else True
        if not faulty:
            bruteforce = True
        assert is_repairable(chip) == bruteforce


class TestMonotonicity:
    @given(st.sets(st.integers(0, 48), min_size=2, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_removing_a_fault_never_hurts(self, faults):
        chip = _chip_with_faults(faults)
        if is_repairable(chip):
            return  # removing faults keeps it repairable trivially
        # Heal one fault: verdict may flip to repairable but a repairable
        # chip can never become irreparable (superset monotonicity).
        coords = chip.coords
        healed = _chip_with_faults(set(list(faults)[1:]))
        sub = _chip_with_faults(set(list(faults)[1:]))
        assert is_repairable(sub) == is_repairable(healed)

    @given(fault_sets)
    @settings(max_examples=60, deadline=None)
    def test_adding_a_spare_fault_only_restricts(self, faults):
        chip = _chip_with_faults(faults)
        before = is_repairable(chip)
        # Break one more spare.
        good_spares = chip.good_spares()
        if not good_spares:
            return
        chip.mark_faulty(good_spares[0].coord)
        after = is_repairable(chip)
        if not before:
            assert not after


class TestEveryDesignRepairsSingleFaults:
    @given(st.integers(0, 200))
    @settings(max_examples=60, deadline=None)
    def test_single_interior_fault_always_repairable(self, pick):
        for spec in ALL_DESIGNS:
            chip = build_chip(spec, RectRegion(10, 10))
            interior = [
                c.coord
                for c in chip.primaries()
                if not chip.is_boundary(c.coord)
            ]
            victim = interior[pick % len(interior)]
            chip.mark_faulty(victim)
            assert is_repairable(chip), spec.name
            chip.clear_faults()
