"""Tests for the design-targeting experiment driver."""

from __future__ import annotations

import pytest

from repro.experiments import design_targeting


@pytest.fixture(scope="module")
def result():
    return design_targeting.run(
        n=60,
        targets=(0.50, 0.90),
        ps=(0.93, 0.99),
        runs=800,
        seed=11,
    )


class TestTargeting:
    def test_grid_complete(self, result):
        for p in result.ps:
            for target in result.targets:
                assert result.choice(p, target) in (
                    "DTMB(1,6)",
                    "DTMB(2,6)",
                    "DTMB(3,6)",
                    "DTMB(4,4)",
                    "-",
                )

    def test_easy_corner_is_cheap(self, result):
        assert result.choice(0.99, 0.50) == "DTMB(1,6)"

    def test_harder_targets_never_cheaper(self, result):
        order = {
            "DTMB(1,6)": 0,
            "DTMB(2,6)": 1,
            "DTMB(3,6)": 2,
            "DTMB(4,4)": 3,
            "-": 4,
        }
        for p in result.ps:
            ranks = [order[result.choice(p, t)] for t in result.targets]
            assert ranks == sorted(ranks)

    def test_report_renders(self, result):
        text = result.format_report()
        assert "Y>=0.90" in text
        assert "0.93" in text
