"""Public-API surface checks: exports exist, subpackages import cleanly."""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.geometry",
    "repro.chip",
    "repro.designs",
    "repro.faults",
    "repro.reconfig",
    "repro.yieldsim",
    "repro.fluidics",
    "repro.dft",
    "repro.assays",
    "repro.viz",
    "repro.experiments",
    "repro.cli",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


def test_version():
    import repro

    assert repro.__version__ == "1.1.0"


def test_error_hierarchy_rooted():
    import repro.errors as errors

    for name in errors.__all__:
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError) or exc is errors.ReproError


def test_layering_no_upward_imports():
    # The geometry substrate must not depend on anything above it.
    import repro.geometry.hex as hexmod
    import repro.geometry.hexgrid as gridmod

    for module in (hexmod, gridmod):
        source = open(module.__file__).read()
        for upper in ("repro.chip", "repro.designs", "repro.reconfig",
                      "repro.yieldsim", "repro.fluidics", "repro.assays"):
            assert upper not in source, f"{module.__name__} imports {upper}"
