"""End-to-end CLI test: `python -m repro all` regenerates every artifact."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments import registry


@pytest.mark.slow
def test_cli_all_reduced_budget(capsys):
    """One pass over every experiment at a tiny budget must succeed and
    print each section header."""
    assert main(["all", "--runs", "300"]) == 0
    out = capsys.readouterr().out
    for section in (
        "table1",
        "fig2",
        "figs3to6",
        "fig7",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "ablation-matching",
        "ablation-defects",
        "ablation-hexsquare",
        "targeting",
    ):
        assert f"=== {section} ===" in out
    # The exact headline number must appear regardless of budget.
    assert "0.3378" in out


@pytest.mark.slow
def test_cli_all_writes_artifact_bundle(capsys, tmp_path):
    """The acceptance path: `repro all --runs 50 --out DIR` produces a
    manifest plus one CSV+JSON pair per tabular experiment, with the
    dispatch seed recorded in every provenance block."""
    out = tmp_path / "artifacts"
    assert main(["all", "--runs", "50", "--seed", "123", "--out", str(out)]) == 0
    assert "wrote" in capsys.readouterr().out

    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest["command"] == {
        "runs": 50, "seed": 123, "jobs": 1, "cache_dir": None,
    }
    assert sorted(manifest["experiments"]) == sorted(registry.names())
    for experiment in registry.all_experiments():
        entry = manifest["experiments"][experiment.name]
        assert entry["provenance"]["seed"] == 123
        assert (out / entry["files"]["report"]).exists()
        if experiment.tabular:
            assert (out / entry["files"]["csv"]).exists()
            assert (out / entry["files"]["json"]).exists()
        else:
            assert "csv" not in entry["files"]
