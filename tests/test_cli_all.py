"""End-to-end CLI test: `python -m repro all` regenerates every artifact."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.mark.slow
def test_cli_all_reduced_budget(capsys):
    """One pass over every experiment at a tiny budget must succeed and
    print each section header."""
    assert main(["all", "--runs", "300"]) == 0
    out = capsys.readouterr().out
    for section in (
        "table1",
        "fig2",
        "figs3to6",
        "fig7",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "ablation-matching",
        "ablation-defects",
        "targeting",
    ):
        assert f"=== {section} ===" in out
    # The exact headline number must appear regardless of budget.
    assert "0.3378" in out
