"""CI smoke driver for `repro serve` — not a pytest module.

Boots the server on an ephemeral port, then proves served results are
the offline results:

1. ``POST /points`` for a Figure-7-style survival point must equal the
   same :class:`EnginePoint` run directly through a local engine.
2. ``POST /experiments/fig9`` at a small budget must return a bundle
   whose digest equals the provenance digest a local artifact run
   (the ``repro fig9 --out`` path) records in ``manifest.json``.

Exits non-zero on any mismatch.  Run as::

    PYTHONPATH=src python tests/serve_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import urllib.request

RUNS = 200
SEED = 2005


def post(base: str, path: str, body: dict, timeout: float = 600) -> dict:
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        assert response.status == 200, (path, response.status)
        return json.loads(response.read())


def main() -> int:
    from repro.designs.catalog import DTMB_1_6
    from repro.designs.interstitial import build_with_primary_count
    from repro.experiments import registry
    from repro.experiments.artifacts import ArtifactRun
    from repro.serve import BackgroundServer, ServeConfig
    from repro.yieldsim.engine import EnginePoint, SweepEngine
    from repro.yieldsim.kernel import PointSpec

    out_dir = tempfile.mkdtemp(prefix="serve-smoke-")

    # The offline references: one fig7 point and the fig9 bundle, both
    # produced without the server in the loop.
    chip = build_with_primary_count(DTMB_1_6, 60).build()
    [offline_point] = SweepEngine().run_points(
        [EnginePoint(chip, PointSpec("survival", 0.95, RUNS, SEED))]
    )
    local = registry.execute("fig9", runs=RUNS, seed=SEED)
    run = ArtifactRun(out_dir, runs=RUNS, seed=SEED)
    run.add(local)
    manifest_path = run.finalize()
    manifest = json.load(open(manifest_path))
    local_digest = manifest["experiments"]["fig9"]["provenance"]["digest"]

    with BackgroundServer(ServeConfig(port=0)) as handle:
        base = f"http://127.0.0.1:{handle.port}"

        served_point = post(base, "/points", {
            "kind": "survival", "param": 0.95, "runs": RUNS, "seed": SEED,
            "design": "DTMB(1,6)", "n": 60,
        })
        assert served_point["successes"] == offline_point.successes, (
            served_point["successes"], offline_point.successes
        )
        assert served_point["trials"] == offline_point.trials
        print(
            f"fig7 point OK: served {served_point['successes']}/"
            f"{served_point['trials']} == offline engine"
        )

        served_bundle = post(
            base, "/experiments/fig9", {"runs": RUNS, "seed": SEED}
        )
        assert served_bundle["digest"] == local_digest, (
            served_bundle["digest"], local_digest
        )
        print(
            f"fig9 bundle OK: served digest {served_bundle['digest']} == "
            "local artifact manifest"
        )

        stats = json.loads(
            urllib.request.urlopen(base + "/stats", timeout=30).read()
        )
        assert stats["points"]["computed"] == 1
        assert stats["bundles"]["computed"] == 1
        print("serve smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
