"""CI smoke driver for `repro serve` — not a pytest module.

Boots the server on an ephemeral port, then proves served results are
the offline results:

1. ``POST /points`` for a Figure-7-style survival point must equal the
   same :class:`EnginePoint` run directly through a local engine.
2. ``POST /experiments/fig9`` at a small budget must return a bundle
   whose digest equals the provenance digest a local artifact run
   (the ``repro fig9 --out`` path) records in ``manifest.json``.
3. The ``/cache/objects`` endpoint (``--cache-objects``) must round-trip
   payloads byte-exactly through :class:`HTTPStore`, refuse a
   digest-mismatched upload, and store objects readable directly off the
   mounted :class:`SharedFSStore` tree — transport parity between the
   two remote store implementations.

Exits non-zero on any mismatch.  Run as::

    PYTHONPATH=src python tests/serve_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import urllib.error
import urllib.request

RUNS = 200
SEED = 2005


def post(base: str, path: str, body: dict, timeout: float = 600) -> dict:
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        assert response.status == 200, (path, response.status)
        return json.loads(response.read())


def main() -> int:
    from repro.designs.catalog import DTMB_1_6
    from repro.designs.interstitial import build_with_primary_count
    from repro.errors import StoreError
    from repro.experiments import registry
    from repro.experiments.artifacts import ArtifactRun
    from repro.serve import BackgroundServer, ServeConfig
    from repro.yieldsim.cachestore import (
        HTTPStore,
        SharedFSStore,
        content_digest,
        encode_entry,
    )
    from repro.yieldsim.engine import EnginePoint, SweepEngine
    from repro.yieldsim.kernel import PointSpec

    out_dir = tempfile.mkdtemp(prefix="serve-smoke-")
    objects_dir = tempfile.mkdtemp(prefix="serve-smoke-objects-")

    # The offline references: one fig7 point and the fig9 bundle, both
    # produced without the server in the loop.
    chip = build_with_primary_count(DTMB_1_6, 60).build()
    [offline_point] = SweepEngine().run_points(
        [EnginePoint(chip, PointSpec("survival", 0.95, RUNS, SEED))]
    )
    local = registry.execute("fig9", runs=RUNS, seed=SEED)
    run = ArtifactRun(out_dir, runs=RUNS, seed=SEED)
    run.add(local)
    manifest_path = run.finalize()
    manifest = json.load(open(manifest_path))
    local_digest = manifest["experiments"]["fig9"]["provenance"]["digest"]

    with BackgroundServer(
        ServeConfig(port=0, cache_objects=objects_dir)
    ) as handle:
        base = f"http://127.0.0.1:{handle.port}"

        served_point = post(base, "/points", {
            "kind": "survival", "param": 0.95, "runs": RUNS, "seed": SEED,
            "design": "DTMB(1,6)", "n": 60,
        })
        assert served_point["successes"] == offline_point.successes, (
            served_point["successes"], offline_point.successes
        )
        assert served_point["trials"] == offline_point.trials
        print(
            f"fig7 point OK: served {served_point['successes']}/"
            f"{served_point['trials']} == offline engine"
        )

        served_bundle = post(
            base, "/experiments/fig9", {"runs": RUNS, "seed": SEED}
        )
        assert served_bundle["digest"] == local_digest, (
            served_bundle["digest"], local_digest
        )
        print(
            f"fig9 bundle OK: served digest {served_bundle['digest']} == "
            "local artifact manifest"
        )

        # HTTPStore parity with the mounted SharedFSStore tree.
        store = HTTPStore(base)
        payload = encode_entry({"successes": 42, "trials": RUNS, "smoke": 1})
        key = content_digest(payload)
        assert store.put(key, payload) is True
        assert store.put(key, payload) is False  # put-if-absent over HTTP
        assert store.get(key) == payload
        assert store.exists(key)
        assert key in store.list_keys()
        assert SharedFSStore(objects_dir).get(key) == payload, (
            "object served over HTTP must be readable off the FS tree"
        )
        try:
            # A truncated body under a full digest must be refused.
            bogus = content_digest(b"something else entirely")
            urllib.request.urlopen(
                urllib.request.Request(
                    f"{base}/cache/objects/{bogus}",
                    data=payload[: len(payload) // 2],
                    method="PUT",
                    headers={"X-Repro-Digest": bogus},
                ),
                timeout=30,
            )
            raise AssertionError("digest-mismatched PUT was accepted")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400, exc.code
        assert not store.exists(bogus)
        try:
            store.get("not-a-valid-key")
            raise AssertionError("invalid key was accepted")
        except StoreError:
            pass
        print(f"cache transport OK: HTTPStore round-trip of {key[:12]}…")

        stats = json.loads(
            urllib.request.urlopen(base + "/stats", timeout=30).read()
        )
        assert stats["points"]["computed"] == 1
        assert stats["bundles"]["computed"] == 1
        assert stats["cache_objects"]["count"] == 1
        print("serve smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
