"""Figure 2: shifted-replacement cost of boundary spare rows vs interstitial."""

from __future__ import annotations

from conftest import report

from repro.experiments import fig2


def test_bench_fig2(benchmark):
    result = benchmark.pedantic(fig2.run, rounds=1, iterations=1)
    report("Figure 2: shifted replacement cost", result.format_report())

    rows = {row[0]: row for row in result.rows}
    # Module 1 (adjacent to the spare row): only itself reconfigured.
    assert rows["Module 1"][2] == 1
    assert rows["Module 1"][3] == 0
    # Module 3 (farthest): every module between it and the spare row is
    # dragged in — the paper's Figure 2(c) story.
    assert rows["Module 3"][2] == 3
    assert rows["Module 3"][3] == 2
    # Interstitial redundancy repairs the same fault at constant cost.
    for row in result.rows:
        assert row[5] == 1 and row[6] == 0
    # The shifted cost grows monotonically with distance from the spares.
    cells = [int(row[4]) for row in result.rows]
    assert cells == sorted(cells, reverse=True)
