"""Adaptive sequential budgets on the Figure 9 sweep: same precision, fewer runs.

The acceptance claim: an adaptive run of fig9's sweep reaches the same
target half-width as the flat budget while spending measurably fewer
total Monte-Carlo runs — and sharded execution stays bit-identical to
serial at fixed budget.  The target is taken from the flat run itself
(its worst achieved half-width), so the comparison is apples-to-apples
at any ``REPRO_BENCH_RUNS``.
"""

from __future__ import annotations

import pytest
from conftest import FULL_RUNS, report

from repro.experiments import fig9
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.stats import StopRule, wilson_half_width

#: One array size keeps the bench tight; the full default design set and
#: p-grid still give 33 points per pass.
NS = (60,)


def _half_widths(result):
    return [
        wilson_half_width(pt.estimate.successes, pt.estimate.trials)
        for pt in result.points
    ]


def test_bench_fig9_adaptive_meets_target_with_fewer_runs(benchmark):
    if FULL_RUNS < 100:
        pytest.skip("adaptive stopping needs a non-trivial budget to save runs")

    flat_engine = SweepEngine()
    flat = fig9.run(runs=FULL_RUNS, seed=2005, ns=NS, engine=flat_engine)
    target = max(_half_widths(flat))

    batch = max(10, FULL_RUNS // 10)
    rule = StopRule(
        target_half_width=target, min_runs=batch, batch_runs=batch
    )
    adaptive_engine = SweepEngine()
    adaptive = benchmark.pedantic(
        fig9.run,
        kwargs=dict(
            runs=FULL_RUNS, seed=2005, ns=NS, engine=adaptive_engine, stop=rule
        ),
        rounds=1,
        iterations=1,
    )

    requested = adaptive_engine.runs_requested
    effective = adaptive_engine.runs_effective
    report(
        "Figure 9 adaptive vs flat budget",
        "\n".join(
            [
                f"points:          {len(adaptive.points)}",
                f"target ±:        {target:.4f} (flat worst-case)",
                f"flat budget:     {len(flat.points) * FULL_RUNS} runs",
                f"adaptive budget: {effective} of {requested} runs "
                f"({100.0 * effective / requested:.0f}%)",
            ]
        ),
    )

    # Every point reached the figure's precision or spent the ceiling.
    for pt, achieved in zip(adaptive.points, _half_widths(adaptive)):
        assert achieved <= target or pt.estimate.trials == FULL_RUNS, (
            f"{pt.design} p={pt.p}: ±{achieved:.4f} after {pt.estimate.trials}"
        )
    # Measurably fewer total runs than the flat budget.
    assert effective < requested
    assert effective <= 0.95 * requested, (
        f"adaptive spent {effective}/{requested} runs - no measurable saving"
    )


def test_bench_sharded_fixed_budget_bit_identity():
    """serial == parallel == sharded at fixed budget, on a real sweep point."""
    runs = min(FULL_RUNS, 4000)
    shard = max(10, runs // 8)
    kwargs = dict(runs=runs, seed=2005, ns=NS)
    serial = fig9.run(engine=SweepEngine(shard_runs=shard), **kwargs)
    parallel = fig9.run(engine=SweepEngine(jobs=4, shard_runs=shard), **kwargs)
    assert [
        (pt.estimate.successes, pt.estimate.trials) for pt in serial.points
    ] == [(pt.estimate.successes, pt.estimate.trials) for pt in parallel.points]
