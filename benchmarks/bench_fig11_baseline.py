"""Figure 11: the fabricated 108-cell chip with no spares (Y = p^108)."""

from __future__ import annotations

from conftest import report

from repro.experiments import fig11


def test_bench_fig11(benchmark):
    result = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
    report("Figure 11: non-redundant baseline", result.format_report())

    # The paper's headline number, exactly: 0.99^108 = 0.3378.
    assert abs(result.yield_at(0.99) - 0.3378) < 5e-4
    # "Such low yield makes the first biochip design unsuitable for future
    # mass fabrication": even at 99.9%-reliable cells it is only ~90%.
    assert result.yields[0] < 0.001  # p = 0.90: essentially zero
    assert result.yield_at(1.0) == 1.0
