"""Figure 7: analytical DTMB(1,6) yield vs the non-redundant baseline."""

from __future__ import annotations

from conftest import report

from repro.experiments import fig7
from repro.yieldsim.analytical import dtmb16_yield, yield_no_redundancy


def test_bench_fig7(benchmark, runs, engine):
    result = benchmark.pedantic(
        fig7.run,
        kwargs={"runs": runs, "engine": engine},
        rounds=1,
        iterations=1,
    )
    report("Figure 7: DTMB(1,6) analytical yield", result.format_report())
    report("Figure 7 (chart)", result.format_chart())

    # Interstitial redundancy dominates the bare array everywhere.
    for n in result.ns:
        for p in result.ps:
            assert dtmb16_yield(p, n) >= yield_no_redundancy(p, n)

    # The gain is dramatic where the paper plots it: at p = 0.99, n = 480
    # the bare array is dead (<1%) while DTMB(1,6) still yields > 80%.
    assert yield_no_redundancy(0.99, 480) < 0.01
    assert dtmb16_yield(0.99, 480) > 0.80

    # Monte-Carlo on a flower-complete array validates the cluster model
    # (tolerance ~3 sigma of the binomial estimator at the chosen budget).
    tolerance = max(0.02, 3.0 * (0.25 / runs) ** 0.5)
    for p, mc in result.montecarlo_check.items():
        assert abs(mc - dtmb16_yield(p, result.ns[0])) < tolerance
