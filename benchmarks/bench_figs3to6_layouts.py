"""Figures 3-6: generation + structural verification of every DTMB layout."""

from __future__ import annotations

from conftest import report

from repro.experiments import figs3to6


def test_bench_figs3to6(benchmark):
    result = benchmark.pedantic(
        figs3to6.run, kwargs={"size": 16}, rounds=1, iterations=1
    )
    report(
        "Figures 3-6: DTMB layouts (verified)",
        result.format_report(with_layouts=True),
    )

    by_name = {row[0]: row for row in result.rows}
    # Definition 1 holds empirically for every catalog design.
    assert (by_name["DTMB(1,6)"][1], by_name["DTMB(1,6)"][2]) == (1, 6)
    assert (by_name["DTMB(2,6)"][1], by_name["DTMB(2,6)"][2]) == (2, 6)
    assert (by_name["DTMB(2,6)alt"][1], by_name["DTMB(2,6)alt"][2]) == (2, 6)
    assert (by_name["DTMB(3,6)"][1], by_name["DTMB(3,6)"][2]) == (3, 6)
    assert (by_name["DTMB(4,4)"][1], by_name["DTMB(4,4)"][2]) == (4, 4)
