"""Figure 10: effective yield EY = Y/(1+RR), all four designs at n = 100."""

from __future__ import annotations

from conftest import report

from repro.experiments import fig10


def test_bench_fig10(benchmark, runs, engine):
    result = benchmark.pedantic(
        fig10.run, kwargs={"runs": runs, "engine": engine}, rounds=1, iterations=1
    )
    report("Figure 10: effective yield (n=100)", result.format_chart())
    report("Figure 10 crossovers", str(result.crossovers()))

    # The paper's qualitative claim: high redundancy suits small p, low
    # redundancy suits high p.
    assert result.best_design_at(0.90) in ("DTMB(3,6)", "DTMB(4,4)")
    assert result.best_design_at(0.99) in ("DTMB(1,6)", "DTMB(2,6)")
    # Therefore the EY leader changes somewhere on the grid.
    assert len(result.crossovers()) >= 1

    # EY never exceeds raw yield (area penalty is real).
    for point in result.points:
        assert point.effective <= point.yield_value + 1e-12

    # At p = 1 the ranking is pure area: DTMB(1,6) wins outright.
    assert result.best_design_at(1.0) == "DTMB(1,6)"
