"""Serving layer: HTTP overhead and the value of digest coalescing.

Two shape claims:

* The HTTP layer adds bounded overhead on a *cached* point — the
  round-trip for a repeat request (point-cache hit, no Monte-Carlo) must
  be milliseconds, not a re-computation.
* Digest coalescing makes N identical concurrent requests cost ~one
  computation: total wall time for N concurrent identical adaptive
  requests must be far closer to 1x a single computation than to Nx.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

from conftest import report

from repro.serve import BackgroundServer, ServeConfig

N_CONCURRENT = 8


def _post_point(base: str, body: dict) -> dict:
    request = urllib.request.Request(
        base + "/points", data=json.dumps(body).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=600) as response:
        return json.loads(response.read())


def test_bench_serve_coalescing(runs, tmp_path):
    body = {
        "kind": "survival", "param": 0.95, "runs": max(runs, 2000),
        "seed": 41, "design": "DTMB(2,6)", "n": 60,
    }
    with BackgroundServer(
        ServeConfig(port=0, cache_dir=str(tmp_path))
    ) as handle:
        base = f"http://127.0.0.1:{handle.port}"

        # Cold single request: one full computation, the 1x baseline.
        t0 = time.perf_counter()
        first = _post_point(base, dict(body, seed=40))
        t_single = time.perf_counter() - t0

        # N identical concurrent requests on a fresh key: coalesced.
        answers: list = []

        def worker() -> None:
            answers.append(_post_point(base, body))

        threads = [
            threading.Thread(target=worker) for _ in range(N_CONCURRENT)
        ]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        t_coalesced = time.perf_counter() - t0

        # Repeat request: point-cache hit, no Monte-Carlo at all.
        t0 = time.perf_counter()
        repeat = _post_point(base, body)
        t_cached = time.perf_counter() - t0

        stats = json.loads(
            urllib.request.urlopen(base + "/stats", timeout=30).read()
        )

    assert len(answers) == N_CONCURRENT
    assert len({a["value"] for a in answers}) == 1
    assert repeat["value"] == answers[0]["value"]
    # One computation per distinct key, however the N requests landed:
    # concurrent arrivals coalesce onto the in-flight entry, stragglers
    # hit the point cache — either way the Monte-Carlo ran exactly twice
    # (once per distinct seed) across all N+2 requests.
    assert stats["engine"]["cache_misses"] == 2
    assert stats["engine"]["cache_hits"] >= 1   # the repeat request
    coalesced = sum(1 for a in answers if a["coalesced"])

    report(
        "serve: coalescing and cache behaviour",
        "\n".join(
            [
                f"single cold request:            {t_single * 1e3:8.1f} ms",
                f"{N_CONCURRENT} identical concurrent:        "
                f"{t_coalesced * 1e3:8.1f} ms "
                f"({t_coalesced / max(t_single, 1e-9):.2f}x single, "
                f"{coalesced} coalesced)",
                f"repeat (point-cache hit):       {t_cached * 1e3:8.1f} ms",
            ]
        ),
    )
    # N concurrent identical requests must not cost anywhere near N
    # computations; allow generous CI jitter around the 1x ideal.
    assert t_coalesced < max(0.5 * N_CONCURRENT * t_single, 3 * t_single), (
        t_coalesced, t_single
    )
    # A cache-hit round-trip must not look like a recomputation.
    assert t_cached < max(0.5, 0.5 * t_single), (t_cached, t_single)
