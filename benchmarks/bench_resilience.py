"""Resilience machinery overhead: the retry/checkpoint path must be ~free.

The acceptance target: running the Figure 7 survival grid through an
engine with the full resilience stack armed — retry policy, per-unit
timeout accounting, result validation, fold checkpointing — but with *no
faults injected* must cost at most 5% over the plain engine.  The
machinery only does real work when something actually fails; the happy
path adds one validator call and a couple of clock reads per unit.

Timing noise on shared CI runners easily exceeds 5% on small budgets, so
both configurations run several rounds and the *minimum* (the least
interfered-with pass) is compared, with a small absolute floor absorbing
scheduler jitter on very fast runs.
"""

from __future__ import annotations

import time

from _emit import emit
from conftest import report

from repro.designs.catalog import DTMB_1_6
from repro.designs.interstitial import build_with_primary_count
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.resilience import RetryPolicy
from repro.yieldsim.sweeps import DEFAULT_P_GRID

#: The Figure 7 design and array size whose Monte-Carlo check the paper plots.
FIG7_N = 60

ROUNDS = 3

#: Allowed relative overhead of the armed-but-idle resilience stack.
MAX_OVERHEAD = 0.05

#: Absolute jitter floor (seconds): below this, timer noise dominates and
#: a ratio assertion would test the OS scheduler, not the code.
JITTER_FLOOR = 0.10


def _grid_points(seed):
    return [(p, seed + i + 1) for i, p in enumerate(DEFAULT_P_GRID)]


def _run(engine, chip, runs):
    return [
        (e.successes, e.trials)
        for e in engine.survival_estimates(chip, _grid_points(2005), runs)
    ]


def _best_of(make_engine, chip, runs):
    best, result = float("inf"), None
    for round_index in range(ROUNDS):
        engine = make_engine(round_index)
        t0 = time.perf_counter()
        result = _run(engine, chip, runs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_bench_resilience_overhead(runs, tmp_path):
    chip = build_with_primary_count(DTMB_1_6, FIG7_N).build()

    t_plain, plain = _best_of(lambda i: SweepEngine(), chip, runs)
    # Every armed round gets its own cold cache: a warm cache would turn
    # rounds 2+ into read benchmarks and flatter the overhead number.
    t_armed, armed = _best_of(
        lambda i: SweepEngine(
            cache_dir=str(tmp_path / f"cold-cache-{i}"),
            checkpoint=True,
            retry=RetryPolicy(attempts=3, unit_timeout=600.0),
        ),
        chip,
        runs,
    )

    overhead = t_armed / max(t_plain, 1e-9) - 1.0
    report(
        "Resilience overhead (Fig. 7 grid, no faults)",
        f"plain engine:  {t_plain:.3f}s (best of {ROUNDS})\n"
        f"armed engine:  {t_armed:.3f}s (retry+timeout+checkpoint+cache)\n"
        f"overhead:      {100.0 * overhead:+.1f}% "
        f"(budget {100.0 * MAX_OVERHEAD:.0f}%)",
    )

    emit(
        "resilience",
        wall_s=t_armed,
        throughput=len(DEFAULT_P_GRID) * runs / max(t_armed, 1e-9),
        extra={
            "throughput_unit": "mc_runs_per_s",
            "wall_plain_s": round(t_plain, 6),
            "overhead": round(overhead, 4),
        },
    )

    # Armed-but-idle resilience must not change a single number...
    assert armed == plain
    # ...and must be within the overhead budget (jitter floor absorbs
    # timer noise when the reduced CI budget finishes in milliseconds).
    assert t_armed <= t_plain * (1.0 + MAX_OVERHEAD) + JITTER_FLOOR, (
        f"resilience stack costs {100.0 * overhead:.1f}% "
        f"(budget {100.0 * MAX_OVERHEAD:.0f}%)"
    )

    # The armed run's cache must now make reruns nearly free without
    # touching the numbers — the same property the resume path leans on.
    warm = SweepEngine(
        cache_dir=str(tmp_path / "cold-cache-0"),
        checkpoint=True,
        retry=RetryPolicy(attempts=3, unit_timeout=600.0),
    )
    assert _run(warm, chip, runs) == plain
    assert warm.cache_hits == len(DEFAULT_P_GRID)
