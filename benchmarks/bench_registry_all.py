"""Registry sweep: every registered experiment through the artifact pipeline.

Instead of importing figures by hand, iterate the registry the way the CLI
does: generic dispatch, budget policy applied, artifacts + manifest
written.  This is the integrity benchmark for the pipeline itself, so it
runs at a bounded budget regardless of ``REPRO_BENCH_RUNS`` — the
per-figure benchmarks own the paper-budget numbers.
"""

from __future__ import annotations

import json
import os
import tempfile

from conftest import report

from repro.experiments import registry
from repro.experiments.artifacts import MANIFEST_NAME, ArtifactRun

#: Pipeline-integrity budget; deliberately small (see module docstring).
PIPELINE_RUNS = 300


def _reproduce_everything(out_dir: str, runs: int, seed: int):
    run = ArtifactRun(out_dir, runs=runs, seed=seed)
    results = []
    for experiment in registry.all_experiments():
        result = registry.execute(experiment, runs=runs, seed=seed)
        run.add(result)
        results.append(result)
    run.finalize()
    return results


def test_bench_registry_full_reproduction(benchmark):
    with tempfile.TemporaryDirectory() as out_dir:
        results = benchmark.pedantic(
            _reproduce_everything,
            args=(out_dir, PIPELINE_RUNS, 2005),
            rounds=1,
            iterations=1,
        )
        manifest = json.loads(
            open(os.path.join(out_dir, MANIFEST_NAME)).read()
        )

        lines = [
            f"{result.name:<20} {result.provenance.wall_time_s:7.2f}s  "
            f"budget {result.provenance.runs_effective}"
            for result in results
        ]
        report("Registry sweep (one command, whole paper)", "\n".join(lines))

        # Every registered experiment dispatched and landed in the manifest.
        assert sorted(manifest["experiments"]) == sorted(registry.names())
        # Tabular experiments all produced their CSV+JSON artifact pair.
        for experiment in registry.all_experiments():
            files = manifest["experiments"][experiment.name]["files"]
            if experiment.tabular:
                assert os.path.exists(os.path.join(out_dir, files["csv"]))
                assert os.path.exists(os.path.join(out_dir, files["json"]))
            assert os.path.exists(os.path.join(out_dir, files["report"]))
        # Provenance digests are present and well-formed for auditing.
        for entry in manifest["experiments"].values():
            assert len(entry["provenance"]["digest"]) == 64
