"""Table 1: redundancy ratios of the four DTMB architectures."""

from __future__ import annotations

from fractions import Fraction

from conftest import report

from repro.designs.catalog import TABLE1_DESIGNS, table1_rows
from repro.experiments import table1


def test_bench_table1(benchmark):
    result = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    report("Table 1: redundancy ratios", result.format_report())

    # The paper's Table 1, exactly.
    expected = {
        "DTMB(1,6)": Fraction(1, 6),
        "DTMB(2,6)": Fraction(1, 3),
        "DTMB(3,6)": Fraction(1, 2),
        "DTMB(4,4)": Fraction(1, 1),
    }
    assert dict(table1_rows()) == expected

    # Finite arrays converge to the asymptote as they grow.
    for row in result.rows:
        target = float(row[1])
        largest = float(row[-1])
        assert abs(largest - target) < 0.01
