"""Figure 8's machinery: the maximum-matching kernel, microbenchmarked.

Figure 8 illustrates the bipartite model on a small instance; here we time
the actual algorithms on the repair graphs Monte-Carlo produces, plus a
large synthetic instance showing the asymptotic gap between Hopcroft-Karp
and Kuhn.
"""

from __future__ import annotations

import numpy as np

from conftest import report

from repro.designs.catalog import DTMB_2_6
from repro.designs.interstitial import build_with_primary_count
from repro.faults.injection import BernoulliInjector
from repro.reconfig.bipartite import (
    BipartiteGraph,
    hopcroft_karp,
    kuhn_matching,
    saturates_left,
)
from repro.reconfig.local import build_repair_graph


def _repair_graphs(count: int, p: float = 0.93, seed: int = 7):
    chip = build_with_primary_count(DTMB_2_6, 240).build()
    injector = BernoulliInjector(p)
    graphs = []
    for t in range(count):
        working = chip.copy()
        injector.sample(working, seed=seed + t).apply_to(working)
        graphs.append(build_repair_graph(working))
    return graphs


def test_bench_hopcroft_karp_on_repair_graphs(benchmark):
    graphs = _repair_graphs(200)

    def run_all():
        return [saturates_left(g, hopcroft_karp(g)) for g in graphs]

    verdicts = benchmark(run_all)
    report(
        "Figure 8 kernel",
        f"200 repair graphs, {sum(verdicts)} repairable (Hopcroft-Karp)",
    )
    assert len(verdicts) == 200


def test_bench_kuhn_on_repair_graphs(benchmark):
    graphs = _repair_graphs(200)

    def run_all():
        return [saturates_left(g, kuhn_matching(g)) for g in graphs]

    verdicts = benchmark(run_all)
    assert len(verdicts) == 200


def test_bench_large_synthetic_instance(benchmark):
    # A dense random bipartite graph far beyond any repair graph, to show
    # the kernel scales: 2000 x 2000 nodes, ~6 edges per left node.
    rng = np.random.default_rng(3)
    left = list(range(2000))
    right = [f"r{i}" for i in range(2000)]
    edges = [
        (u, f"r{v}")
        for u in left
        for v in rng.choice(2000, size=6, replace=False)
    ]
    graph = BipartiteGraph(left, right, edges)
    matching = benchmark(hopcroft_karp, graph)
    # Dense random graphs almost surely have near-perfect matchings.
    assert len(matching) > 1950
