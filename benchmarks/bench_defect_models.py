"""Defect-model subsystem: sampling throughput + clustered-vs-iid yield gap.

Two questions the new :mod:`repro.yieldsim.defects` subsystem must answer
at paper budgets (override with REPRO_BENCH_RUNS):

1. How fast does each spatial model draw survival matrices on the
   Figure 7 target (the flower-complete DTMB(1,6) array)?  All models
   must stay within a small constant factor of the i.i.d. baseline, or
   the scenario packs would dominate sweep wall time.
2. How much yield does the independence assumption overstate once
   defects actually cluster?  The fig7-clustered scenario at matched
   expected faults gives the headline gap.
"""

from __future__ import annotations

import time

from conftest import report

from repro.designs.interstitial import build_flower_chip
from repro.experiments import scenario_clustered
from repro.faults.injection import make_rng
from repro.yieldsim.defects import (
    FixedCount,
    IIDBernoulli,
    NegativeBinomialClustered,
    RadialGradient,
    SpotDefects,
    geometry_for,
)

#: Survival probability of the throughput draws (mid paper grid).
P = 0.95


def _models(geometry):
    return (
        IIDBernoulli(P),
        FixedCount(max(1, int(round((1 - P) * geometry.n_cells)))),
        SpotDefects.calibrate(geometry, 1 - P, radius=1),
        NegativeBinomialClustered(P, alpha=1.0),
        RadialGradient.calibrate(geometry, P, spread=0.06),
    )


def test_bench_sampling_throughput(benchmark, runs):
    """Per-model sample_batch throughput on the Figure 7 flower array."""
    chip = build_flower_chip(60)
    geometry = geometry_for(chip)
    geometry.ball(1)  # warm the ball cache like any sweep would
    models = _models(geometry)

    def sample_all():
        timings = {}
        for model in models:
            rng = make_rng(2005)
            start = time.perf_counter()
            alive = model.sample_batch(geometry, runs, rng)
            timings[model.describe()] = (
                time.perf_counter() - start,
                float((~alive).mean()),
            )
        return timings

    timings = benchmark.pedantic(sample_all, rounds=1, iterations=1)

    cells = geometry.n_cells
    lines = [f"{'model':<42} {'Mcells/s':>9}  {'kill frac':>9}"]
    for label, (seconds, kill) in timings.items():
        rate = runs * cells / max(seconds, 1e-9) / 1e6
        lines.append(f"{label:<42} {rate:9.1f}  {kill:9.4f}")
    report(
        f"Defect-model sampling throughput ({runs} runs x {cells} cells)",
        "\n".join(lines),
    )

    # Every model's expected kill fraction is calibrated to ~1-P, so the
    # benchmark doubles as a severity-matching check.
    for label, (_seconds, kill) in timings.items():
        assert abs(kill - (1 - P)) < 0.02, (label, kill)
    # No model may be catastrophically slower than the i.i.d. baseline.
    iid_time = timings[IIDBernoulli(P).describe()][0]
    for label, (seconds, _kill) in timings.items():
        assert seconds < 60 * max(iid_time, 1e-4), (label, seconds)


def test_bench_clustered_vs_iid_gap(benchmark, runs, engine):
    """The fig7-clustered scenario at paper budget: how optimistic is the
    independence assumption on the flower array once defects cluster?"""
    result = benchmark.pedantic(
        scenario_clustered.run_fig7_clustered,
        kwargs={"runs": runs, "engine": engine},
        rounds=1,
        iterations=1,
    )
    report("Figure 7: independent vs clustered defects", result.format_chart())

    # At high survival probability (the regime the paper argues in),
    # clustering can only hurt the flower repair: a single radius-1 spot
    # covers a primary and its only spare.  Aggregate over the top of the
    # grid so a quick CI budget stays off the noise floor.
    high_p_gaps = [
        result.iid[p] - result.clustered[p] for p in (0.97, 0.98, 0.99)
    ]
    assert sum(high_p_gaps) / len(high_p_gaps) > 0.0
    # Matched severity: at p = 1.0 both regimes are exact and perfect.
    assert result.iid[1.0] == result.clustered[1.0] == 1.0
