"""Machine-readable benchmark results.

:func:`emit` writes one ``BENCH_<name>.json`` per benchmark into
``$REPRO_BENCH_OUT`` (default ``bench_results/``), carrying the headline
wall time and throughput next to the budget knobs that produced them and
the git revision they were measured at — enough for a dashboard or a
regression diff across commits without re-parsing pytest output.

The emission is telemetry and therefore best-effort: an unwritable
output directory or a git-less checkout degrades the payload, never the
benchmark.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Dict, Optional

__all__ = ["emit"]

#: Version of the BENCH_*.json payload shape.
BENCH_SCHEMA = 1


def _git_sha() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _budget() -> Dict[str, object]:
    """The env knobs the benchmark harness ran under (see conftest)."""
    return {
        "runs": int(os.environ.get("REPRO_BENCH_RUNS", "10000")),
        "jobs": int(os.environ.get("REPRO_BENCH_JOBS", "1")),
        "cache": bool(os.environ.get("REPRO_BENCH_CACHE")),
    }


def emit(
    name: str,
    *,
    wall_s: float,
    throughput: Optional[float] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Optional[str]:
    """Write ``BENCH_<name>.json``; returns its path (None on failure).

    ``wall_s`` is the benchmark's headline timing (typically a best-of-N
    minimum), ``throughput`` its natural rate (runs/s, points/s — the
    benchmark picks the unit and documents it in ``extra``).
    """
    out_dir = os.environ.get("REPRO_BENCH_OUT") or "bench_results"
    payload: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "wall_s": round(float(wall_s), 6),
        "throughput": (
            round(float(throughput), 3) if throughput is not None else None
        ),
        "budget": _budget(),
        "git_sha": _git_sha(),
        "written_at": round(time.time(), 3),
    }
    if extra:
        payload["extra"] = extra
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    try:
        os.makedirs(out_dir, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    except OSError:
        return None
    return path
