"""Functional-yield subsystem: screen-funnel hit rates + the routing gap.

Two questions :mod:`repro.functional` must answer at paper budgets
(override with REPRO_BENCH_RUNS):

1. How much of a functional sweep does the five-stage screen funnel
   decide *without* driving the fluidics scheduler?  A scheduler run
   costs ~20 ms; the vectorized screens cost microseconds per run, so
   functional sweeps stay seconds-scale only while the residue (stage 5)
   fraction stays small.
2. How optimistic is the paper's structural matching criterion once
   "good" means "the assay still routes"?  The fig9-functional scenario
   gives the headline: DTMB(4,4) repairs essentially every chip yet
   cannot run the assay on any of them.
"""

from __future__ import annotations

import time

from conftest import report

from repro.designs.catalog import DTMB_2_6, DTMB_3_6, DTMB_4_4
from repro.designs.interstitial import build_with_primary_count
from repro.experiments import scenario_functional
from repro.functional import RoutingCriterion, criterion_successes
from repro.yieldsim.defects import IIDBernoulli
from repro.yieldsim.kernel import RepairStructure

#: (design, primaries) rows of the funnel throughput table — the Figure 9
#: sweep targets, plus the pathological DTMB(4,4).
DESIGNS = ((DTMB_2_6, 60), (DTMB_3_6, 60), (DTMB_4_4, 60))

#: Survival probability of the throughput draws (mid paper grid).
P = 0.95


def test_bench_funnel_hit_rates(benchmark, runs):
    """Per-design screen-funnel composition and throughput at paper budget."""
    criterion = RoutingCriterion()
    structs = [
        (spec.name, RepairStructure(build_with_primary_count(spec, n).build()))
        for spec, n in DESIGNS
    ]

    def sweep_all():
        out = {}
        for name, struct in structs:
            start = time.perf_counter()
            _got, _stats, crit = criterion_successes(
                struct, IIDBernoulli(P), criterion, runs, seed=2005
            )
            out[name] = (time.perf_counter() - start, crit)
        return out

    results = benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    header = (
        f"{'design':<12} {'runs/s':>9}  {'s1 fail':>8} {'s2 spare':>8} "
        f"{'s3 clear':>8} {'s4 dead':>8} {'s5 resid':>8}"
    )
    lines = [header]
    for name, (seconds, crit) in results.items():
        rate = runs / max(seconds, 1e-9)
        lines.append(
            f"{name:<12} {rate:9.0f}  "
            f"{crit.matching_fail / runs:8.4f} {crit.spare_only / runs:8.4f} "
            f"{crit.route_clear / runs:8.4f} {crit.unreachable / runs:8.4f} "
            f"{crit.residue / runs:8.4f}"
        )
    report(
        f"Screen-funnel composition at p={P} ({runs} runs per design)",
        "\n".join(lines),
    )

    for name, (_seconds, crit) in results.items():
        decided = (
            crit.matching_fail + crit.spare_only + crit.route_clear
            + crit.unreachable + crit.residue
        )
        assert decided == crit.runs == runs, (name, crit)
    # On the real Figure 9 sweep designs the screens, not the scheduler,
    # must carry the sweep: if the residue fraction creeps up, functional
    # sweeps turn hours-scale.  DTMB(4,4) is the deliberate exception —
    # its primary fabric is disconnected even fault-free, and remaps can
    # *shorten* routes, so the one-sided screens cannot cheaply prove
    # per-run failure and nearly everything pays the scheduler.
    for name in (DTMB_2_6.name, DTMB_3_6.name):
        _seconds, crit = results[name]
        assert crit.residue / runs < 0.5, (name, crit)
    assert results[DTMB_4_4.name][1].residue / runs > 0.5


def test_bench_functional_gap(benchmark, runs, engine):
    """fig9-functional at paper budget: the structural-vs-functional gap."""
    result = benchmark.pedantic(
        scenario_functional.run_fig9_functional,
        kwargs={"runs": runs, "engine": engine},
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{design:<12} worst matching-vs-routing gap {result.worst_gap(design):.4f}"
        for design in (DTMB_2_6.name, DTMB_3_6.name, DTMB_4_4.name)
    ]
    report("Figure 9 designs: matching vs functional yield", "\n".join(lines))

    # DTMB(2,6)'s spares sit off the route spine: repairs rarely break
    # the assay.  DTMB(4,4)'s spare lattice disconnects the primary
    # fabric outright — matching yield ~1, functional yield exactly 0.
    assert result.worst_gap(DTMB_2_6.name) < 0.05
    assert result.worst_gap(DTMB_4_4.name) > 0.9
    for point in result.functional:
        if point.design == DTMB_4_4.name:
            assert point.estimate.value == 0.0, point
