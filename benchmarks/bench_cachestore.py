"""Shared-cache economics: a warm store turns compute into transport.

Two claims are benchmarked on the Figure 7 survival grid:

* **Warm wall time.**  A run against a fully populated
  :class:`SharedFSStore` with a *fresh* local tier must beat the cold
  (computing) run by a wide margin — the whole point of sharing a cache
  across a fleet.  The assertion is deliberately loose (2x) because the
  cold run's cost scales with the Monte-Carlo budget while the warm
  run's cost is near-constant transport; at the paper's 10 000-run
  budget the observed ratio is orders of magnitude larger.
* **Traffic discipline.**  The cold run uploads every point exactly
  once; the warm run re-uploads nothing, misses nothing, and serves
  every point from the remote tier.  The store's object count equals
  the grid size — content addressing deduplicates across runs.

Store overhead on a *cold* run (hashing + envelope + an extra stat call
per point) is also reported; it must stay under 10% of plain compute.
"""

from __future__ import annotations

import time

from conftest import report

from repro.designs.catalog import DTMB_1_6
from repro.designs.interstitial import build_with_primary_count
from repro.yieldsim.cachestore import SharedFSStore
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.sweeps import DEFAULT_P_GRID

FIG7_N = 60

#: Minimum cold/warm speedup; real budgets give orders of magnitude.
MIN_WARM_SPEEDUP = 2.0

#: Allowed relative overhead of writing through to a store on a cold run.
MAX_COLD_OVERHEAD = 0.10

#: Absolute jitter floor (seconds), as in bench_resilience.
JITTER_FLOOR = 0.10


def _grid_points(seed):
    return [(p, seed + i + 1) for i, p in enumerate(DEFAULT_P_GRID)]


def _run(engine, chip, runs):
    return [
        (e.successes, e.trials)
        for e in engine.survival_estimates(chip, _grid_points(2005), runs)
    ]


def test_bench_shared_cache_warm_vs_cold(runs, tmp_path):
    chip = build_with_primary_count(DTMB_1_6, FIG7_N).build()
    shared = str(tmp_path / "shared-store")
    points = len(DEFAULT_P_GRID)

    t0 = time.perf_counter()
    plain = _run(SweepEngine(), chip, runs)
    t_plain = time.perf_counter() - t0

    cold_engine = SweepEngine(
        cache_dir=str(tmp_path / "tier-cold"),
        cache_store=SharedFSStore(shared),
    )
    t0 = time.perf_counter()
    cold = _run(cold_engine, chip, runs)
    t_cold = time.perf_counter() - t0

    warm_engine = SweepEngine(
        cache_dir=str(tmp_path / "tier-warm"),  # fresh: only the store is warm
        cache_store=SharedFSStore(shared),
    )
    t0 = time.perf_counter()
    warm = _run(warm_engine, chip, runs)
    t_warm = time.perf_counter() - t0

    assert cold == plain and warm == plain  # acceleration, never alteration

    cold_stats = cold_engine.store_stats
    warm_stats = warm_engine.store_stats
    assert cold_stats.uploads == points
    assert warm_stats.uploads == 0
    assert warm_stats.remote_hits == points
    assert warm_engine.cache_misses == 0
    assert len(SharedFSStore(shared).list_keys()) == points

    speedup = t_cold / max(t_warm, 1e-9)
    overhead = t_cold / max(t_plain, 1e-9) - 1.0
    report(
        "Shared cache economics (Fig. 7 grid)",
        "\n".join([
            f"runs/point:          {runs}",
            f"plain compute:       {t_plain:8.3f} s",
            f"cold (+store):       {t_cold:8.3f} s  "
            f"({overhead:+.1%} overhead, {cold_stats.bytes_up} B up)",
            f"warm (fresh tier):   {t_warm:8.3f} s  "
            f"({speedup:.1f}x vs cold, {warm_stats.bytes_down} B down)",
            f"store objects:       {points} (one per grid point)",
        ]),
    )

    if t_cold > JITTER_FLOOR:
        assert speedup >= MIN_WARM_SPEEDUP, (t_cold, t_warm)
    if t_plain > JITTER_FLOOR:
        assert overhead <= MAX_COLD_OVERHEAD, (t_plain, t_cold)
