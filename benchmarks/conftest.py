"""Shared configuration for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure from the paper at
the paper's Monte-Carlo budget (10 000 runs per point unless stated) and
asserts the *shape* claims — who wins, by roughly what factor, where the
crossovers fall.  Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_RUNS`` to lower the budget for a quick pass.
"""

from __future__ import annotations

import os

import pytest

#: Monte-Carlo runs per point; the paper uses 10 000.
FULL_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "10000"))


@pytest.fixture(scope="session")
def runs() -> int:
    return FULL_RUNS


def report(title: str, body: str) -> None:
    """Print a labelled report block (shown with pytest -s)."""
    print(f"\n=== {title} ===\n{body}\n")
