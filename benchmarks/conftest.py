"""Shared configuration for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure from the paper at
the paper's Monte-Carlo budget (10 000 runs per point unless stated) and
asserts the *shape* claims — who wins, by roughly what factor, where the
crossovers fall.  Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_RUNS`` to lower the budget for a quick pass,
``REPRO_BENCH_JOBS`` to shard sweep points across worker processes
(results are bit-identical to serial), and ``REPRO_BENCH_CACHE`` to reuse
an on-disk sweep result cache between invocations.
"""

from __future__ import annotations

import os

import pytest

from repro.yieldsim.engine import SweepEngine

#: Monte-Carlo runs per point; the paper uses 10 000.
FULL_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "10000"))

#: Worker processes for the sweep engine (1 = in-process).
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: Optional on-disk sweep cache directory.
CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE") or None


@pytest.fixture(scope="session")
def runs() -> int:
    return FULL_RUNS


@pytest.fixture(scope="session")
def engine() -> SweepEngine:
    """One engine for the whole benchmark session (shared cache counters)."""
    return SweepEngine(jobs=JOBS, cache_dir=CACHE_DIR)


def report(title: str, body: str) -> None:
    """Print a labelled report block (shown with pytest -s)."""
    print(f"\n=== {title} ===\n{body}\n")
