"""Design targeting: cheapest adequate architecture per (p, target) point.

Operationalizes the paper's claim that "biochips with different levels of
redundancy can be designed to target given yield levels and manufacturing
processes."
"""

from __future__ import annotations

from conftest import report

from repro.experiments import design_targeting


def test_bench_design_targeting(benchmark, runs):
    result = benchmark.pedantic(
        design_targeting.run,
        kwargs={"runs": max(1000, runs // 3)},
        rounds=1,
        iterations=1,
    )
    report("Design targeting (n=100)", result.format_report())

    # Good process + modest target: the cheapest design suffices.
    assert result.choice(0.99, 0.80) == "DTMB(1,6)"
    # Poor process + aggressive target: needs heavy redundancy or is
    # outright infeasible with the catalog.
    hard = result.choice(0.90, 0.99)
    assert hard in ("DTMB(4,4)", "-")
    # Moving toward worse processes never selects a *cheaper* design at a
    # fixed target (redundancy requirements are monotone).
    order = {"DTMB(1,6)": 0, "DTMB(2,6)": 1, "DTMB(3,6)": 2, "DTMB(4,4)": 3, "-": 4}
    for target in result.targets:
        ranks = [order[result.choice(p, target)] for p in sorted(result.ps)]
        assert ranks == sorted(ranks, reverse=True)
