"""Figure 12: the DTMB(2,6) redesign and a 10-fault local reconfiguration."""

from __future__ import annotations

from conftest import report

from repro.experiments import fig12


def test_bench_fig12(benchmark):
    result = benchmark.pedantic(
        fig12.run, kwargs={"seed": 2005}, rounds=1, iterations=1
    )
    report("Figure 12: redesign + reconfiguration demo", result.format_report())

    # The paper's exact cell counts.
    chip = result.layout.chip
    assert chip.primary_count == 252
    assert chip.spare_count == 91
    assert result.layout.used_count == 108

    # 10 faults injected and every faulty used cell repaired locally.
    assert len(result.faults) == 10
    assert result.repaired
    result.plan.validate_against(chip)

    # The multiplexed assay still executes correctly through the remap.
    assert result.assay_result is not None
    assert result.assay_result.relative_error < 0.02


def test_bench_fig12_many_seeds(benchmark):
    # Robustness across fault maps: most 10-fault maps are repairable.
    def sweep():
        repaired = 0
        for seed in range(100):
            if fig12.run(seed=seed, run_assay=False).repaired:
                repaired += 1
        return repaired

    repaired = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("Figure 12 robustness", f"repaired {repaired}/100 ten-fault maps")
    assert repaired >= 95  # consistent with Fig 13's ~0.997 yield at m=10
