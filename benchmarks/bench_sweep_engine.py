"""Sweep engine: screening-kernel speedup and serial/parallel identity.

The acceptance target for the engine: ``survival_sweep`` at the paper
budget (10 000 runs per point on the Figure 7 survival grid) must beat the
seed implementation — per-run Python Kuhn matching inside
``YieldSimulator``, which is preserved verbatim as the brute-force
reference — by at least 3x.  At reduced budgets (``REPRO_BENCH_RUNS``)
the fixed vectorization overhead dominates, so only correctness and a
sanity margin are asserted.
"""

from __future__ import annotations

import time

from _emit import emit
from conftest import report

from repro.designs.catalog import DTMB_1_6
from repro.designs.interstitial import build_with_primary_count
from repro.yieldsim.montecarlo import YieldSimulator
from repro.yieldsim.sweeps import DEFAULT_P_GRID, survival_sweep
from repro.yieldsim.engine import SweepEngine

import numpy as np

#: The Figure 7 design and array size whose Monte-Carlo check the paper plots.
FIG7_N = 60


def _seed_survival_sweep(ps, runs, seed):
    """The seed implementation of survival_sweep, verbatim: build the
    chip, then run per-point brute-force YieldSimulator matching."""
    chip = build_with_primary_count(DTMB_1_6, FIG7_N).build()
    sim = YieldSimulator(chip)
    counter = 0
    out = []
    for p in ps:
        counter += 1
        out.append(sim.run_survival(p, runs=runs, seed=seed + counter))
    return out


def test_bench_engine_speedup(benchmark, runs):
    t0 = time.perf_counter()
    reference = _seed_survival_sweep(DEFAULT_P_GRID, runs, 2005)
    t_seed = time.perf_counter() - t0

    t0 = time.perf_counter()
    points = benchmark.pedantic(
        survival_sweep,
        args=([DTMB_1_6], [FIG7_N], DEFAULT_P_GRID),
        kwargs={"runs": runs, "seed": 2005},
        rounds=1,
        iterations=1,
    )
    t_engine = time.perf_counter() - t0

    speedup = t_seed / max(t_engine, 1e-9)
    report(
        "Sweep engine speedup (Fig. 7 grid)",
        f"seed {t_seed:.2f}s  engine {t_engine:.2f}s  ->  {speedup:.1f}x "
        f"({runs} runs/point, {len(DEFAULT_P_GRID)} points)",
    )
    emit(
        "sweep_engine",
        wall_s=t_engine,
        throughput=len(DEFAULT_P_GRID) * runs / max(t_engine, 1e-9),
        extra={
            "throughput_unit": "mc_runs_per_s",
            "wall_seed_s": round(t_seed, 6),
            "speedup": round(speedup, 3),
        },
    )

    # The funnel is exact, so engine yields agree with brute force within
    # the float32-vs-float64 sampling difference (pure Monte-Carlo noise).
    sigma = max(0.02, 4.0 * (0.25 / runs) ** 0.5)
    for ref, point in zip(reference, points):
        assert abs(ref.value - point.yield_value) < sigma

    # With float64 draws the engine reproduces the seed RNG stream exactly.
    eng = SweepEngine(dtype=np.float64)
    exact = survival_sweep(
        [DTMB_1_6], [FIG7_N], DEFAULT_P_GRID, runs=runs, seed=2005, engine=eng
    )
    assert [pt.estimate.successes for pt in exact] == [
        ref.successes for ref in reference
    ]

    # The 3x bar applies at paper-scale budgets where throughput matters.
    if runs >= 5000:
        assert speedup >= 3.0, f"engine only {speedup:.2f}x faster than seed"
    else:
        # Quick budgets are overhead-dominated; just require "not worse".
        assert speedup >= 0.7, f"engine much slower than seed at quick budget"


def test_bench_serial_parallel_identical(runs):
    budget = min(runs, 2000)
    serial = survival_sweep(
        [DTMB_1_6], [FIG7_N], DEFAULT_P_GRID, runs=budget, seed=7,
        engine=SweepEngine(jobs=1),
    )
    parallel = survival_sweep(
        [DTMB_1_6], [FIG7_N], DEFAULT_P_GRID, runs=budget, seed=7,
        engine=SweepEngine(jobs=2),
    )
    assert [pt.estimate.successes for pt in serial] == [
        pt.estimate.successes for pt in parallel
    ]
