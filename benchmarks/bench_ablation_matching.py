"""Ablation: matching algorithm choice (greedy vs maximum matching)."""

from __future__ import annotations

from conftest import report

from repro.experiments import ablation_matching


def test_bench_ablation_matching(benchmark):
    result = benchmark.pedantic(
        ablation_matching.run,
        kwargs={"runs": 1500},
        rounds=1,
        iterations=1,
    )
    report("Ablation: matching algorithms", result.format_report())

    # Both maximum-matching algorithms agree exactly, always.
    assert result.kuhn_hk_mismatches == 0
    assert result.repaired["kuhn"] == result.repaired["hopcroft-karp"]
    # Greedy under-repairs: it scraps chips the maximum matching saves.
    assert result.repaired["greedy"] < result.repaired["hopcroft-karp"]
    assert result.disagreements > 0
