"""Figure 13: yield of the redesigned diagnostics chip vs fault count m."""

from __future__ import annotations

from conftest import report

from repro.experiments import fig13


def test_bench_fig13(benchmark, runs, engine):
    result = benchmark.pedantic(
        fig13.run, kwargs={"runs": runs, "engine": engine}, rounds=1, iterations=1
    )
    report("Figure 13: yield vs number of faults", result.format_report())
    report("Figure 13 (chart)", result.format_chart())

    # Monotone decline in m.
    ys = [result.yield_at(m) for m in (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)]
    assert ys == sorted(ys, reverse=True)

    # The paper's plateau: >= 0.90 deep into double-digit fault counts.
    # Our synthetic layout holds >= 0.90 through m ~ 30 and ~0.83 at the
    # paper's quoted m = 35 (see EXPERIMENTS.md for the interpretation
    # gap); the qualitative shape — near-1 at small m, graceful decline,
    # collapse past ~40 — matches.
    assert result.yield_at(5) > 0.995
    assert result.yield_at(10) > 0.99
    assert result.yield_at(20) > 0.95
    assert result.yield_at(30) > 0.88
    assert result.yield_at(35) > 0.78
    assert result.yield_at(50) < 0.60

    # Contrast with the non-redundant baseline: a single fault among the
    # 108 fabricated cells scraps the Figure 11 chip, while the redesign
    # shrugs off ten.
    assert result.yield_at(10) > 0.99
