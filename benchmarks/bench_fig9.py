"""Figure 9: Monte-Carlo yield of DTMB(2,6), DTMB(3,6), DTMB(4,4).

The heavyweight benchmark: 3 designs x 3 array sizes x 11 survival
probabilities at the paper's 10 000 runs per point (override with
REPRO_BENCH_RUNS).
"""

from __future__ import annotations

from conftest import report

from repro.experiments import fig9


def test_bench_fig9(benchmark, runs, engine):
    result = benchmark.pedantic(
        fig9.run, kwargs={"runs": runs, "engine": engine}, rounds=1, iterations=1
    )
    for n in (60, 120, 240):
        report(f"Figure 9 (n={n})", result.format_chart(n))

    slack = 0.02  # Monte-Carlo noise allowance at 10k runs
    for n in (60, 120, 240):
        for p in (0.90, 0.93, 0.96, 0.99):
            y26 = result.yield_at("DTMB(2,6)", n, p)
            y36 = result.yield_at("DTMB(3,6)", n, p)
            y44 = result.yield_at("DTMB(4,4)", n, p)
            # Higher redundancy -> higher yield, the paper's ordering.
            assert y26 <= y36 + slack, (n, p)
            assert y36 <= y44 + slack, (n, p)
        # Perfect cells -> perfect yield.
        for design in ("DTMB(2,6)", "DTMB(3,6)", "DTMB(4,4)"):
            assert result.yield_at(design, n, 1.0) == 1.0

    # Larger arrays yield less at equal p (more cells to get lucky on).
    for design in ("DTMB(2,6)", "DTMB(3,6)", "DTMB(4,4)"):
        for p in (0.92, 0.95):
            assert result.yield_at(design, 240, p) <= (
                result.yield_at(design, 60, p) + slack
            )

    # Factor check at a mid-grid point the paper's figure shows clearly:
    # at n = 240, p = 0.92 the heavy design is far ahead of the light one.
    assert result.yield_at("DTMB(4,4)", 240, 0.92) > 0.95
    assert result.yield_at("DTMB(2,6)", 240, 0.92) < 0.70
