"""Ablation: independent vs clustered defects at equal expected severity."""

from __future__ import annotations

from conftest import report

from repro.experiments import ablation_defects


def test_bench_ablation_defects(benchmark):
    result = benchmark.pedantic(
        ablation_defects.run,
        kwargs={"runs": 800},
        rounds=1,
        iterations=1,
    )
    report("Ablation: defect spatial models", result.format_report())

    gaps = result.gaps()
    # Clustered spot defects defeat local reconfiguration more often than
    # independent failures of the same expected severity: the paper's
    # independence assumption is optimistic for particle-dominated fabs.
    assert all(g > 0.0 for g in gaps)
    # And the gap is substantial at higher severities.
    assert gaps[-1] > 0.15
