"""Telemetry overhead: armed tracing + logging must cost at most 5%.

The observability acceptance target mirrors the resilience one: running
the Figure 7 survival grid with the full telemetry stack armed — span
tracer on the engine, JSON event logging configured at INFO, worker
phase timers (always on) — must cost at most 5% over a plain engine, and
must not change a single number (telemetry is out-of-band by contract).

Timing noise on shared CI runners easily exceeds 5% on small budgets, so
both configurations run several rounds and the *minimum* is compared,
with a small absolute floor absorbing scheduler jitter on fast runs.
"""

from __future__ import annotations

import io
import time

from _emit import emit
from conftest import report

from repro.designs.catalog import DTMB_1_6
from repro.designs.interstitial import build_with_primary_count
from repro.obs.events import configure_logging
from repro.obs.trace import Tracer, validate_trace
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.sweeps import DEFAULT_P_GRID

#: The Figure 7 design and array size whose Monte-Carlo check the paper plots.
FIG7_N = 60

ROUNDS = 3

#: Allowed relative overhead of armed tracing + logging.
MAX_OVERHEAD = 0.05

#: Absolute jitter floor (seconds): below this, timer noise dominates and
#: a ratio assertion would test the OS scheduler, not the code.
JITTER_FLOOR = 0.10


def _grid_points(seed):
    return [(p, seed + i + 1) for i, p in enumerate(DEFAULT_P_GRID)]


def _run(engine, chip, runs):
    return [
        (e.successes, e.trials)
        for e in engine.survival_estimates(chip, _grid_points(2005), runs)
    ]


def _best_of(make_engine, chip, runs):
    best, result = float("inf"), None
    for round_index in range(ROUNDS):
        engine = make_engine(round_index)
        t0 = time.perf_counter()
        result = _run(engine, chip, runs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_bench_obs_overhead(runs):
    chip = build_with_primary_count(DTMB_1_6, FIG7_N).build()

    t_plain, plain = _best_of(lambda i: SweepEngine(), chip, runs)

    # Armed: a live tracer on the engine plus NDJSON event logging at
    # INFO draining into memory (the worst case — a real run writes to a
    # buffered file).  Each round gets a fresh tracer so the span list
    # grows from empty, as in a real traced run.
    sink = io.StringIO()
    configure_logging("info", json_lines=True, stream=sink)
    try:
        tracers = []

        def make_armed(_round):
            tracer = Tracer()
            tracers.append(tracer)
            return SweepEngine(tracer=tracer)

        t_armed, armed = _best_of(make_armed, chip, runs)
    finally:
        configure_logging("warning")  # restore the quiet default

    overhead = t_armed / max(t_plain, 1e-9) - 1.0
    report(
        "Telemetry overhead (Fig. 7 grid, tracer + JSON log armed)",
        f"plain engine:  {t_plain:.3f}s (best of {ROUNDS})\n"
        f"armed engine:  {t_armed:.3f}s (tracer + NDJSON logging)\n"
        f"trace spans:   {len(tracers[-1])} per round\n"
        f"overhead:      {100.0 * overhead:+.1f}% "
        f"(budget {100.0 * MAX_OVERHEAD:.0f}%)",
    )
    emit(
        "obs",
        wall_s=t_armed,
        throughput=len(DEFAULT_P_GRID) * runs / max(t_armed, 1e-9),
        extra={
            "throughput_unit": "mc_runs_per_s",
            "wall_plain_s": round(t_plain, 6),
            "overhead": round(overhead, 4),
            "trace_events": len(tracers[-1]),
        },
    )

    # Armed telemetry must not change a single number...
    assert armed == plain
    # ...its trace must be well-formed and span every grid point...
    events = validate_trace(tracers[-1].to_dict())
    points = [e for e in events if e["name"] == "point"]
    assert len(points) == len(DEFAULT_P_GRID)
    # ...and it must fit the overhead budget (jitter floor absorbs timer
    # noise when the reduced CI budget finishes in milliseconds).
    assert t_armed <= t_plain * (1.0 + MAX_OVERHEAD) + JITTER_FLOOR, (
        f"telemetry stack costs {100.0 * overhead:.1f}% "
        f"(budget {100.0 * MAX_OVERHEAD:.0f}%)"
    )
