"""Ablation: hexagonal vs square electrode arrays (the Section 3 claim)."""

from __future__ import annotations

from conftest import report

from repro.experiments import ablation_hexsquare


def test_bench_ablation_hexsquare(benchmark):
    result = benchmark.pedantic(
        ablation_hexsquare.run,
        kwargs={"runs": 400},
        rounds=1,
        iterations=1,
    )
    report("Ablation: hexagonal vs square electrodes", result.format_report())

    # The paper's expectation: close-packed hex arrays transport more
    # effectively.  Hex routes are measurably shorter on average...
    assert result.route_advantage > 1.05
    # ...and six-connectivity survives cell knock-outs better than four.
    assert (
        result.connected_after_faults_hex
        >= result.connected_after_faults_square - 0.02
    )
