"""Command-line interface: one generic dispatcher over the experiment registry.

Every subcommand except ``gallery`` and ``recommend`` is generated from
:mod:`repro.experiments.registry` — the CLI has no per-experiment code.
Registering a new experiment (one ``@register`` decorator on its driver's
``run``) is all it takes for the command, ``repro list``, ``repro show``,
``repro all`` and the artifact manifest to pick it up.

::

    python -m repro list                       # what can be reproduced
    python -m repro show fig9                  # one experiment in detail
    python -m repro table1
    python -m repro fig9 --runs 2000 --csv fig9.csv
    python -m repro fig13 --chart
    python -m repro ablation-hexsquare --runs 5000
    python -m repro all --runs 2000 --out artifacts/
    python -m repro gallery --out designs.html
    python -m repro recommend --target-yield 0.95 --p 0.95 --n 100
    python -m repro list --json                # machine-readable registry
    python -m repro serve --port 8765 --jobs 4 # yield-as-a-service (HTTP)

Every experiment honors ``--runs`` (Monte-Carlo budget; paper default
10 000, scaled per experiment by its registered budget policy) and
``--seed``.  ``--adaptive`` switches the Monte-Carlo sweeps to sequential
budgets — each point stops once its Wilson interval meets the
experiment's registered target half-width (override with
``--target-ci W``), with ``--runs`` as the flat ceiling; the manifest
provenance records requested vs. effective runs per point.
``--shard-runs N`` splits huge points into N-run, ``SeedSequence``-seeded
shards so a single p-grid corner can use every ``--jobs`` worker.
``--retries N``/``--unit-timeout S`` retry failed or stalled compute
units with deterministic backoff (retried results are bit-identical);
``--checkpoint`` (with ``--cache``) journals adaptive points
fold-by-fold so an interrupted sweep resumes byte-identically from its
last completed fold.
``--defect-model NAME[:k=v,...]`` reruns the survival sweeps under a
spatial defect model (clustered spots, rate mixing, radial gradients —
see :mod:`repro.yieldsim.defects`) at severity matched to the p axis;
the scenario-pack experiments (``fig7-clustered``, ``fig9-clustered``,
``scenario-gradient``) package the headline comparisons.
``--criterion NAME[:k=v,...]`` swaps the success predicate of the
Monte-Carlo sweeps (fig7's check column, fig9): ``matching`` (default),
``routing:assay=A,deadline=D`` and ``multiplexed:assays=A+B,deadline=D``
count a fault map as a success only if the repaired chip still schedules
the named assay's droplet routes (see :mod:`repro.functional`); the
``fig7-functional``/``fig9-functional``/``scenario-multiplexed`` packs
report the matching-vs-functional yield gap directly.
``repro all --experiment-jobs N`` runs whole experiments in parallel
worker processes, one experiment per worker, with per-experiment output
byte-identical to the serial loop.
``--csv`` exports the rows of any tabular experiment;
``--out DIR`` writes the full artifact bundle (CSV + JSON + report +
ASCII charts per experiment, plus a ``manifest.json`` with provenance:
seed, effective budget, engine jobs/cache traffic, result digest).
``repro all --out artifacts/`` is the one-command, diffable paper
reproduction.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.errors import CriterionError, ExperimentError, FaultModelError
from repro.experiments import registry
from repro.experiments.artifacts import ArtifactRun
from repro.experiments.registry import Experiment, ExperimentResult
from repro.obs.events import configure_logging, get_logger, log_event
from repro.obs.trace import Tracer
from repro.viz.export import write_csv
from repro.yieldsim.cachestore import store_from_url
from repro.yieldsim.defects import ModelFamily, family_from_spec
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.resilience import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "main",
    "build_parser",
    "add_budget_options",
    "add_engine_options",
    "add_adaptive_options",
    "add_model_options",
    "add_criterion_options",
    "add_render_options",
    "add_observability_options",
]

_log = get_logger("cli")


# --- shared option layers ----------------------------------------------------
#
# Every surface that runs experiments — the per-experiment subcommands,
# `all`, `recommend`, `serve` — composes these groups instead of
# redeclaring flags, so an engine option added here reaches the HTTP
# server and the budget-only `recommend` for free.

def add_budget_options(
    p: argparse.ArgumentParser, *, runs_default: int = registry.DEFAULT_CLI_RUNS
) -> None:
    """--runs/--seed: the Monte-Carlo budget and RNG seed."""
    p.add_argument(
        "--runs", type=int, default=runs_default,
        help=f"Monte-Carlo runs per point (default: {runs_default}; each "
             "experiment scales this by its registered budget policy)",
    )
    p.add_argument(
        "--seed", type=int, default=registry.DEFAULT_SEED, help="RNG seed"
    )


def add_engine_options(p: argparse.ArgumentParser) -> None:
    """--jobs/--cache/--shard-runs plus the resilience knobs.

    All of them preserve bit-identity with serial execution: retries,
    timeouts and checkpoint resumes change where and when a unit runs,
    never its numbers."""
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for Monte-Carlo sweeps (results are "
             "bit-identical to serial execution)",
    )
    p.add_argument(
        "--shard-runs", type=int, default=None, metavar="N",
        help="split any point bigger than N runs into N-run shards with "
             "SeedSequence-spawned seeds and (with --jobs) spread them "
             "across the worker pool",
    )
    p.add_argument(
        "--cache", "--cache-dir", type=str, default=None, metavar="DIR",
        help="on-disk sweep result cache directory (keyed by chip, "
             "parameter, runs and seed; reruns cost nothing)",
    )
    p.add_argument(
        "--cache-url", type=str, default=None, metavar="URL",
        help="shared cache store to read through to and publish points "
             "into: http(s)://HOST:PORT (a `repro cache-serve` "
             "endpoint) or a shared-filesystem path.  Layered behind "
             "--cache as a local tier; a dead remote degrades to "
             "recomputation, never an error",
    )
    p.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry each failed compute unit up to N times with "
             "deterministic exponential backoff before giving up "
             "(retried results are bit-identical, so 0 just means "
             "fail fast)",
    )
    p.add_argument(
        "--unit-timeout", type=float, default=None, metavar="S",
        help="treat any compute unit still running after S seconds as "
             "failed and retry it under the --retries budget",
    )
    p.add_argument(
        "--checkpoint", action="store_true",
        help="journal adaptive points fold-by-fold into the --cache "
             "directory so an interrupted sweep resumes byte-identically "
             "from its last completed fold (requires --cache)",
    )


def add_adaptive_options(p: argparse.ArgumentParser) -> None:
    """--adaptive/--target-ci: sequential stopping budgets."""
    p.add_argument(
        "--adaptive", action="store_true",
        help="adaptive sequential budgets: each Monte-Carlo point stops "
             "once its Wilson interval meets the experiment's registered "
             "target half-width; --runs stays the flat ceiling",
    )
    p.add_argument(
        "--target-ci", type=float, default=None, metavar="W",
        help="adaptive stop target: halt a point once its 95%% Wilson "
             "half-width is <= W (implies --adaptive, overrides the "
             "registered target)",
    )


def add_model_options(p: argparse.ArgumentParser) -> None:
    """--defect-model: spatial defect family for the survival sweeps."""
    p.add_argument(
        "--defect-model", type=str, default=None, metavar="NAME[:k=v,...]",
        help="spatial defect model for the survival sweeps (fig9/fig10): "
             "iid (default), spot[:radius=R], negbin[:alpha=A], "
             "gradient[:spread=S,power=W]; severity stays matched to "
             "the sweep's p axis.  Under `all`, applies to the "
             "model-capable experiments and leaves the rest unchanged",
    )


def add_criterion_options(p: argparse.ArgumentParser) -> None:
    """--criterion: functional success criterion for the survival sweeps."""
    p.add_argument(
        "--criterion", type=str, default=None, metavar="NAME[:k=v,...]",
        help="success criterion for the Monte-Carlo sweeps (fig7/fig9): "
             "matching (default), routing[:assay=A,deadline=D], "
             "multiplexed[:assays=A+B,deadline=D].  Functional criteria "
             "count a fault map as a success only if the named assay's "
             "droplet routes still schedule on the repaired chip (see "
             "repro.functional).  Under `all`, applies to the "
             "criterion-capable experiments and leaves the rest unchanged",
    )


def add_observability_options(
    p: argparse.ArgumentParser, *, trace: bool = True
) -> None:
    """--trace/--log-level/--log-json/--log-file: telemetry knobs.

    All of them are out-of-band by the telemetry invariant: fixed-seed
    artifacts are byte-identical with tracing and logging on, off, or
    broken.  ``trace=False`` omits the --trace flag for surfaces that
    trace per request instead of per run (`repro serve`).
    """
    if trace:
        p.add_argument(
            "--trace", type=str, default=None, metavar="FILE",
            help="write a Chrome trace-event JSON of the run's compute "
                 "spans (points, units, folds, cache traffic) to FILE; "
                 "open it in Perfetto or chrome://tracing.  Results are "
                 "bit-identical with or without it",
        )
    p.add_argument(
        "--log-level", type=str, default=None,
        choices=("debug", "info", "warning", "error"),
        help="enable structured event logging at this level (default: "
             "unconfigured — stdlib prints WARNING+ incidents only)",
    )
    p.add_argument(
        "--log-json", action="store_true",
        help="emit the event log as NDJSON (one JSON object per line) "
             "instead of human-readable text; implies --log-level info "
             "unless --log-level is given",
    )
    p.add_argument(
        "--log-file", type=str, default=None, metavar="PATH",
        help="write the event log to PATH instead of stderr (keeps "
             "NDJSON clean of progress output); implies --log-level "
             "info unless --log-level is given",
    )


def add_render_options(p: argparse.ArgumentParser) -> None:
    """--csv/--chart/--mc-check/--out: what to emit besides the report."""
    p.add_argument(
        "--csv", type=str, default=None, help="export rows to a CSV file"
    )
    p.add_argument(
        "--chart", action="store_true", help="print ASCII charts too"
    )
    p.add_argument(
        "--mc-check", action="store_true",
        help="(fig7) add the Monte-Carlo validation column",
    )
    p.add_argument(
        "--out", type=str, default=None, metavar="DIR",
        help="write CSV/JSON/report/chart artifacts plus manifest.json "
             "into this run directory",
    )


def _emit(text: str) -> None:
    print(text)


def _fail(message: str) -> int:
    print(f"repro: error: {message}", file=sys.stderr)
    return 2


def _retry_policy(
    retries: Optional[int], unit_timeout: Optional[float]
) -> Optional[RetryPolicy]:
    """The RetryPolicy the --retries/--unit-timeout flags ask for, or None.

    ``--retries N`` means N retries *after* the first attempt, so the
    policy gets ``attempts=N + 1``; ``--unit-timeout`` alone keeps the
    default attempt budget.  Validation happens here so a bad flag is a
    clean CLI error, not a traceback.
    """
    if retries is None and unit_timeout is None:
        return None
    if retries is not None and retries < 0:
        raise ExperimentError(f"--retries must be >= 0, got {retries}")
    if unit_timeout is not None and unit_timeout <= 0:
        raise ExperimentError(
            f"--unit-timeout must be > 0, got {unit_timeout}"
        )
    attempts = (
        retries + 1 if retries is not None else DEFAULT_RETRY_POLICY.attempts
    )
    return RetryPolicy(attempts=attempts, unit_timeout=unit_timeout)


def _retry_from_args(args: argparse.Namespace) -> Optional[RetryPolicy]:
    return _retry_policy(
        getattr(args, "retries", None), getattr(args, "unit_timeout", None)
    )


def _engine_from_args(args: argparse.Namespace) -> Optional[SweepEngine]:
    """A SweepEngine honoring --jobs/--cache/resilience flags, or None
    for pure defaults.

    Progress is reported to stderr in ~10% chunks so long paper-budget
    sweeps show life without polluting the report on stdout.
    """
    jobs = getattr(args, "jobs", 1)
    cache = getattr(args, "cache", None) or None  # "" means no cache
    cache_url = getattr(args, "cache_url", None) or None
    shard_runs = getattr(args, "shard_runs", None)
    retry = _retry_from_args(args)
    checkpoint = bool(getattr(args, "checkpoint", False))
    trace_path = getattr(args, "trace", None) or None
    if checkpoint and cache is None:
        raise ExperimentError("--checkpoint requires --cache DIR")
    if (
        jobs == 1
        and cache is None
        and cache_url is None
        and shard_runs is None
        and retry is None
        and not checkpoint
        and trace_path is None
    ):
        return None

    last_bucket = [-1]

    def progress(done: int, total: int) -> None:
        # `done` advances in chunk-sized jumps, so report whenever a new
        # 10% bucket is crossed rather than on exact multiples.
        bucket = done * 10 // max(1, total)
        if bucket > last_bucket[0] or done == total:
            last_bucket[0] = bucket
            print(f"  [{done}/{total} points]", file=sys.stderr)

    return SweepEngine(
        jobs=jobs,
        cache_dir=cache,
        progress=progress,
        shard_runs=shard_runs,
        retry=retry,
        checkpoint=checkpoint,
        cache_store=store_from_url(cache_url) if cache_url else None,
        tracer=Tracer() if trace_path else None,
    )


def _configure_logging_from_args(args: argparse.Namespace) -> None:
    """Install the repro.* log handler the --log-* flags ask for."""
    level = getattr(args, "log_level", None)
    json_lines = bool(getattr(args, "log_json", False))
    log_file = getattr(args, "log_file", None) or None
    if level is None and not json_lines and log_file is None:
        return  # unconfigured: stdlib lastResort prints WARNING+ only
    configure_logging(
        level or "info", json_lines=json_lines, path=log_file
    )


def _write_trace(args: argparse.Namespace, engine: Optional[SweepEngine]) -> None:
    """Write the armed tracer's Chrome-trace JSON to the --trace FILE."""
    path = getattr(args, "trace", None) or None
    if path is None or engine is None or engine.tracer is None:
        return
    engine.tracer.write(path)
    print(
        f"wrote {path} ({len(engine.tracer)} trace events)", file=sys.stderr
    )


def _artifact_run(args: argparse.Namespace) -> Optional[ArtifactRun]:
    if not getattr(args, "out", None):
        return None
    return ArtifactRun(
        args.out,
        runs=args.runs,
        seed=args.seed,
        jobs=getattr(args, "jobs", 1),
        cache_dir=getattr(args, "cache", None) or None,
    )


# --- the generic dispatcher --------------------------------------------------

def _target_ci_from_args(args: argparse.Namespace) -> Optional[float]:
    """The validated --target-ci value (re-targets each experiment's
    registered rule), or None."""
    target = getattr(args, "target_ci", None)
    if target is None:
        return None
    if target <= 0:
        raise ExperimentError(f"--target-ci must be > 0, got {target}")
    return target


def _model_family_from_args(args: argparse.Namespace) -> Optional[ModelFamily]:
    """The parsed --defect-model family, or None."""
    text = getattr(args, "defect_model", None)
    if not text:
        return None
    return family_from_spec(text)


def _criterion_from_args(args: argparse.Namespace):
    """The parsed --criterion instance, or None."""
    text = getattr(args, "criterion", None)
    if not text:
        return None
    # Deferred import: the criterion subsystem pulls in the fluidics
    # scheduler, which plain matching runs never need.
    from repro.functional import criterion_from_spec

    return criterion_from_spec(text)


def _execute(
    experiment: Experiment,
    args: argparse.Namespace,
    engine: Optional[SweepEngine],
    model: Optional[ModelFamily] = None,
    criterion: Optional[object] = None,
) -> ExperimentResult:
    target_ci = _target_ci_from_args(args)
    knobs = {}
    if model is not None:
        knobs["model"] = model
    if criterion is not None:
        knobs["criterion"] = criterion
    log_event(
        _log, "run_start", name=experiment.name,
        runs=args.runs, seed=args.seed,
        adaptive=bool(getattr(args, "adaptive", False) or target_ci),
    )
    result = registry.execute(
        experiment,
        runs=args.runs,
        seed=args.seed,
        engine=engine,
        options={
            "chart": getattr(args, "chart", False),
            "mc_check": getattr(args, "mc_check", False),
            "adaptive": bool(getattr(args, "adaptive", False) or target_ci),
            "target_ci": target_ci,
        },
        knobs=knobs or None,
    )
    prov = result.provenance
    log_event(
        _log, "run_complete", name=experiment.name,
        effective=prov.mc_runs_effective,
        requested=prov.mc_runs_requested,
        digest=prov.digest,
    )
    if prov.stop_rule is not None and prov.mc_runs_requested:
        spent = 100.0 * prov.mc_runs_effective / prov.mc_runs_requested
        print(
            f"  adaptive budget: {prov.mc_runs_effective}/"
            f"{prov.mc_runs_requested} runs ({spent:.0f}% of flat) over "
            f"{len(prov.mc_points)} points",
            file=sys.stderr,
        )
    return result


def _print_result(result: ExperimentResult, args: argparse.Namespace) -> None:
    """Render one experiment to stdout exactly as the bespoke handlers did:
    report, epilogue lines, then (with --chart) each chart after a blank
    line.  ``report_text()`` is the same renderer the artifact pipeline
    writes to ``report.txt``, keeping stdout and artifacts in lockstep."""
    _emit(result.report_text())
    if getattr(args, "chart", False):
        for _label, chart in result.charts:
            _emit("")
            _emit(chart)


def _run_experiment(args: argparse.Namespace) -> int:
    experiment = registry.get(args.command)
    # Reject impossible exports and unwritable --out targets before
    # spending the Monte-Carlo budget.
    if args.csv and not experiment.tabular:
        return _fail(
            f"{experiment.name} has no tabular data to export "
            "(report-only experiment)"
        )
    model = _model_family_from_args(args)
    if model is not None and not experiment.model_knob:
        return _fail(
            f"{experiment.name} does not accept --defect-model "
            "(its fault regime is part of the experiment definition)"
        )
    criterion = _criterion_from_args(args)
    if criterion is not None and not experiment.criterion_knob:
        return _fail(
            f"{experiment.name} does not accept --criterion "
            "(its success predicate is part of the experiment definition)"
        )
    run = _artifact_run(args)
    engine = _engine_from_args(args)
    result = _execute(experiment, args, engine, model=model, criterion=criterion)
    _print_result(result, args)
    if args.csv:
        write_csv(args.csv, result.headers, result.rows)
        _emit(f"wrote {args.csv}")
    if run is not None:
        run.add(result)
        manifest = run.finalize()
        _emit(f"wrote {manifest}")
    _write_trace(args, engine)
    return 0


class _RemotePayload:
    """An :class:`ExperimentResult` stand-in rebuilt from a worker payload.

    Cross-experiment sharding computes each experiment in a worker
    process; ``Experiment`` records hold unpicklable renderer closures, so
    workers return plain data (:func:`_all_unit`) and the parent wraps it
    in this shim, which quacks exactly like ``ExperimentResult`` for the
    two consumers `all` has: ``_print_result`` and ``ArtifactRun.add``.
    Every field is carried verbatim from the worker's real result, so the
    artifacts written through the shim are byte-identical to a serial run.
    """

    class _Provenance:
        def __init__(self, full: dict, stable: dict):
            self._full = full
            self._stable = stable

        def as_dict(self) -> dict:
            return dict(self._full)

        def stable_dict(self) -> dict:
            return dict(self._stable)

    def __init__(self, experiment: Experiment, payload: dict):
        self.experiment = experiment
        self.headers = payload["headers"]
        self.rows = payload["rows"]
        self.charts = payload["charts"]
        self._report_text = payload["report_text"]
        self._canonical = payload["canonical_report_text"]
        self.provenance = self._Provenance(
            payload["provenance"], payload["provenance_stable"]
        )

    @property
    def name(self) -> str:
        return self.experiment.name

    @property
    def tabular(self) -> bool:
        return self.headers is not None

    def report_text(self) -> str:
        return self._report_text

    def canonical_report_text(self) -> str:
        return self._canonical


def _all_unit(
    name: str,
    runs: int,
    seed: int,
    options: dict,
    model_spec: Optional[str],
    criterion_spec: Optional[str],
    cache_dir: Optional[str],
    cache_url: Optional[str],
    shard_runs: Optional[int],
    retries: Optional[int],
    unit_timeout: Optional[float],
    checkpoint: bool,
    want_charts: bool,
    log_level: Optional[str] = None,
    log_json: bool = False,
    trace: bool = False,
) -> dict:
    """One `repro all` experiment, computed in a worker process.

    Module-level (picklable) so :class:`~repro.yieldsim.executors.
    PoolExecutor` can ship it; takes only plain values and returns only
    plain values.  Model/criterion arrive as their CLI spec strings and
    are re-parsed here — parsed instances need not cross the process
    boundary.  The worker runs its experiment serially (parallelism comes
    from running experiments side by side), still honoring the result
    cache, shard plan and retry/checkpoint policy, none of which can
    change any number by the engine's bit-identity contract.  Telemetry
    crosses back as plain data too: with ``trace`` the worker's engine
    records spans and returns them under ``trace_events`` for the parent
    to merge into one file.
    """
    if log_level is not None or log_json:
        # Workers inherit stderr; a --log-file stays parent-only (one
        # writer per file).
        configure_logging(log_level or "info", json_lines=log_json)
    experiment = registry.get(name)
    engine = None
    retry = _retry_policy(retries, unit_timeout)
    if (
        cache_dir is not None
        or cache_url is not None
        or shard_runs is not None
        or retry is not None
        or checkpoint
        or trace
    ):
        # The store is rebuilt from its URL inside the worker: live store
        # objects (sockets, open dirs) need not cross the process boundary.
        engine = SweepEngine(
            cache_dir=cache_dir,
            shard_runs=shard_runs,
            retry=retry,
            checkpoint=checkpoint,
            cache_store=store_from_url(cache_url) if cache_url else None,
            tracer=Tracer() if trace else None,
        )
    knobs: dict = {}
    if model_spec and experiment.model_knob:
        knobs["model"] = family_from_spec(model_spec)
    if criterion_spec and experiment.criterion_knob:
        from repro.functional import criterion_from_spec

        knobs["criterion"] = criterion_from_spec(criterion_spec)
    result = registry.execute(
        experiment,
        runs=runs,
        seed=seed,
        engine=engine,
        options=options,
        knobs=knobs or None,
    )
    return {
        "name": result.name,
        "headers": result.headers,
        "rows": result.rows,
        "charts": result.charts if want_charts else (),
        "report_text": result.report_text(),
        "canonical_report_text": result.canonical_report_text(),
        "provenance": result.provenance.as_dict(),
        "provenance_stable": result.provenance.stable_dict(),
        "trace_events": (
            engine.tracer.to_dict()["traceEvents"]
            if engine is not None and engine.tracer is not None
            else []
        ),
    }


def _print_adaptive_note(budget: dict) -> None:
    """The per-experiment adaptive-budget stderr line, from provenance."""
    if budget.get("stop_rule") is not None and budget.get("mc_runs_requested"):
        spent = 100.0 * budget["mc_runs_effective"] / budget["mc_runs_requested"]
        print(
            f"  adaptive budget: {budget['mc_runs_effective']}/"
            f"{budget['mc_runs_requested']} runs ({spent:.0f}% of flat) over "
            f"{len(budget['points'])} points",
            file=sys.stderr,
        )


def _run_all_sharded(args: argparse.Namespace, jobs: int) -> int:
    """`repro all` with one experiment per worker process.

    Submits every registered experiment through the same
    :class:`~repro.yieldsim.executors.Executor` seam the point scheduler
    uses, then folds results in registry order — stdout, artifacts and
    the manifest come out exactly as the serial loop writes them (the
    executor changes wall-clock time, never a number or a byte).
    """
    from repro.yieldsim.executors import default_executor

    # Parse --defect-model/--criterion/--retries in the parent first: a
    # malformed spec must fail before any worker budget is spent.
    _model_family_from_args(args)
    _criterion_from_args(args)
    _retry_from_args(args)
    if getattr(args, "checkpoint", False) and not (
        getattr(args, "cache", None) or None
    ):
        raise ExperimentError("--checkpoint requires --cache DIR")
    target_ci = _target_ci_from_args(args)
    options = {
        "chart": getattr(args, "chart", False),
        "mc_check": getattr(args, "mc_check", False),
        "adaptive": bool(getattr(args, "adaptive", False) or target_ci),
        "target_ci": target_ci,
    }
    run = _artifact_run(args)
    want_charts = bool(getattr(args, "chart", False) or run is not None)
    trace_path = getattr(args, "trace", None) or None
    tracer = Tracer() if trace_path else None
    experiments = registry.all_experiments()
    executor = default_executor(min(jobs, len(experiments)))
    executor.start(len(experiments))
    try:
        futures = [
            executor.submit(
                _all_unit,
                experiment.name,
                args.runs,
                args.seed,
                options,
                getattr(args, "defect_model", None),
                getattr(args, "criterion", None),
                getattr(args, "cache", None) or None,
                getattr(args, "cache_url", None) or None,
                getattr(args, "shard_runs", None),
                getattr(args, "retries", None),
                getattr(args, "unit_timeout", None),
                bool(getattr(args, "checkpoint", False)),
                want_charts,
                getattr(args, "log_level", None),
                bool(getattr(args, "log_json", False)),
                tracer is not None,
            )
            for experiment in experiments
        ]
        for experiment, future in zip(experiments, futures):
            payload = future.result()
            _emit(f"\n=== {experiment.name} ===")
            result = _RemotePayload(experiment, payload)
            _print_adaptive_note(payload["provenance"]["budget"])
            _print_result(result, args)
            if run is not None:
                run.add(result)
            if tracer is not None:
                # Workers return spans in fold order; the merged file
                # keeps experiments in registry order.
                tracer.extend(payload.get("trace_events", ()))
    finally:
        executor.shutdown()
    if run is not None:
        manifest = run.finalize()
        _emit(f"\nwrote {manifest} ({run.added} experiments)")
    if tracer is not None:
        tracer.write(trace_path)
        print(
            f"wrote {trace_path} ({len(tracer)} trace events)",
            file=sys.stderr,
        )
    return 0


def _run_all(args: argparse.Namespace) -> int:
    if args.csv:
        return _fail(
            "`all` cannot write a single CSV; use --out DIR for "
            "per-experiment artifacts"
        )
    experiment_jobs = getattr(args, "experiment_jobs", 1) or 1
    if experiment_jobs < 1:
        return _fail(f"--experiment-jobs must be >= 1, got {experiment_jobs}")
    if experiment_jobs > 1:
        return _run_all_sharded(args, experiment_jobs)
    engine = _engine_from_args(args)
    run = _artifact_run(args)
    model = _model_family_from_args(args)
    criterion = _criterion_from_args(args)
    for experiment in registry.all_experiments():
        _emit(f"\n=== {experiment.name} ===")
        # --defect-model/--criterion apply to the sweeps that accept the
        # knob; the fixed-regime experiments run unchanged (per --help).
        result = _execute(
            experiment, args, engine,
            model=model if experiment.model_knob else None,
            criterion=criterion if experiment.criterion_knob else None,
        )
        _print_result(result, args)
        if run is not None:
            run.add(result)
    if run is not None:
        manifest = run.finalize()
        _emit(f"\nwrote {manifest} ({run.added} experiments)")
    _write_trace(args, engine)
    return 0


def _run_list(args: argparse.Namespace) -> int:
    from repro.experiments.report import format_table

    if getattr(args, "json", False):
        # The same machine-readable schema `repro serve` answers
        # GET /experiments with — one schema, two transports.
        import json

        _emit(json.dumps(registry.listing(), indent=2))
        return 0

    rows = []
    for experiment in registry.all_experiments():
        rows.append(
            (
                experiment.name,
                experiment.paper_ref,
                experiment.budget.describe(),
                "csv,json" if experiment.tabular else "report",
                "yes" if experiment.has_charts else "-",
            )
        )
    _emit(
        format_table(
            ["experiment", "paper ref", "budget (--runs N)", "artifacts", "charts"],
            rows,
        )
    )
    return 0


def _run_show(args: argparse.Namespace) -> int:
    experiment = registry.get(args.experiment)
    if getattr(args, "json", False):
        import json

        _emit(json.dumps(experiment.as_dict(), indent=2))
        return 0
    _emit(experiment.describe())
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    # Deferred import: the CLI stays asyncio-free unless serving.
    from repro.serve.app import ServeConfig, serve_forever

    retry = _retry_from_args(args)
    checkpoint = bool(getattr(args, "checkpoint", False))
    if checkpoint and not (args.cache or None):
        raise ExperimentError("--checkpoint requires --cache DIR")
    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_dir=args.cache or None,
        shard_runs=args.shard_runs,
        out_dir=args.out or None,
        max_runs=args.max_runs,
        retry=retry,
        checkpoint=checkpoint,
        request_timeout=args.request_timeout,
        max_inflight=args.max_inflight,
        drain_timeout=args.drain_timeout,
        cache_url=getattr(args, "cache_url", None) or None,
        cache_objects=getattr(args, "cache_objects", None) or None,
    )
    return serve_forever(config)


def _run_cache_serve(args: argparse.Namespace) -> int:
    """`repro cache-serve`: just the content-addressed object endpoint.

    The same asyncio server as `repro serve`, with the /cache routes
    mounted over the given object directory; experiment/point routes stay
    available but run with a minimal engine.
    """
    from repro.serve.app import ServeConfig, serve_forever

    config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_objects=args.dir,
        max_body_bytes=args.max_body_bytes,
    )
    return serve_forever(config)


def _run_gallery(args: argparse.Namespace) -> int:
    from repro.viz.gallery import write_gallery

    write_gallery(args.out, size=args.size)
    _emit(f"wrote {args.out}")
    return 0


def _run_recommend(args: argparse.Namespace) -> int:
    from repro.designs.selector import recommend_design

    result = recommend_design(
        target_yield=args.target_yield,
        p=args.p,
        n=args.n,
        runs=args.runs,
        seed=args.seed,
    )
    _emit(result.format_report())
    return 0


# --- parser ---------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce Su/Chakrabarty/Pamula (DATE 2005): yield enhancement "
            "of digital microfluidic biochips via interstitial redundancy."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        add_budget_options(p)
        add_render_options(p)
        add_engine_options(p)
        add_adaptive_options(p)
        add_model_options(p)
        add_criterion_options(p)
        add_observability_options(p)

    for experiment in registry.all_experiments():
        p = sub.add_parser(
            experiment.name,
            aliases=experiment.aliases,
            help=f"regenerate {experiment.paper_ref}: {experiment.title}",
        )
        common(p)
        p.set_defaults(handler=_run_experiment, command=experiment.name)

    p = sub.add_parser("all", help="regenerate every registered experiment")
    common(p)
    p.add_argument(
        "--experiment-jobs", type=int, default=1, metavar="N",
        help="run up to N whole experiments in parallel worker processes "
             "(each worker computes its experiment serially; stdout, "
             "artifacts and the manifest are byte-identical to "
             "--experiment-jobs 1)",
    )
    p.set_defaults(handler=_run_all)

    p = sub.add_parser("list", help="list the registered experiments")
    p.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable registry (the schema "
             "`repro serve` answers GET /experiments with)",
    )
    p.set_defaults(handler=_run_list)

    p = sub.add_parser("show", help="describe one registered experiment")
    p.add_argument("experiment", help="experiment name or alias")
    p.add_argument(
        "--json", action="store_true",
        help="emit the experiment descriptor as JSON (the schema "
             "GET /experiments/{name} serves)",
    )
    p.set_defaults(handler=_run_show)

    serve = sub.add_parser(
        "serve",
        help="serve experiments and sweep points over HTTP "
             "(digest-coalesced, artifact-backed)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument(
        "--max-runs", type=int, default=1_000_000, metavar="N",
        help="per-request Monte-Carlo ceiling (requests above it get a 400)",
    )
    serve.add_argument(
        "--out", type=str, default=None, metavar="DIR",
        help="persist served experiment bundles into this artifact "
             "run directory",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=None, metavar="S",
        help="per-request compute deadline: a non-streaming request "
             "waiting longer than S seconds gets 503 + Retry-After "
             "instead of hanging (streams are exempt; their fold events "
             "are the liveness signal)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=32, metavar="N",
        help="admission ceiling on distinct in-flight computations; "
             "requests that would start computation N+1 get 503 + "
             "Retry-After (joining an existing computation is always "
             "admitted)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="S",
        help="on SIGTERM/SIGINT, stop accepting connections and give "
             "in-flight requests up to S seconds to finish",
    )
    serve.add_argument(
        "--cache-objects", type=str, default=None, metavar="DIR",
        help="also serve this content-addressed object tree under "
             "/cache/objects/{digest} (what `repro cache-serve` does "
             "standalone)",
    )
    add_engine_options(serve)
    # serve traces per request (POST /points {"trace": true}), not per run
    add_observability_options(serve, trace=False)
    serve.set_defaults(handler=_run_serve)

    cache_serve = sub.add_parser(
        "cache-serve",
        help="serve a shared content-addressed point/bundle cache over "
             "HTTP (GET/PUT/HEAD /cache/objects/{digest}; engines join "
             "it with --cache-url)",
    )
    cache_serve.add_argument("--host", default="127.0.0.1")
    cache_serve.add_argument("--port", type=int, default=8766)
    cache_serve.add_argument(
        "--dir", type=str, required=True, metavar="DIR",
        help="object tree root (the same layout --cache-url DIR reads "
             "directly over a shared filesystem)",
    )
    cache_serve.add_argument(
        "--max-body-bytes", type=int, default=1 << 20, metavar="N",
        help="largest accepted object upload",
    )
    add_observability_options(cache_serve, trace=False)
    cache_serve.set_defaults(handler=_run_cache_serve)

    gallery = sub.add_parser("gallery", help="write the HTML design gallery")
    gallery.add_argument("--out", default="designs.html")
    gallery.add_argument("--size", type=int, default=12)
    gallery.set_defaults(handler=_run_gallery)

    recommend = sub.add_parser(
        "recommend", help="pick the cheapest design for a target yield"
    )
    recommend.add_argument("--target-yield", type=float, required=True)
    recommend.add_argument("--p", type=float, required=True)
    recommend.add_argument("--n", type=int, default=100)
    add_budget_options(recommend, runs_default=4000)
    recommend.set_defaults(handler=_run_recommend)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging_from_args(args)
    try:
        return args.handler(args)
    except FaultModelError as exc:
        # A malformed --defect-model spec is a CLI mistake, not a bug.
        return _fail(str(exc))
    except CriterionError as exc:
        # Same treatment for a malformed --criterion spec.
        return _fail(str(exc))
    except ExperimentError as exc:
        # User-facing registry/artifact mistakes (unknown experiment name,
        # unwritable --out path, corrupt manifest) get a clean error, not
        # a traceback; simulation misconfiguration still raises, by house
        # style.
        return _fail(str(exc))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
