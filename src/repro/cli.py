"""Command-line interface: regenerate any paper artifact from the shell.

::

    python -m repro table1
    python -m repro fig9 --runs 2000 --csv fig9.csv
    python -m repro fig13 --chart
    python -m repro all --runs 2000
    python -m repro gallery --out designs.html
    python -m repro recommend --target-yield 0.95 --p 0.95 --n 100

Every experiment honors ``--runs`` (Monte-Carlo budget; paper default
10 000) and ``--seed``.  ``--csv`` exports the underlying series where the
driver produces tabular data.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import (
    ablation_defects,
    ablation_matching,
    design_targeting,
    fig2,
    fig7,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    figs3to6,
    table1,
)
from repro.viz.export import write_csv
from repro.yieldsim.engine import SweepEngine

__all__ = ["main", "build_parser"]


def _emit(text: str) -> None:
    print(text)


def _engine_from_args(args: argparse.Namespace) -> Optional[SweepEngine]:
    """A SweepEngine honoring --jobs/--cache, or None for pure defaults.

    Progress is reported to stderr in ~10% chunks so long paper-budget
    sweeps show life without polluting the report on stdout.
    """
    jobs = getattr(args, "jobs", 1)
    cache = getattr(args, "cache", None) or None  # "" means no cache
    if jobs == 1 and cache is None:
        return None

    last_bucket = [-1]

    def progress(done: int, total: int) -> None:
        # `done` advances in chunk-sized jumps, so report whenever a new
        # 10% bucket is crossed rather than on exact multiples.
        bucket = done * 10 // max(1, total)
        if bucket > last_bucket[0] or done == total:
            last_bucket[0] = bucket
            print(f"  [{done}/{total} points]", file=sys.stderr)

    return SweepEngine(jobs=jobs, cache_dir=cache, progress=progress)


# --- per-experiment handlers -------------------------------------------------

def _run_table1(args: argparse.Namespace) -> None:
    result = table1.run()
    _emit(result.format_report())
    if args.csv:
        write_csv(args.csv, result.headers, result.rows)
        _emit(f"wrote {args.csv}")


def _run_fig2(args: argparse.Namespace) -> None:
    result = fig2.run()
    _emit(result.format_report())
    if args.csv:
        write_csv(args.csv, result.headers, result.rows)
        _emit(f"wrote {args.csv}")


def _run_figs3to6(args: argparse.Namespace) -> None:
    result = figs3to6.run()
    _emit(result.format_report(with_layouts=args.chart))


def _run_fig7(args: argparse.Namespace) -> None:
    result = fig7.run(
        montecarlo_runs=args.runs if args.mc_check else 0,
        seed=args.seed,
        engine=_engine_from_args(args),
    )
    _emit(result.format_report())
    if args.chart:
        _emit("")
        _emit(result.format_chart())
    if args.csv:
        write_csv(args.csv, result.headers, result.rows)
        _emit(f"wrote {args.csv}")


def _run_fig9(args: argparse.Namespace) -> None:
    result = fig9.run(runs=args.runs, seed=args.seed, engine=_engine_from_args(args))
    _emit(result.format_report())
    if args.chart:
        for n in sorted({pt.n for pt in result.points}):
            _emit("")
            _emit(result.format_chart(n))
    if args.csv:
        write_csv(args.csv, result.headers, result.rows)
        _emit(f"wrote {args.csv}")


def _run_fig10(args: argparse.Namespace) -> None:
    result = fig10.run(runs=args.runs, seed=args.seed, engine=_engine_from_args(args))
    _emit(result.format_report())
    _emit("")
    _emit(f"crossovers: {result.crossovers()}")
    if args.chart:
        _emit("")
        _emit(result.format_chart())
    if args.csv:
        write_csv(args.csv, result.headers, result.rows)
        _emit(f"wrote {args.csv}")


def _run_fig11(args: argparse.Namespace) -> None:
    result = fig11.run()
    _emit(result.format_report())
    if args.csv:
        write_csv(args.csv, result.headers, result.rows)
        _emit(f"wrote {args.csv}")


def _run_fig12(args: argparse.Namespace) -> None:
    result = fig12.run(seed=args.seed)
    _emit(result.format_report())


def _run_fig13(args: argparse.Namespace) -> None:
    result = fig13.run(runs=args.runs, seed=args.seed, engine=_engine_from_args(args))
    _emit(result.format_report())
    if args.chart:
        _emit("")
        _emit(result.format_chart())
    if args.csv:
        write_csv(args.csv, result.headers, result.rows)
        _emit(f"wrote {args.csv}")


def _run_ablation_matching(args: argparse.Namespace) -> None:
    result = ablation_matching.run(trials=max(100, args.runs // 5), seed=args.seed)
    _emit(result.format_report())


def _run_ablation_defects(args: argparse.Namespace) -> None:
    result = ablation_defects.run(trials=max(100, args.runs // 10), seed=args.seed)
    _emit(result.format_report())


def _run_targeting(args: argparse.Namespace) -> None:
    result = design_targeting.run(runs=max(500, args.runs // 3), seed=args.seed)
    _emit(result.format_report())
    if args.csv:
        write_csv(args.csv, result.headers, result.rows)
        _emit(f"wrote {args.csv}")


_EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "table1": _run_table1,
    "fig2": _run_fig2,
    "figs3to6": _run_figs3to6,
    "fig7": _run_fig7,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "fig12": _run_fig12,
    "fig13": _run_fig13,
    "ablation-matching": _run_ablation_matching,
    "ablation-defects": _run_ablation_defects,
    "targeting": _run_targeting,
}


def _run_all(args: argparse.Namespace) -> None:
    for name, handler in _EXPERIMENTS.items():
        _emit(f"\n=== {name} ===")
        # `all` never writes CSV per experiment (paths would collide).
        sub_args = argparse.Namespace(**vars(args))
        sub_args.csv = None
        handler(sub_args)


def _run_gallery(args: argparse.Namespace) -> None:
    from repro.viz.gallery import write_gallery

    write_gallery(args.out, size=args.size)
    _emit(f"wrote {args.out}")


def _run_recommend(args: argparse.Namespace) -> None:
    from repro.designs.selector import recommend_design

    result = recommend_design(
        target_yield=args.target_yield,
        p=args.p,
        n=args.n,
        runs=args.runs,
        seed=args.seed,
    )
    _emit(result.format_report())


# --- parser ---------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce Su/Chakrabarty/Pamula (DATE 2005): yield enhancement "
            "of digital microfluidic biochips via interstitial redundancy."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--runs", type=int, default=10_000,
            help="Monte-Carlo runs per point (paper default: 10000)",
        )
        p.add_argument("--seed", type=int, default=2005, help="RNG seed")
        p.add_argument(
            "--csv", type=str, default=None, help="export rows to a CSV file"
        )
        p.add_argument(
            "--chart", action="store_true", help="print ASCII charts too"
        )
        p.add_argument(
            "--mc-check", action="store_true",
            help="(fig7) add the Monte-Carlo validation column",
        )
        p.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes for Monte-Carlo sweeps (results are "
                 "bit-identical to serial execution)",
        )
        p.add_argument(
            "--cache", type=str, default=None, metavar="DIR",
            help="on-disk sweep result cache directory (keyed by chip, "
                 "parameter, runs and seed; reruns cost nothing)",
        )

    for name in list(_EXPERIMENTS) + ["all"]:
        p = sub.add_parser(name, help=f"regenerate {name}")
        common(p)
        p.set_defaults(
            handler=_EXPERIMENTS.get(name, _run_all)
        )

    gallery = sub.add_parser("gallery", help="write the HTML design gallery")
    gallery.add_argument("--out", default="designs.html")
    gallery.add_argument("--size", type=int, default=12)
    gallery.set_defaults(handler=_run_gallery)

    recommend = sub.add_parser(
        "recommend", help="pick the cheapest design for a target yield"
    )
    recommend.add_argument("--target-yield", type=float, required=True)
    recommend.add_argument("--p", type=float, required=True)
    recommend.add_argument("--n", type=int, default=100)
    recommend.add_argument("--runs", type=int, default=4000)
    recommend.add_argument("--seed", type=int, default=2005)
    recommend.set_defaults(handler=_run_recommend)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    args.handler(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
