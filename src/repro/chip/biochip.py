"""The central biochip model: a finite array of primary and spare cells.

:class:`Biochip` is coordinate-agnostic — it works with any coordinate type
that provides ``neighbors()`` (both :class:`~repro.geometry.hex.Hex` and
:class:`~repro.geometry.square.Square` do), so the same model serves the
paper's hexagonal-electrode proposal and the square-electrode baseline chip.

The model tracks, per cell, its architectural role (primary/spare) and its
health (good/faulty), and exposes the adjacency queries every higher layer
needs: the reconfiguration engine asks "which fault-free spares are adjacent
to this faulty primary?", the fluidics layer asks "where can this droplet
move?", and the yield simulator flips health bits in bulk.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.chip.cell import Cell, CellHealth, CellRole
from repro.errors import ChipError

__all__ = ["Biochip"]


class Biochip:
    """A digital microfluidics-based biochip array.

    Parameters
    ----------
    cells:
        The cells of the array.  Coordinates must be unique.
    name:
        Optional identifier used in reports and serialized output.

    Notes
    -----
    Adjacency is *structural*: two cells are adjacent iff their coordinates
    are lattice neighbors and both are in the array.  Health does not change
    adjacency — a droplet simply may not be routed onto a faulty cell, which
    is a policy enforced by the fluidics and reconfiguration layers.
    """

    def __init__(self, cells: Iterable[Cell], name: str = "biochip"):
        self.name = name
        self._cells: Dict[Hashable, Cell] = {}
        for cell in cells:
            if cell.coord in self._cells:
                raise ChipError(f"duplicate cell coordinate {cell.coord}")
            self._cells[cell.coord] = cell
        if not self._cells:
            raise ChipError("a biochip must contain at least one cell")
        try:
            self._order: Tuple[Hashable, ...] = tuple(sorted(self._cells))
        except TypeError:
            kinds = sorted({type(c).__name__ for c in self._cells})
            raise ChipError(
                f"cell coordinates are not mutually comparable (mixed "
                f"coordinate systems? found: {kinds})"
            ) from None
        # Adjacency restricted to the array, computed once: the yield
        # simulator queries it millions of times.
        self._adjacency: Dict[Hashable, Tuple[Hashable, ...]] = {
            coord: tuple(n for n in coord.neighbors() if n in self._cells)
            for coord in self._order
        }

    # -- container protocol ---------------------------------------------------
    def __contains__(self, coord: Hashable) -> bool:
        return coord in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[Cell]:
        for coord in self._order:
            yield self._cells[coord]

    def __getitem__(self, coord: Hashable) -> Cell:
        try:
            return self._cells[coord]
        except KeyError:
            raise ChipError(f"no cell at {coord} in chip {self.name!r}") from None

    @property
    def coords(self) -> Tuple[Hashable, ...]:
        """All cell coordinates in deterministic (sorted) order."""
        return self._order

    # -- role queries ----------------------------------------------------------
    def primaries(self) -> List[Cell]:
        """All primary cells, in deterministic order."""
        return [c for c in self if c.is_primary]

    def spares(self) -> List[Cell]:
        """All spare cells, in deterministic order."""
        return [c for c in self if c.is_spare]

    @property
    def primary_count(self) -> int:
        return sum(1 for c in self if c.is_primary)

    @property
    def spare_count(self) -> int:
        return sum(1 for c in self if c.is_spare)

    def redundancy_ratio(self) -> float:
        """Spares / primaries — the paper's RR metric (Definition 2)."""
        n = self.primary_count
        if n == 0:
            raise ChipError("redundancy ratio undefined: chip has no primary cells")
        return self.spare_count / n

    # -- adjacency ---------------------------------------------------------------
    def neighbors(self, coord: Hashable) -> Tuple[Hashable, ...]:
        """Coordinates physically adjacent to ``coord`` inside the array."""
        try:
            return self._adjacency[coord]
        except KeyError:
            raise ChipError(f"no cell at {coord} in chip {self.name!r}") from None

    def neighbor_cells(self, coord: Hashable) -> List[Cell]:
        """The :class:`Cell` objects adjacent to ``coord``."""
        return [self._cells[n] for n in self.neighbors(coord)]

    def adjacent_spares(self, coord: Hashable) -> List[Cell]:
        """Spare cells physically adjacent to ``coord``.

        This is the heart of *local reconfiguration*: a faulty primary can
        only be replaced by one of these cells (microfluidic locality).
        """
        return [c for c in self.neighbor_cells(coord) if c.is_spare]

    def adjacent_primaries(self, coord: Hashable) -> List[Cell]:
        """Primary cells physically adjacent to ``coord``."""
        return [c for c in self.neighbor_cells(coord) if c.is_primary]

    def degree(self, coord: Hashable) -> int:
        """Number of in-array neighbors."""
        return len(self.neighbors(coord))

    def is_boundary(self, coord: Hashable, full_degree: int = 6) -> bool:
        """True iff the cell has fewer than ``full_degree`` in-array neighbors."""
        return self.degree(coord) < full_degree

    # -- health ---------------------------------------------------------------
    def mark_faulty(self, coord: Hashable) -> None:
        """Record a catastrophic (or out-of-tolerance parametric) fault."""
        self[coord].health = CellHealth.FAULTY

    def mark_good(self, coord: Hashable) -> None:
        """Clear the fault state of one cell (used by repair simulations)."""
        self[coord].health = CellHealth.GOOD

    def clear_faults(self) -> None:
        """Reset every cell to ``GOOD`` — fresh-from-fab state."""
        for cell in self._cells.values():
            cell.health = CellHealth.GOOD

    def apply_fault_map(self, coords: Iterable[Hashable]) -> None:
        """Mark every coordinate in ``coords`` faulty (others untouched)."""
        for coord in coords:
            self.mark_faulty(coord)

    def faulty_cells(self) -> List[Cell]:
        """All faulty cells, in deterministic order."""
        return [c for c in self if c.is_faulty]

    def faulty_primaries(self) -> List[Cell]:
        """Faulty primary cells — the ones local reconfiguration must repair."""
        return [c for c in self if c.is_primary and c.is_faulty]

    def good_spares(self) -> List[Cell]:
        """Fault-free spare cells — the repair resources."""
        return [c for c in self if c.is_spare and c.is_good]

    def is_fault_free(self) -> bool:
        return not any(c.is_faulty for c in self._cells.values())

    # -- labels -----------------------------------------------------------------
    def cells_labeled(self, label: str) -> List[Cell]:
        """Cells whose ``label`` matches exactly (mixers, detectors, ...)."""
        return [c for c in self if c.label == label]

    def set_label(self, coord: Hashable, label: Optional[str]) -> None:
        self[coord].label = label

    # -- derived structure --------------------------------------------------------
    def subchip(self, predicate: Callable[[Cell], bool], name: Optional[str] = None) -> "Biochip":
        """A new chip containing copies of the cells satisfying ``predicate``."""
        picked = [
            Cell(c.coord, c.role, c.health, c.label) for c in self if predicate(c)
        ]
        if not picked:
            raise ChipError("subchip predicate selected no cells")
        return Biochip(picked, name=name or f"{self.name}/sub")

    def copy(self, name: Optional[str] = None) -> "Biochip":
        """Deep copy (cells are duplicated, health included)."""
        return Biochip(
            (Cell(c.coord, c.role, c.health, c.label) for c in self),
            name=name or self.name,
        )

    def edges(self) -> List[Tuple[Hashable, Hashable]]:
        """All adjacency edges, each reported once with endpoints sorted."""
        seen: Set[Tuple[Hashable, Hashable]] = set()
        for coord in self._order:
            for n in self._adjacency[coord]:
                edge = (coord, n) if coord <= n else (n, coord)
                seen.add(edge)
        return sorted(seen)

    def is_connected(self) -> bool:
        """True iff the array is a single connected component."""
        start = self._order[0]
        seen: Set[Hashable] = set()
        stack = [start]
        while stack:
            coord = stack.pop()
            if coord in seen:
                continue
            seen.add(coord)
            stack.extend(n for n in self._adjacency[coord] if n not in seen)
        return len(seen) == len(self._cells)

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (
            f"Biochip({self.name!r}: {self.primary_count} primary, "
            f"{self.spare_count} spare, {len(self.faulty_cells())} faulty)"
        )
