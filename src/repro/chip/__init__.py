"""Biochip array model: cells, roles, health, adjacency and serialization.

This package is the substrate every other layer builds on:

* :class:`~repro.chip.cell.Cell` / :class:`~repro.chip.cell.CellRole` /
  :class:`~repro.chip.cell.CellHealth` — one electrode site;
* :class:`~repro.chip.biochip.Biochip` — the array with adjacency queries;
* builders (:func:`~repro.chip.builders.chip_from_lattice`...) — assemble
  plain, interstitial-redundant, and irregular layouts;
* serialization (:func:`~repro.chip.serialize.dump_chip`...) — JSON
  round-tripping of layouts including fault state.
"""

from repro.chip.biochip import Biochip
from repro.chip.builders import (
    chip_from_lattice,
    chip_from_roles,
    plain_chip,
    square_chip,
)
from repro.chip.cell import Cell, CellHealth, CellRole
from repro.chip.graph import adjacency_lists, spare_adjacency, to_networkx
from repro.chip.serialize import chip_from_dict, chip_to_dict, dump_chip, load_chip

__all__ = [
    "Biochip",
    "Cell",
    "CellRole",
    "CellHealth",
    "plain_chip",
    "chip_from_lattice",
    "chip_from_roles",
    "square_chip",
    "adjacency_lists",
    "spare_adjacency",
    "to_networkx",
    "chip_to_dict",
    "chip_from_dict",
    "dump_chip",
    "load_chip",
]
