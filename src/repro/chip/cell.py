"""Cells of a digital microfluidic biochip.

A cell is one electrode site of the array (Figure 1 of the paper): the unit
that holds, moves, mixes or splits a droplet.  The defect-tolerance study
partitions cells into *primary* cells (the working array) and *spare* cells
(interstitial redundancy), and tracks a health state per cell.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.errors import ChipError

__all__ = ["CellRole", "CellHealth", "Cell"]


class CellRole(enum.Enum):
    """Architectural role of a cell in a defect-tolerant array."""

    PRIMARY = "primary"
    SPARE = "spare"

    def __str__(self) -> str:  # pragma: no cover - cosmetics
        return self.value


class CellHealth(enum.Enum):
    """Health of an individual cell after manufacturing / testing.

    ``GOOD`` cells operate normally.  ``FAULTY`` cells carry a catastrophic
    fault (dielectric breakdown, electrode short, open connection — Section 4
    of the paper) or a parametric fault whose deviation exceeds tolerance;
    either way the cell cannot be used and must be repaired around.
    """

    GOOD = "good"
    FAULTY = "faulty"

    def __str__(self) -> str:  # pragma: no cover - cosmetics
        return self.value


@dataclass
class Cell:
    """One electrode site of the microfluidic array.

    Parameters
    ----------
    coord:
        Location on the lattice — a :class:`~repro.geometry.hex.Hex` for the
        hexagonal-electrode chips the paper proposes, or a
        :class:`~repro.geometry.square.Square` for the first-generation
        fabricated chip of Figure 11.
    role:
        :class:`CellRole.PRIMARY` or :class:`CellRole.SPARE`.
    health:
        Current :class:`CellHealth`; new chips start ``GOOD`` everywhere.
    label:
        Optional human-readable annotation ("mixer", "detector",
        "sample source"...) used by the assay layer and the renderers.
    """

    coord: Hashable
    role: CellRole = CellRole.PRIMARY
    health: CellHealth = CellHealth.GOOD
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.role, CellRole):
            raise ChipError(f"role must be a CellRole, got {self.role!r}")
        if not isinstance(self.health, CellHealth):
            raise ChipError(f"health must be a CellHealth, got {self.health!r}")

    # -- predicates ----------------------------------------------------------
    @property
    def is_primary(self) -> bool:
        return self.role is CellRole.PRIMARY

    @property
    def is_spare(self) -> bool:
        return self.role is CellRole.SPARE

    @property
    def is_good(self) -> bool:
        return self.health is CellHealth.GOOD

    @property
    def is_faulty(self) -> bool:
        return self.health is CellHealth.FAULTY

    def __str__(self) -> str:  # pragma: no cover - cosmetics
        mark = "!" if self.is_faulty else ""
        return f"{self.role.value[0].upper()}{mark}@{self.coord}"
