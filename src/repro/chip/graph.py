"""Graph views of a biochip.

The paper models arrays as graphs twice: the design figures (Figures 3-6)
draw the primary/spare adjacency graph, and the reconfiguration check builds
a bipartite graph between faulty primaries and adjacent fault-free spares
(Figure 8).  This module provides the generic adjacency-graph export; the
bipartite construction lives with the matching code in
:mod:`repro.reconfig.bipartite`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.chip.biochip import Biochip

__all__ = ["adjacency_lists", "spare_adjacency", "to_networkx"]


def adjacency_lists(chip: Biochip) -> Dict[Hashable, Tuple[Hashable, ...]]:
    """Coordinate → tuple of adjacent coordinates, for the whole array."""
    return {coord: chip.neighbors(coord) for coord in chip.coords}


def spare_adjacency(chip: Biochip) -> Dict[Hashable, Tuple[Hashable, ...]]:
    """Primary coordinate → adjacent spare coordinates.

    This is the static structure the repair engine works over; it depends
    only on the architecture, not on the fault map, so callers that run many
    Monte-Carlo trials compute it once.
    """
    return {
        cell.coord: tuple(s.coord for s in chip.adjacent_spares(cell.coord))
        for cell in chip.primaries()
    }


def to_networkx(chip: Biochip):
    """Export the adjacency graph as a ``networkx.Graph``.

    Node attributes carry ``role``, ``health`` and ``label``.  ``networkx``
    is an optional dependency used only by tests and notebooks; importing it
    lazily keeps the core library dependency-light.
    """
    import networkx as nx

    graph = nx.Graph(name=chip.name)
    for cell in chip:
        graph.add_node(
            cell.coord,
            role=cell.role.value,
            health=cell.health.value,
            label=cell.label,
        )
    graph.add_edges_from(chip.edges())
    return graph
