"""Builders that assemble :class:`~repro.chip.biochip.Biochip` instances.

Three construction styles cover everything in the paper:

* a plain array with no redundancy (the baseline whose yield is ``p**n``);
* an array whose spare cells are given by a sublattice predicate — the
  interstitial-redundancy designs of Figures 3-6;
* an explicit role map, for irregular layouts such as the diagnostics chip.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Mapping, Optional

from repro.chip.biochip import Biochip
from repro.chip.cell import Cell, CellRole
from repro.errors import ChipError
from repro.geometry.hexgrid import HexRegion, RectRegion
from repro.geometry.square import SquareRegion

__all__ = [
    "plain_chip",
    "chip_from_lattice",
    "chip_from_roles",
    "square_chip",
]


def plain_chip(region: HexRegion, name: str = "plain") -> Biochip:
    """A hexagonal-electrode chip with every cell primary (no redundancy).

    This is the paper's reference point: with n cells and per-cell survival
    probability p, its yield is exactly ``p**n``.
    """
    return Biochip((Cell(h, CellRole.PRIMARY) for h in region), name=name)


def chip_from_lattice(
    region: HexRegion,
    spare_lattice,
    name: str = "interstitial",
) -> Biochip:
    """A chip whose spare cells are the region's intersection with a lattice.

    Parameters
    ----------
    region:
        Footprint of the array.
    spare_lattice:
        Any object supporting ``coord in lattice`` — typically a
        :class:`~repro.geometry.lattice.CongruenceLattice` from the design
        catalog.
    """
    cells = [
        Cell(h, CellRole.SPARE if h in spare_lattice else CellRole.PRIMARY)
        for h in region
    ]
    chip = Biochip(cells, name=name)
    if chip.spare_count == 0:
        raise ChipError(
            f"lattice {spare_lattice!r} places no spares inside the region; "
            "enlarge the region or check the congruence"
        )
    return chip


def chip_from_roles(
    roles: Mapping[Hashable, CellRole],
    labels: Optional[Mapping[Hashable, str]] = None,
    name: str = "custom",
) -> Biochip:
    """A chip from an explicit coordinate → role map (irregular layouts)."""
    if not roles:
        raise ChipError("role map is empty")
    labels = labels or {}
    cells = [
        Cell(coord, role, label=labels.get(coord)) for coord, role in roles.items()
    ]
    return Biochip(cells, name=name)


def square_chip(
    cols: int,
    rows: int,
    spare_predicate: Optional[Callable[[Hashable], bool]] = None,
    name: str = "square",
) -> Biochip:
    """A square-electrode chip (first-generation design, Figure 11).

    ``spare_predicate`` selects spare coordinates; by default there are none,
    matching the fabricated chip in which "only cells used for the bioassays
    were fabricated; no spare cells were included".
    """
    region = SquareRegion(cols, rows)
    cells = [
        Cell(
            s,
            CellRole.SPARE
            if spare_predicate is not None and spare_predicate(s)
            else CellRole.PRIMARY,
        )
        for s in region
    ]
    return Biochip(cells, name=name)
