"""Serialization of biochips to and from plain dictionaries / JSON.

The on-disk format is deliberately simple — a list of cell records — so
layouts can be checked into a repository, diffed, and reloaded exactly.
Both hexagonal (``"hex"``) and square (``"square"``) coordinate systems are
supported and round-trip losslessly, including health and labels.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Union

from repro.chip.biochip import Biochip
from repro.chip.cell import Cell, CellHealth, CellRole
from repro.errors import ChipError
from repro.geometry.hex import Hex
from repro.geometry.square import Square

__all__ = ["chip_to_dict", "chip_from_dict", "dump_chip", "load_chip"]

_FORMAT_VERSION = 1


def _coord_kind(coord: Any) -> str:
    if isinstance(coord, Hex):
        return "hex"
    if isinstance(coord, Square):
        return "square"
    raise ChipError(f"cannot serialize coordinate of type {type(coord).__name__}")


def chip_to_dict(chip: Biochip) -> Dict[str, Any]:
    """A JSON-serializable description of ``chip``."""
    kinds = {_coord_kind(c.coord) for c in chip}
    if len(kinds) != 1:
        raise ChipError(f"chip mixes coordinate systems: {sorted(kinds)}")
    kind = kinds.pop()
    records = []
    for cell in chip:
        if kind == "hex":
            pos = [cell.coord.q, cell.coord.r]
        else:
            pos = [cell.coord.x, cell.coord.y]
        record: Dict[str, Any] = {
            "pos": pos,
            "role": cell.role.value,
            "health": cell.health.value,
        }
        if cell.label is not None:
            record["label"] = cell.label
        records.append(record)
    return {
        "format": _FORMAT_VERSION,
        "name": chip.name,
        "coords": kind,
        "cells": records,
    }


def chip_from_dict(data: Dict[str, Any]) -> Biochip:
    """Rebuild a :class:`Biochip` from :func:`chip_to_dict` output."""
    try:
        version = data["format"]
        kind = data["coords"]
        records = data["cells"]
        name = data.get("name", "biochip")
    except (KeyError, TypeError) as exc:
        raise ChipError(f"malformed chip description: missing {exc}") from exc
    if version != _FORMAT_VERSION:
        raise ChipError(f"unsupported chip format version {version!r}")
    if kind not in ("hex", "square"):
        raise ChipError(f"unknown coordinate system {kind!r}")
    cells = []
    for record in records:
        a, b = record["pos"]
        coord = Hex(a, b) if kind == "hex" else Square(a, b)
        cells.append(
            Cell(
                coord,
                CellRole(record["role"]),
                CellHealth(record.get("health", "good")),
                record.get("label"),
            )
        )
    return Biochip(cells, name=name)


def dump_chip(chip: Biochip, fp: Union[IO[str], str]) -> None:
    """Write ``chip`` as JSON to a file object or path."""
    data = chip_to_dict(chip)
    if isinstance(fp, str):
        with open(fp, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
    else:
        json.dump(data, fp, indent=2, sort_keys=True)


def load_chip(fp: Union[IO[str], str]) -> Biochip:
    """Read a chip previously written by :func:`dump_chip`."""
    if isinstance(fp, str):
        with open(fp, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        data = json.load(fp)
    return chip_from_dict(data)
