"""Declarative specification of a DTMB(s, p) interstitial-redundancy design.

Definition 1 of the paper: a defect-tolerant design DTMB(s, p) has
interstitial spare cells such that each non-boundary primary cell can be
replaced by any one of ``s`` spare cells, and each spare cell can replace any
one of ``p`` primary cells.  Definition 2: the redundancy ratio RR is
spares / primaries, which for large arrays approaches ``s / p``.

A :class:`DesignSpec` captures a design as a *spare-cell sublattice* plus the
advertised ``(s, p)`` pair; the construction and empirical verification of
those properties live in :mod:`repro.designs.interstitial` and
:mod:`repro.designs.verify`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Union

from repro.errors import DesignError
from repro.geometry.lattice import CongruenceLattice, IntersectionLattice

__all__ = ["DesignSpec"]

Lattice = Union[CongruenceLattice, IntersectionLattice]


@dataclass(frozen=True)
class DesignSpec:
    """An interstitial-redundancy architecture DTMB(s, p).

    Parameters
    ----------
    name:
        Catalog identifier, e.g. ``"DTMB(2,6)"``.
    s:
        Number of spare cells adjacent to each non-boundary primary cell.
    p:
        Number of primary cells adjacent to each interior spare cell.
    spare_lattice:
        Sublattice predicate selecting the spare coordinates.
    description:
        One-line summary shown in reports.
    """

    name: str
    s: int
    p: int
    spare_lattice: Lattice
    description: str = ""

    def __post_init__(self) -> None:
        if self.s < 1:
            raise DesignError(f"{self.name}: s must be >= 1, got {self.s}")
        if self.p < 1:
            raise DesignError(f"{self.name}: p must be >= 1, got {self.p}")
        if self.p > 6:
            raise DesignError(
                f"{self.name}: p cannot exceed 6 on a hexagonal array, got {self.p}"
            )

    @property
    def redundancy_ratio(self) -> Fraction:
        """Asymptotic RR = s/p (Definition 2), as an exact fraction."""
        return Fraction(self.s, self.p)

    @property
    def spare_density(self) -> Fraction:
        """Fraction of array cells that are spares, from the lattice."""
        return self.spare_lattice.density()

    @property
    def primary_density(self) -> Fraction:
        return 1 - self.spare_density

    def consistency_check(self) -> None:
        """Verify the advertised (s, p) against the lattice densities.

        In a DTMB(s, p) array the bipartite adjacency between primaries and
        spares double-counts edges: ``primaries * s == spares * p``
        asymptotically, i.e. ``spare_density / primary_density == s / p``.
        """
        expected = Fraction(self.s, self.p)
        actual = self.spare_density / self.primary_density
        if expected != actual:
            raise DesignError(
                f"{self.name}: lattice density {self.spare_density} implies "
                f"RR {actual}, but s/p = {expected}"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetics
        return self.name
