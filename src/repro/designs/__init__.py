"""Defect-tolerant array architectures.

* the DTMB(s, p) interstitial-redundancy catalog of Figures 3-6 / Table 1
  (:mod:`repro.designs.catalog`);
* builders that realize a design on a concrete footprint, including the
  exact-primary-count search used by the yield experiments
  (:mod:`repro.designs.interstitial`);
* structural verification of Definition 1 (:mod:`repro.designs.verify`);
* the boundary spare-row baseline of Figure 2 (:mod:`repro.designs.boundary`).
"""

from repro.designs.boundary import ModulePlacement, SpareRowArray
from repro.designs.catalog import (
    ALL_DESIGNS,
    DTMB_1_6,
    DTMB_2_6,
    DTMB_2_6_ALT,
    DTMB_3_6,
    DTMB_4_4,
    TABLE1_DESIGNS,
    design_by_name,
    table1_rows,
)
from repro.designs.interstitial import (
    FitResult,
    build_chip,
    build_flower_chip,
    build_with_primary_count,
)
from repro.designs.selector import (
    DesignRecommendation,
    recommend_design,
    required_survival_probability,
)
from repro.designs.spec import DesignSpec
from repro.designs.verify import StructureReport, inspect_structure, verify_design

__all__ = [
    "DesignSpec",
    "DTMB_1_6",
    "DTMB_2_6",
    "DTMB_2_6_ALT",
    "DTMB_3_6",
    "DTMB_4_4",
    "ALL_DESIGNS",
    "TABLE1_DESIGNS",
    "design_by_name",
    "table1_rows",
    "build_chip",
    "build_with_primary_count",
    "build_flower_chip",
    "FitResult",
    "DesignRecommendation",
    "recommend_design",
    "required_survival_probability",
    "verify_design",
    "inspect_structure",
    "StructureReport",
    "ModulePlacement",
    "SpareRowArray",
]
