"""Design selection: pick a redundancy level for a target yield.

Section 1 of the paper: "Microfluidic biochips with different levels of
redundancy can be designed to target given yield levels and manufacturing
processes."  This module operationalizes that sentence: given the process
quality (per-cell survival probability p), the required primary-cell count
n, and a target yield, it recommends the *cheapest* catalog design (lowest
redundancy ratio ⇒ smallest area) that clears the target, and can also
invert the question — what process quality does a given design need?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.designs.catalog import TABLE1_DESIGNS
from repro.designs.interstitial import build_with_primary_count
from repro.designs.spec import DesignSpec
from repro.errors import DesignError, SimulationError
from repro.yieldsim.montecarlo import YieldSimulator
from repro.yieldsim.stats import YieldEstimate

__all__ = ["DesignRecommendation", "recommend_design", "required_survival_probability"]


@dataclass(frozen=True)
class DesignRecommendation:
    """Outcome of a design-selection query.

    ``candidates`` holds every evaluated design with its estimated yield,
    cheapest first, so callers can inspect the trade-off the selector made.
    """

    target_yield: float
    p: float
    n: int
    chosen: Optional[DesignSpec]
    candidates: Tuple[Tuple[str, YieldEstimate], ...]

    @property
    def feasible(self) -> bool:
        return self.chosen is not None

    def format_report(self) -> str:
        lines = [
            f"target yield {self.target_yield:.3f} at p={self.p:.3f}, "
            f"n={self.n} primary cells"
        ]
        for name, estimate in self.candidates:
            lines.append(f"  {name:<12} Y = {estimate}")
        if self.chosen is not None:
            lines.append(
                f"recommended: {self.chosen.name} "
                f"(RR = {float(self.chosen.redundancy_ratio):.4f})"
            )
        else:
            lines.append(
                "no catalog design reaches the target at this process quality"
            )
        return "\n".join(lines)


def recommend_design(
    target_yield: float,
    p: float,
    n: int = 100,
    designs: Sequence[DesignSpec] = TABLE1_DESIGNS,
    runs: int = 4000,
    seed: int = 2005,
    confident: bool = True,
) -> DesignRecommendation:
    """The cheapest design whose estimated yield clears ``target_yield``.

    Designs are tried in increasing redundancy-ratio order; evaluation is
    Monte-Carlo on an exact-n instance of each design.  With
    ``confident=True`` (default) a design qualifies only if the *lower*
     95% confidence bound clears the target — the conservative call a
    manufacturer would make; otherwise the point estimate is used.
    """
    if not 0.0 < target_yield <= 1.0:
        raise SimulationError(
            f"target yield must be in (0, 1], got {target_yield}"
        )
    if not 0.0 <= p <= 1.0:
        raise SimulationError(f"survival probability must be in [0, 1], got {p}")
    if not designs:
        raise DesignError("no candidate designs supplied")
    ordered = sorted(designs, key=lambda d: d.redundancy_ratio)
    candidates: List[Tuple[str, YieldEstimate]] = []
    chosen: Optional[DesignSpec] = None
    for i, spec in enumerate(ordered):
        chip = build_with_primary_count(spec, n).build()
        estimate = YieldSimulator(chip).run_survival(
            p, runs=runs, seed=seed + i
        )
        candidates.append((spec.name, estimate))
        score = estimate.lo if confident else estimate.value
        if chosen is None and score >= target_yield:
            chosen = spec
    return DesignRecommendation(
        target_yield=target_yield,
        p=p,
        n=n,
        chosen=chosen,
        candidates=tuple(candidates),
    )


def required_survival_probability(
    spec: DesignSpec,
    target_yield: float,
    n: int = 100,
    runs: int = 3000,
    seed: int = 2005,
    tolerance: float = 0.002,
) -> float:
    """The minimum per-cell survival probability for a design to hit a yield.

    Answers the manufacturing-process question: "how good do my cells have
    to be for DTMB(s, p) to yield at least Y?"  Found by bisection on p
    (yield is monotone in p); the returned value is accurate to
    ``tolerance`` in p, subject to Monte-Carlo noise at the given budget.
    """
    if not 0.0 < target_yield < 1.0:
        raise SimulationError(
            f"target yield must be in (0, 1), got {target_yield}"
        )
    chip = build_with_primary_count(spec, n).build()
    sim = YieldSimulator(chip)

    def estimate(p: float) -> float:
        return sim.run_survival(p, runs=runs, seed=seed).value

    lo, hi = 0.5, 1.0
    if estimate(lo) >= target_yield:
        return lo
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if estimate(mid) >= target_yield:
            hi = mid
        else:
            lo = mid
    return hi
