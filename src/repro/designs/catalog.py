"""The paper's catalog of defect-tolerant designs (Figures 3-6, Table 1).

Each design places spares on a periodic sublattice of the hexagonal array.
The congruences below are chosen so that the (s, p) adjacency properties of
Definition 1 hold exactly for all non-boundary cells; this is verified
empirically by :mod:`repro.designs.verify` and the structural test suite.

============  ======================  =======  ====
Design        spare congruence        density  RR
============  ======================  =======  ====
DTMB(1, 6)    q + 3r ≡ 0 (mod 7)      1/7      1/6
DTMB(2, 6)A   q ≡ 0 ∧ r ≡ 0 (mod 2)   1/4      1/3
DTMB(2, 6)B   q + 2r ≡ 0 (mod 4)      1/4      1/3
DTMB(3, 6)    q − r ≡ 0 (mod 3)       1/3      1/2
DTMB(4, 4)    q ≡ 0 (mod 2)           1/2      1
============  ======================  =======  ====

DTMB(1, 6) is the *perfect* pattern: the six neighbor offsets of the hex
lattice take all six nonzero residues of ``q + 3r (mod 7)``, so every
primary sees exactly one spare and the 7-cell "flowers" tile the plane —
this is what makes the paper's analytical cluster model exact on whole
flowers.  The paper's Figure 4 shows two distinct DTMB(2, 6) layouts; we
provide both (variants A and B).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Tuple

from repro.designs.spec import DesignSpec
from repro.errors import DesignError
from repro.geometry.lattice import CongruenceLattice, IntersectionLattice

__all__ = [
    "DTMB_1_6",
    "DTMB_2_6",
    "DTMB_2_6_ALT",
    "DTMB_3_6",
    "DTMB_4_4",
    "ALL_DESIGNS",
    "TABLE1_DESIGNS",
    "design_by_name",
    "table1_rows",
]


DTMB_1_6 = DesignSpec(
    name="DTMB(1,6)",
    s=1,
    p=6,
    spare_lattice=CongruenceLattice(a=1, b=3, m=7),
    description="perfect 7-cell flower code; one spare per primary (Figure 3)",
)

DTMB_2_6 = DesignSpec(
    name="DTMB(2,6)",
    s=2,
    p=6,
    spare_lattice=IntersectionLattice(
        [CongruenceLattice(a=1, b=0, m=2), CongruenceLattice(a=0, b=1, m=2)]
    ),
    description="two spares per primary, index-4 sublattice (Figure 4a)",
)

DTMB_2_6_ALT = DesignSpec(
    name="DTMB(2,6)alt",
    s=2,
    p=6,
    spare_lattice=CongruenceLattice(a=1, b=2, m=4),
    description="alternative DTMB(2,6) layout, same (s, p) (Figure 4b)",
)

DTMB_3_6 = DesignSpec(
    name="DTMB(3,6)",
    s=3,
    p=6,
    spare_lattice=CongruenceLattice(a=1, b=-1, m=3),
    description="three spares per primary (Figure 5)",
)

DTMB_4_4 = DesignSpec(
    name="DTMB(4,4)",
    s=4,
    p=4,
    spare_lattice=CongruenceLattice(a=1, b=0, m=2),
    description="alternating spare columns; 1:1 redundancy (Figure 6)",
)

#: Every design in the catalog, including the alternative DTMB(2,6) layout.
ALL_DESIGNS: Tuple[DesignSpec, ...] = (
    DTMB_1_6,
    DTMB_2_6,
    DTMB_2_6_ALT,
    DTMB_3_6,
    DTMB_4_4,
)

#: The four architectures of the paper's Table 1 (one DTMB(2,6) layout).
TABLE1_DESIGNS: Tuple[DesignSpec, ...] = (DTMB_1_6, DTMB_2_6, DTMB_3_6, DTMB_4_4)

_BY_NAME: Dict[str, DesignSpec] = {d.name: d for d in ALL_DESIGNS}


def design_by_name(name: str) -> DesignSpec:
    """Look up a catalog design by its ``DTMB(s,p)`` name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise DesignError(f"unknown design {name!r}; catalog has: {known}") from None


def table1_rows() -> List[Tuple[str, Fraction]]:
    """``(design name, redundancy ratio)`` rows reproducing Table 1."""
    return [(d.name, d.redundancy_ratio) for d in TABLE1_DESIGNS]
