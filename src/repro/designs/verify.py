"""Empirical verification of DTMB(s, p) structural properties.

Definition 1 is a statement about *non-boundary* cells: each non-boundary
primary must be adjacent to exactly ``s`` spares, and each interior spare to
exactly ``p`` primaries.  These checks run on concrete finite arrays, so the
test suite can confirm every catalog congruence realizes its advertised
architecture, and users can validate hand-built layouts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.chip.biochip import Biochip
from repro.designs.spec import DesignSpec
from repro.errors import DesignError

__all__ = ["StructureReport", "inspect_structure", "verify_design"]


@dataclass(frozen=True)
class StructureReport:
    """Observed adjacency statistics of a (possibly irregular) array.

    ``interior_*`` histograms count only cells with a full 6-neighborhood,
    which is where Definition 1 applies; boundary cells are reported
    separately so layout debugging can see the clipping effects.
    """

    interior_primary_spare_degrees: Dict[int, int]
    interior_spare_primary_degrees: Dict[int, int]
    boundary_primary_spare_degrees: Dict[int, int]
    boundary_spare_primary_degrees: Dict[int, int]
    primary_count: int
    spare_count: int

    @property
    def redundancy_ratio(self) -> float:
        return self.spare_count / self.primary_count

    def uniform_s(self) -> int:
        """The unique spare-degree of interior primaries, if uniform."""
        degrees = sorted(self.interior_primary_spare_degrees)
        if len(degrees) != 1:
            raise DesignError(
                f"interior primaries have mixed spare-degrees: "
                f"{self.interior_primary_spare_degrees}"
            )
        return degrees[0]

    def uniform_p(self) -> int:
        """The unique primary-degree of interior spares, if uniform."""
        degrees = sorted(self.interior_spare_primary_degrees)
        if len(degrees) != 1:
            raise DesignError(
                f"interior spares have mixed primary-degrees: "
                f"{self.interior_spare_primary_degrees}"
            )
        return degrees[0]


def inspect_structure(chip: Biochip, full_degree: int = 6) -> StructureReport:
    """Measure the primary/spare adjacency structure of ``chip``."""
    interior_ps: Dict[int, int] = {}
    interior_sp: Dict[int, int] = {}
    boundary_ps: Dict[int, int] = {}
    boundary_sp: Dict[int, int] = {}
    for cell in chip:
        interior = chip.degree(cell.coord) == full_degree
        if cell.is_primary:
            degree = len(chip.adjacent_spares(cell.coord))
            bucket = interior_ps if interior else boundary_ps
        else:
            degree = len(chip.adjacent_primaries(cell.coord))
            bucket = interior_sp if interior else boundary_sp
        bucket[degree] = bucket.get(degree, 0) + 1
    return StructureReport(
        interior_primary_spare_degrees=interior_ps,
        interior_spare_primary_degrees=interior_sp,
        boundary_primary_spare_degrees=boundary_ps,
        boundary_spare_primary_degrees=boundary_sp,
        primary_count=chip.primary_count,
        spare_count=chip.spare_count,
    )


def verify_design(spec: DesignSpec, chip: Biochip) -> StructureReport:
    """Check that ``chip`` realizes ``spec``'s DTMB(s, p) structure.

    Raises :class:`DesignError` with a diagnostic message on any violation;
    returns the measured :class:`StructureReport` on success.  The array
    must be large enough to contain interior cells of both roles.
    """
    report = inspect_structure(chip)
    if not report.interior_primary_spare_degrees:
        raise DesignError(
            f"{spec.name}: array too small — no interior primary cells"
        )
    if not report.interior_spare_primary_degrees:
        raise DesignError(f"{spec.name}: array too small — no interior spare cells")
    s = report.uniform_s()
    p = report.uniform_p()
    if s != spec.s:
        raise DesignError(
            f"{spec.name}: interior primaries see {s} spares, expected {spec.s}"
        )
    if p != spec.p:
        raise DesignError(
            f"{spec.name}: interior spares see {p} primaries, expected {spec.p}"
        )
    return report
