"""Construction of interstitial-redundancy arrays from design specs.

Two builders are provided:

* :func:`build_chip` — apply a design's spare lattice to a given region;
* :func:`build_with_primary_count` — find a rectangular array (and lattice
  coset) containing *exactly* ``n`` primary cells, which is how the paper
  parameterizes its yield plots ("n is the number of primary cells").

The coset search matters: sliding the spare pattern by a lattice translation
changes how the pattern is clipped at the array boundary, and therefore the
exact primary count for a fixed footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.chip.biochip import Biochip
from repro.chip.builders import chip_from_lattice
from repro.designs.spec import DesignSpec
from repro.errors import DesignError
from repro.geometry.hex import Hex
from repro.geometry.hexgrid import HexRegion, RectRegion

__all__ = [
    "build_chip",
    "build_with_primary_count",
    "build_flower_chip",
    "FitResult",
]


def _coset_period(spec: DesignSpec) -> int:
    """A translation period of the design's spare lattice (both axes)."""
    lattice = spec.spare_lattice
    if hasattr(lattice, "m"):
        return lattice.m
    # IntersectionLattice: the lcm of the component moduli is a period.
    period = 1
    for part in lattice.parts:
        g = period * part.m
        # lcm via gcd
        a, b = period, part.m
        while b:
            a, b = b, a % b
        period = g // a
    return period


def build_chip(
    spec: DesignSpec,
    region: HexRegion,
    offset: Hex = Hex(0, 0),
    name: Optional[str] = None,
) -> Biochip:
    """Build a chip for ``spec`` on ``region``.

    ``offset`` shifts the spare pattern (selects a coset); the architecture's
    (s, p) properties are translation-invariant, so any coset is a valid
    instance of the design.
    """
    lattice = spec.spare_lattice.translated(offset)
    return chip_from_lattice(region, lattice, name=name or spec.name)


@dataclass(frozen=True)
class FitResult:
    """Outcome of the :func:`build_with_primary_count` search."""

    spec: DesignSpec
    cols: int
    rows: int
    offset: Hex
    primary_count: int
    spare_count: int

    def build(self, name: Optional[str] = None) -> Biochip:
        """Construct the chip this fit describes."""
        return build_chip(
            self.spec,
            RectRegion(self.cols, self.rows),
            self.offset,
            name=name or f"{self.spec.name} n={self.primary_count}",
        )


def _candidate_shapes(total_cells_target: float, max_dim: int) -> Iterator[Tuple[int, int]]:
    """Rectangle shapes ordered by squareness, near the target cell count."""
    shapes: List[Tuple[float, int, int]] = []
    for cols in range(2, max_dim + 1):
        for rows in range(2, max_dim + 1):
            total = cols * rows
            # Keep shapes whose footprint could plausibly hold the target
            # primary count: within a generous band around the ideal size.
            if total < total_cells_target * 0.9 or total > total_cells_target * 1.6:
                continue
            squareness = abs(cols - rows)
            shapes.append((squareness, cols, rows))
    shapes.sort()
    for _, cols, rows in shapes:
        yield (cols, rows)


def build_with_primary_count(
    spec: DesignSpec,
    n: int,
    max_dim: int = 64,
) -> FitResult:
    """Find a rectangular instance of ``spec`` with exactly ``n`` primaries.

    Searches rectangle shapes (most square first) and all lattice cosets;
    deterministic, so repeated calls return the same layout.  Raises
    :class:`DesignError` if no footprint up to ``max_dim`` per side fits.
    """
    if n < 1:
        raise DesignError(f"primary count must be >= 1, got {n}")
    density = float(spec.primary_density)
    target_cells = n / density
    period = _coset_period(spec)
    for cols, rows in _candidate_shapes(target_cells, max_dim):
        region = RectRegion(cols, rows)
        for dq in range(period):
            for dr in range(period):
                offset = Hex(dq, dr)
                lattice = spec.spare_lattice.translated(offset)
                spares = sum(1 for h in region if h in lattice)
                primaries = len(region) - spares
                if primaries == n and spares > 0:
                    return FitResult(spec, cols, rows, offset, primaries, spares)
    raise DesignError(
        f"no {spec.name} rectangle up to {max_dim}x{max_dim} has exactly "
        f"{n} primary cells"
    )


def build_flower_chip(n: int, name: Optional[str] = None) -> Biochip:
    """A DTMB(1,6) array made of exactly ``n / 6`` *complete* flowers.

    The paper's analytical model views DTMB(1,6) as independent 7-cell
    clusters ("flowers": one spare and its six primaries).  Rectangular
    footprints clip flowers at the boundary, stranding some primaries with
    no spare; this builder instead assembles whole flowers — the spare
    centers nearest the origin on the DTMB(1,6) superlattice — so the
    cluster model is *exact* and Monte-Carlo can validate it directly.

    ``n`` must be a positive multiple of 6.
    """
    if n < 6 or n % 6 != 0:
        raise DesignError(
            f"flower chip needs a positive multiple of 6 primaries, got {n}"
        )
    from repro.chip.cell import Cell, CellRole
    from repro.designs.catalog import DTMB_1_6
    from repro.geometry.hex import hex_spiral

    lattice = DTMB_1_6.spare_lattice
    flowers = n // 6
    centers: List[Hex] = []
    radius = 4
    while len(centers) < flowers:
        centers = [h for h in hex_spiral(Hex(0, 0), radius) if h in lattice]
        radius += 2
    centers = centers[:flowers]
    cells: List[Cell] = []
    for center in centers:
        cells.append(Cell(center, CellRole.SPARE))
        cells.extend(Cell(nb, CellRole.PRIMARY) for nb in center.neighbors())
    return Biochip(cells, name=name or f"DTMB(1,6) flowers n={n}")
