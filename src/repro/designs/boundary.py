"""Boundary spare-row redundancy — the baseline the paper argues against.

Figure 2 of the paper shows a microfluidic array with one spare row and
several microfluidic modules placed in the primary rows.  Because of
*microfluidic locality* (droplets only move to physically adjacent cells,
there is no programmable interconnect), an interior faulty cell cannot be
replaced directly by a boundary spare: the repair is a *shifted
replacement* in which every row between the fault and the spare row slides
over by one, dragging fault-free modules into reconfiguration.

This module provides the substrate — a rectangular array with modules
occupying bands of rows and a spare row at one edge — and
:mod:`repro.reconfig.shifted` implements the replacement procedure and its
cost accounting, which :mod:`repro.experiments.fig2` uses to quantify the
reconfiguration-cost blow-up that motivates interstitial redundancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import DesignError
from repro.geometry.square import Square

__all__ = ["ModulePlacement", "SpareRowArray"]


@dataclass(frozen=True)
class ModulePlacement:
    """A microfluidic module occupying a contiguous band of rows.

    In Figure 2 each module (mixer, storage, transport bus...) is a block of
    the array; ``rows`` is the half-open range ``[row_start, row_end)`` it
    occupies, spanning the full width of the array.
    """

    name: str
    row_start: int
    row_end: int

    def __post_init__(self) -> None:
        if self.row_end <= self.row_start:
            raise DesignError(
                f"module {self.name!r}: empty row range "
                f"[{self.row_start}, {self.row_end})"
            )

    @property
    def rows(self) -> range:
        return range(self.row_start, self.row_end)

    @property
    def height(self) -> int:
        return self.row_end - self.row_start

    def contains_row(self, row: int) -> bool:
        return self.row_start <= row < self.row_end


class SpareRowArray:
    """A ``cols``-wide array of stacked modules plus one spare row.

    Row indices grow toward the spare row: modules occupy rows
    ``0 .. total_module_rows - 1`` contiguously (in the order given), and
    the spare row is the last row, ``spare_row == total_module_rows``.
    Module 1 in the paper's figure is the one *adjacent* to the spare row —
    i.e. the last module in ``modules``.
    """

    def __init__(self, cols: int, modules: Sequence[ModulePlacement]):
        if cols < 1:
            raise DesignError(f"array width must be >= 1, got {cols}")
        if not modules:
            raise DesignError("a spare-row array needs at least one module")
        expected_start = 0
        for module in modules:
            if module.row_start != expected_start:
                raise DesignError(
                    f"module {module.name!r} starts at row {module.row_start}, "
                    f"expected {expected_start}: modules must tile rows contiguously"
                )
            expected_start = module.row_end
        self.cols = cols
        self.modules: Tuple[ModulePlacement, ...] = tuple(modules)
        self.spare_row: int = expected_start
        self.rows: int = expected_start + 1  # modules + the spare row

    @classmethod
    def uniform(cls, cols: int, module_heights: Sequence[int], names: Sequence[str] = ()) -> "SpareRowArray":
        """Stack modules of the given heights; names default to Module k.

        Following the paper's figure, the *last* module is adjacent to the
        spare row and gets the lowest number: heights ``[h3, h2, h1]``
        produce Module 3 (farthest) .. Module 1 (adjacent).
        """
        count = len(module_heights)
        if not names:
            names = [f"Module {count - i}" for i in range(count)]
        if len(names) != count:
            raise DesignError("one name per module height required")
        modules = []
        row = 0
        for name, height in zip(names, module_heights):
            modules.append(ModulePlacement(name, row, row + height))
            row += height
        return cls(cols, modules)

    # -- queries -----------------------------------------------------------
    def module_of_row(self, row: int) -> ModulePlacement:
        """The module occupying ``row`` (the spare row belongs to no module)."""
        for module in self.modules:
            if module.contains_row(row):
                return module
        raise DesignError(f"row {row} is not inside any module")

    def module_cells(self, module: ModulePlacement) -> List[Square]:
        """The physical cells of ``module`` in the unrepaired array."""
        return [
            Square(x, y) for y in module.rows for x in range(self.cols)
        ]

    def all_cells(self) -> List[Square]:
        """Every cell of the array including the spare row."""
        return [
            Square(x, y) for y in range(self.rows) for x in range(self.cols)
        ]

    def distance_to_spare_row(self, row: int) -> int:
        """How many rows separate ``row`` from the spare row."""
        if not (0 <= row < self.rows):
            raise DesignError(f"row {row} outside array of {self.rows} rows")
        return self.spare_row - row

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        names = ", ".join(m.name for m in self.modules)
        return f"SpareRowArray({self.cols} cols; {names}; spare row {self.spare_row})"
