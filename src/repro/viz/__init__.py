"""Visualization: ASCII layouts, ASCII charts, SVG rendering, CSV export."""

from repro.viz.ascii_art import render_chip, render_legend
from repro.viz.export import write_csv
from repro.viz.gallery import gallery_html, write_gallery
from repro.viz.plot import ascii_chart
from repro.viz.svg import chip_to_svg, write_svg

__all__ = [
    "render_chip",
    "render_legend",
    "ascii_chart",
    "chip_to_svg",
    "write_svg",
    "write_csv",
    "gallery_html",
    "write_gallery",
]
