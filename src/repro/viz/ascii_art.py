"""ASCII rendering of biochip layouts, fault maps and repairs.

Renders the hexagonal array in odd-r offset rows (odd rows indented half a
cell, like the close-packed drawings in the paper's figures) and square
arrays as a plain grid.  Cell glyphs:

====  ==========================================
``.``  healthy primary cell
``o``  healthy primary cell used by the assays
``+``  healthy spare cell
``R``  spare cell used in a reconfiguration
``X``  faulty primary cell
``x``  faulty spare cell
``#``  faulty primary repaired by an adjacent spare
====  ==========================================
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set

from repro.chip.biochip import Biochip
from repro.chip.cell import Cell
from repro.geometry.hex import Hex
from repro.geometry.hexgrid import axial_to_offset
from repro.geometry.square import Square
from repro.reconfig.local import RepairPlan

__all__ = ["render_chip", "render_legend"]

LEGEND = (
    ". primary   o used primary   + spare   R repair spare   "
    "X faulty primary   x faulty spare   # repaired primary"
)


def _glyph(
    cell: Cell,
    used: Set[Hashable],
    repaired: Set[Hashable],
    repair_spares: Set[Hashable],
) -> str:
    if cell.is_spare:
        if cell.is_faulty:
            return "x"
        return "R" if cell.coord in repair_spares else "+"
    if cell.is_faulty:
        return "#" if cell.coord in repaired else "X"
    return "o" if cell.coord in used else "."


def render_chip(
    chip: Biochip,
    used: Iterable[Hashable] = (),
    plan: Optional[RepairPlan] = None,
) -> str:
    """Multi-line ASCII drawing of ``chip``.

    ``used`` highlights assay-occupied primaries; ``plan`` highlights the
    repaired primaries and the spares serving them.
    """
    used_set = set(used)
    repaired: Set[Hashable] = set()
    repair_spares: Set[Hashable] = set()
    if plan is not None:
        repaired = set(plan.assignment)
        repair_spares = set(plan.assignment.values())

    sample = chip.coords[0]
    if isinstance(sample, Hex):
        return _render_hex(chip, used_set, repaired, repair_spares)
    if isinstance(sample, Square):
        return _render_square(chip, used_set, repaired, repair_spares)
    raise TypeError(f"cannot render coordinates of type {type(sample).__name__}")


def _render_hex(
    chip: Biochip,
    used: Set[Hashable],
    repaired: Set[Hashable],
    repair_spares: Set[Hashable],
) -> str:
    offsets: Dict[Hashable, tuple] = {c: axial_to_offset(c) for c in chip.coords}
    cols = [col for col, _ in offsets.values()]
    rows = [row for _, row in offsets.values()]
    col_lo, row_lo, row_hi = min(cols), min(rows), max(rows)
    by_pos = {offsets[c]: chip[c] for c in chip.coords}
    lines = []
    for row in range(row_lo, row_hi + 1):
        indent = " " if row % 2 else ""
        chars = []
        for col in range(col_lo, max(cols) + 1):
            cell = by_pos.get((col, row))
            chars.append(
                _glyph(cell, used, repaired, repair_spares) if cell else " "
            )
        lines.append(indent + " ".join(chars).rstrip())
    return "\n".join(lines)


def _render_square(
    chip: Biochip,
    used: Set[Hashable],
    repaired: Set[Hashable],
    repair_spares: Set[Hashable],
) -> str:
    xs = [c.x for c in chip.coords]
    ys = [c.y for c in chip.coords]
    lines = []
    for y in range(min(ys), max(ys) + 1):
        chars = []
        for x in range(min(xs), max(xs) + 1):
            coord = Square(x, y)
            if coord in chip:
                chars.append(_glyph(chip[coord], used, repaired, repair_spares))
            else:
                chars.append(" ")
        lines.append(" ".join(chars).rstrip())
    return "\n".join(lines)


def render_legend() -> str:
    """The glyph legend, for printing under a rendering."""
    return LEGEND
