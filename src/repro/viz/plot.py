"""ASCII line charts for yield curves.

Every figure in the paper is a family of yield-vs-parameter curves; this
renderer draws them in the terminal so the benchmark harness and the
examples can show the reproduced shapes without a plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError

__all__ = ["ascii_chart"]

_MARKERS = "*o+x#@%&"


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 68,
    height: int = 20,
    title: str = "",
    y_label: str = "Y",
    x_label: str = "x",
) -> str:
    """Render named ``(x, y)`` series on one shared-axis ASCII canvas.

    Series are drawn in insertion order with cycling markers; points that
    collide on the canvas keep the first-drawn marker.  Axis ranges span
    the union of all series.
    """
    if not series:
        raise ReproError("nothing to plot")
    if width < 16 or height < 4:
        raise ReproError(f"canvas too small: {width}x{height}")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ReproError("all series are empty")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_cell(x: float, y: float) -> Tuple[int, int]:
        cx = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
        cy = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
        return (height - 1 - cy, cx)

    for idx, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in pts:
            row, col = to_cell(x, y)
            if grid[row][col] == " ":
                grid[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title.center(width + 10))
    top_label = f"{y_hi:.3f}"
    bottom_label = f"{y_lo:.3f}"
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(label_width)
        elif i == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif i == height // 2:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    x_line = f"{x_lo:.3f}".ljust(width - 12) + f"{x_hi:.3f}".rjust(12)
    lines.append(" " * label_width + "  " + x_line + f"  ({x_label})")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)
