"""HTML gallery: every catalog design rendered side by side.

Produces a single self-contained HTML file embedding the SVG of each
DTMB(s, p) layout with its verified structural statistics — the quickest
way to eyeball that the congruence constructions reproduce the paper's
Figures 3-6.
"""

from __future__ import annotations

import html
from typing import Optional, Sequence

from repro.designs.catalog import ALL_DESIGNS
from repro.designs.interstitial import build_chip
from repro.designs.spec import DesignSpec
from repro.designs.verify import verify_design
from repro.geometry.hexgrid import RectRegion
from repro.viz.svg import chip_to_svg

__all__ = ["gallery_html", "write_gallery"]

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>DTMB design gallery</title>
<style>
 body {{ font-family: system-ui, sans-serif; margin: 2rem; }}
 .card {{ display: inline-block; vertical-align: top; margin: 1rem;
          padding: 1rem; border: 1px solid #ccc; border-radius: 8px; }}
 .card h2 {{ margin-top: 0; font-size: 1.1rem; }}
 table {{ border-collapse: collapse; font-size: 0.85rem; }}
 td, th {{ padding: 2px 8px; text-align: left; }}
</style>
</head>
<body>
<h1>Interstitial-redundancy designs (paper Figures 3&ndash;6)</h1>
<p>Spare cells are white, primaries blue; every layout below is verified
cell-by-cell against Definition 1 before rendering.</p>
{cards}
</body>
</html>
"""

_CARD = """<div class="card">
<h2>{name}</h2>
<table>
<tr><th>s</th><td>{s}</td><th>p</th><td>{p}</td></tr>
<tr><th>RR (asymptotic)</th><td>{rr_asym}</td>
    <th>RR (this array)</th><td>{rr_finite}</td></tr>
<tr><th>primaries</th><td>{primaries}</td><th>spares</th><td>{spares}</td></tr>
</table>
{svg}
<p><em>{description}</em></p>
</div>
"""


def gallery_html(
    designs: Sequence[DesignSpec] = ALL_DESIGNS,
    size: int = 12,
    cell_size: float = 10.0,
) -> str:
    """The gallery page as an HTML string."""
    cards = []
    for spec in designs:
        chip = build_chip(spec, RectRegion(size, size))
        report = verify_design(spec, chip)
        cards.append(
            _CARD.format(
                name=html.escape(spec.name),
                s=report.uniform_s(),
                p=report.uniform_p(),
                rr_asym=f"{float(spec.redundancy_ratio):.4f}",
                rr_finite=f"{report.redundancy_ratio:.4f}",
                primaries=chip.primary_count,
                spares=chip.spare_count,
                svg=chip_to_svg(chip, cell_size=cell_size),
                description=html.escape(spec.description),
            )
        )
    return _PAGE.format(cards="\n".join(cards))


def write_gallery(
    path: str,
    designs: Sequence[DesignSpec] = ALL_DESIGNS,
    size: int = 12,
    cell_size: float = 10.0,
) -> None:
    """Render the gallery and write it to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(gallery_html(designs, size=size, cell_size=cell_size))
