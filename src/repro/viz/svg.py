"""SVG rendering of biochip layouts and reconfigurations.

Produces standalone SVG documents: hexagons (pointy-top) or squares per
cell, colored by role/health/usage, with arrows from each repaired primary
to the spare that replaces it — the Figure 12(b) picture.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.chip.biochip import Biochip
from repro.geometry.hex import Hex, axial_to_pixel
from repro.geometry.square import Square
from repro.reconfig.local import RepairPlan

__all__ = ["chip_to_svg", "write_svg"]

_COLORS = {
    "primary": "#9ecae1",
    "used": "#74c476",
    "spare": "#ffffff",
    "repair_spare": "#fdd835",
    "faulty_primary": "#e53935",
    "faulty_spare": "#ef9a9a",
}
_STROKE = "#555555"


def _hex_corners(cx: float, cy: float, size: float) -> str:
    pts = []
    for k in range(6):
        angle = math.pi / 180.0 * (60.0 * k - 30.0)
        pts.append(f"{cx + size * math.cos(angle):.2f},{cy + size * math.sin(angle):.2f}")
    return " ".join(pts)


def _cell_fill(
    chip: Biochip,
    coord: Hashable,
    used: Set[Hashable],
    repair_spares: Set[Hashable],
) -> str:
    cell = chip[coord]
    if cell.is_spare:
        if cell.is_faulty:
            return _COLORS["faulty_spare"]
        if coord in repair_spares:
            return _COLORS["repair_spare"]
        return _COLORS["spare"]
    if cell.is_faulty:
        return _COLORS["faulty_primary"]
    if coord in used:
        return _COLORS["used"]
    return _COLORS["primary"]


def chip_to_svg(
    chip: Biochip,
    used: Iterable[Hashable] = (),
    plan: Optional[RepairPlan] = None,
    cell_size: float = 14.0,
) -> str:
    """An SVG document string drawing ``chip``.

    ``used`` cells are tinted green; with a ``plan``, repair spares are
    highlighted and an arrow is drawn from each repaired faulty primary to
    its replacement spare.
    """
    used_set = set(used)
    repair_spares: Set[Hashable] = set(plan.assignment.values()) if plan else set()
    sample = chip.coords[0]
    hexagonal = isinstance(sample, Hex)

    centers: Dict[Hashable, Tuple[float, float]] = {}
    for coord in chip.coords:
        if hexagonal:
            centers[coord] = axial_to_pixel(coord, size=cell_size)
        else:
            centers[coord] = (coord.x * 2.0 * cell_size, coord.y * 2.0 * cell_size)

    xs = [p[0] for p in centers.values()]
    ys = [p[1] for p in centers.values()]
    pad = 2.0 * cell_size
    min_x, min_y = min(xs) - pad, min(ys) - pad
    width = max(xs) - min(xs) + 2 * pad
    height = max(ys) - min(ys) + 2 * pad

    shapes: List[str] = []
    for coord in chip.coords:
        cx, cy = centers[coord]
        cx -= min_x
        cy -= min_y
        fill = _cell_fill(chip, coord, used_set, repair_spares)
        if hexagonal:
            shapes.append(
                f'<polygon points="{_hex_corners(cx, cy, cell_size * 0.95)}" '
                f'fill="{fill}" stroke="{_STROKE}" stroke-width="1"/>'
            )
        else:
            half = cell_size * 0.9
            shapes.append(
                f'<rect x="{cx - half:.2f}" y="{cy - half:.2f}" '
                f'width="{2 * half:.2f}" height="{2 * half:.2f}" '
                f'fill="{fill}" stroke="{_STROKE}" stroke-width="1"/>'
            )
        label = chip[coord].label
        if label:
            shapes.append(
                f'<text x="{cx:.2f}" y="{cy:.2f}" font-size="{cell_size * 0.45:.1f}" '
                f'text-anchor="middle" dominant-baseline="middle">{label[:3]}</text>'
            )

    if plan is not None:
        for primary, spare in sorted(plan.assignment.items()):
            x1, y1 = centers[primary]
            x2, y2 = centers[spare]
            shapes.append(
                f'<line x1="{x1 - min_x:.2f}" y1="{y1 - min_y:.2f}" '
                f'x2="{x2 - min_x:.2f}" y2="{y2 - min_y:.2f}" '
                f'stroke="#000000" stroke-width="1.5" marker-end="url(#arrow)"/>'
            )

    defs = (
        '<defs><marker id="arrow" viewBox="0 0 10 10" refX="9" refY="5" '
        'markerWidth="6" markerHeight="6" orient="auto-start-reverse">'
        '<path d="M 0 0 L 10 5 L 0 10 z"/></marker></defs>'
    )
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width:.0f}" height="{height:.0f}" '
        f'viewBox="0 0 {width:.0f} {height:.0f}">\n'
        f"{defs}\n" + "\n".join(shapes) + "\n</svg>\n"
    )


def write_svg(
    chip: Biochip,
    path: str,
    used: Iterable[Hashable] = (),
    plan: Optional[RepairPlan] = None,
    cell_size: float = 14.0,
) -> None:
    """Render ``chip`` and write the SVG document to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(chip_to_svg(chip, used=used, plan=plan, cell_size=cell_size))
