"""CSV export of experiment series.

Experiment drivers expose their rows as plain sequences; this writer keeps
the on-disk format trivial (RFC-4180 via the stdlib) so results can be
re-plotted with any external tool.
"""

from __future__ import annotations

import csv
from typing import IO, Iterable, Sequence, Union

from repro.errors import ReproError

__all__ = ["write_csv"]


def write_csv(
    destination: Union[str, IO[str]],
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> int:
    """Write ``rows`` with ``header`` to a path or file object.

    Returns the number of data rows written.  Row lengths are validated
    against the header so column drift in an experiment driver fails fast.
    """
    if not header:
        raise ReproError("CSV header must not be empty")

    def _write(handle: IO[str]) -> int:
        writer = csv.writer(handle)
        writer.writerow(header)
        count = 0
        for row in rows:
            if len(row) != len(header):
                raise ReproError(
                    f"row {count} has {len(row)} fields, header has {len(header)}"
                )
            writer.writerow(row)
            count += 1
        return count

    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8", newline="") as handle:
            return _write(handle)
    return _write(destination)
