"""Tabular export of experiment series: CSV and JSON, plus readers.

Experiment drivers expose their rows as plain sequences; these writers
keep the on-disk formats trivial (RFC-4180 CSV via the stdlib, one JSON
object with ``headers``/``rows`` keys) so results can be re-plotted or
diffed with any external tool.  The matching readers exist so artifact
round-trips can be verified without hand-rolled parsing in every test.
"""

from __future__ import annotations

import csv
import json
from typing import IO, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError

__all__ = ["write_csv", "read_csv", "write_json", "read_json"]


def _validated_rows(
    header: Sequence[str], rows: Iterable[Sequence[object]]
) -> List[Sequence[object]]:
    """Materialize ``rows``, checking each against the header width."""
    out: List[Sequence[object]] = []
    for row in rows:
        if len(row) != len(header):
            raise ReproError(
                f"row {len(out)} has {len(row)} fields, header has {len(header)}"
            )
        out.append(row)
    return out


def write_csv(
    destination: Union[str, IO[str]],
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> int:
    """Write ``rows`` with ``header`` to a path or file object.

    Returns the number of data rows written.  Row lengths are validated
    against the header so column drift in an experiment driver fails fast.
    """
    if not header:
        raise ReproError("CSV header must not be empty")

    data = _validated_rows(header, rows)

    def _write(handle: IO[str]) -> int:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(data)
        return len(data)

    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8", newline="") as handle:
            return _write(handle)
    return _write(destination)


def read_csv(source: Union[str, IO[str]]) -> Tuple[List[str], List[List[str]]]:
    """Read a CSV written by :func:`write_csv` back as (header, rows).

    All cells come back as strings — CSV has no types — which is exactly
    what round-trip checks compare against ``str()`` of the driver rows.
    """

    def _read(handle: IO[str]) -> Tuple[List[str], List[List[str]]]:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ReproError("CSV file is empty") from None
        return header, [list(row) for row in reader]

    if isinstance(source, str):
        with open(source, "r", encoding="utf-8", newline="") as handle:
            return _read(handle)
    return _read(source)


def write_json(
    destination: Union[str, IO[str]],
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
    metadata: Optional[Dict[str, object]] = None,
) -> int:
    """Write a table as one JSON object: ``{"headers", "rows", ...metadata}``.

    Cell values that are not JSON-native serialize via ``str``; metadata
    keys (e.g. a provenance block) merge into the top-level object and may
    not collide with ``headers``/``rows``.  Returns the data row count.
    """
    if not header:
        raise ReproError("JSON table header must not be empty")
    metadata = dict(metadata or {})
    for reserved in ("headers", "rows"):
        if reserved in metadata:
            raise ReproError(f"metadata key {reserved!r} is reserved")
    data = _validated_rows(header, rows)
    payload: Dict[str, object] = {
        "headers": [str(h) for h in header],
        "rows": [list(row) for row in data],
        **metadata,
    }

    def _write(handle: IO[str]) -> int:
        json.dump(payload, handle, indent=2, sort_keys=False, default=str)
        handle.write("\n")
        return len(data)

    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return _write(handle)
    return _write(destination)


def read_json(source: Union[str, IO[str]]) -> Dict[str, object]:
    """Read a JSON table written by :func:`write_json`.

    Validates the ``headers``/``rows`` shape (present, consistent widths)
    and returns the whole object, metadata included.
    """

    def _read(handle: IO[str]) -> Dict[str, object]:
        payload = json.load(handle)
        if not isinstance(payload, dict) or "headers" not in payload or "rows" not in payload:
            raise ReproError("JSON table must be an object with headers and rows")
        header = payload["headers"]
        if not isinstance(header, list) or not header:
            raise ReproError("JSON table headers must be a non-empty list")
        if not isinstance(payload["rows"], list):
            raise ReproError("JSON table rows must be a list")
        for i, row in enumerate(payload["rows"]):
            if not isinstance(row, list):
                raise ReproError(f"row {i} is not a list")
            if len(row) != len(header):
                raise ReproError(
                    f"row {i} has {len(row)} fields, header has {len(header)}"
                )
        return payload

    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return _read(handle)
    return _read(source)
