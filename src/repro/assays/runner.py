"""End-to-end assay execution on a (possibly repaired) biochip.

The pipeline follows the paper's glucose-assay description: dispense a
sample droplet and a reagent droplet, transport them to a mixer, mix,
transport the mixed droplet to a transparent detection electrode, incubate
while the Trinder reaction develops color, and measure absorbance with the
LED/photodiode.  Concentration is read off a calibration curve built from
the same kinetic model — exactly how a real instrument is calibrated with
standard solutions.

:class:`MultiplexedRunner` executes the four-analyte panel on the
diagnostics chip; with faults present it first runs local reconfiguration
and executes through the resulting remap, demonstrating that a repaired
DTMB(2, 6) chip runs the same protocol unchanged.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.assays.chemistry import Species
from repro.assays.chipspec import DiagnosticsChip
from repro.assays.detection import OpticalDetector
from repro.assays.library import PANEL, AssaySpec
from repro.errors import AssayError
from repro.fluidics.controller import ElectrodeController
from repro.fluidics.operations import Detect, Discard, Dispense, Mix, Transport
from repro.fluidics.scheduler import Schedule, Scheduler
from repro.geometry.hex import Hex
from repro.reconfig.local import plan_local_repair
from repro.reconfig.remap import CellRemap

__all__ = ["AssayResult", "CalibrationCurve", "run_assay", "MultiplexedRunner"]

#: Default color-development window (seconds) before the optical read.
DEFAULT_INCUBATION = 30.0


@dataclass(frozen=True)
class AssayResult:
    """One completed assay measurement."""

    analyte: str
    absorbance: float
    measured_concentration: float
    true_concentration: float
    in_reference_range: bool
    elapsed_time: float
    droplet_moves: int

    @property
    def relative_error(self) -> float:
        if self.true_concentration == 0.0:
            return abs(self.measured_concentration)
        return (
            abs(self.measured_concentration - self.true_concentration)
            / self.true_concentration
        )


class CalibrationCurve:
    """Absorbance → concentration lookup built from standard solutions.

    For each standard concentration the kinetic model is run for the same
    incubation window the instrument will use; inversion is by monotone
    piecewise-linear interpolation.  Saturated readings (above the top
    standard) raise, telling the operator to dilute — exactly the failure
    mode of the real assay.
    """

    def __init__(
        self,
        spec: AssaySpec,
        incubation: float = DEFAULT_INCUBATION,
        standards: Optional[Sequence[float]] = None,
        detector: Optional[OpticalDetector] = None,
    ):
        self.spec = spec
        self.incubation = incubation
        detector = detector or OpticalDetector()
        lo, hi = spec.reference_range
        if standards is None:
            # Standards bracketing the clinical range generously.
            standards = [0.0] + [hi * f for f in (0.05, 0.2, 0.5, 1.0, 2.0, 4.0)]
        points: List[Tuple[float, float]] = []
        for conc in standards:
            contents = _mixed_contents(spec, conc)
            final = spec.cascade.simulate(contents, incubation)
            points.append((detector.measure(final), conc))
        points.sort()
        self._absorbances = [a for a, _ in points]
        self._concentrations = [c for _, c in points]
        if len(set(self._absorbances)) < len(self._absorbances):
            raise AssayError(
                f"{spec.analyte}: calibration is not monotone; the assay "
                "saturates inside the standard range"
            )

    def concentration(self, absorbance: float) -> float:
        """Interpolate a measured absorbance to analyte concentration."""
        if absorbance < self._absorbances[0] - 1e-9:
            raise AssayError(
                f"absorbance {absorbance:.4f} below the calibration range"
            )
        if absorbance > self._absorbances[-1] + 1e-9:
            raise AssayError(
                f"absorbance {absorbance:.4f} above the top standard; "
                "dilute the sample and repeat"
            )
        i = bisect_left(self._absorbances, absorbance)
        if i == 0:
            return self._concentrations[0]
        if i >= len(self._absorbances):
            return self._concentrations[-1]
        a0, a1 = self._absorbances[i - 1], self._absorbances[i]
        c0, c1 = self._concentrations[i - 1], self._concentrations[i]
        if a1 == a0:  # pragma: no cover - guarded in __init__
            return c0
        t = (absorbance - a0) / (a1 - a0)
        return c0 + t * (c1 - c0)


def _mixed_contents(spec: AssaySpec, sample_concentration: float) -> Dict[str, float]:
    """Contents of a 1:1 sample/reagent merge (everything dilutes 2x)."""
    contents = {spec.analyte: sample_concentration / 2.0}
    for species, conc in spec.reagent_contents.items():
        contents[species] = conc / 2.0
    return contents


def run_assay(
    scheduler: Scheduler,
    spec: AssaySpec,
    sample_concentration: float,
    sample_port: Hex,
    reagent_port: Hex,
    mixer: Hex,
    detector_cell: Hex,
    incubation: float = DEFAULT_INCUBATION,
    detector: Optional[OpticalDetector] = None,
    calibration: Optional[CalibrationCurve] = None,
) -> AssayResult:
    """Execute one assay end to end on a live scheduler.

    The droplet chemistry is advanced during the detection hold (the mixed
    droplet develops color while parked on the transparent electrode);
    transport time is negligible chemically because mixing happens just
    before detection.
    """
    if sample_concentration < 0:
        raise AssayError("sample concentration must be >= 0")
    detector = detector or OpticalDetector()
    calibration = calibration or CalibrationCurve(
        spec, incubation=incubation, detector=detector
    )
    tag = spec.analyte.replace(" ", "-")
    sample = f"{tag}-sample"
    reagent = f"{tag}-reagent"
    mixed = f"{tag}-mixed"
    ops = [
        Dispense(sample, sample_port, {spec.analyte: sample_concentration}),
        Dispense(reagent, reagent_port, dict(spec.reagent_contents)),
        Mix(sample, reagent, mixed, at=mixer),
        Detect(mixed, at=detector_cell, duration=incubation),
    ]
    schedule = scheduler.run(ops)
    droplet = scheduler.droplet(mixed)
    final_contents = spec.cascade.simulate(droplet.contents, incubation)
    droplet.contents = final_contents
    absorbance = detector.measure(final_contents)
    measured = calibration.concentration(absorbance)
    scheduler.run([Discard(mixed)])
    return AssayResult(
        analyte=spec.analyte,
        absorbance=absorbance,
        measured_concentration=measured,
        true_concentration=sample_concentration,
        in_reference_range=spec.in_reference_range(measured),
        elapsed_time=schedule.total_time,
        droplet_moves=schedule.total_moves,
    )


class MultiplexedRunner:
    """Runs the four-analyte panel on the diagnostics chip.

    Parameters
    ----------
    layout:
        A :class:`DiagnosticsChip` (typically :func:`redesigned_chip`),
        possibly with faults already marked on ``layout.chip``.
    auto_repair:
        When True (default) and faults are present, compute a local
        reconfiguration plan for the used cells and run through the remap;
        raises :class:`AssayError` if the chip is irreparable.
    """

    def __init__(self, layout: DiagnosticsChip, auto_repair: bool = True):
        self.layout = layout
        chip = layout.chip
        remap: Optional[CellRemap] = None
        if any(c.is_faulty for c in chip):
            if not auto_repair:
                raise AssayError(
                    "chip has faults and auto_repair is disabled"
                )
            plan = plan_local_repair(chip, needed=layout.used)
            if not plan.complete:
                raise AssayError(
                    f"chip is irreparable: {len(plan.unrepaired)} used cells "
                    "cannot be covered by adjacent fault-free spares"
                )
            remap = CellRemap(chip, plan)
        self.remap = remap
        self.controller = ElectrodeController(chip, remap=remap)
        self.scheduler = Scheduler(self.controller)

    def run_panel(
        self,
        sample_concentrations: Dict[str, float],
        incubation: float = DEFAULT_INCUBATION,
    ) -> List[AssayResult]:
        """Run every panel assay whose analyte appears in the dict.

        Assays execute back to back (droplets from different assays never
        coexist, so the static spacing constraint is trivially met); each
        uses its own sample port / mixer / detector site as the multiplexed
        chip provides.
        """
        results: List[AssayResult] = []
        ports = [self.layout.ports["SAMPLE1"], self.layout.ports["SAMPLE2"]]
        reagent_ports = [
            self.layout.ports["REAGENT1"],
            self.layout.ports["REAGENT2"],
        ]
        for i, spec in enumerate(PANEL):
            if spec.analyte not in sample_concentrations:
                continue
            result = run_assay(
                self.scheduler,
                spec,
                sample_concentrations[spec.analyte],
                sample_port=ports[i % 2],
                reagent_port=reagent_ports[i % 2],
                mixer=self.layout.mixers[i % len(self.layout.mixers)],
                detector_cell=self.layout.detectors[i % len(self.layout.detectors)],
                incubation=incubation,
            )
            results.append(result)
        return results
