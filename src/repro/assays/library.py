"""The multiplexed in-vitro diagnostics assay panel.

"The in-vitro measurement of glucose and other metabolites, such as
lactate, glutamate and pyruvate, in human physiological fluids plays a
critical role in clinical diagnosis of metabolic disorders."  Each assay is
the same Trinder-type cascade with a different analyte-specific oxidase;
this module catalogs the four panel members with representative kinetic
constants and their physiological reference ranges, plus the standard
reagent cocktail dispensed with each assay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.assays.chemistry import ReactionCascade, Species, trinder_cascade
from repro.errors import AssayError

__all__ = ["AssaySpec", "GLUCOSE_ASSAY", "LACTATE_ASSAY", "GLUTAMATE_ASSAY",
           "PYRUVATE_ASSAY", "PANEL", "assay_by_analyte"]


@dataclass(frozen=True)
class AssaySpec:
    """One colorimetric assay of the diagnostics panel.

    ``reference_range`` is the normal physiological concentration window
    (mol/L) in the target fluid; results outside it are flagged in
    reports.  ``reagent_contents`` is what the reagent droplet carries
    (enzymes + chromogens, mol/L).
    """

    analyte: str
    oxidase: str
    cascade: ReactionCascade
    reference_range: Tuple[float, float]
    reagent_contents: Dict[str, float]
    fluid: str = "blood plasma"

    def __post_init__(self) -> None:
        lo, hi = self.reference_range
        if not 0 <= lo < hi:
            raise AssayError(
                f"{self.analyte}: invalid reference range ({lo}, {hi})"
            )

    def in_reference_range(self, concentration: float) -> bool:
        lo, hi = self.reference_range
        return lo <= concentration <= hi


def _reagent(oxidase: str, oxidase_conc: float = 2e-6) -> Dict[str, float]:
    """The Trinder reagent cocktail: oxidase + peroxidase + chromogens."""
    return {
        oxidase: oxidase_conc,
        Species.PEROXIDASE: 1e-6,
        Species.AAP4: 10e-3,
        Species.TOPS: 10e-3,
    }


GLUCOSE_ASSAY = AssaySpec(
    analyte=Species.GLUCOSE,
    oxidase=Species.GLUCOSE_OXIDASE,
    cascade=trinder_cascade(
        oxidase=Species.GLUCOSE_OXIDASE,
        analyte=Species.GLUCOSE,
        oxidase_kcat=600.0,
        oxidase_km=33e-3,
    ),
    reference_range=(3.9e-3, 6.1e-3),  # 70-110 mg/dL fasting plasma
    reagent_contents=_reagent(Species.GLUCOSE_OXIDASE),
)

LACTATE_ASSAY = AssaySpec(
    analyte=Species.LACTATE,
    oxidase=Species.LACTATE_OXIDASE,
    cascade=trinder_cascade(
        oxidase=Species.LACTATE_OXIDASE,
        analyte=Species.LACTATE,
        oxidase_kcat=120.0,
        oxidase_km=0.7e-3,
    ),
    reference_range=(0.5e-3, 2.2e-3),
    reagent_contents=_reagent(Species.LACTATE_OXIDASE, oxidase_conc=4e-6),
)

GLUTAMATE_ASSAY = AssaySpec(
    analyte=Species.GLUTAMATE,
    oxidase=Species.GLUTAMATE_OXIDASE,
    cascade=trinder_cascade(
        oxidase=Species.GLUTAMATE_OXIDASE,
        analyte=Species.GLUTAMATE,
        oxidase_kcat=60.0,
        oxidase_km=0.2e-3,
    ),
    reference_range=(20e-6, 200e-6),
    reagent_contents=_reagent(Species.GLUTAMATE_OXIDASE, oxidase_conc=6e-6),
)

PYRUVATE_ASSAY = AssaySpec(
    analyte=Species.PYRUVATE,
    oxidase=Species.PYRUVATE_OXIDASE,
    cascade=trinder_cascade(
        oxidase=Species.PYRUVATE_OXIDASE,
        analyte=Species.PYRUVATE,
        oxidase_kcat=90.0,
        oxidase_km=0.3e-3,
    ),
    reference_range=(40e-6, 120e-6),
    reagent_contents=_reagent(Species.PYRUVATE_OXIDASE, oxidase_conc=5e-6),
)

#: The full multiplexed diagnostics panel, in the paper's order.
PANEL: Tuple[AssaySpec, ...] = (
    GLUCOSE_ASSAY,
    LACTATE_ASSAY,
    GLUTAMATE_ASSAY,
    PYRUVATE_ASSAY,
)

_BY_ANALYTE = {spec.analyte: spec for spec in PANEL}


def assay_by_analyte(analyte: str) -> AssaySpec:
    """Panel lookup by analyte name."""
    try:
        return _BY_ANALYTE[analyte]
    except KeyError:
        known = ", ".join(sorted(_BY_ANALYTE))
        raise AssayError(
            f"no assay for {analyte!r}; panel covers: {known}"
        ) from None
