"""Enzyme-kinetic reaction simulation for colorimetric assays.

Section 7 of the paper: the glucose assay is Trinder's reaction, a
colorimetric enzyme-based method::

    glucose + O2 + H2O   --glucose oxidase-->  gluconic acid + H2O2
    2 H2O2 + 4-AAP + TOPS --peroxidase-->      quinoneimine + 4 H2O

The violet quinoneimine absorbs at 545 nm; its concentration after a fixed
reaction window encodes the sample's glucose concentration.  The same
oxidase/peroxidase cascade with a different first-step enzyme measures
lactate, glutamate and pyruvate — the multiplexed in-vitro diagnostics
panel.

We integrate Michaelis-Menten kinetics with an explicit-Euler stepper.
The oxygen and water co-substrates are treated as saturating (their
concentrations in an oil-encapsulated nanoliter droplet far exceed the
analyte's), which is the standard assumption for Trinder-type assays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import AssayError

__all__ = [
    "Species",
    "MichaelisMentenStep",
    "ReactionCascade",
    "trinder_cascade",
]


class Species:
    """Canonical species names used across the assay layer."""

    GLUCOSE = "glucose"
    LACTATE = "lactate"
    GLUTAMATE = "glutamate"
    PYRUVATE = "pyruvate"
    H2O2 = "H2O2"
    AAP4 = "4-AAP"
    TOPS = "TOPS"
    QUINONEIMINE = "quinoneimine"
    GLUCOSE_OXIDASE = "glucose oxidase"
    LACTATE_OXIDASE = "lactate oxidase"
    GLUTAMATE_OXIDASE = "glutamate oxidase"
    PYRUVATE_OXIDASE = "pyruvate oxidase"
    PEROXIDASE = "peroxidase"


@dataclass(frozen=True)
class MichaelisMentenStep:
    """One enzymatic step: substrate → product, catalyzed by ``enzyme``.

    Rate law: ``v = kcat * [E] * [S] / (Km + [S])``, with optional
    co-substrates that are *consumed* stoichiometrically but, if their
    concentration falls below the substrate's demand, throttle the rate
    (simple limiting-reagent clamp).

    ``substrate_per_product`` expresses stoichiometry: Trinder's second
    step consumes 2 H2O2 per quinoneimine formed.
    """

    name: str
    enzyme: str
    substrate: str
    product: str
    kcat: float  # 1/s
    km: float  # mol/L
    cosubstrates: Tuple[str, ...] = ()
    substrate_per_product: float = 1.0

    def __post_init__(self) -> None:
        if self.kcat <= 0:
            raise AssayError(f"{self.name}: kcat must be positive")
        if self.km <= 0:
            raise AssayError(f"{self.name}: Km must be positive")
        if self.substrate_per_product <= 0:
            raise AssayError(f"{self.name}: stoichiometry must be positive")

    def rate(self, contents: Dict[str, float]) -> float:
        """Instantaneous product-formation rate (mol/L/s)."""
        enzyme = contents.get(self.enzyme, 0.0)
        substrate = contents.get(self.substrate, 0.0)
        if enzyme <= 0.0 or substrate <= 0.0:
            return 0.0
        return (self.kcat * enzyme * substrate) / (self.km + substrate)


class ReactionCascade:
    """A fixed sequence of Michaelis-Menten steps sharing one droplet.

    The cascade is integrated with explicit Euler; step sizes are clamped
    so no species goes negative (the limiting-reagent rule).
    """

    def __init__(self, steps: Sequence[MichaelisMentenStep]):
        if not steps:
            raise AssayError("a cascade needs at least one step")
        self.steps: Tuple[MichaelisMentenStep, ...] = tuple(steps)

    def simulate(
        self,
        contents: Dict[str, float],
        duration: float,
        dt: float = 0.05,
    ) -> Dict[str, float]:
        """Evolve ``contents`` (mol/L) for ``duration`` seconds.

        Returns a new dict; the input is not mutated.  ``dt`` trades
        accuracy for speed; the default resolves the default kinetic
        parameters to well under 1% error (validated in tests against a
        halved step size).
        """
        if duration < 0:
            raise AssayError(f"duration must be >= 0, got {duration}")
        if dt <= 0:
            raise AssayError(f"dt must be positive, got {dt}")
        state = dict(contents)
        remaining = duration
        while remaining > 1e-12:
            step_dt = min(dt, remaining)
            remaining -= step_dt
            for step in self.steps:
                velocity = step.rate(state)
                if velocity <= 0.0:
                    continue
                produced = velocity * step_dt
                # Limiting reagents: cannot consume more substrate or
                # co-substrate than present.
                max_by_substrate = (
                    state.get(step.substrate, 0.0) / step.substrate_per_product
                )
                produced = min(produced, max_by_substrate)
                for co in step.cosubstrates:
                    produced = min(produced, state.get(co, 0.0))
                if produced <= 0.0:
                    continue
                state[step.substrate] = (
                    state.get(step.substrate, 0.0)
                    - produced * step.substrate_per_product
                )
                for co in step.cosubstrates:
                    state[co] = state.get(co, 0.0) - produced
                state[step.product] = state.get(step.product, 0.0) + produced
        return state


def trinder_cascade(
    oxidase: str = Species.GLUCOSE_OXIDASE,
    analyte: str = Species.GLUCOSE,
    oxidase_kcat: float = 600.0,
    oxidase_km: float = 33e-3,
    peroxidase_kcat: float = 1500.0,
    peroxidase_km: float = 1.2e-3,
) -> ReactionCascade:
    """The two-step Trinder cascade for a given analyte/oxidase pair.

    Default kinetic constants are representative literature values for
    Aspergillus niger glucose oxidase and horseradish peroxidase; the
    assay library overrides the first step per analyte.
    """
    first = MichaelisMentenStep(
        name=f"{analyte} oxidation",
        enzyme=oxidase,
        substrate=analyte,
        product=Species.H2O2,
        kcat=oxidase_kcat,
        km=oxidase_km,
    )
    second = MichaelisMentenStep(
        name="Trinder color reaction",
        enzyme=Species.PEROXIDASE,
        substrate=Species.H2O2,
        product=Species.QUINONEIMINE,
        kcat=peroxidase_kcat,
        km=peroxidase_km,
        cosubstrates=(Species.AAP4, Species.TOPS),
        substrate_per_product=2.0,
    )
    return ReactionCascade([first, second])
