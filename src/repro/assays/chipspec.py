"""The multiplexed-diagnostics chip: Figure 11 baseline and Figure 12 redesign.

Two concrete layouts anchor the paper's case study:

* :func:`fabricated_chip` — the first-generation square-electrode chip of
  Figure 11.  "Only cells used for the bioassays were fabricated; no spare
  cells were included" — 108 primary cells, so its yield is ``p**108``
  (0.3378 at p = 0.99, the paper's headline baseline).
* :func:`redesigned_chip` — the defect-tolerant redesign of Figure 12: the
  primary-cell topology mapped onto DTMB(2, 6) with hexagonal electrodes,
  containing exactly the paper's counts: **252 primary cells (108 used in
  assays) and 91 spare cells** (343 cells total).

The redesign is built deterministically: the 252 primaries are the first
252 non-spare cells in spiral order around the origin of the DTMB(2, 6)
pattern, and the 91 spares are the interstitial sites most connected to
them (ties broken lexicographically).  Every primary retains at least one
adjacent spare; interior primaries retain both.  The 108 assay-used cells
are the innermost primaries — the compact working region the assays were
placed in — with ports, mixers and detector sites assigned on top.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.chip.biochip import Biochip
from repro.chip.builders import chip_from_roles, square_chip
from repro.chip.cell import CellRole
from repro.designs.catalog import DTMB_2_6
from repro.errors import ChipError
from repro.geometry.hex import Hex, axial_to_pixel, hex_spiral

__all__ = [
    "PAPER_USED_COUNT",
    "PAPER_PRIMARY_COUNT",
    "PAPER_SPARE_COUNT",
    "DiagnosticsChip",
    "fabricated_chip",
    "redesigned_chip",
]

#: Cell counts quoted in Section 7 of the paper.
PAPER_USED_COUNT = 108
PAPER_PRIMARY_COUNT = 252
PAPER_SPARE_COUNT = 91

#: Port names on the fabricated chip (Figure 11).
_PORT_NAMES = ("SAMPLE1", "SAMPLE2", "REAGENT1", "REAGENT2")


@dataclass(frozen=True)
class DiagnosticsChip:
    """A diagnostics layout with its functional-site map.

    ``used`` are the primary cells the bioassays occupy (the cells whose
    health determines whether the chip is usable); ``ports`` the dispense
    sites; ``mixers`` and ``detectors`` the processing sites, one of each
    per concurrently-running assay.
    """

    chip: Biochip
    used: Tuple[Hex, ...]
    ports: Dict[str, Hex]
    mixers: Tuple[Hex, ...]
    detectors: Tuple[Hex, ...]

    @property
    def used_count(self) -> int:
        return len(self.used)

    def describe(self) -> str:
        return (
            f"{self.chip.name}: {self.chip.primary_count} primary "
            f"({self.used_count} used), {self.chip.spare_count} spare"
        )


def fabricated_chip() -> Biochip:
    """The Figure 11 chip: 12x9 square electrodes, all primary, no spares."""
    chip = square_chip(12, 9, name="fabricated-diagnostics")
    if len(chip) != PAPER_USED_COUNT:
        raise ChipError(
            f"fabricated chip must have {PAPER_USED_COUNT} cells, got {len(chip)}"
        )
    # Dispense ports at the four corners, as on the fabricated device.
    corners = {
        "SAMPLE1": (0, 0),
        "SAMPLE2": (11, 0),
        "REAGENT1": (0, 8),
        "REAGENT2": (11, 8),
    }
    from repro.geometry.square import Square

    for name, (x, y) in corners.items():
        chip.set_label(Square(x, y), name)
    return chip


def _spiral_primaries(count: int) -> List[Hex]:
    """The first ``count`` DTMB(2,6) primary cells in spiral order."""
    lattice = DTMB_2_6.spare_lattice
    primaries: List[Hex] = []
    radius = 4
    while True:
        primaries = [h for h in hex_spiral(Hex(0, 0), radius) if h not in lattice]
        if len(primaries) >= count:
            return primaries[:count]
        radius += 2


def _best_connected_spares(primaries: List[Hex], count: int) -> List[Hex]:
    """The ``count`` interstitial spares most connected to ``primaries``."""
    lattice = DTMB_2_6.spare_lattice
    degree: Counter = Counter()
    for cell in primaries:
        for neighbor in cell.neighbors():
            if neighbor in lattice:
                degree[neighbor] += 1
    if len(degree) < count:
        raise ChipError(
            f"only {len(degree)} interstitial sites adjacent to the primary "
            f"region; cannot select {count}"
        )
    ranked = sorted(degree, key=lambda s: (-degree[s], s.q, s.r))
    return ranked[:count]


def _nearest_used(target_xy: Tuple[float, float], used: List[Hex], taken: set) -> Hex:
    """The used cell whose pixel center is closest to ``target_xy``."""
    tx, ty = target_xy
    best = None
    best_d2 = None
    for cell in used:
        if cell in taken:
            continue
        x, y = axial_to_pixel(cell)
        d2 = (x - tx) ** 2 + (y - ty) ** 2
        if best_d2 is None or (d2, cell.q, cell.r) < (best_d2, best.q, best.r):
            best = cell
            best_d2 = d2
    if best is None:
        raise ChipError("ran out of used cells while placing functional sites")
    return best


def redesigned_chip() -> DiagnosticsChip:
    """The Figure 12 defect-tolerant redesign (DTMB(2,6), 252 + 91 cells)."""
    primaries = _spiral_primaries(PAPER_PRIMARY_COUNT)
    spares = _best_connected_spares(primaries, PAPER_SPARE_COUNT)
    roles = {h: CellRole.PRIMARY for h in primaries}
    roles.update({h: CellRole.SPARE for h in spares})
    used = tuple(primaries[:PAPER_USED_COUNT])

    # Functional sites inside the used region, placed by direction from the
    # array center: dispense ports at the four extremes (where the off-chip
    # reservoirs connect), mixers on an inner ring, detectors nearer the
    # center (transparent electrodes for the optical path).
    used_list = list(used)
    taken: set = set()
    ports: Dict[str, Hex] = {}
    extremes = {
        "SAMPLE1": (-8.0, 0.0),
        "SAMPLE2": (8.0, 0.0),
        "REAGENT1": (0.0, -8.0),
        "REAGENT2": (0.0, 8.0),
    }
    for name, target in extremes.items():
        cell = _nearest_used(target, used_list, taken)
        ports[name] = cell
        taken.add(cell)

    mixer_targets = [(3.0, 3.0), (-3.0, 3.0), (-3.0, -3.0), (3.0, -3.0)]
    mixers = []
    for target in mixer_targets:
        cell = _nearest_used(target, used_list, taken)
        mixers.append(cell)
        taken.add(cell)

    detector_targets = [(1.5, 0.0), (0.0, 1.5), (-1.5, 0.0), (0.0, -1.5)]
    detectors = []
    for target in detector_targets:
        cell = _nearest_used(target, used_list, taken)
        detectors.append(cell)
        taken.add(cell)

    labels: Dict[Hex, str] = {}
    for name, cell in ports.items():
        labels[cell] = name
    for i, cell in enumerate(mixers, start=1):
        labels[cell] = f"MIXER{i}"
    for i, cell in enumerate(detectors, start=1):
        labels[cell] = f"DETECTOR{i}"

    chip = chip_from_roles(roles, labels=labels, name="redesigned-diagnostics")
    if chip.primary_count != PAPER_PRIMARY_COUNT:
        raise ChipError(
            f"redesign must have {PAPER_PRIMARY_COUNT} primaries, "
            f"got {chip.primary_count}"
        )
    if chip.spare_count != PAPER_SPARE_COUNT:
        raise ChipError(
            f"redesign must have {PAPER_SPARE_COUNT} spares, got {chip.spare_count}"
        )
    return DiagnosticsChip(
        chip=chip,
        used=used,
        ports=ports,
        mixers=tuple(mixers),
        detectors=tuple(detectors),
    )
