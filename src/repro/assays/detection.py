"""Optical detection: LED + photodiode absorbance measurement.

"The mixed droplet is transported onto a transparent electrode to enable
observation of the absorbance ... Absorbance measurements are performed
with a green LED and a photodiode.  The glucose concentration can be
measured from the absorbance, which is related to the concentration of
colored quinoneimine in the droplet."

Beer-Lambert converts quinoneimine concentration to absorbance at 545 nm
over the droplet height (the plate gap); the photodiode model adds optional
shot/readout noise so detector-limited precision can be studied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.assays.chemistry import Species
from repro.errors import AssayError
from repro.faults.injection import RngLike, make_rng

__all__ = ["BeerLambert", "Photodiode", "OpticalDetector"]

#: Molar absorptivity of the Trinder quinoneimine dye at 545 nm
#: (L / mol / cm), representative literature value.
QUINONEIMINE_EPSILON_545 = 1.5e4


@dataclass(frozen=True)
class BeerLambert:
    """Absorbance model A = epsilon * c * l.

    ``path_length_cm`` is the optical path through the droplet — the gap
    between the plates (300 um = 0.03 cm by default).
    """

    epsilon: float = QUINONEIMINE_EPSILON_545
    path_length_cm: float = 0.03

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise AssayError("molar absorptivity must be positive")
        if self.path_length_cm <= 0:
            raise AssayError("optical path length must be positive")

    def absorbance(self, concentration: float) -> float:
        """Absorbance of a solution at ``concentration`` mol/L."""
        if concentration < 0:
            raise AssayError(f"concentration must be >= 0, got {concentration}")
        return self.epsilon * concentration * self.path_length_cm

    def concentration(self, absorbance: float) -> float:
        """Invert Beer-Lambert (valid in the linear range)."""
        if absorbance < 0:
            raise AssayError(f"absorbance must be >= 0, got {absorbance}")
        return absorbance / (self.epsilon * self.path_length_cm)


@dataclass(frozen=True)
class Photodiode:
    """Transmitted-light detector with multiplicative readout noise.

    ``noise_fraction`` is the 1-sigma relative error on the transmitted
    intensity; 0 gives an ideal detector.
    """

    incident_intensity: float = 1.0
    noise_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.incident_intensity <= 0:
            raise AssayError("incident intensity must be positive")
        if self.noise_fraction < 0:
            raise AssayError("noise fraction must be >= 0")

    def transmitted(self, absorbance: float, seed: RngLike = None) -> float:
        """Measured transmitted intensity for a given true absorbance."""
        ideal = self.incident_intensity * 10.0 ** (-absorbance)
        if self.noise_fraction == 0.0:
            return ideal
        rng = make_rng(seed)
        noisy = ideal * (1.0 + self.noise_fraction * rng.standard_normal())
        return max(noisy, 1e-12 * self.incident_intensity)

    def absorbance_from(self, transmitted: float) -> float:
        """Recover absorbance from a transmitted-intensity reading."""
        if transmitted <= 0:
            raise AssayError("transmitted intensity must be positive")
        return float(np.log10(self.incident_intensity / transmitted))


class OpticalDetector:
    """End-to-end measurement: droplet chemistry → measured absorbance."""

    def __init__(
        self,
        optics: Optional[BeerLambert] = None,
        photodiode: Optional[Photodiode] = None,
        species: str = Species.QUINONEIMINE,
    ):
        self.optics = optics or BeerLambert()
        self.photodiode = photodiode or Photodiode()
        self.species = species

    def measure(self, contents: dict, seed: RngLike = None) -> float:
        """Measured absorbance of a droplet's contents at 545 nm."""
        true_absorbance = self.optics.absorbance(
            contents.get(self.species, 0.0)
        )
        reading = self.photodiode.transmitted(true_absorbance, seed=seed)
        return self.photodiode.absorbance_from(reading)
