"""Bioassay layer: Trinder chemistry, detection, chip specs and execution.

* :mod:`repro.assays.chemistry` — Michaelis-Menten cascade simulation of
  Trinder's reaction (Section 7);
* :mod:`repro.assays.detection` — Beer-Lambert / LED-photodiode optics;
* :mod:`repro.assays.library` — the glucose / lactate / glutamate /
  pyruvate diagnostics panel;
* :mod:`repro.assays.chipspec` — the Figure 11 fabricated chip and the
  Figure 12 DTMB(2,6) redesign (252 primaries, 108 used, 91 spares);
* :mod:`repro.assays.runner` — end-to-end assay execution, repair-aware.
"""

from repro.assays.chemistry import (
    MichaelisMentenStep,
    ReactionCascade,
    Species,
    trinder_cascade,
)
from repro.assays.chipspec import (
    PAPER_PRIMARY_COUNT,
    PAPER_SPARE_COUNT,
    PAPER_USED_COUNT,
    DiagnosticsChip,
    fabricated_chip,
    redesigned_chip,
)
from repro.assays.detection import BeerLambert, OpticalDetector, Photodiode
from repro.assays.library import (
    GLUCOSE_ASSAY,
    GLUTAMATE_ASSAY,
    LACTATE_ASSAY,
    PANEL,
    PYRUVATE_ASSAY,
    AssaySpec,
    assay_by_analyte,
)
from repro.assays.runner import (
    AssayResult,
    CalibrationCurve,
    MultiplexedRunner,
    run_assay,
)

__all__ = [
    "Species",
    "MichaelisMentenStep",
    "ReactionCascade",
    "trinder_cascade",
    "BeerLambert",
    "Photodiode",
    "OpticalDetector",
    "AssaySpec",
    "PANEL",
    "GLUCOSE_ASSAY",
    "LACTATE_ASSAY",
    "GLUTAMATE_ASSAY",
    "PYRUVATE_ASSAY",
    "assay_by_analyte",
    "DiagnosticsChip",
    "fabricated_chip",
    "redesigned_chip",
    "PAPER_USED_COUNT",
    "PAPER_PRIMARY_COUNT",
    "PAPER_SPARE_COUNT",
    "AssayResult",
    "CalibrationCurve",
    "run_assay",
    "MultiplexedRunner",
]
