"""Zero-dependency metrics registry with Prometheus text exposition.

The registry holds three instrument kinds — counters, gauges, and
fixed-bucket histograms — each optionally labelled.  Values are plain
floats guarded by one lock per registry; there is no background thread
and no external dependency.

Two usage styles coexist:

* **direct instrumentation** — call ``counter.inc()`` / ``hist.observe()``
  at the event site (the serve layer times requests this way);
* **collectors** — a callable registered via
  :meth:`MetricsRegistry.register_collector` runs at scrape time and
  ``set()``s instrument values from an existing stats object.  This is
  how the per-layer stats dataclasses (``ResilienceStats``,
  ``StoreStats``, ``ScreenStats``, the coalescing tallies) are folded in
  without double-counting: the stats objects stay the single source of
  truth and ``/stats``, manifests, and ``GET /metrics`` all render the
  same numbers.

Collectors duck-type over the objects they read (``as_dict()`` /
attributes); this module imports nothing from the rest of ``repro`` so
low-level modules may import it freely.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "engine_collector",
    "server_collector",
]

LabelValues = Tuple[str, ...]

_VALID_FIRST = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_VALID_REST = _VALID_FIRST | set("0123456789")


def _check_name(name: str) -> str:
    if not name or name[0] not in _VALID_FIRST or any(
        c not in _VALID_REST for c in name
    ):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_suffix(names: Sequence[str], values: LabelValues) -> str:
    if not names:
        return ""
    parts = ", ".join(
        f'{n}="{_escape_label(str(v))}"' for n, v in zip(names, values)
    )
    return "{" + parts + "}"


class _Instrument:
    """Common labelled-value plumbing for counters and gauges."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        self._values: Dict[LabelValues, float] = {}
        self._lock = threading.Lock()
        if not self.labelnames:
            self._values[()] = 0.0

    def _key(self, labels: Mapping[str, object]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: labels {sorted(labels)} != "
                f"declared {sorted(self.labelnames)}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def samples(self) -> List[Tuple[str, str, float]]:
        """[(name, label_suffix, value)] for the text encoder."""
        with self._lock:
            items = sorted(self._values.items())
        return [
            (self.name, _label_suffix(self.labelnames, key), value)
            for key, value in items
        ]


class Counter(_Instrument):
    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(amount)

    def set(self, value: float, **labels: object) -> None:
        # Collectors sync counters from monotone stats fields; never let a
        # scrape move one backwards (a racing reader could see a dip).
        key = self._key(labels)
        with self._lock:
            if float(value) >= self._values.get(key, 0.0):
                self._values[key] = float(value)


class Gauge(_Instrument):
    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(amount)

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)


class Histogram:
    """Fixed-bucket histogram (cumulative ``le`` buckets, Prometheus style)."""

    kind = "histogram"
    DEFAULT_BUCKETS = (
        0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
    )

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Optional[Sequence[float]] = None,
        labelnames: Sequence[str] = (),
    ):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        edges = tuple(sorted(buckets if buckets is not None
                             else self.DEFAULT_BUCKETS))
        if not edges:
            raise ValueError(f"{name}: histogram needs at least one bucket")
        self.buckets = edges
        self._lock = threading.Lock()
        self._counts: Dict[LabelValues, List[int]] = {}
        self._sums: Dict[LabelValues, float] = {}
        if not self.labelnames:
            self._counts[()] = [0] * (len(edges) + 1)
            self._sums[()] = 0.0

    def _key(self, labels: Mapping[str, object]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: labels {sorted(labels)} != "
                f"declared {sorted(self.labelnames)}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.setdefault(
                key, [0] * (len(self.buckets) + 1)
            )
            self._sums[key] = self._sums.get(key, 0.0) + float(value)
            for i, edge in enumerate(self.buckets):
                if value <= edge:
                    counts[i] += 1
                    return
            counts[-1] += 1

    def count(self, **labels: object) -> int:
        with self._lock:
            return sum(self._counts.get(self._key(labels), ()))

    def sum(self, **labels: object) -> float:
        with self._lock:
            return self._sums.get(self._key(labels), 0.0)

    def samples(self) -> List[Tuple[str, str, float]]:
        with self._lock:
            items = sorted(self._counts.items())
            sums = dict(self._sums)
        out: List[Tuple[str, str, float]] = []
        for key, counts in items:
            cumulative = 0
            for edge, n in zip(self.buckets, counts):
                cumulative += n
                suffix = _label_suffix(
                    self.labelnames + ("le",), key + (_format_value(edge),)
                )
                out.append((self.name + "_bucket", suffix, float(cumulative)))
            cumulative += counts[-1]
            inf_suffix = _label_suffix(
                self.labelnames + ("le",), key + ("+Inf",)
            )
            out.append((self.name + "_bucket", inf_suffix, float(cumulative)))
            plain = _label_suffix(self.labelnames, key)
            out.append((self.name + "_sum", plain, sums.get(key, 0.0)))
            out.append((self.name + "_count", plain, float(cumulative)))
        return out


class MetricsRegistry:
    """A named collection of instruments with one text encoder.

    Instrument accessors are idempotent: asking for an existing name
    returns the existing instrument (kind and labels must match), so
    collectors can declare their instruments on every scrape.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name, help, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"{name}: registered as {type(existing).__name__}, "
                        f"requested {cls.__name__}"
                    )
                return existing
            instrument = cls(name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames=labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, buckets=buckets, labelnames=labelnames
        )

    def register_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Run ``collector(self)`` before every render/as_dict."""
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector(self)

    def _sorted_instruments(self) -> Iterable[object]:
        with self._lock:
            return [self._instruments[k] for k in sorted(self._instruments)]

    def render(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        self.collect()
        lines: List[str] = []
        for inst in self._sorted_instruments():
            if inst.help:
                lines.append(f"# HELP {inst.name} {inst.help}")
            lines.append(f"# TYPE {inst.name} {inst.kind}")
            for name, suffix, value in inst.samples():
                lines.append(f"{name}{suffix} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def as_dict(self) -> Dict[str, float]:
        """Flat ``{name{labels}: value}`` mapping for tests and JSON."""
        self.collect()
        out: Dict[str, float] = {}
        for inst in self._sorted_instruments():
            for name, suffix, value in inst.samples():
                out[name + suffix] = value
        return out


def _set_from_dict(registry: MetricsRegistry, prefix: str, help_prefix: str,
                   values: Mapping[str, object]) -> None:
    for field, value in values.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        registry.counter(
            f"{prefix}_{field}_total", f"{help_prefix} {field} count"
        ).set(float(value))


def engine_collector(engine) -> Callable[[MetricsRegistry], None]:
    """Collector mirroring a ``SweepEngine``'s live stats objects.

    Reads (duck-typed): ``cache_hits`` / ``cache_misses`` /
    ``runs_requested`` / ``runs_effective``, ``resilience``
    (``ResilienceStats``), ``store_stats`` (``StoreStats``), and
    ``screen_stats`` (``ScreenStats``).  Every scrape re-reads the live
    objects, so ``/metrics`` can never drift from ``/stats`` or manifest
    provenance.
    """

    def collect(registry: MetricsRegistry) -> None:
        registry.counter(
            "repro_engine_cache_hits_total",
            "Point-cache hits across the engine lifetime",
        ).set(float(engine.cache_hits))
        registry.counter(
            "repro_engine_cache_misses_total",
            "Point-cache misses across the engine lifetime",
        ).set(float(engine.cache_misses))
        registry.counter(
            "repro_engine_runs_requested_total",
            "Monte-Carlo runs requested from the engine",
        ).set(float(engine.runs_requested))
        registry.counter(
            "repro_engine_runs_effective_total",
            "Monte-Carlo runs actually spent (adaptive stops may save runs)",
        ).set(float(engine.runs_effective))
        _set_from_dict(
            registry, "repro_resilience", "Resilience incident",
            engine.resilience.as_dict(),
        )
        _set_from_dict(
            registry, "repro_cachestore", "Cache transport",
            engine.store_stats.as_dict(),
        )
        _set_from_dict(
            registry, "repro_screen", "Screening-funnel",
            engine.screen_stats.as_dict(),
        )

    return collect


def server_collector(server) -> Callable[[MetricsRegistry], None]:
    """Collector mirroring a ``ReproServer``'s request/coalescing tallies.

    Reads (duck-typed): ``requests`` / ``errors`` / ``rejected`` /
    ``active`` counters and the ``points`` / ``bundles``
    ``CoalescingMap`` tallies (``leaders`` / ``followers`` /
    ``promotions`` / ``len()``).
    """

    def collect(registry: MetricsRegistry) -> None:
        registry.counter(
            "repro_http_requests_total", "HTTP requests accepted",
        ).set(float(server.requests))
        registry.counter(
            "repro_http_errors_total", "HTTP requests that returned 5xx",
        ).set(float(server.errors))
        registry.counter(
            "repro_http_rejected_total",
            "HTTP requests rejected with 503 (saturation or drain)",
        ).set(float(server.rejected))
        registry.gauge(
            "repro_http_active_requests", "Requests currently in flight",
        ).set(float(server.active))
        computed = registry.counter(
            "repro_coalesce_computed_total",
            "Computations led (single-flight leaders)", labelnames=("map",),
        )
        coalesced = registry.counter(
            "repro_coalesce_followers_total",
            "Requests served by joining an in-flight computation",
            labelnames=("map",),
        )
        promoted = registry.counter(
            "repro_coalesce_promotions_total",
            "Follower promotions after a leader died", labelnames=("map",),
        )
        inflight = registry.gauge(
            "repro_coalesce_inflight", "In-flight coalesced computations",
            labelnames=("map",),
        )
        for label, cmap in (("points", server.points),
                            ("bundles", server.bundles)):
            computed.set(float(cmap.leaders), map=label)
            coalesced.set(float(cmap.followers), map=label)
            promoted.set(float(cmap.promotions), map=label)
            inflight.set(float(len(cmap)), map=label)

    return collect
