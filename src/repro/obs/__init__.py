"""Unified observability layer: metrics, tracing, events, profiling.

Everything in this package is **out-of-band** telemetry: nothing here may
influence Monte-Carlo results, cache keys, stable digests, or artifact
bytes.  Fixed-seed bundles must stay byte-identical with telemetry off,
armed, or crashing — the tests in ``tests/test_obs.py`` enforce that.

Modules
-------
``metrics``
    Zero-dependency :class:`MetricsRegistry` (counters, gauges,
    fixed-bucket histograms) with a Prometheus text encoder, plus
    collector helpers that fold the per-layer stats objects
    (``ResilienceStats``, ``StoreStats``, ``ScreenStats``, the serve
    coalescing tallies) into one registry.
``trace``
    Span tracer for the unit lifecycle, exported as Chrome trace-event
    JSON (open in Perfetto / ``chrome://tracing``).
``events``
    Structured NDJSON event log on top of stdlib ``logging`` under the
    ``repro.*`` hierarchy.
``profile``
    Thread-local phase timers (wall + CPU) used by compute workers and
    the functional funnel.
"""

from . import events, metrics, profile, trace
from .events import configure_logging, get_logger, log_event
from .metrics import MetricsRegistry
from .trace import Tracer, validate_trace

__all__ = [
    "MetricsRegistry",
    "Tracer",
    "configure_logging",
    "events",
    "get_logger",
    "log_event",
    "metrics",
    "profile",
    "trace",
    "validate_trace",
]
