"""Thread-local phase timers (wall + CPU) for compute workers.

Compute units arm a :func:`capture` around the whole computation;
interior code marks phases with :func:`phase`.  When no capture is
armed on the thread, :func:`phase` is a no-op costing one attribute
lookup — the functional funnel keeps its hooks in place permanently
and pays nothing on the plain matching path.

Captured timings ride the compute unit's wire stats dict under
``time_``-prefixed keys, are attributed per point by the scheduler into
``PointRecord.timings``, and are summed into the manifest's
``engine.timings`` block.  Like every other telemetry channel they are
manifest-only: timings never enter results, cache keys, or stable
digests.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = ["capture", "phase", "merge_into"]

_tls = threading.local()


@contextmanager
def capture() -> Iterator[Dict[str, float]]:
    """Collect phase timings on this thread; nested captures shadow."""
    acc: Dict[str, float] = {}
    prev = getattr(_tls, "acc", None)
    _tls.acc = acc
    try:
        yield acc
    finally:
        _tls.acc = prev


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Accumulate wall and CPU seconds for ``name`` into the active
    capture (no-op when none is armed)."""
    acc: Optional[Dict[str, float]] = getattr(_tls, "acc", None)
    if acc is None:
        yield
        return
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    try:
        yield
    finally:
        wall_key = f"{name}_wall_s"
        cpu_key = f"{name}_cpu_s"
        acc[wall_key] = acc.get(wall_key, 0.0) + (time.perf_counter() - wall0)
        acc[cpu_key] = acc.get(cpu_key, 0.0) + (time.process_time() - cpu0)


def merge_into(total: Dict[str, float], part: Dict[str, float]) -> None:
    """Sum ``part`` into ``total`` key-wise (both are phase dicts)."""
    for key, value in part.items():
        total[key] = total.get(key, 0.0) + float(value)
