"""Span tracing for the unit lifecycle, exported as Chrome trace events.

A :class:`Tracer` collects *complete* spans (``ph == "X"``) and
*instant* events (``ph == "i"``) with microsecond timestamps relative
to the tracer's creation.  :meth:`Tracer.to_dict` emits the Chrome
trace-event JSON object format, so a written file opens directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

Span identity is deterministic: names, categories, and args derive from
logical-unit digests (the same ``unit_digest`` the ``FaultSchedule``
keys on), point indices, and fold counters — never from wall-clock
values.  :meth:`Tracer.span_tree` strips the volatile fields
(timestamps, durations, pids, tids) and returns the canonical event
sequence, which is byte-for-byte reproducible for a fixed seed on a
deterministic executor; ``tests/test_obs.py`` pins that.

Tracers are cheap and thread-safe; an unused tracer costs one lock and
a list.  Every call site treats ``tracer=None`` as "off" with zero
overhead.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TRACE_SCHEMA", "Tracer", "span_signature", "validate_trace"]

TRACE_SCHEMA = 1

# Volatile per-event fields excluded from the canonical span tree.
_VOLATILE = ("ts", "dur", "pid", "tid")


class Tracer:
    """Collects Chrome trace events with deterministic identities."""

    def __init__(self, *, pid: Optional[int] = None) -> None:
        self._t0 = time.perf_counter()
        self._pid = os.getpid() if pid is None else int(pid)
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []

    def now_us(self) -> float:
        """Microseconds since this tracer was created."""
        return (time.perf_counter() - self._t0) * 1e6

    def _append(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)

    def complete(
        self,
        name: str,
        start_us: float,
        duration_us: float,
        *,
        cat: str = "engine",
        **args: Any,
    ) -> None:
        """Record a complete span (``ph == "X"``)."""
        self._append({
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": round(float(start_us), 3),
            "dur": round(max(float(duration_us), 0.0), 3),
            "pid": self._pid,
            "tid": threading.get_ident() & 0x7FFFFFFF,
            "args": dict(args),
        })

    def instant(self, name: str, *, cat: str = "engine", **args: Any) -> None:
        """Record an instant event (``ph == "i"``, thread scope)."""
        self._append({
            "name": name,
            "cat": cat,
            "ph": "i",
            "ts": round(self.now_us(), 3),
            "s": "t",
            "pid": self._pid,
            "tid": threading.get_ident() & 0x7FFFFFFF,
            "args": dict(args),
        })

    @contextmanager
    def span(self, name: str, *, cat: str = "engine",
             **args: Any) -> Iterator[None]:
        start = self.now_us()
        try:
            yield
        finally:
            self.complete(name, start, self.now_us() - start,
                          cat=cat, **args)

    def extend(self, events: List[Dict[str, Any]]) -> None:
        """Merge events recorded elsewhere (e.g. a worker's tracer)."""
        with self._lock:
            self._events.extend(events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            events = [dict(ev) for ev in self._events]
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": TRACE_SCHEMA, "producer": "repro.obs"},
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=None,
                      separators=(",", ":"), sort_keys=True)
            fh.write("\n")

    def span_tree(self) -> List[Dict[str, Any]]:
        """Canonical, timestamp-free event sequence (see module docs)."""
        return span_signature(self.to_dict())


def span_signature(trace: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Strip volatile fields from a trace dict's events.

    Returns the events in recorded (program) order with only their
    deterministic identity: name, category, phase, and args.  Two runs
    of the same seed on a deterministic executor produce equal
    signatures.
    """
    out = []
    for ev in trace.get("traceEvents", []):
        keep = {k: v for k, v in ev.items()
                if k not in _VOLATILE and k != "s"}
        out.append(keep)
    return out


def validate_trace(trace: Any) -> List[Dict[str, Any]]:
    """Validate Chrome trace-event object-format structure.

    Raises ``ValueError`` on the first malformed field; returns the
    event list on success so callers can chain checks.
    """
    if not isinstance(trace, dict):
        raise ValueError("trace must be a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace.traceEvents must be a list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for field, types in (
            ("name", str), ("cat", str), ("ph", str),
            ("ts", (int, float)), ("pid", int), ("tid", int),
        ):
            if not isinstance(ev.get(field), types):
                raise ValueError(
                    f"traceEvents[{i}].{field} missing or mistyped: "
                    f"{ev.get(field)!r}"
                )
        if ev["ph"] not in ("X", "i", "B", "E", "M"):
            raise ValueError(f"traceEvents[{i}].ph unknown: {ev['ph']!r}")
        if ev["ph"] == "X" and not isinstance(ev.get("dur"), (int, float)):
            raise ValueError(f"traceEvents[{i}] X-span missing dur")
        if ev["ts"] < 0 or (ev["ph"] == "X" and ev["dur"] < 0):
            raise ValueError(f"traceEvents[{i}] negative timestamp")
        if "args" in ev and not isinstance(ev["args"], dict):
            raise ValueError(f"traceEvents[{i}].args must be an object")
    return events
