"""Structured event logging under the ``repro.*`` logger hierarchy.

Every module logs through ``logging.getLogger("repro.<layer>")`` —
scheduler, resilience, cachestore, serve — and emits *events* via
:func:`log_event`, which attaches a machine-readable event name plus
key/value fields to an ordinary log record.  Two formatters render
them:

* text (default): ``LEVEL logger: message [event k=v ...]``
* NDJSON (``--log-json``): one JSON object per line with a stable
  schema (``ts``, ``level``, ``logger``, ``event``, ``msg``,
  ``fields``) validated by :func:`validate_event_line`.

:func:`configure_logging` installs one handler on the ``repro`` root
logger; child loggers propagate into it.  Without configuration,
stdlib's last-resort handler still prints WARNING+ messages, so
incident events (pool rebuilds, quarantines, remote errors) surface
even in unconfigured runs while routine events stay silent.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, Dict, IO, Optional

__all__ = [
    "EVENT_SCHEMA",
    "configure_logging",
    "ensure_configured",
    "get_logger",
    "log_event",
    "validate_event_line",
]

EVENT_SCHEMA = 1

ROOT = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def get_logger(name: str) -> logging.Logger:
    """Logger under the ``repro.*`` hierarchy (idempotent)."""
    if name == ROOT or name.startswith(ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT}.{name}")


def log_event(
    logger: logging.Logger,
    event: str,
    *,
    level: int = logging.INFO,
    msg: Optional[str] = None,
    **fields: Any,
) -> None:
    """Emit a structured event through ``logger``.

    ``event`` is the machine-readable name (``unit_retry``,
    ``checkpoint_resume``, ``quarantine``, ``remote_error``,
    ``pool_rebuild``, ``leader_election``, ...); ``fields`` carry its
    payload.  The human-readable ``msg`` defaults to the event name.
    """
    if not logger.isEnabledFor(level):
        return
    logger.log(
        level,
        msg if msg is not None else event,
        extra={"repro_event": event, "repro_fields": fields},
    )


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record — the NDJSON event-log schema."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "schema": EVENT_SCHEMA,
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": getattr(record, "repro_event", None),
            "msg": record.getMessage(),
            "fields": _jsonable(getattr(record, "repro_fields", {})),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=repr)


class TextEventFormatter(logging.Formatter):
    """Human-readable line that still shows the event name and fields."""

    def format(self, record: logging.LogRecord) -> str:
        base = (
            f"{record.levelname.lower()} {record.name}: "
            f"{record.getMessage()}"
        )
        event = getattr(record, "repro_event", None)
        fields = getattr(record, "repro_fields", None)
        if event and record.getMessage() != event:
            base += f" [{event}]"
        if fields:
            kv = " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
            base += f" ({kv})"
        if record.exc_info:
            base += "\n" + self.formatException(record.exc_info)
        return base


def _jsonable(fields: Any) -> Any:
    try:
        json.dumps(fields)
        return fields
    except (TypeError, ValueError):
        return {str(k): repr(v) for k, v in dict(fields).items()}


def configure_logging(
    level: str = "info",
    *,
    json_lines: bool = False,
    stream: Optional[IO[str]] = None,
    path: Optional[str] = None,
) -> logging.Handler:
    """Install one handler on the ``repro`` root logger.

    Replaces any handler a previous call installed (idempotent across
    CLI invocations and tests).  ``path`` wins over ``stream``; the
    default sink is stderr.  Returns the installed handler.
    """
    root = logging.getLogger(ROOT)
    for handler in list(root.handlers):
        root.removeHandler(handler)
        try:
            handler.close()
        except (OSError, ValueError):
            pass
    if path is not None:
        handler: logging.Handler = logging.FileHandler(
            path, mode="w", encoding="utf-8"
        )
    else:
        handler = logging.StreamHandler(
            stream if stream is not None else sys.stderr
        )
    handler.setFormatter(
        JsonLineFormatter() if json_lines else TextEventFormatter()
    )
    root.addHandler(handler)
    root.setLevel(_LEVELS.get(str(level).lower(), logging.INFO))
    root.propagate = False
    return handler


def ensure_configured(level: str = "info", *,
                      json_lines: bool = False) -> None:
    """Configure logging only if nothing has configured it yet."""
    root = logging.getLogger(ROOT)
    if not root.handlers:
        configure_logging(level, json_lines=json_lines)


def validate_event_line(line: str) -> Dict[str, Any]:
    """Parse and validate one NDJSON event-log line.

    Raises ``ValueError`` on malformed lines; returns the parsed
    object.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"event line is not JSON: {line!r}") from exc
    if not isinstance(payload, dict):
        raise ValueError("event line must be a JSON object")
    if payload.get("schema") != EVENT_SCHEMA:
        raise ValueError(f"unknown event schema: {payload.get('schema')!r}")
    for field, types in (
        ("ts", (int, float)), ("level", str), ("logger", str), ("msg", str),
    ):
        if not isinstance(payload.get(field), types):
            raise ValueError(f"event field {field} missing or mistyped")
    if payload["level"] not in _LEVELS:
        raise ValueError(f"unknown level {payload['level']!r}")
    if not payload["logger"].startswith(ROOT):
        raise ValueError(f"logger outside repro.*: {payload['logger']!r}")
    event = payload.get("event")
    if event is not None and not isinstance(event, str):
        raise ValueError("event name must be a string or null")
    if not isinstance(payload.get("fields", {}), dict):
        raise ValueError("fields must be an object")
    return payload
