"""repro: defect-tolerant digital microfluidic biochips.

A from-scratch reproduction of Su, Chakrabarty & Pamula, "Yield Enhancement
of Digital Microfluidics-Based Biochips Using Space Redundancy and Local
Reconfiguration" (DATE 2005).

The library models hexagonal- and square-electrode biochip arrays, the
DTMB(s, p) interstitial-redundancy architectures, fault injection, local
reconfiguration by maximum bipartite matching, analytical and Monte-Carlo
yield estimation, and — as executable substrates — droplet fluidics,
droplet-based test/diagnosis, and the Trinder-reaction diagnostics panel
the paper evaluates on.

Quick start::

    from repro.designs import DTMB_2_6, build_with_primary_count
    from repro.yieldsim import YieldSimulator

    chip = build_with_primary_count(DTMB_2_6, 100).build()
    print(YieldSimulator(chip).run_survival(p=0.95, runs=10_000, seed=1))

See ``examples/`` for full walkthroughs and ``repro.experiments`` for the
drivers that regenerate every table and figure of the paper.
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
