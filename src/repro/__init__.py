"""repro: defect-tolerant digital microfluidic biochips.

A from-scratch reproduction of Su, Chakrabarty & Pamula, "Yield Enhancement
of Digital Microfluidics-Based Biochips Using Space Redundancy and Local
Reconfiguration" (DATE 2005).

The library models hexagonal- and square-electrode biochip arrays, the
DTMB(s, p) interstitial-redundancy architectures, fault injection, local
reconfiguration by maximum bipartite matching, analytical and Monte-Carlo
yield estimation, and — as executable substrates — droplet fluidics,
droplet-based test/diagnosis, and the Trinder-reaction diagnostics panel
the paper evaluates on.

Quick start::

    from repro.designs import DTMB_2_6, build_with_primary_count
    from repro.yieldsim import YieldSimulator

    chip = build_with_primary_count(DTMB_2_6, 100).build()
    print(YieldSimulator(chip).run_survival(p=0.95, runs=10_000, seed=1))

See ``examples/`` for full walkthroughs and ``repro.experiments`` for the
drivers that regenerate every table and figure of the paper.

Stable programmatic surface (import from here, not from deep modules)::

    import repro

    repro.list_experiments()             # machine-readable registry
    result = repro.run_experiment("fig9", runs=2000, seed=1)
    engine = repro.get_engine(jobs=4, cache_dir=".cache")

Deep paths keep working — ``repro.SweepEngine`` and friends resolve
lazily — but the names exported in ``__all__`` are the compatibility
contract; everything else may move between modules (as the engine split
into scheduler/executors did, with deprecation shims).
"""

from typing import TYPE_CHECKING, Optional

from repro.errors import ReproError

__version__ = "1.1.0"

__all__ = [
    "CacheStore",
    "ReproError",
    "SweepEngine",
    "__version__",
    "get_engine",
    "list_experiments",
    "run_experiment",
    "store_from_url",
]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.registry import ExperimentResult
    from repro.yieldsim.cachestore import CacheStore, store_from_url  # noqa: F401
    from repro.yieldsim.engine import SweepEngine


def get_engine(
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    shard_runs: Optional[int] = None,
    cache_url: Optional[str] = None,
) -> "SweepEngine":
    """A sweep engine with the standard execution knobs.

    The facade over the scheduler/executor split: results are
    bit-identical whatever ``jobs``/``shard_runs`` you pick,
    ``cache_dir`` makes repeated points free, and ``cache_url`` mounts
    a shared :class:`~repro.yieldsim.cachestore.CacheStore` (a path,
    ``file://``, ``http://`` or ``memory://`` URL) behind it.
    """
    from repro.yieldsim.engine import SweepEngine

    store = None
    if cache_url is not None:
        from repro.yieldsim.cachestore import store_from_url

        store = store_from_url(cache_url)
    return SweepEngine(
        jobs=jobs, cache_dir=cache_dir, shard_runs=shard_runs,
        cache_store=store,
    )


def run_experiment(name: str, **kwargs: object) -> "ExperimentResult":
    """Run one registered experiment end to end.

    ``name`` is any name or alias ``repro list`` shows; keyword arguments
    are passed to :func:`repro.experiments.registry.execute` (``runs``,
    ``seed``, ``engine``, ``options``, ``knobs``, ``stop``).
    """
    from repro.experiments import registry

    return registry.execute(name, **kwargs)


def list_experiments() -> dict:
    """The machine-readable experiment registry.

    The same payload ``repro list --json`` prints and ``repro serve``
    answers ``GET /experiments`` with.
    """
    from repro.experiments import registry

    return registry.listing()


#: Deep names resolved lazily so ``import repro`` stays light (no numpy
#: import at startup) while ``repro.SweepEngine`` keeps working.
_LAZY = {
    "SweepEngine": ("repro.yieldsim.engine", "SweepEngine"),
    "CacheStore": ("repro.yieldsim.cachestore", "CacheStore"),
    "store_from_url": ("repro.yieldsim.cachestore", "store_from_url"),
}


def __getattr__(name: str) -> object:
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value
    return value
