"""Yield-as-a-service: an asyncio HTTP layer over the sweep engine.

``repro serve`` exposes the experiment registry and the point engine over
HTTP, with three properties the library's architecture makes nearly free:

* **Digest coalescing** — every point request reduces to the engine's
  point-cache key (chip payload digest + regime + params + seed + stop
  rule).  Identical in-flight requests join one computation before any
  compute is scheduled, so a million users asking for the same fig9 point
  cost exactly one engine call (:mod:`repro.serve.coalesce`).
* **Streaming adaptive runs** — a point with an adaptive budget streams
  per-fold progress as NDJSON, driven by the scheduler's in-order fold
  hook, then ends with the exact result any offline run would produce.
* **Artifact-store backing** — full-experiment responses are the same
  bundles ``repro <name> --out`` writes, digest-verifiable against any
  local artifact manifest, and optionally persisted through
  :class:`~repro.experiments.artifacts.ArtifactRun`.

Stdlib only: :mod:`asyncio` sockets plus a minimal HTTP/1.1 handler —
no web framework, no new dependencies.
"""

from repro.serve.app import BackgroundServer, ReproServer, ServeConfig
from repro.serve.coalesce import CoalescingMap
from repro.serve.protocol import PROTOCOL_SCHEMA, BundleRequest, PointRequest

__all__ = [
    "BackgroundServer",
    "BundleRequest",
    "CoalescingMap",
    "PointRequest",
    "PROTOCOL_SCHEMA",
    "ReproServer",
    "ServeConfig",
]
