"""Digest-keyed coalescing of identical in-flight requests.

The content-addressed point cache already makes *repeated* requests free;
this map makes *concurrent* identical requests cost one computation too.
A request joins the map under its engine point-cache key (or bundle
identity digest): the first joiner becomes the **leader** and runs the
computation, everyone else becomes a **follower** and awaits the leader's
future.  Streaming consumers subscribe a queue to the entry and receive
every in-order fold event the leader's computation produces — followers
of an adaptive point see the same progress stream the leader does.

The map is single-event-loop state: ``join``/``resolve``/``fail`` run on
the loop, while :meth:`InflightEntry.publish_threadsafe` is the one
thread-safe door (the engine folds on a worker thread and pushes progress
through ``loop.call_soon_threadsafe``).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["CoalescingMap", "InflightEntry"]

#: Sentinel queued to every subscriber when the computation finishes.
_DONE = None


@dataclass
class InflightEntry:
    """One in-flight computation: a future plus progress subscribers."""

    key: str
    future: "asyncio.Future[object]"
    loop: asyncio.AbstractEventLoop
    #: requests awaiting ``future`` (the leader included)
    waiters: int = 1
    subscribers: List["asyncio.Queue[Optional[dict]]"] = field(default_factory=list)

    def subscribe(self) -> "asyncio.Queue[Optional[dict]]":
        """A queue of fold events; ``None`` marks the end of the stream."""
        queue: "asyncio.Queue[Optional[dict]]" = asyncio.Queue()
        self.subscribers.append(queue)
        return queue

    def publish_threadsafe(self, event: dict) -> None:
        """Push one progress event to every subscriber (worker thread)."""
        self.loop.call_soon_threadsafe(self._publish, event)

    def _publish(self, event: Optional[dict]) -> None:
        for queue in self.subscribers:
            queue.put_nowait(event)

    def close_stream(self) -> None:
        self._publish(_DONE)


class CoalescingMap:
    """Keyed single-flight: N identical concurrent requests, one compute.

    Counters are cumulative across the server's lifetime: ``leaders`` is
    the number of computations actually started, ``followers`` the number
    of requests that joined one instead of computing, and ``promotions``
    the number of followers re-elected as leaders after their leader died
    mid-compute (the server's handler loop drives the re-election; a
    promoted follower re-joins the map and leads a fresh entry, which is
    safe because the computation is a pure function of its key).
    """

    def __init__(self) -> None:
        self._inflight: Dict[str, InflightEntry] = {}
        self.leaders = 0
        self.followers = 0
        #: followers re-elected as leaders after their leader died
        self.promotions = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def join(self, key: str) -> Tuple[InflightEntry, bool]:
        """Join the in-flight computation for ``key``.

        Returns ``(entry, is_leader)``.  The leader must eventually call
        :meth:`resolve` or :meth:`fail` for the key, whatever happens.
        """
        entry = self._inflight.get(key)
        if entry is not None:
            entry.waiters += 1
            self.followers += 1
            return entry, False
        loop = asyncio.get_running_loop()
        entry = InflightEntry(key=key, future=loop.create_future(), loop=loop)
        self._inflight[key] = entry
        self.leaders += 1
        return entry, True

    def leave(self, entry: InflightEntry) -> None:
        """A waiter gave up (deadline, dropped connection) without a result.

        Only the waiter accounting changes: the leader keeps computing
        and the entry stays joinable — the departed client can simply ask
        again later (and will usually hit the point cache).
        """
        if entry.waiters > 0:
            entry.waiters -= 1

    def _pop(self, entry: InflightEntry) -> None:
        current = self._inflight.get(entry.key)
        if current is entry:
            del self._inflight[entry.key]

    def resolve(self, entry: InflightEntry, result: object) -> None:
        """Deliver the leader's result to every follower and subscriber."""
        self._pop(entry)
        if not entry.future.done():
            entry.future.set_result(result)
        entry.close_stream()

    def fail(self, entry: InflightEntry, exc: BaseException) -> None:
        """Propagate the leader's failure; followers re-raise it."""
        self._pop(entry)
        if not entry.future.done():
            if entry.waiters:
                entry.future.set_exception(exc)
            else:
                # Nobody will ever await this future; cancelling instead
                # of setting the exception avoids the "exception was
                # never retrieved" warning at GC time.
                entry.future.cancel()
        entry.close_stream()
