"""The ``repro serve`` asyncio HTTP application.

Stdlib only: ``asyncio.start_server`` plus a deliberately minimal
HTTP/1.1 handler (request line, headers, Content-Length body; one request
per connection, ``Connection: close``).  Endpoints::

    GET  /                      service info + endpoint index
    GET  /health                liveness probe
    GET  /experiments           machine-readable registry (repro list --json)
    GET  /experiments/{name}    one experiment descriptor
    POST /experiments/{name}    run a full experiment -> artifact bundle
    POST /points                compute/fetch one sweep point
    GET  /stats                 coalescing + engine cache/budget counters
    GET  /metrics               the same counters in Prometheus text format

Request coalescing
------------------
A ``POST /points`` body resolves to an :class:`~repro.yieldsim.scheduler.
EnginePoint` whose engine point-cache key is its content identity.  The
:class:`~repro.serve.coalesce.CoalescingMap` single-flights concurrent
identical requests on that key *before any compute is scheduled*: one
leader computes (through the shared engine, so the on-disk point cache
and all bit-identity guarantees apply), every concurrent duplicate awaits
the same future.  Full-experiment requests coalesce the same way on a
digest of their canonical parameters.

Adaptive points with ``"stream": true`` respond as NDJSON: an ``accepted``
line, one ``fold`` line per in-order batch fold (driven by the
scheduler's fold hook), then a final ``result`` line identical to the
non-streaming body.

Compute runs on a worker thread (`asyncio.to_thread`) under a process-wide
lock: the engine itself parallelizes across its executor, and the lock
keeps the shared engine's accounting coherent.  The event loop stays free
to accept, coalesce and stream while a computation is running.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import logging
import signal
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.chip.biochip import Biochip
from repro.designs.catalog import ALL_DESIGNS
from repro.designs.interstitial import build_with_primary_count
from repro.errors import ExperimentError, ReproError, ServeError
from repro.experiments import registry
from repro.experiments.artifacts import ArtifactRun, bundle_payload
from repro.obs.events import ensure_configured, get_logger, log_event
from repro.obs.metrics import MetricsRegistry, engine_collector, server_collector
from repro.obs.trace import Tracer
from repro.serve.coalesce import CoalescingMap, InflightEntry
from repro.serve.protocol import (
    PROTOCOL_SCHEMA,
    BundleRequest,
    PointRequest,
    error_payload,
    experiment_listing,
)
from repro.yieldsim.cachestore import (
    SharedFSStore,
    content_digest,
    store_from_url,
    valid_key,
)
from repro.yieldsim.defects import family_from_spec
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.kernel import PointSpec
from repro.yieldsim.resilience import RetryPolicy
from repro.yieldsim.scheduler import EnginePoint, chip_payload, payload_digest
from repro.yieldsim.stats import YieldEstimate, wilson_half_width

__all__ = ["ServeConfig", "ReproServer", "BackgroundServer", "serve_forever"]

_log = get_logger("serve")

_HTTP_REASONS = {
    200: "OK",
    201: "Created",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class ServeConfig:
    """Server settings — the CLI's shared engine options plus HTTP knobs."""

    host: str = "127.0.0.1"
    port: int = 8765
    jobs: int = 1
    cache_dir: Optional[str] = None
    shard_runs: Optional[int] = None
    #: artifact directory full-experiment bundles are persisted into
    #: (None serves bundles without writing them)
    out_dir: Optional[str] = None
    #: hard per-request Monte-Carlo ceiling (a public server must bound
    #: what one request can spend)
    max_runs: int = 1_000_000
    max_body_bytes: int = 1 << 20
    #: retry policy for the engine's compute units (None = fail fast)
    retry: Optional[RetryPolicy] = None
    #: journal fold checkpoints for batched points (needs cache_dir)
    checkpoint: bool = False
    #: deadline in seconds for a non-streaming compute request; on expiry
    #: the client gets 503 + Retry-After while the computation keeps
    #: running (a later identical request hits the cache).  None = wait.
    request_timeout: Optional[float] = None
    #: saturation bound: a request that would *start* a new computation
    #: while this many are already in flight is refused with 503 +
    #: Retry-After (joining an existing computation is always allowed).
    max_inflight: int = 32
    #: Retry-After hint (seconds) sent with every 503
    retry_after_s: float = 1.0
    #: how long shutdown waits for in-flight requests to finish draining
    drain_timeout: float = 10.0
    #: remote cache-store URL the *engine* reads through to
    #: (``--cache-url``: another server's /cache endpoint, or a shared
    #: filesystem path)
    cache_url: Optional[str] = None
    #: directory of a content-addressed object tree this server *serves*
    #: under ``/cache/objects/{digest}`` (the ``repro cache-serve``
    #: entry point; also mountable on a full ``repro serve``)
    cache_objects: Optional[str] = None


def _normalize_design(name: str) -> str:
    return "".join(ch for ch in name.lower() if ch.isalnum())


#: catalog lookup tolerant of CLI-ish spellings: "DTMB(2,6)", "dtmb-2-6",
#: "dtmb26" all resolve to the same design.
_DESIGNS_NORMALIZED = {_normalize_design(d.name): d for d in ALL_DESIGNS}


class ReproServer:
    """Routing + request handling over one shared engine.

    ``engine`` is injectable so tests can count compute units with an
    :class:`~repro.yieldsim.executors.InlineExecutor` or pre-warm a cache;
    by default it is built from the config's engine options.
    """

    #: how many times a dead leader's computation is re-led by a follower
    #: before the failure is answered as-is
    MAX_PROMOTIONS = 2

    def __init__(self, config: ServeConfig, engine: Optional[SweepEngine] = None):
        self.config = config
        self.engine = engine if engine is not None else SweepEngine(
            jobs=config.jobs,
            cache_dir=config.cache_dir,
            shard_runs=config.shard_runs,
            retry=config.retry,
            checkpoint=config.checkpoint,
            cache_store=(
                store_from_url(config.cache_url)
                if config.cache_url is not None
                else None
            ),
        )
        #: the object tree served under /cache/objects (None = not mounted)
        self.object_store: Optional[SharedFSStore] = (
            SharedFSStore(config.cache_objects)
            if config.cache_objects is not None
            else None
        )
        #: serializes engine compute; the engine parallelizes internally
        self._compute_lock = threading.Lock()
        self.points = CoalescingMap()
        self.bundles = CoalescingMap()
        #: (normalized design, n) -> built chip, and payload digest -> chip
        self._chips: Dict[Tuple[str, int], Tuple[Biochip, str]] = {}
        self._chips_by_digest: Dict[str, Biochip] = {}
        self.requests = 0
        self.errors = 0
        #: requests refused with 503 (saturation) or expired (deadline)
        self.rejected = 0
        #: connections currently inside a handler (shutdown drains these)
        self.active = 0
        #: one registry; collectors re-read the live stats objects at
        #: scrape time so /metrics can never drift from /stats
        self.metrics = MetricsRegistry()
        self.metrics.register_collector(engine_collector(self.engine))
        self.metrics.register_collector(server_collector(self))
        self._request_seconds = self.metrics.histogram(
            "repro_http_request_seconds",
            "Wall seconds spent answering one HTTP request",
        )

    # -- request resolution ----------------------------------------------------
    def _chip_for(self, request: PointRequest) -> Tuple[Biochip, str]:
        """The (chip, payload digest) a point request addresses."""
        if request.chip_digest is not None:
            chip = self._chips_by_digest.get(request.chip_digest)
            if chip is None:
                raise ServeError(
                    f"unknown chip_digest {request.chip_digest!r}: this "
                    "server has not built that chip yet (address it by "
                    "design + n first; every point response includes the "
                    "digest)"
                )
            return chip, request.chip_digest
        key = (_normalize_design(request.design), int(request.n))
        built = self._chips.get(key)
        if built is None:
            spec = _DESIGNS_NORMALIZED.get(key[0])
            if spec is None:
                known = ", ".join(d.name for d in ALL_DESIGNS)
                raise ServeError(
                    f"unknown design {request.design!r}; catalog has: {known}"
                )
            chip = build_with_primary_count(spec, request.n).build()
            digest = payload_digest(chip_payload(chip))
            built = (chip, digest)
            self._chips[key] = built
            self._chips_by_digest[digest] = chip
        return built

    def _task_for(self, request: PointRequest) -> Tuple[EnginePoint, str]:
        """Resolve a validated request into an engine task + chip digest."""
        if request.runs > self.config.max_runs:
            raise ServeError(
                f"runs {request.runs} exceeds this server's ceiling "
                f"({self.config.max_runs})"
            )
        chip, digest = self._chip_for(request)
        criterion = None
        if request.criterion is not None:
            from repro.functional import criterion_from_spec

            criterion = criterion_from_spec(request.criterion)
        if request.defect_model is not None:
            family = family_from_spec(request.defect_model)
            model = family(chip, request.param)
            spec = PointSpec.from_model(
                model, request.runs, request.seed, param=request.param
            )
            if criterion is not None:
                spec = PointSpec(
                    spec.kind, spec.param, spec.runs, spec.seed, spec.model,
                    criterion,
                )
        else:
            spec = PointSpec(
                request.kind, request.param, request.runs, request.seed,
                criterion=criterion,
            )
        task = EnginePoint(chip, spec, None, request.stop_rule())
        task.spec.validate(len(chip))
        return task, digest

    # -- compute (leader side) -------------------------------------------------
    async def _lead_point(
        self, entry: InflightEntry, task: EnginePoint, trace: bool = False
    ) -> None:
        """Compute ``task`` and settle ``entry`` with ``(estimate, trace)``.

        When the leading request asked for a trace, a fresh
        :class:`~repro.obs.trace.Tracer` is attached to the shared engine
        for the duration of the computation — safe because engine compute
        is serialized under ``_compute_lock`` — and its Chrome-trace dict
        rides the resolved value (``None`` otherwise).  Telemetry is
        out-of-band: the estimate is bit-identical either way.
        """
        def on_fold(_index: int, successes: int, trials: int) -> None:
            entry.publish_threadsafe(
                {
                    "event": "fold",
                    "successes": successes,
                    "trials": trials,
                    "value": successes / trials,
                    "half_width": wilson_half_width(successes, trials),
                }
            )

        def work() -> Tuple[YieldEstimate, Optional[Dict[str, object]]]:
            with self._compute_lock:
                tracer = Tracer() if trace else None
                previous = self.engine.tracer
                if tracer is not None:
                    self.engine.tracer = tracer
                try:
                    estimate = self.engine.run_points([task], on_fold=on_fold)[0]
                finally:
                    if tracer is not None:
                        self.engine.tracer = previous
                return estimate, (
                    tracer.to_dict() if tracer is not None else None
                )

        try:
            result = await asyncio.to_thread(work)
        except BaseException as exc:  # noqa: BLE001 - leader must settle the future
            self.points.fail(entry, exc)
        else:
            self.points.resolve(entry, result)

    async def _lead_bundle(self, entry: InflightEntry, request: BundleRequest) -> None:
        def work() -> Dict[str, object]:
            experiment = registry.get(request.experiment)
            model = (
                family_from_spec(request.defect_model)
                if request.defect_model is not None
                else None
            )
            if model is not None and not experiment.model_knob:
                raise ServeError(
                    f"{experiment.name} does not accept defect_model "
                    "(its fault regime is part of the experiment definition)"
                )
            criterion = None
            if request.criterion is not None:
                from repro.functional import criterion_from_spec

                criterion = criterion_from_spec(request.criterion)
                if not experiment.criterion_knob:
                    raise ServeError(
                        f"{experiment.name} does not accept criterion "
                        "(its success predicate is part of the experiment "
                        "definition)"
                    )
            knobs: Dict[str, object] = {}
            if model is not None:
                knobs["model"] = model
            if criterion is not None:
                knobs["criterion"] = criterion
            with self._compute_lock:
                result = registry.execute(
                    experiment,
                    runs=request.runs,
                    seed=request.seed,
                    engine=self.engine,
                    options={
                        "adaptive": bool(request.adaptive or request.target_ci),
                        "target_ci": request.target_ci,
                    },
                    knobs=knobs or None,
                )
            payload = bundle_payload(result)
            payload["schema"] = PROTOCOL_SCHEMA
            payload["artifacts"] = None
            if self.config.out_dir is not None:
                run = ArtifactRun(
                    self.config.out_dir,
                    runs=request.runs,
                    seed=request.seed,
                    jobs=self.engine.jobs,
                    cache_dir=self.engine.cache_dir,
                )
                files = run.add(result)["files"]
                run.finalize()
                payload["artifacts"] = {"dir": self.config.out_dir, "files": files}
            return payload

        try:
            payload = await asyncio.to_thread(work)
        except BaseException as exc:  # noqa: BLE001 - leader must settle the future
            self.bundles.fail(entry, exc)
        else:
            self.bundles.resolve(entry, payload)

    # -- endpoint bodies -------------------------------------------------------
    def _point_payload(
        self,
        request: PointRequest,
        key: str,
        chip_digest: str,
        task: EnginePoint,
        estimate: YieldEstimate,
        coalesced: bool,
    ) -> Dict[str, object]:
        lo, hi = estimate.interval
        criterion = task.spec.criterion
        return {
            "schema": PROTOCOL_SCHEMA,
            "key": key,
            "chip_digest": chip_digest,
            "design": request.design,
            "n": request.n,
            "kind": request.kind,
            "param": request.param,
            "seed": request.seed,
            "defect_model": request.defect_model,
            "criterion": criterion.spec() if criterion is not None else None,
            "criterion_digest": (
                criterion.digest() if criterion is not None else None
            ),
            "adaptive": task.stop is not None,
            "runs_requested": task.spec.runs,
            "successes": estimate.successes,
            "trials": estimate.trials,
            "value": estimate.value,
            "lo": lo,
            "hi": hi,
            "coalesced": coalesced,
        }

    def stats_payload(self) -> Dict[str, object]:
        return {
            "schema": PROTOCOL_SCHEMA,
            "requests": self.requests,
            "errors": self.errors,
            "rejected": self.rejected,
            "points": {
                "computed": self.points.leaders,
                "coalesced": self.points.followers,
                "promoted": self.points.promotions,
                "inflight": len(self.points),
            },
            "bundles": {
                "computed": self.bundles.leaders,
                "coalesced": self.bundles.followers,
                "promoted": self.bundles.promotions,
                "inflight": len(self.bundles),
            },
            "engine": {
                "jobs": self.engine.jobs,
                "cache_dir": self.engine.cache_dir,
                "cache_hits": self.engine.cache_hits,
                "cache_misses": self.engine.cache_misses,
                "runs_requested": self.engine.runs_requested,
                "runs_effective": self.engine.runs_effective,
                **(
                    {"cache": self.engine.store_stats.as_dict()}
                    if self.engine.cache_store is not None
                    else {}
                ),
            },
            "resilience": self.engine.resilience.as_dict(),
            **(
                {
                    "cache_objects": {
                        "dir": self.config.cache_objects,
                        "count": len(self.object_store.list_keys()),
                        "corrupt": self.object_store.corrupt,
                    }
                }
                if self.object_store is not None
                else {}
            ),
        }

    def health_payload(self) -> Dict[str, object]:
        """Liveness plus the executor/retry/checkpoint state of the stack."""
        inflight = len(self.points) + len(self.bundles)
        executor = self.engine.executor
        retry = self.engine.retry
        return {
            "status": "ok",
            "schema": PROTOCOL_SCHEMA,
            "inflight": inflight,
            "saturated": inflight >= self.config.max_inflight,
            "executor": {
                "name": executor.name if executor is not None else (
                    "serial" if self.engine.jobs == 1 else "pool"
                ),
                "jobs": self.engine.jobs,
            },
            "retry": retry.as_dict() if retry is not None else None,
            "checkpoint": {
                "enabled": self.engine.checkpoint,
                "cache_dir": self.engine.cache_dir,
            },
            "resilience": self.engine.resilience.as_dict(),
        }

    def _info_payload(self) -> Dict[str, object]:
        import repro

        return {
            "service": "repro-serve",
            "version": repro.__version__,
            "schema": PROTOCOL_SCHEMA,
            "endpoints": [
                "GET /experiments",
                "GET /experiments/{name}",
                "POST /experiments/{name}",
                "POST /points",
                "GET /stats",
                "GET /metrics",
                "GET /health",
                "GET|HEAD|PUT /cache/objects/{digest}",
                "GET /cache/keys",
            ],
        }

    # -- HTTP plumbing ---------------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.active += 1
        try:
            await self._handle(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        finally:
            self.active -= 1
            try:
                # close() without wait_closed(): every response drains
                # before we get here, and lingering in wait_closed keeps
                # handler tasks alive into shutdown cancellation.
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        request_line = await reader.readline()
        if not request_line.strip():
            return
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError:
            await self._send_json(writer, 400, {"error": "BadRequest",
                                                "message": "malformed request line"})
            return
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > self.config.max_body_bytes:
            await self._send_json(
                writer, 413,
                {"error": "PayloadTooLarge",
                 "message": f"body exceeds {self.config.max_body_bytes} bytes"},
            )
            return
        body = await reader.readexactly(length) if length else b""

        self.requests += 1
        path = target.partition("?")[0]
        verb = method.upper()
        started = time.perf_counter()
        log_event(
            _log, "request", level=logging.DEBUG,
            msg=f"{verb} {path} ({len(body)} byte body)",
            method=verb, path=path, body_bytes=len(body),
        )
        try:
            await self._route(verb, path, body, headers, writer)
        except ServeError as exc:
            self._request_error(verb, path, 400, exc)
            await self._send_json(writer, 400, error_payload(exc))
        except ExperimentError as exc:
            # the one lookup-shaped error: unknown experiment name
            self._request_error(verb, path, 404, exc)
            await self._send_json(writer, 404, error_payload(exc))
        except ReproError as exc:
            self._request_error(verb, path, 400, exc)
            await self._send_json(writer, 400, error_payload(exc))
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception as exc:  # noqa: BLE001 - a server answers, never crashes
            self._request_error(verb, path, 500, exc)
            await self._send_json(writer, 500, error_payload(exc))
        finally:
            self._request_seconds.observe(time.perf_counter() - started)

    def _request_error(
        self, method: str, path: str, status: int, exc: BaseException
    ) -> None:
        self.errors += 1
        log_event(
            _log, "request_error", level=logging.WARNING,
            msg=f"{method} {path} -> {status}: {exc}",
            method=method, path=path, status=status,
            error=type(exc).__name__,
        )

    async def _route(
        self, method: str, path: str, body: bytes,
        headers: Dict[str, str], writer: asyncio.StreamWriter,
    ) -> None:
        if path.startswith("/cache/"):
            await self._handle_cache(method, path, body, headers, writer)
            return
        if path == "/points":
            if method != "POST":
                await self._send_json(
                    writer, 405,
                    {"error": "MethodNotAllowed", "message": "POST /points"},
                )
                return
            await self._handle_point(body, writer)
            return
        if path == "/experiments" or path == "/experiments/":
            if method != "GET":
                await self._send_json(
                    writer, 405,
                    {"error": "MethodNotAllowed", "message": "GET /experiments"},
                )
                return
            await self._send_json(writer, 200, experiment_listing())
            return
        if path.startswith("/experiments/"):
            name = path[len("/experiments/"):]
            if method == "GET":
                await self._send_json(writer, 200, registry.get(name).as_dict())
            elif method == "POST":
                await self._handle_bundle(name, body, writer)
            else:
                await self._send_json(
                    writer, 405,
                    {"error": "MethodNotAllowed",
                     "message": "GET or POST /experiments/{name}"},
                )
            return
        if path == "/stats" and method == "GET":
            await self._send_json(writer, 200, self.stats_payload())
            return
        if path == "/metrics" and method == "GET":
            await self._send_text(
                writer, 200, self.metrics.render(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if path == "/health" and method == "GET":
            await self._send_json(writer, 200, self.health_payload())
            return
        if path == "/" and method == "GET":
            await self._send_json(writer, 200, self._info_payload())
            return
        await self._send_json(
            writer, 404, {"error": "NotFound", "message": f"no route {method} {path}"}
        )

    # -- degradation helpers ---------------------------------------------------
    def _would_saturate(self, cmap: CoalescingMap, key: str) -> bool:
        """Would leading ``key`` exceed the in-flight computation bound?

        Joining an existing computation never saturates — a follower adds
        no compute — so only would-be leaders are refused.
        """
        if key in cmap._inflight:
            return False
        return len(self.points) + len(self.bundles) >= self.config.max_inflight

    async def _send_busy(
        self, writer: asyncio.StreamWriter, message: str
    ) -> None:
        self.rejected += 1
        await self._send_json(
            writer, 503,
            {"error": "ServiceUnavailable", "message": message,
             "retry_after_s": self.config.retry_after_s},
            extra_headers={
                "Retry-After": f"{max(1, round(self.config.retry_after_s))}"
            },
        )

    async def _await_result(self, entry: InflightEntry) -> object:
        """Await a computation under the per-request deadline (if any)."""
        future = asyncio.shield(entry.future)
        if self.config.request_timeout is None:
            return await future
        return await asyncio.wait_for(future, self.config.request_timeout)

    @staticmethod
    def _leader_died(entry: InflightEntry, exc: BaseException) -> bool:
        """Did the awaited future fail (vs. this request being cancelled)?

        Under ``asyncio.shield`` both surface as exceptions; only a
        *settled* future means the leader's computation actually died and
        a follower may take over.  A deterministic request error
        (:class:`~repro.errors.ReproError`) would fail identically when
        re-led, so it is answered as-is.
        """
        return (
            entry.future.done()
            and not isinstance(exc, (ReproError, asyncio.TimeoutError))
        )

    async def _handle_point(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        request = PointRequest.from_dict(_parse_json(body))
        task, chip_digest = self._task_for(request)
        key = self.engine.point_key(task)
        if self._would_saturate(self.points, key):
            await self._send_busy(
                writer,
                f"{self.config.max_inflight} computations already in flight",
            )
            return

        if not request.stream:
            promotions = 0
            while True:
                entry, leader = self.points.join(key)
                if leader:
                    asyncio.ensure_future(
                        self._lead_point(entry, task, trace=request.trace)
                    )
                try:
                    estimate, trace_payload = await self._await_result(entry)
                    break
                except asyncio.TimeoutError:
                    self.points.leave(entry)
                    await self._send_busy(
                        writer,
                        f"request exceeded its "
                        f"{self.config.request_timeout}s deadline; the "
                        "computation continues — retry to fetch it",
                    )
                    return
                except BaseException as exc:
                    if not self._leader_died(entry, exc):
                        raise
                    if promotions >= self.MAX_PROMOTIONS:
                        raise
                    # The leader died mid-compute; this follower re-joins
                    # and (typically) re-leads.  Safe: the computation is
                    # a pure function of the key.
                    promotions += 1
                    self.points.promotions += 1
                    log_event(
                        _log, "leader_election", map="points", key=key[:16],
                        promotions=promotions,
                    )
            payload = self._point_payload(
                request, key, chip_digest, task, estimate,
                coalesced=not leader,
            )
            if request.trace:
                # A coalesced request rides another leader's computation:
                # there is no trace of *its own* to return.
                payload["trace"] = trace_payload if leader else None
            await self._send_json(writer, 200, payload)
            return

        # NDJSON stream: accepted, folds (adaptive/sharded points), result.
        # Streaming requests are exempt from the request deadline — their
        # fold lines are the liveness signal — but still promote on a dead
        # leader (the stream then restarts from the new leader's folds).
        await self._send_stream_head(writer)
        promotions = 0
        entry, leader = self.points.join(key)
        queue = entry.subscribe()
        if leader:
            asyncio.ensure_future(self._lead_point(entry, task))
        await self._send_line(
            writer,
            {"event": "accepted", "key": key, "chip_digest": chip_digest,
             "coalesced": not leader},
        )
        while True:
            while True:
                event = await queue.get()
                if event is None:
                    break
                await self._send_line(writer, event)
            try:
                estimate, _trace = await asyncio.shield(entry.future)
                break
            except BaseException as exc:
                if not self._leader_died(entry, exc):
                    raise
                if promotions >= self.MAX_PROMOTIONS:
                    raise
                promotions += 1
                self.points.promotions += 1
                log_event(
                    _log, "leader_election", map="points", key=key[:16],
                    promotions=promotions,
                )
                entry, leader = self.points.join(key)
                queue = entry.subscribe()
                if leader:
                    asyncio.ensure_future(self._lead_point(entry, task))
        await self._send_line(
            writer,
            {"event": "result",
             **self._point_payload(request, key, chip_digest, task, estimate,
                                   coalesced=not leader)},
        )

    async def _handle_bundle(
        self, name: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        experiment = registry.get(name)  # unknown name -> ExperimentError -> 404
        request = BundleRequest.from_dict(experiment.name, _parse_json(body))
        if request.runs > self.config.max_runs:
            raise ServeError(
                f"runs {request.runs} exceeds this server's ceiling "
                f"({self.config.max_runs})"
            )
        blob = json.dumps(request.identity(), sort_keys=True, separators=(",", ":"))
        key = hashlib.sha256(blob.encode("ascii")).hexdigest()
        if self._would_saturate(self.bundles, key):
            await self._send_busy(
                writer,
                f"{self.config.max_inflight} computations already in flight",
            )
            return
        promotions = 0
        while True:
            entry, leader = self.bundles.join(key)
            if leader:
                asyncio.ensure_future(self._lead_bundle(entry, request))
            try:
                payload = dict(await self._await_result(entry))
                break
            except asyncio.TimeoutError:
                self.bundles.leave(entry)
                await self._send_busy(
                    writer,
                    f"request exceeded its {self.config.request_timeout}s "
                    "deadline; the computation continues — retry to fetch it",
                )
                return
            except BaseException as exc:
                if not self._leader_died(entry, exc):
                    raise
                if promotions >= self.MAX_PROMOTIONS:
                    raise
                promotions += 1
                self.bundles.promotions += 1
                log_event(
                    _log, "leader_election", map="bundles", key=key[:16],
                    promotions=promotions,
                )
        payload["coalesced"] = not leader
        await self._send_json(writer, 200, payload)

    # -- the cache-object endpoint ---------------------------------------------
    async def _handle_cache(
        self, method: str, path: str, body: bytes,
        headers: Dict[str, str], writer: asyncio.StreamWriter,
    ) -> None:
        """``GET/PUT/HEAD /cache/objects/{key}`` and ``GET /cache/keys``.

        The HTTP face of a :class:`SharedFSStore`: digests travel in
        ``X-Repro-Digest`` both ways, a PUT whose body does not hash to
        its declared digest is refused (a truncated upload stores
        nothing), and a GET whose ``If-None-Match`` equals the object's
        digest is answered 304 with no body.
        """
        store = self.object_store
        if store is None:
            await self._send_json(
                writer, 404,
                {"error": "NotFound",
                 "message": "no cache store mounted (start with "
                            "`repro cache-serve` or --cache-objects)"},
            )
            return
        if path == "/cache/keys":
            if method != "GET":
                await self._send_json(
                    writer, 405,
                    {"error": "MethodNotAllowed", "message": "GET /cache/keys"},
                )
                return
            keys = store.list_keys()
            await self._send_json(
                writer, 200,
                {"schema": PROTOCOL_SCHEMA, "count": len(keys), "keys": keys},
            )
            return
        if not path.startswith("/cache/objects/"):
            await self._send_json(
                writer, 404,
                {"error": "NotFound", "message": f"no route {method} {path}"},
            )
            return
        key = path[len("/cache/objects/"):]
        if not valid_key(key):
            await self._send_json(
                writer, 400,
                {"error": "BadRequest", "message": f"invalid object key {key!r}"},
            )
            return
        if method in ("GET", "HEAD"):
            payload = store.get(key)
            if payload is None:
                await self._send_json(
                    writer, 404,
                    {"error": "NotFound", "message": f"no object {key}"},
                )
                return
            digest = content_digest(payload)
            if headers.get("if-none-match", "").strip('"') == digest:
                await self._send_json(
                    writer, 304, {}, extra_headers={"X-Repro-Digest": digest}
                )
                return
            await self._send_bytes(
                writer, 200, payload, digest, head_only=(method == "HEAD")
            )
            return
        if method == "PUT":
            declared = headers.get("x-repro-digest")
            got = content_digest(body)
            if declared is not None and declared != got:
                # The body that arrived is not the body the client hashed:
                # a truncated or corrupted upload.  Nothing is stored.
                await self._send_json(
                    writer, 400,
                    {"error": "BadRequest",
                     "message": f"body digest {got[:16]}... does not match "
                                f"declared {declared[:16]}...; upload refused"},
                )
                return
            stored = store.put(key, body)
            await self._send_json(
                writer, 201 if stored else 200,
                {"schema": PROTOCOL_SCHEMA, "key": key, "stored": stored,
                 "digest": got},
            )
            return
        await self._send_json(
            writer, 405,
            {"error": "MethodNotAllowed",
             "message": "GET, HEAD or PUT /cache/objects/{key}"},
        )

    # -- response helpers ------------------------------------------------------
    async def _send_bytes(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        digest: str,
        head_only: bool = False,
    ) -> None:
        head = (
            f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'OK')}\r\n"
            "Content-Type: application/octet-stream\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"X-Repro-Digest: {digest}\r\n"
            f'ETag: "{digest}"\r\n'
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + (b"" if head_only else payload))
        await writer.drain()

    async def _send_text(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        text: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        body = text.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, object],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8") + b"\n"
        extras = "".join(
            f"{name}: {value}\r\n"
            for name, value in (extra_headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extras}"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _send_stream_head(self, writer: asyncio.StreamWriter) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()

    async def _send_line(
        self, writer: asyncio.StreamWriter, payload: Dict[str, object]
    ) -> None:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()


def _parse_json(body: bytes) -> Dict[str, object]:
    if not body:
        return {}
    try:
        data = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServeError(f"request body is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ServeError("request body must be a JSON object")
    return data


# -- runners -------------------------------------------------------------------

async def _drain(server: ReproServer) -> None:
    """Wait (bounded) for in-flight requests to finish after stop.

    The listener is already closed, so ``active`` only decreases; the
    deadline covers a handler stuck behind a long computation — its
    daemon worker dies with the process, exactly as before, but every
    request that *can* finish inside the window gets its response instead
    of a dropped connection.
    """
    deadline = server.config.drain_timeout
    loop = asyncio.get_running_loop()
    end = loop.time() + max(0.0, deadline)
    while server.active and loop.time() < end:
        await asyncio.sleep(0.05)


async def _serve(
    server: ReproServer,
    ready=None,
    stop_event: Optional[asyncio.Event] = None,
) -> None:
    tcp = await asyncio.start_server(
        server.handle_connection, server.config.host, server.config.port
    )
    port = tcp.sockets[0].getsockname()[1]
    if ready is not None:
        ready(port)

    if stop_event is None:
        stop_event = asyncio.Event()
    # SIGTERM/SIGINT request a graceful drain instead of dropping
    # connections.  Only possible on a main-thread loop with POSIX
    # signals; a BackgroundServer (daemon-thread loop) stops via its
    # stop_event instead and drains the same way.
    loop = asyncio.get_running_loop()
    installed = []
    for signame in ("SIGTERM", "SIGINT"):
        signum = getattr(signal, signame, None)
        if signum is None:
            continue
        try:
            loop.add_signal_handler(signum, stop_event.set)
        except (NotImplementedError, RuntimeError, ValueError):
            continue
        installed.append(signum)
    try:
        async with tcp:
            # Returning normally (rather than cancelling serve_forever)
            # lets asyncio.run() tear the loop down without killing
            # in-flight handler tasks mid-await.
            await stop_event.wait()
        await _drain(server)
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)


def serve_forever(config: ServeConfig, engine: Optional[SweepEngine] = None) -> int:
    """Run the server until interrupted (the ``repro serve`` entry point).

    SIGTERM and SIGINT both shut down gracefully: the listener closes
    first, then in-flight requests get up to ``config.drain_timeout``
    seconds to finish before the process exits.
    """
    ensure_configured("info")
    server = ReproServer(config, engine=engine)

    def ready(port: int) -> None:
        log_event(
            _log, "listening",
            msg=(
                f"repro serve: listening on http://{config.host}:{port} "
                f"(jobs={config.jobs}, cache={config.cache_dir or '-'}, "
                f"out={config.out_dir or '-'}, "
                f"objects={config.cache_objects or '-'})"
            ),
            host=config.host, port=port, jobs=config.jobs,
        )

    try:
        asyncio.run(_serve(server, ready))
        log_event(_log, "shutdown", msg="repro serve: drained, shutting down")
    except KeyboardInterrupt:
        # Signal handlers unavailable (e.g. a platform without them):
        # fall back to the historical immediate shutdown.
        log_event(_log, "shutdown", msg="repro serve: shutting down")
    return 0


class BackgroundServer:
    """The server on a daemon thread with its own event loop.

    For tests and the CI smoke driver::

        with BackgroundServer(ServeConfig(port=0)) as handle:
            url = f"http://127.0.0.1:{handle.port}"

    ``port=0`` binds an ephemeral port; :attr:`port` is the bound one.
    """

    def __init__(self, config: ServeConfig, engine: Optional[SweepEngine] = None):
        self.server = ReproServer(config, engine=engine)
        self.port: Optional[int] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._failure: Optional[BaseException] = None

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServeError("server did not come up within 30s")
        if self._failure is not None:
            raise ServeError(f"server failed to start: {self._failure}")
        return self

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()

            def ready(port: int) -> None:
                self.port = port
                self._ready.set()

            await _serve(self.server, ready, stop_event=self._stop_event)

        try:
            asyncio.run(main())
        except asyncio.CancelledError:
            pass
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()/stop()
            self._failure = exc
            self._ready.set()

    def stop(self, deadline: float = 10.0) -> None:
        """Stop accepting, drain in-flight requests, join with ``deadline``.

        The server thread closes its listener immediately, gives active
        requests up to the config's ``drain_timeout`` to finish, then
        exits; ``deadline`` bounds how long this call waits for all of
        that.  A still-alive thread after the deadline is a daemon — it
        cannot outlive the process — so ``stop`` always returns.
        """
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=deadline)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
