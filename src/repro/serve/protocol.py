"""Request/response dataclasses for ``repro serve``.

One schema end to end: the registry listing served by ``GET /experiments``
is exactly :func:`repro.experiments.registry.listing` (what ``repro list
--json`` prints), bundle responses are
:func:`repro.experiments.artifacts.bundle_payload` (digest-compatible with
``manifest.json``), and point requests resolve to the engine's own
:class:`~repro.yieldsim.scheduler.EnginePoint` — whose cache key is the
coalescing identity.

Validation happens here, eagerly, so the HTTP layer can turn any
:class:`~repro.errors.ServeError` into a clean 4xx response before a
single Monte-Carlo run is spent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional

from repro.errors import ReproError, ServeError
from repro.experiments import registry
from repro.yieldsim.stats import StopRule

__all__ = [
    "PROTOCOL_SCHEMA",
    "PointRequest",
    "BundleRequest",
    "experiment_listing",
    "error_payload",
]

#: Version of the serve wire format.  Bumped together with
#: :data:`repro.experiments.registry.REGISTRY_SCHEMA` when shapes change.
PROTOCOL_SCHEMA = 1

#: Fault regimes a point request may name.
_POINT_KINDS = ("survival", "fixed")


def _require(data: Mapping[str, object], key: str) -> object:
    if key not in data:
        raise ServeError(f"request is missing required field {key!r}")
    return data[key]


def _as_int(value: object, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServeError(f"{name} must be an integer, got {value!r}")
    return value


def _as_number(value: object, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServeError(f"{name} must be a number, got {value!r}")
    return float(value)


def _as_optional_str(value: object, name: str) -> Optional[str]:
    if value is None:
        return None
    if not isinstance(value, str):
        raise ServeError(f"{name} must be a string, got {value!r}")
    return value


@dataclass(frozen=True)
class PointRequest:
    """``POST /points``: one sweep point, addressed by content.

    The chip is named either by catalog design (``design`` + ``n``
    primaries — the server builds and memoizes it) or by ``chip_digest``
    (a chip payload digest the server has already seen; responses always
    include it, so a client can switch to digest addressing after its
    first request).  ``kind``/``param`` pick the fault regime exactly as
    :class:`~repro.yieldsim.kernel.PointSpec` does; ``defect_model`` is
    the CLI's ``NAME[:k=v,...]`` family syntax, and ``criterion`` the
    CLI's success-criterion syntax (``routing:assay=glucose,deadline=200``
    — see :mod:`repro.functional`).  ``adaptive`` opts into the default
    registered stop rule, re-targeted by ``target_ci``; ``stream`` asks
    for NDJSON per-fold progress instead of a single JSON body.
    """

    kind: str
    param: float
    runs: int
    seed: int
    design: Optional[str] = None
    n: Optional[int] = None
    chip_digest: Optional[str] = None
    defect_model: Optional[str] = None
    criterion: Optional[str] = None
    adaptive: bool = False
    target_ci: Optional[float] = None
    stream: bool = False
    #: ask for a Chrome-trace of this request's computation; the dict
    #: rides the response under "trace" when this request led (null when
    #: it coalesced onto another leader).  Non-streaming only; results
    #: are bit-identical either way.
    trace: bool = False

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PointRequest":
        if not isinstance(data, Mapping):
            raise ServeError("point request body must be a JSON object")
        known = {
            "kind", "param", "runs", "seed", "design", "n", "chip_digest",
            "defect_model", "criterion", "adaptive", "target_ci", "stream",
            "trace",
        }
        unknown = set(data) - known
        if unknown:
            raise ServeError(f"unknown point request fields: {sorted(unknown)}")
        kind = data.get("kind", "survival")
        if kind not in _POINT_KINDS:
            raise ServeError(
                f"kind must be one of {_POINT_KINDS}, got {kind!r}"
            )
        request = cls(
            kind=kind,
            param=_as_number(_require(data, "param"), "param"),
            runs=_as_int(_require(data, "runs"), "runs"),
            seed=_as_int(data.get("seed", registry.DEFAULT_SEED), "seed"),
            design=_as_optional_str(data.get("design"), "design"),
            n=None if data.get("n") is None else _as_int(data["n"], "n"),
            chip_digest=_as_optional_str(data.get("chip_digest"), "chip_digest"),
            defect_model=_as_optional_str(data.get("defect_model"), "defect_model"),
            criterion=_as_optional_str(data.get("criterion"), "criterion"),
            adaptive=bool(data.get("adaptive", False)),
            target_ci=(
                None if data.get("target_ci") is None
                else _as_number(data["target_ci"], "target_ci")
            ),
            stream=bool(data.get("stream", False)),
            trace=bool(data.get("trace", False)),
        )
        request.validate()
        return request

    def validate(self) -> None:
        if self.runs < 1:
            raise ServeError(f"runs must be >= 1, got {self.runs}")
        if self.design is None and self.chip_digest is None:
            raise ServeError(
                "point request must name a chip: either design (+ n) "
                "or chip_digest"
            )
        if self.design is not None and self.n is None:
            raise ServeError("design requests need n (primary cell count)")
        if self.n is not None and self.n < 1:
            raise ServeError(f"n must be >= 1, got {self.n}")
        if self.target_ci is not None and not self.target_ci > 0:
            raise ServeError(f"target_ci must be > 0, got {self.target_ci}")
        if self.kind == "fixed" and self.defect_model is not None:
            raise ServeError(
                "defect_model applies to survival points only "
                "(fixed-count draws define their own distribution)"
            )

    def stop_rule(self) -> Optional[StopRule]:
        """The adaptive rule this request opts into, or None for flat."""
        if not (self.adaptive or self.target_ci is not None):
            return None
        rule = registry.DEFAULT_STOP_RULE
        if self.target_ci is not None:
            rule = replace(rule, target_half_width=float(self.target_ci))
        return rule


@dataclass(frozen=True)
class BundleRequest:
    """``POST /experiments/{name}``: one full experiment run.

    Mirrors the CLI knobs of ``repro <name>``: budget, seed, adaptive
    stop, defect-model family, success criterion.  The response is the
    bundle :func:`repro.experiments.artifacts.bundle_payload` builds —
    the same rows/report/digest ``repro <name> --out`` would write.
    """

    experiment: str
    runs: int
    seed: int
    adaptive: bool = False
    target_ci: Optional[float] = None
    defect_model: Optional[str] = None
    criterion: Optional[str] = None

    @classmethod
    def from_dict(
        cls, experiment: str, data: Mapping[str, object]
    ) -> "BundleRequest":
        if not isinstance(data, Mapping):
            raise ServeError("experiment request body must be a JSON object")
        known = {
            "runs", "seed", "adaptive", "target_ci", "defect_model",
            "criterion",
        }
        unknown = set(data) - known
        if unknown:
            raise ServeError(
                f"unknown experiment request fields: {sorted(unknown)}"
            )
        request = cls(
            experiment=experiment,
            runs=_as_int(data.get("runs", registry.DEFAULT_CLI_RUNS), "runs"),
            seed=_as_int(data.get("seed", registry.DEFAULT_SEED), "seed"),
            adaptive=bool(data.get("adaptive", False)),
            target_ci=(
                None if data.get("target_ci") is None
                else _as_number(data["target_ci"], "target_ci")
            ),
            defect_model=_as_optional_str(data.get("defect_model"), "defect_model"),
            criterion=_as_optional_str(data.get("criterion"), "criterion"),
        )
        if request.runs < 1:
            raise ServeError(f"runs must be >= 1, got {request.runs}")
        if request.target_ci is not None and not request.target_ci > 0:
            raise ServeError(
                f"target_ci must be > 0, got {request.target_ci}"
            )
        return request

    def identity(self) -> Dict[str, object]:
        """The canonical fields coalescing keys are digested from."""
        identity: Dict[str, object] = {
            "experiment": self.experiment,
            "runs": self.runs,
            "seed": self.seed,
            "adaptive": self.adaptive,
            "target_ci": self.target_ci,
            "defect_model": self.defect_model,
        }
        if self.criterion is not None:
            # Conditional, like the engine's cache-key field: default
            # matching requests keep their historical coalescing keys.
            identity["criterion"] = self.criterion
        return identity


def experiment_listing() -> Dict[str, object]:
    """``GET /experiments``: the shared machine-readable registry."""
    return registry.listing()


def error_payload(exc: BaseException) -> Dict[str, object]:
    """The uniform error body: type + message, nothing leaked."""
    kind = type(exc).__name__ if isinstance(exc, ReproError) else "InternalError"
    return {"error": kind, "message": str(exc)}
