"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class.  Sub-classes are grouped by subsystem: geometry, chip
construction, reconfiguration, fluidics and assay execution.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GeometryError",
    "ChipError",
    "DesignError",
    "FaultModelError",
    "CriterionError",
    "ReconfigurationError",
    "IrreparableChipError",
    "FluidicsError",
    "IllegalMoveError",
    "ConstraintViolationError",
    "RoutingError",
    "SchedulingError",
    "AssayError",
    "TestPlanError",
    "SimulationError",
    "StoreError",
    "UnitFailure",
    "ExperimentError",
    "ArtifactError",
    "ServeError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GeometryError(ReproError):
    """Invalid coordinate, region or lattice operation."""


class ChipError(ReproError):
    """Invalid biochip construction or query (unknown cell, bad role...)."""


class DesignError(ChipError):
    """A redundancy architecture was requested or verified incorrectly."""


class FaultModelError(ReproError):
    """Invalid fault specification or injection parameters."""


class CriterionError(ReproError):
    """Invalid functional success-criterion specification or placement."""


class ReconfigurationError(ReproError):
    """A reconfiguration plan could not be built or validated."""


class IrreparableChipError(ReconfigurationError):
    """The fault map cannot be tolerated by local reconfiguration.

    Raised by APIs that *require* a full repair; estimation APIs instead
    report failures as part of their statistics.
    """


class FluidicsError(ReproError):
    """Base class for droplet-level simulation errors."""


class IllegalMoveError(FluidicsError):
    """A droplet was asked to move to a non-adjacent or unusable cell."""


class ConstraintViolationError(FluidicsError):
    """A microfluidic (static/dynamic) spacing constraint was violated."""


class RoutingError(FluidicsError):
    """No route exists between the requested cells."""


class SchedulingError(FluidicsError):
    """An assay operation graph could not be scheduled."""


class AssayError(ReproError):
    """A bioassay could not be completed on the given chip."""


class TestPlanError(ReproError):
    """A design-for-test plan could not be generated."""

    # Not a test case, despite the Test* name pytest would otherwise collect.
    __test__ = False


class SimulationError(ReproError):
    """Monte-Carlo or kinetics simulation was configured incorrectly."""


class UnitFailure(SimulationError):
    """A compute unit failed permanently despite the retry policy.

    Raised by :class:`~repro.yieldsim.resilience.UnitRunner` once a unit
    has exhausted its bounded attempts (or a broken process pool its
    rebuild budget); the original cause rides along as ``__cause__``.
    """


class StoreError(SimulationError):
    """A cache store was misconfigured or a transport call failed.

    Raised by :mod:`repro.yieldsim.cachestore` implementations; on the
    engine's read/write path :class:`TieredCache` absorbs it (a remote
    failure degrades to a cache miss plus a logged incident), so it only
    propagates for configuration errors or direct store use.
    """


class ExperimentError(ReproError):
    """An experiment was registered or dispatched incorrectly."""


class ArtifactError(ExperimentError):
    """An artifact run directory or manifest could not be written."""


class ServeError(ExperimentError):
    """A serving request was malformed or cannot be satisfied.

    Raised by :mod:`repro.serve` for protocol violations (bad JSON, an
    unknown design or experiment, an out-of-bounds budget); the HTTP
    layer maps it to a 4xx response instead of a traceback.
    """
