"""Scenario pack: matching yield vs functional yield, side by side.

The paper calls a chip "repaired" when every primary function has a
working cell — a maximum-matching criterion.  The functional-yield
subsystem (:mod:`repro.functional`) asks the stricter question the
criterion stands in for: after remapping, can the assay's droplet routes
still be scheduled on the repaired electrode array within a deadline?
These experiments run both predicates over the *same* fault maps (same
seeds, same RNG streams) and report the gap per sweep point, so the
difference is exact per run, not two noisy estimates.

* ``fig7-functional`` — the DTMB(1,6) flower array: matching vs
  routing-aware yield.  Flower repair keeps every spare adjacent to its
  primary, so remaps barely perturb routes — the gap measures deadline
  slack, not fabric damage.
* ``fig9-functional`` — the s > 1 designs.  The headline: DTMB(4,4)
  posts the best *matching* yield of the family while its *functional*
  yield is zero — its dense spare lattice disconnects the primary
  routing fabric even on a fault-free chip, so the assay can never run.
* ``scenario-multiplexed`` — one design under three success predicates
  of increasing strictness: matching, single-assay routing, and two
  concurrent assays sharing the fabric under a tight makespan deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.designs.catalog import DTMB_2_6, DTMB_3_6, DTMB_4_4
from repro.designs.interstitial import build_flower_chip
from repro.designs.spec import DesignSpec
from repro.experiments.registry import DEFAULT_STOP_RULE, BudgetPolicy, register
from repro.experiments.report import format_table
from repro.functional import MultiplexedCriterion, RoutingCriterion
from repro.viz.plot import ascii_chart
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.montecarlo import DEFAULT_RUNS
from repro.yieldsim.stats import StopRule
from repro.yieldsim.sweeps import (
    DEFAULT_P_GRID,
    SurvivalPoint,
    default_engine,
    survival_sweep,
)

__all__ = [
    "Fig7FunctionalResult",
    "Fig9FunctionalResult",
    "MultiplexedScenarioResult",
    "run_fig7_functional",
    "run_fig9_functional",
    "run_multiplexed",
]

#: Sweep grids trimmed for the expensive residue stage: the functional
#: packs schedule real droplet routes for every run the exact screens
#: cannot decide, so they run fewer array sizes (and, for the concurrent
#: router, fewer points) than the classic figures.
FUNCTIONAL_NS: Tuple[int, ...] = (60, 120)
MULTIPLEXED_P_GRID: Tuple[float, ...] = (0.90, 0.93, 0.96, 0.99)


# -- fig7-functional ----------------------------------------------------------

@dataclass(frozen=True)
class Fig7FunctionalResult:
    """Matching vs routing-aware yield on the flower array."""

    n: int
    assay: str
    deadline: int
    ps: Tuple[float, ...]
    matching: Dict[float, float]
    functional: Dict[float, float]

    @property
    def headers(self) -> List[str]:
        return [
            "p",
            "yield (matching)",
            f"yield (routing {self.assay}, d={self.deadline})",
            "gap",
        ]

    @property
    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (
                f"{p:.2f}",
                f"{self.matching[p]:.4f}",
                f"{self.functional[p]:.4f}",
                f"{self.matching[p] - self.functional[p]:.4f}",
            )
            for p in self.ps
        ]

    def gaps(self) -> List[float]:
        return [self.matching[p] - self.functional[p] for p in self.ps]

    def format_report(self) -> str:
        return format_table(self.headers, self.rows)

    def format_chart(self) -> str:
        series = {
            "matching": [(p, self.matching[p]) for p in self.ps],
            "routing": [(p, self.functional[p]) for p in self.ps],
        }
        return ascii_chart(
            series,
            title=f"Figure 7 scenario: DTMB(1,6) n={self.n}, "
            "matching vs routing-aware yield",
            y_label="yield",
            x_label="cell survival probability p",
        )


@register(
    "fig7-functional",
    title="DTMB(1,6) flower array: matching vs routing-aware yield",
    paper_ref="Figure 7 (functional scenario)",
    order=143,
    aliases=("fig7f",),
    budget=BudgetPolicy(divisor=2, floor=400, stop_rule=DEFAULT_STOP_RULE),
    charts=lambda raw: (("matching-vs-routing", raw.format_chart()),),
    epilogue=lambda raw: (
        "",
        f"max matching-vs-functional gap: {max(raw.gaps()):.4f}",
    ),
)
def run_fig7_functional(
    *,
    runs: int = DEFAULT_RUNS,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    n: int = 60,
    ps: Sequence[float] = DEFAULT_P_GRID,
    assay: str = "glucose",
    deadline: int = 200,
    stop: Optional[StopRule] = None,
) -> Fig7FunctionalResult:
    """Matching vs functional yield of the flower array, same fault maps.

    Both columns use the identical per-point seeds, so every run's fault
    map is judged by both predicates and the gap column is an exact
    per-map difference.  On the flower array each primary's spare is
    adjacent, so repair barely moves routes; the gap isolates what the
    matching criterion misses even in the paper's friendliest design.
    """
    chip = build_flower_chip(n)
    criterion = RoutingCriterion(assay=assay, deadline=deadline)
    eng = engine or default_engine()
    schedule = [(p, seed + i) for i, p in enumerate(ps)]
    base = eng.survival_estimates(chip, schedule, runs, stop=stop)
    func = eng.survival_estimates(
        chip, schedule, runs, stop=stop, criterion=criterion
    )
    return Fig7FunctionalResult(
        n=n,
        assay=assay,
        deadline=deadline,
        ps=tuple(ps),
        matching={p: est.value for p, est in zip(ps, base)},
        functional={p: est.value for p, est in zip(ps, func)},
    )


# -- fig9-functional ----------------------------------------------------------

@dataclass(frozen=True)
class Fig9FunctionalResult:
    """The Figure 9 designs under matching and routing criteria."""

    assay: str
    deadline: int
    matching: Tuple[SurvivalPoint, ...]
    functional: Tuple[SurvivalPoint, ...]

    def gap_at(self, design: str, n: int, p: float) -> float:
        for base, func in zip(self.matching, self.functional):
            if (
                base.design == design
                and base.n == n
                and abs(base.p - p) < 1e-9
            ):
                return base.yield_value - func.yield_value
        raise KeyError(f"no point for {design} n={n} p={p}")

    def worst_gap(self, design: str) -> float:
        return max(
            base.yield_value - func.yield_value
            for base, func in zip(self.matching, self.functional)
            if base.design == design
        )

    def series(self, n: int) -> Dict[str, List[Tuple[float, float]]]:
        """Per-design functional-yield series at one array size."""
        out: Dict[str, List[Tuple[float, float]]] = {}
        for point in self.functional:
            if point.n == n:
                out.setdefault(point.design, []).append(
                    (point.p, point.yield_value)
                )
        return out

    @property
    def headers(self) -> List[str]:
        return [
            "design", "n", "p", "yield (matching)",
            f"yield (routing {self.assay}, d={self.deadline})", "gap",
        ]

    @property
    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (
                base.design,
                base.n,
                f"{base.p:.2f}",
                f"{base.yield_value:.4f}",
                f"{func.yield_value:.4f}",
                f"{base.yield_value - func.yield_value:.4f}",
            )
            for base, func in zip(self.matching, self.functional)
        ]

    def format_report(self) -> str:
        return format_table(self.headers, self.rows)

    def format_chart(self, n: int) -> str:
        return ascii_chart(
            self.series(n),
            title=f"Figure 9 scenario: routing-aware yield, n={n} "
            "primary cells",
            y_label="functional yield",
            x_label="cell survival probability p",
        )


@register(
    "fig9-functional",
    title="Matching vs routing-aware yield of the s > 1 designs",
    paper_ref="Figure 9 (functional scenario)",
    order=144,
    aliases=("fig9f",),
    budget=BudgetPolicy(divisor=5, floor=400, stop_rule=DEFAULT_STOP_RULE),
    charts=lambda raw: tuple(
        (f"n-{n}", raw.format_chart(n))
        for n in sorted({pt.n for pt in raw.functional})
    ),
    epilogue=lambda raw: (
        "",
        "worst matching-vs-functional gap per design: "
        + "; ".join(
            f"{design}: {raw.worst_gap(design):.4f}"
            for design in sorted({pt.design for pt in raw.matching})
        ),
    ),
)
def run_fig9_functional(
    *,
    runs: int = DEFAULT_RUNS,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    designs: Sequence[DesignSpec] = (DTMB_2_6, DTMB_3_6, DTMB_4_4),
    ns: Sequence[int] = FUNCTIONAL_NS,
    ps: Sequence[float] = DEFAULT_P_GRID,
    assay: str = "glucose",
    deadline: int = 200,
    stop: Optional[StopRule] = None,
) -> Fig9FunctionalResult:
    """Figure 9's designs judged by matching and by routing, same seeds.

    Both sweeps use the classic ``seed + counter`` point seeds, so each
    row's gap is a per-fault-map difference.  Expect DTMB(2,6) to show
    almost no gap, DTMB(3,6) a few percent (remaps onto spares lengthen
    routes past the deadline), and DTMB(4,4) — the paper's matching-yield
    champion — a functional yield of zero: its spare lattice leaves the
    primary fabric disconnected before a single fault lands.
    """
    criterion = RoutingCriterion(assay=assay, deadline=deadline)
    base = survival_sweep(
        designs, ns, ps, runs=runs, seed=seed, engine=engine, stop=stop
    )
    func = survival_sweep(
        designs, ns, ps, runs=runs, seed=seed, engine=engine, stop=stop,
        criterion=criterion,
    )
    return Fig9FunctionalResult(
        assay=assay,
        deadline=deadline,
        matching=tuple(base),
        functional=tuple(func),
    )


# -- scenario-multiplexed -----------------------------------------------------

@dataclass(frozen=True)
class MultiplexedScenarioResult:
    """One design under matching, routing and multiplexed criteria."""

    design: str
    n: int
    assays: Tuple[str, ...]
    routing_deadline: int
    multiplexed_deadline: int
    ps: Tuple[float, ...]
    yields: Dict[str, Dict[float, float]]  # criterion -> p -> yield

    CRITERIA = ("matching", "routing", "multiplexed")

    @property
    def headers(self) -> List[str]:
        return [
            "p",
            "yield (matching)",
            f"yield (routing, d={self.routing_deadline})",
            f"yield (multiplexed x{len(self.assays)}, "
            f"d={self.multiplexed_deadline})",
        ]

    @property
    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (
                f"{p:.2f}",
                *(
                    f"{self.yields[criterion][p]:.4f}"
                    for criterion in self.CRITERIA
                ),
            )
            for p in self.ps
        ]

    def gap(self, criterion: str) -> float:
        """Worst yield shortfall of a criterion vs plain matching."""
        return max(
            self.yields["matching"][p] - self.yields[criterion][p]
            for p in self.ps
        )

    def format_report(self) -> str:
        return format_table(self.headers, self.rows)

    def format_chart(self) -> str:
        series = {
            criterion: [(p, self.yields[criterion][p]) for p in self.ps]
            for criterion in self.CRITERIA
        }
        return ascii_chart(
            series,
            title=f"Multiplexed scenario: {self.design} n={self.n} "
            "under stricter success criteria",
            y_label="yield",
            x_label="cell survival probability p",
        )


@register(
    "scenario-multiplexed",
    title="Concurrent-assay functional yield under a makespan deadline",
    paper_ref="Section 5 (functional scenario pack)",
    order=145,
    aliases=("multiplexed",),
    budget=BudgetPolicy(divisor=40, floor=100, stop_rule=DEFAULT_STOP_RULE),
    charts=lambda raw: (("criteria", raw.format_chart()),),
    epilogue=lambda raw: (
        "",
        f"worst routing gap vs matching: {raw.gap('routing'):.4f}; "
        f"worst multiplexed gap vs matching: {raw.gap('multiplexed'):.4f}",
    ),
)
def run_multiplexed(
    *,
    runs: int = DEFAULT_RUNS,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    spec: DesignSpec = DTMB_3_6,
    n: int = 60,
    ps: Sequence[float] = MULTIPLEXED_P_GRID,
    assays: Sequence[str] = ("glucose", "lactate"),
    routing_deadline: int = 200,
    multiplexed_deadline: int = 14,
    stop: Optional[StopRule] = None,
) -> MultiplexedScenarioResult:
    """Yield under three success predicates of increasing strictness.

    All three sweeps share point seeds, so every fault map is judged
    three ways: does a matching exist, can one assay's routes still be
    scheduled, and can both assays run *concurrently* — sharing the
    repaired fabric under droplet non-interference — within a tight
    makespan deadline (the fault-free makespan is ~13 moves, so
    ``multiplexed_deadline=14`` leaves almost no detour slack).  The
    concurrent router prices every residue run, so this pack runs a
    deliberately small grid under a steep budget divisor.
    """
    criteria = {
        "matching": None,
        "routing": RoutingCriterion(
            assay=assays[0], deadline=routing_deadline
        ),
        "multiplexed": MultiplexedCriterion(
            assays=tuple(assays), deadline=multiplexed_deadline
        ),
    }
    yields: Dict[str, Dict[float, float]] = {}
    for name, criterion in criteria.items():
        points = survival_sweep(
            (spec,), (n,), ps, runs=runs, seed=seed, engine=engine,
            stop=stop, criterion=criterion,
        )
        yields[name] = {p: pt.yield_value for p, pt in zip(ps, points)}
    return MultiplexedScenarioResult(
        design=spec.name,
        n=n,
        assays=tuple(assays),
        routing_deadline=routing_deadline,
        multiplexed_deadline=multiplexed_deadline,
        ps=tuple(ps),
        yields=yields,
    )
