"""Figure 2: the reconfiguration-cost blow-up of boundary spare rows.

The paper's Figure 2 shows a three-module array with one spare row: a fault
in Module 1 (adjacent to the spare row) relocates only Module 1, but a
fault in Module 3 drags fault-free Module 2 (and Module 1) through a
shifted replacement.  This driver quantifies that story: repair cost as a
function of the faulty module's distance from the spare row, against the
constant one-cell cost of interstitial redundancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.designs.boundary import SpareRowArray
from repro.experiments.registry import BudgetPolicy, register
from repro.experiments.report import format_table
from repro.reconfig.shifted import shifted_cost_by_fault_row
from repro.yieldsim.engine import SweepEngine

__all__ = ["Fig2Result", "run", "default_array"]


def default_array() -> SpareRowArray:
    """The Figure 2 setup: three 3-row modules over an 8-wide array.

    Module 3 is farthest from the spare row, Module 1 adjacent to it,
    matching the paper's numbering.
    """
    return SpareRowArray.uniform(cols=8, module_heights=[3, 3, 3])


@dataclass(frozen=True)
class Fig2Result:
    """Shifted-replacement cost per faulty module vs interstitial repair."""

    headers: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]

    def format_report(self) -> str:
        return format_table(self.headers, self.rows)

    def max_collateral(self) -> int:
        """Largest number of fault-free modules dragged into a repair."""
        return max(int(r[3]) for r in self.rows)


@register(
    "fig2",
    title="Reconfiguration cost of boundary spare rows vs interstitial",
    paper_ref="Figure 2",
    order=20,
    budget=BudgetPolicy(deterministic=True),
)
def run(
    *,
    runs: int = 0,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    array: Optional[SpareRowArray] = None,
) -> Fig2Result:
    """Cost table for one fault per module (worst row of each module).

    Deterministic: ``runs``, ``seed`` and ``engine`` are accepted for the
    uniform experiment signature but have no effect.
    """
    array = array or default_array()
    records = shifted_cost_by_fault_row(array)
    # One representative row per module: the module's farthest-from-spare
    # row (its worst case).
    by_module = {}
    for record in records:
        name = record["module"]
        if name not in by_module:
            by_module[name] = record  # first row seen is farthest (row order)
    rows: List[Tuple[object, ...]] = []
    for name, record in sorted(
        by_module.items(), key=lambda kv: -int(kv[1]["distance_to_spare_row"])
    ):
        rows.append(
            (
                name,
                record["distance_to_spare_row"],
                record["modules_reconfigured"],
                record["fault_free_modules_reconfigured"],
                record["cells_remapped"],
                1,  # interstitial redundancy: one spare cell swaps in
                0,  # ...and no fault-free module is touched
            )
        )
    headers = (
        "faulty module",
        "rows from spare",
        "modules reconfigured (shifted)",
        "fault-free modules reconfigured (shifted)",
        "cells remapped (shifted)",
        "cells remapped (interstitial)",
        "fault-free modules (interstitial)",
    )
    return Fig2Result(headers=headers, rows=tuple(rows))
