"""Artifact pipeline: a diffable run directory for paper reproductions.

``repro all --out artifacts/`` (or any single experiment with ``--out``)
writes one directory per experiment plus a top-level ``manifest.json``::

    artifacts/
      manifest.json            run metadata + per-experiment provenance
      table1/
        table1.csv             the experiment's rows (tabular experiments)
        table1.json            same rows + provenance, machine-readable
        report.txt             exactly what the CLI prints
      fig9/
        fig9.csv
        fig9.json
        report.txt
        chart-n-60.txt         one file per ASCII chart the driver renders
        ...
      ...

The manifest records, for every experiment: the paper reference, the list
of files written, and the full :class:`~repro.experiments.registry.Provenance`
block (seed, requested/effective budget, engine jobs/cache traffic, wall
time and the result digest).  Pipeline-added volatile values (the
manifest timestamp, wall times, cache hit counts) live **only** in
``manifest.json``: every other file in the bundle — CSVs, JSONs,
reports, charts — is byte-identical between runs at equal (runs, seed),
so ``diff -r a b --exclude manifest.json`` between two run directories
shows exactly which *results* moved, and the per-experiment digests in
the manifest answer the same question file-free.  (One experiment is
intrinsically timing-valued: ``ablation-matching`` reports measured
per-algorithm seconds, so its artifacts — and digest — vary run to run
by nature, not by pipeline accident.)

A run directory is incremental: opening an existing one preserves the
manifest entries of experiments not re-run, so a full reproduction can be
assembled one experiment at a time.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from typing import Dict, List, Optional

from repro.errors import ArtifactError
from repro.experiments.registry import ExperimentResult
from repro.viz.export import write_csv, write_json
from repro.yieldsim.cachestore import (
    CacheStore,
    content_digest,
    decode_entry,
    encode_entry,
)

__all__ = [
    "ArtifactRun",
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "bundle_key",
    "bundle_payload",
]

MANIFEST_NAME = "manifest.json"
MANIFEST_SCHEMA = 1


def bundle_key(name: str, digest: str) -> str:
    """The cache-store key of one experiment's published bundle index.

    Addressed by (experiment name, result digest): any run that produced
    the same result digest published the identical artifact bytes — the
    bundle files exclude volatile telemetry by construction — so CI jobs
    and fleet workers can fetch each other's bundles by the digest their
    own manifest predicts.
    """
    return hashlib.sha256(f"bundle:{name}:{digest}".encode("ascii")).hexdigest()


def _entry_file_rels(files: Dict[str, object]) -> List[str]:
    """Flatten a manifest entry's ``files`` block into relative paths."""
    rels: List[str] = []
    for value in files.values():
        if isinstance(value, str):
            rels.append(value)
        elif isinstance(value, list):
            rels.extend(str(item) for item in value)
    return sorted(rels)


def _slug(text: str) -> str:
    """File-name-safe slug for chart labels (``n=60`` -> ``n-60``)."""
    slug = re.sub(r"[^A-Za-z0-9.]+", "-", text).strip("-")
    return slug or "chart"


def bundle_payload(result: ExperimentResult) -> Dict[str, object]:
    """One result as a machine-readable bundle (the serving response body).

    Everything a remote consumer needs without filesystem access: the
    table (for tabular experiments), the canonical report, and the full
    provenance block whose ``digest`` equals the one a local
    ``repro <name> --out`` run records in ``manifest.json`` — so a served
    bundle can be verified against an artifact directory by digest alone.
    """
    return {
        "experiment": result.name,
        "title": result.experiment.title,
        "paper_ref": result.experiment.paper_ref,
        "headers": list(result.headers) if result.headers is not None else None,
        "rows": [list(row) for row in result.rows] if result.rows is not None else None,
        "report": result.canonical_report_text(),
        "provenance": result.provenance.as_dict(),
        "digest": result.provenance.digest,
    }


class ArtifactRun:
    """One run directory being filled with experiment artifacts."""

    def __init__(
        self,
        out_dir: str,
        *,
        runs: int,
        seed: int,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
    ):
        if os.path.exists(out_dir) and not os.path.isdir(out_dir):
            raise ArtifactError(
                f"artifact path {out_dir!r} exists and is not a directory"
            )
        try:
            # Create the run directory up front so an unwritable --out
            # fails before any experiment budget is spent.
            os.makedirs(out_dir, exist_ok=True)
        except OSError as exc:
            raise ArtifactError(
                f"cannot create artifact directory {out_dir!r}: {exc}"
            ) from exc
        self.out_dir = out_dir
        self.runs = runs
        self.seed = seed
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.entries: Dict[str, Dict[str, object]] = {}
        #: experiments written by add() in *this* invocation (adopted
        #: manifest entries from an earlier fill do not count)
        self.added = 0
        self._load_existing()

    def _load_existing(self) -> None:
        """Adopt entries from a previous run so fills can be incremental."""
        path = self.manifest_path
        if not os.path.exists(path):
            return
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            experiments = manifest.get("experiments", {})
            if isinstance(experiments, dict):
                self.entries.update(experiments)
        except (OSError, ValueError):
            raise ArtifactError(
                f"existing manifest {path!r} is unreadable; "
                "remove it or choose a fresh --out directory"
            ) from None

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.out_dir, MANIFEST_NAME)

    def add(self, result: ExperimentResult) -> Dict[str, object]:
        """Write one experiment's artifacts; returns its manifest entry.

        Tabular experiments get a ``<name>.csv`` + ``<name>.json`` pair;
        every experiment gets ``report.txt`` (report + epilogue — the CLI
        stdout at default flags) and one ``chart-<label>.txt`` per ASCII
        chart.
        """
        name = result.name
        files: Dict[str, object] = {}
        try:
            exp_dir = os.path.join(self.out_dir, name)
            os.makedirs(exp_dir, exist_ok=True)

            # Manifest-relative paths always use "/" so bundles are
            # identical (and cross-consumable) whatever OS wrote them;
            # os.path.join only assembles the local absolute path.
            report_rel = f"{name}/report.txt"
            with open(
                os.path.join(self.out_dir, report_rel), "w", encoding="utf-8"
            ) as handle:
                # Canonical (default-flag) rendering: report.txt must not
                # depend on --chart etc. or bundles stop being diffable.
                handle.write(result.canonical_report_text())
                handle.write("\n")
            files["report"] = report_rel

            if result.tabular:
                csv_rel = f"{name}/{name}.csv"
                json_rel = f"{name}/{name}.json"
                write_csv(
                    os.path.join(self.out_dir, csv_rel),
                    result.headers,
                    result.rows,
                )
                write_json(
                    os.path.join(self.out_dir, json_rel),
                    result.headers,
                    result.rows,
                    metadata={
                        "experiment": name,
                        "paper_ref": result.experiment.paper_ref,
                        # Only the run-invariant provenance subset: the JSON
                        # artifact must be byte-identical at equal
                        # (runs, seed).  Wall time and cache traffic live in
                        # manifest.json.
                        "provenance": result.provenance.stable_dict(),
                    },
                )
                files["csv"] = csv_rel
                files["json"] = json_rel

            chart_rels: List[str] = []
            for label, chart in result.charts:
                chart_rel = f"{name}/chart-{_slug(label)}.txt"
                with open(
                    os.path.join(self.out_dir, chart_rel), "w", encoding="utf-8"
                ) as handle:
                    handle.write(chart)
                    handle.write("\n")
                chart_rels.append(chart_rel)
            if chart_rels:
                files["charts"] = chart_rels
        except OSError as exc:
            raise ArtifactError(
                f"cannot write {name} artifacts under {self.out_dir!r}: {exc}"
            ) from exc

        entry: Dict[str, object] = {
            "title": result.experiment.title,
            "paper_ref": result.experiment.paper_ref,
            "files": files,
            "provenance": result.provenance.as_dict(),
        }
        self.entries[name] = entry
        self.added += 1
        return entry

    # -- bundle exchange over a cache store ------------------------------------
    def publish(self, store: CacheStore) -> Dict[str, int]:
        """Push every experiment's bundle files into a cache store.

        Files are content-addressed (key = SHA-256 of the bytes) and
        uploaded put-if-absent, so republishing a byte-identical bundle
        costs nothing; a per-experiment index entry at
        :func:`bundle_key` (name, result digest) maps manifest-relative
        paths to content keys.  Returns upload counters.
        """
        published = {"experiments": 0, "objects": 0, "bytes": 0}
        for name, entry in self.entries.items():
            provenance = entry.get("provenance")
            digest = (
                provenance.get("digest")
                if isinstance(provenance, dict)
                else None
            )
            files = entry.get("files")
            if not isinstance(digest, str) or not isinstance(files, dict):
                continue
            index_files: Dict[str, str] = {}
            for rel in _entry_file_rels(files):
                path = os.path.join(self.out_dir, *rel.split("/"))
                try:
                    with open(path, "rb") as handle:
                        blob = handle.read()
                except OSError as exc:
                    raise ArtifactError(
                        f"cannot publish {rel!r}: {exc}"
                    ) from exc
                key = content_digest(blob)
                if store.put(key, blob):
                    published["objects"] += 1
                    published["bytes"] += len(blob)
                index_files[rel] = key
            index = {
                "experiment": name,
                "result_digest": digest,
                "files": index_files,
            }
            store.put(bundle_key(name, digest), encode_entry(index))
            published["experiments"] += 1
        return published

    @staticmethod
    def fetch(
        store: CacheStore, name: str, digest: str, out_dir: str
    ) -> Optional[List[str]]:
        """Materialize a published bundle into ``out_dir``, verified.

        Looks up the (name, result digest) index, downloads every file
        and checks its bytes hash to the content key the index promised.
        Returns the manifest-relative paths written, or ``None`` when the
        bundle is absent or any object is missing/corrupt — an incomplete
        bundle is never partially trusted (files already written are
        left for the caller to discard with the directory).
        """
        blob = store.get(bundle_key(name, digest))
        if blob is None:
            return None
        index = decode_entry(blob)
        if (
            index is None
            or index.get("experiment") != name
            or index.get("result_digest") != digest
            or not isinstance(index.get("files"), dict)
        ):
            return None
        written: List[str] = []
        for rel, key in sorted(index["files"].items()):
            data = store.get(str(key))
            if data is None or content_digest(data) != key:
                return None
            path = os.path.join(out_dir, *str(rel).split("/"))
            try:
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "wb") as handle:
                    handle.write(data)
            except OSError as exc:
                raise ArtifactError(
                    f"cannot materialize {rel!r} under {out_dir!r}: {exc}"
                ) from exc
            written.append(str(rel))
        return sorted(written)

    def finalize(self) -> str:
        """Write ``manifest.json`` and return its path.

        The ``command`` block records the settings of the invocation that
        last wrote the manifest; in an incrementally filled directory,
        entries adopted from earlier runs may have been produced at other
        settings — each entry's own ``provenance`` block is authoritative.
        """
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "generated_at": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "command": {
                "runs": self.runs,
                "seed": self.seed,
                "jobs": self.jobs,
                "cache_dir": self.cache_dir,
            },
            "experiments": {
                name: self.entries[name] for name in sorted(self.entries)
            },
        }
        tmp = f"{self.manifest_path}.tmp.{os.getpid()}"
        try:
            os.makedirs(self.out_dir, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2)
                handle.write("\n")
            os.replace(tmp, self.manifest_path)
        except OSError as exc:
            raise ArtifactError(
                f"cannot write manifest under {self.out_dir!r}: {exc}"
            ) from exc
        return self.manifest_path
