"""Ablation: how much does the independent-failure assumption matter?

The paper's yield model assumes independent cell failures, "valid for
random and small spot defects".  This ablation stresses that assumption:
clustered spot defects (one particle killing a cell and its neighbors)
are compared against independent failures *at the same expected number of
faulty cells*.  Clusters are worse for interstitial redundancy — a spot
that covers a primary and its spares defeats local reconfiguration — so
the independent model is optimistic under particle-dominated processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.designs.catalog import DTMB_2_6
from repro.designs.interstitial import build_with_primary_count
from repro.designs.spec import DesignSpec
from repro.experiments.registry import BudgetPolicy, register
from repro.experiments.report import format_table
from repro.faults.injection import BernoulliInjector, ClusteredInjector
from repro.reconfig.local import is_repairable
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.stats import YieldEstimate

__all__ = ["DefectModelAblationResult", "run"]


@dataclass(frozen=True)
class DefectModelAblationResult:
    """Yield under independent vs clustered defects, matched in severity."""

    n: int
    rows: Tuple[Tuple[object, ...], ...]

    @property
    def headers(self) -> List[str]:
        return [
            "expected faulty cells",
            "yield (independent)",
            "yield (clustered r=1)",
            "gap",
        ]

    def format_report(self) -> str:
        return format_table(self.headers, self.rows)

    def gaps(self) -> List[float]:
        return [float(row[3]) for row in self.rows]


def _estimate(chip, injector, trials: int, seed: int) -> YieldEstimate:
    successes = 0
    for t in range(trials):
        working = chip.copy()
        injector.sample(working, seed=seed + t).apply_to(working)
        if is_repairable(working):
            successes += 1
    return YieldEstimate(successes=successes, trials=trials)


@register(
    "ablation-defects",
    title="Defect-model ablation: independent vs clustered spot defects",
    paper_ref="Section 5 (ablation)",
    order=110,
    budget=BudgetPolicy(divisor=10, floor=100),
)
def run(
    *,
    runs: int = 1500,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    spec: DesignSpec = DTMB_2_6,
    n: int = 120,
    expected_faults: Sequence[float] = (2.0, 4.0, 6.0, 8.0),
) -> DefectModelAblationResult:
    """Match E[faulty cells] between the two injectors and compare yield.

    ``runs`` is the number of fault-map trials per injector and severity.
    The clustered injector is not expressible as an engine regime, so
    ``engine`` is accepted for the uniform experiment signature but has
    no effect.

    A radius-1 spot on the hex lattice kills up to 7 cells (fewer at the
    boundary, ~6.3 on average for interior-dominated arrays); the spot
    rate is set so rate * avg_spot_size * cells == expected faults.
    """
    trials = runs
    chip = build_with_primary_count(spec, n).build()
    cells = len(chip)
    # Average radius-1 spot size on this footprint.
    sizes = [1 + chip.degree(c) for c in chip.coords]
    avg_spot = sum(sizes) / len(sizes)
    rows = []
    for i, expected in enumerate(expected_faults):
        q = expected / cells
        bern = BernoulliInjector(1.0 - q)
        rate = expected / (avg_spot * cells)
        clus = ClusteredInjector(rate, radius=1)
        y_ind = _estimate(chip, bern, trials, seed + 10_000 * i)
        y_clu = _estimate(chip, clus, trials, seed + 10_000 * i + 5_000)
        rows.append(
            (
                f"{expected:.1f}",
                f"{y_ind.value:.4f}",
                f"{y_clu.value:.4f}",
                f"{y_ind.value - y_clu.value:.4f}",
            )
        )
    return DefectModelAblationResult(n=n, rows=tuple(rows))
