"""Ablation: how much does the independent-failure assumption matter?

The paper's yield model assumes independent cell failures, "valid for
random and small spot defects".  This ablation stresses that assumption:
clustered spot defects (one particle killing a cell and its neighbors)
are compared against independent failures *at the same expected number of
faulty cells*.  Clusters are worse for interstitial redundancy — a spot
that covers a primary and its spares defeats local reconfiguration — so
the independent model is optimistic under particle-dominated processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.designs.catalog import DTMB_2_6
from repro.designs.interstitial import build_with_primary_count
from repro.designs.spec import DesignSpec
from repro.experiments.registry import BudgetPolicy, register
from repro.experiments.report import format_table
from repro.yieldsim.defects import IIDBernoulli, SpotDefects, geometry_for
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.sweeps import defect_model_sweep

__all__ = ["DefectModelAblationResult", "run"]


@dataclass(frozen=True)
class DefectModelAblationResult:
    """Yield under independent vs clustered defects, matched in severity."""

    n: int
    rows: Tuple[Tuple[object, ...], ...]

    @property
    def headers(self) -> List[str]:
        return [
            "expected faulty cells",
            "yield (independent)",
            "yield (clustered r=1)",
            "gap",
        ]

    def format_report(self) -> str:
        return format_table(self.headers, self.rows)

    def gaps(self) -> List[float]:
        return [float(row[3]) for row in self.rows]


@register(
    "ablation-defects",
    title="Defect-model ablation: independent vs clustered spot defects",
    paper_ref="Section 5 (ablation)",
    order=110,
    budget=BudgetPolicy(divisor=10, floor=100),
)
def run(
    *,
    runs: int = 1500,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    spec: DesignSpec = DTMB_2_6,
    n: int = 120,
    expected_faults: Sequence[float] = (2.0, 4.0, 6.0, 8.0),
) -> DefectModelAblationResult:
    """Match E[faulty cells] between the two models and compare yield.

    ``runs`` is the number of fault-map trials per model and severity.
    Both regimes run as vectorized engine points
    (:class:`~repro.yieldsim.defects.IIDBernoulli` vs a
    :class:`~repro.yieldsim.defects.SpotDefects` calibrated to the same
    expected number of dead cells), so ``engine`` sharding/caching applies
    and the per-severity pairs share common random numbers via the sweep's
    shared seed.
    """
    chip = build_with_primary_count(spec, n).build()
    geometry = geometry_for(chip)
    cells = len(chip)
    models = []
    for expected in expected_faults:
        models.append(IIDBernoulli(1.0 - expected / cells))
        models.append(SpotDefects.calibrate(geometry, expected / cells, radius=1))
    points = defect_model_sweep(chip, models, runs=runs, seed=seed, engine=engine)
    rows = []
    for i, expected in enumerate(expected_faults):
        y_ind, y_clu = points[2 * i].yield_value, points[2 * i + 1].yield_value
        rows.append(
            (
                f"{expected:.1f}",
                f"{y_ind:.4f}",
                f"{y_clu:.4f}",
                f"{y_ind - y_clu:.4f}",
            )
        )
    return DefectModelAblationResult(n=n, rows=tuple(rows))
