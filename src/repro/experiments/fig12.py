"""Figure 12: the DTMB(2,6) redesign and an example reconfiguration.

Figure 12(a) is the defect-tolerant redesign (252 primaries, 108 used by
the assays, 91 interstitial spares); Figure 12(b) shows a successful local
reconfiguration in the presence of 10 faulty cells.  This driver rebuilds
the layout, injects a seeded 10-fault map, repairs it by bipartite
matching, renders the before/after pictures, and verifies the multiplexed
assay panel still executes through the repair remap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.assays.chipspec import DiagnosticsChip, redesigned_chip
from repro.assays.library import GLUCOSE_ASSAY
from repro.assays.runner import AssayResult, MultiplexedRunner
from repro.errors import AssayError
from repro.experiments.registry import BudgetPolicy, register
from repro.faults.injection import FixedCountInjector
from repro.reconfig.local import RepairPlan, plan_local_repair
from repro.viz.ascii_art import render_chip, render_legend
from repro.yieldsim.engine import SweepEngine

__all__ = ["Fig12Result", "run"]

#: Figure 12(b) shows reconfiguration around 10 faulty cells.
PAPER_FAULT_COUNT = 10


@dataclass(frozen=True)
class Fig12Result:
    """One reconfiguration demonstration on the redesigned chip."""

    layout: DiagnosticsChip
    faults: Tuple[object, ...]
    plan: RepairPlan
    rendering: str
    assay_result: Optional[AssayResult]

    @property
    def repaired(self) -> bool:
        return self.plan.complete

    def format_report(self) -> str:
        lines = [
            self.layout.describe(),
            f"faults injected: {len(self.faults)}",
            f"faulty used primaries repaired: {self.plan.spares_used}",
            f"repair complete: {self.repaired}",
        ]
        if self.assay_result is not None:
            lines.append(
                f"glucose assay on repaired chip: "
                f"measured {self.assay_result.measured_concentration:.3e} M "
                f"(true {self.assay_result.true_concentration:.3e} M, "
                f"error {self.assay_result.relative_error:.2%})"
            )
        lines.append("")
        lines.append(self.rendering)
        lines.append(render_legend())
        return "\n".join(lines)


@register(
    "fig12",
    title="DTMB(2,6) redesign and a 10-fault local reconfiguration",
    paper_ref="Figure 12",
    order=80,
    budget=BudgetPolicy(deterministic=True),
    tabular=False,
)
def run(
    *,
    runs: int = 0,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    m: int = PAPER_FAULT_COUNT,
    run_assay: bool = True,
    glucose_concentration: float = 5e-3,
) -> Fig12Result:
    """Inject ``m`` seeded faults, repair, render, optionally run an assay.

    One seeded demonstration, not a sweep: ``runs`` and ``engine`` are
    accepted for the uniform experiment signature but have no effect.
    """
    layout = redesigned_chip()
    chip = layout.chip
    fault_map = FixedCountInjector(m).sample(chip, seed=seed)
    fault_map.apply_to(chip)
    plan = plan_local_repair(chip, needed=layout.used)
    rendering = render_chip(chip, used=layout.used, plan=plan)

    assay_result: Optional[AssayResult] = None
    if run_assay and plan.complete:
        runner = MultiplexedRunner(layout)
        results = runner.run_panel(
            {GLUCOSE_ASSAY.analyte: glucose_concentration}
        )
        assay_result = results[0]
    return Fig12Result(
        layout=layout,
        faults=tuple(sorted(fault_map.coords)),
        plan=plan,
        rendering=rendering,
        assay_result=assay_result,
    )
