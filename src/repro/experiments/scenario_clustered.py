"""Scenario pack: the paper's figures under realistic spatial defect models.

The paper's yield model assumes independent cell failures, "valid for
random and small spot defects"; the defect literature it cites (Koren &
Koren) says exactly when that fails — clustered spot defects, per-chip
rate variation, wafer gradients.  These experiments rerun the paper's
Monte-Carlo figures under those regimes via the pluggable
:mod:`repro.yieldsim.defects` subsystem, all through the standard sweep
engine (sharding, caching and adaptive budgets included), and each one's
manifest provenance names the defect model and its content digest.

* ``fig7-clustered`` — the DTMB(1,6) flower array under spot defects
  calibrated to the same expected number of dead cells as the i.i.d.
  model: how optimistic is the analytical cluster model when defects
  actually cluster?
* ``fig9-clustered`` — the full Figure 9 sweep (three designs, three
  array sizes) under severity-matched spot defects.
* ``scenario-gradient`` — one design under three matched regimes: i.i.d.,
  a center-to-edge survival gradient, and Stapper-style negative-binomial
  rate mixing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.designs.catalog import DTMB_2_6
from repro.designs.interstitial import build_flower_chip
from repro.designs.spec import DesignSpec
from repro.experiments.fig9 import DEFAULT_DESIGNS, DEFAULT_NS
from repro.experiments.registry import DEFAULT_STOP_RULE, BudgetPolicy, register
from repro.experiments.report import format_table
from repro.viz.plot import ascii_chart
from repro.yieldsim.defects import (
    IIDBernoulli,
    NegativeBinomialClustered,
    RadialGradient,
    SpotDefects,
    family_from_spec,
    geometry_for,
)
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.montecarlo import DEFAULT_RUNS
from repro.yieldsim.stats import StopRule
from repro.yieldsim.sweeps import (
    DEFAULT_P_GRID,
    SurvivalPoint,
    defect_model_sweep,
    survival_sweep,
)

__all__ = [
    "Fig7ClusteredResult",
    "Fig9ClusteredResult",
    "GradientScenarioResult",
    "run_fig7_clustered",
    "run_fig9_clustered",
    "run_gradient",
]


# -- fig7-clustered -----------------------------------------------------------

@dataclass(frozen=True)
class Fig7ClusteredResult:
    """i.i.d. vs severity-matched spot defects on the flower array."""

    n: int
    radius: int
    ps: Tuple[float, ...]
    iid: Dict[float, float]
    clustered: Dict[float, float]

    @property
    def headers(self) -> List[str]:
        return ["p", "yield (iid)", f"yield (spot r={self.radius})", "gap"]

    @property
    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (
                f"{p:.2f}",
                f"{self.iid[p]:.4f}",
                f"{self.clustered[p]:.4f}",
                f"{self.iid[p] - self.clustered[p]:.4f}",
            )
            for p in self.ps
        ]

    def gaps(self) -> List[float]:
        return [self.iid[p] - self.clustered[p] for p in self.ps]

    def format_report(self) -> str:
        return format_table(self.headers, self.rows)

    def format_chart(self) -> str:
        series = {
            "iid": [(p, self.iid[p]) for p in self.ps],
            f"spot r={self.radius}": [(p, self.clustered[p]) for p in self.ps],
        }
        return ascii_chart(
            series,
            title=f"Figure 7 scenario: DTMB(1,6) n={self.n}, "
            "independent vs clustered defects",
            y_label="yield",
            x_label="cell survival probability p (matched expected faults)",
        )


@register(
    "fig7-clustered",
    title="DTMB(1,6) flower array under severity-matched spot defects",
    paper_ref="Figure 7 (clustered scenario)",
    order=140,
    aliases=("fig7c",),
    budget=BudgetPolicy(stop_rule=DEFAULT_STOP_RULE),
    charts=lambda raw: (("iid-vs-clustered", raw.format_chart()),),
    epilogue=lambda raw: (
        "",
        f"max independence-assumption gap: {max(raw.gaps()):.4f}",
    ),
)
def run_fig7_clustered(
    *,
    runs: int = DEFAULT_RUNS,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    n: int = 60,
    ps: Sequence[float] = DEFAULT_P_GRID,
    radius: int = 1,
    stop: Optional[StopRule] = None,
) -> Fig7ClusteredResult:
    """Monte-Carlo yield of the flower array, i.i.d. vs spot defects.

    At each p the spot model is calibrated (closed form, no sampling) to
    kill the same expected number of cells as ``IIDBernoulli(p)``, so any
    yield gap is purely the *spatial* effect of clustering — a spot that
    covers a primary and its only spare defeats the flower repair.
    """
    chip = build_flower_chip(n)
    geometry = geometry_for(chip)
    # One engine call for both regimes: one worker pool, full-width load
    # balancing, and per-point seeds identical to separate calls.
    models = [IIDBernoulli(p) for p in ps] + [
        SpotDefects.calibrate(geometry, 1.0 - p, radius) for p in ps
    ]
    points = defect_model_sweep(
        chip, models, runs=runs, seed=seed, engine=engine, stop=stop
    )
    return Fig7ClusteredResult(
        n=n,
        radius=radius,
        ps=tuple(ps),
        iid={p: pt.yield_value for p, pt in zip(ps, points[: len(ps)])},
        clustered={p: pt.yield_value for p, pt in zip(ps, points[len(ps):])},
    )


# -- fig9-clustered -----------------------------------------------------------

@dataclass(frozen=True)
class Fig9ClusteredResult:
    """The Figure 9 sweep rerun under a clustered defect model."""

    radius: int
    points: Tuple[SurvivalPoint, ...]

    def series(self, n: int) -> Dict[str, List[Tuple[float, float]]]:
        out: Dict[str, List[Tuple[float, float]]] = {}
        for point in self.points:
            if point.n == n:
                out.setdefault(point.design, []).append(
                    (point.p, point.yield_value)
                )
        return out

    def yield_at(self, design: str, n: int, p: float) -> float:
        for point in self.points:
            if point.design == design and point.n == n and abs(point.p - p) < 1e-9:
                return point.yield_value
        raise KeyError(f"no point for {design} n={n} p={p}")

    @property
    def headers(self) -> List[str]:
        return ["design", "n", "p", "model", "yield", "ci lo", "ci hi"]

    @property
    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (
                pt.design,
                pt.n,
                f"{pt.p:.2f}",
                pt.model,
                f"{pt.yield_value:.4f}",
                f"{pt.estimate.lo:.4f}",
                f"{pt.estimate.hi:.4f}",
            )
            for pt in self.points
        ]

    def format_report(self) -> str:
        return format_table(self.headers, self.rows)

    def format_chart(self, n: int) -> str:
        return ascii_chart(
            self.series(n),
            title=f"Figure 9 scenario: spot-defect yield, n={n} primary cells",
            y_label="yield",
            x_label="cell survival probability p (matched expected faults)",
        )


@register(
    "fig9-clustered",
    title="Monte-Carlo yield of the s > 1 designs under spot defects",
    paper_ref="Figure 9 (clustered scenario)",
    order=141,
    aliases=("fig9c",),
    budget=BudgetPolicy(stop_rule=DEFAULT_STOP_RULE),
    charts=lambda raw: tuple(
        (f"n-{n}", raw.format_chart(n)) for n in sorted({pt.n for pt in raw.points})
    ),
)
def run_fig9_clustered(
    *,
    runs: int = DEFAULT_RUNS,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    designs: Sequence[DesignSpec] = DEFAULT_DESIGNS,
    ns: Sequence[int] = DEFAULT_NS,
    ps: Sequence[float] = DEFAULT_P_GRID,
    radius: int = 1,
    stop: Optional[StopRule] = None,
) -> Fig9ClusteredResult:
    """Figure 9's grid with spot defects replacing i.i.d. failures.

    Every (design, n, p) point samples from a per-chip calibrated
    :class:`~repro.yieldsim.defects.SpotDefects` killing ``1 - p`` of
    cells in expectation, using the same ``seed + counter`` point seeds as
    the classic sweep, so the clustered figure is directly comparable to
    ``fig9`` at equal budget and seed.
    """
    points = survival_sweep(
        designs,
        ns,
        ps,
        runs=runs,
        seed=seed,
        engine=engine,
        stop=stop,
        model=family_from_spec(f"spot:radius={radius}"),
    )
    return Fig9ClusteredResult(radius=radius, points=tuple(points))


# -- scenario-gradient --------------------------------------------------------

@dataclass(frozen=True)
class GradientScenarioResult:
    """One design under i.i.d., radial-gradient and rate-mixing regimes."""

    design: str
    n: int
    spread: float
    alpha: float
    ps: Tuple[float, ...]
    yields: Dict[str, Dict[float, float]]  # regime -> p -> yield

    REGIMES = ("iid", "gradient", "negbin")

    @property
    def headers(self) -> List[str]:
        return [
            "p",
            "yield (iid)",
            f"yield (gradient Δ{self.spread:g})",
            f"yield (negbin α={self.alpha:g})",
        ]

    @property
    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (
                f"{p:.2f}",
                *(f"{self.yields[regime][p]:.4f}" for regime in self.REGIMES),
            )
            for p in self.ps
        ]

    def gap(self, regime: str) -> float:
        """Worst yield shortfall of a regime vs the i.i.d. assumption."""
        return max(
            self.yields["iid"][p] - self.yields[regime][p] for p in self.ps
        )

    def format_report(self) -> str:
        return format_table(self.headers, self.rows)

    def format_chart(self) -> str:
        series = {
            regime: [(p, self.yields[regime][p]) for p in self.ps]
            for regime in self.REGIMES
        }
        return ascii_chart(
            series,
            title=f"Gradient scenario: {self.design} n={self.n} "
            "under matched spatial regimes",
            y_label="yield",
            x_label="mean cell survival probability p",
        )


@register(
    "scenario-gradient",
    title="Wafer-gradient and rate-mixing defect scenarios",
    paper_ref="Section 5 (scenario pack)",
    order=142,
    aliases=("gradient",),
    budget=BudgetPolicy(stop_rule=DEFAULT_STOP_RULE),
    charts=lambda raw: (("regimes", raw.format_chart()),),
    epilogue=lambda raw: (
        "",
        f"worst gradient gap vs iid: {raw.gap('gradient'):.4f}; "
        f"worst negbin gap vs iid: {raw.gap('negbin'):.4f}",
    ),
)
def run_gradient(
    *,
    runs: int = DEFAULT_RUNS,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    spec: DesignSpec = DTMB_2_6,
    n: int = 120,
    ps: Sequence[float] = DEFAULT_P_GRID,
    spread: float = 0.06,
    alpha: float = 1.0,
    stop: Optional[StopRule] = None,
) -> GradientScenarioResult:
    """Compare i.i.d., gradient and negative-binomial regimes at equal mean.

    All three regimes are calibrated to the same mean cell survival p at
    every sweep point — the gradient drops by ``spread`` total from chip
    center to edge and the negative-binomial model mixes the failure rate
    across runs — so the table isolates how the *shape* of the failure
    distribution moves yield at constant average severity.
    """
    from repro.designs.interstitial import build_with_primary_count

    chip = build_with_primary_count(spec, n).build()
    geometry = geometry_for(chip)
    regimes = {
        "iid": [IIDBernoulli(p) for p in ps],
        "gradient": [
            RadialGradient.calibrate(geometry, p, spread) for p in ps
        ],
        "negbin": [NegativeBinomialClustered(p, alpha) for p in ps],
    }
    # All regimes in one engine call (one pool, one load-balanced batch);
    # per-point seeds are shared either way, so the split is cosmetic.
    flat = [model for models in regimes.values() for model in models]
    points = defect_model_sweep(
        chip, flat, runs=runs, seed=seed, engine=engine, stop=stop
    )
    yields: Dict[str, Dict[float, float]] = {}
    for i, regime in enumerate(regimes):
        block = points[i * len(ps): (i + 1) * len(ps)]
        yields[regime] = {p: pt.yield_value for p, pt in zip(ps, block)}
    return GradientScenarioResult(
        design=spec.name,
        n=n,
        spread=spread,
        alpha=alpha,
        ps=tuple(ps),
        yields=yields,
    )
