"""Declarative experiment registry: one ``Experiment`` API per paper artifact.

Every figure, table and ablation in the reproduction is a driver module
exposing a uniform runner::

    def run(*, runs=..., seed=2005, engine=None, **knobs) -> <driver result>

and registering itself with the :func:`register` decorator.  The registry
is what the CLI, the artifact pipeline, the benchmarks and the tests all
dispatch through, so adding a new experiment is: write the driver, put
``@register(...)`` on its ``run``, import the module from
``repro.experiments`` — and ``repro list``, ``repro <name>``, ``repro all``
and the artifact manifest pick it up with no hand-wired glue.

The pieces
----------
:class:`Experiment`
    The registration record: name, aliases, paper reference, a
    :class:`BudgetPolicy` mapping the CLI ``--runs`` budget to the
    driver's own Monte-Carlo budget, and renderers (report, epilogue,
    charts) over the driver's native result object.
:class:`BudgetPolicy`
    Declarative budget scaling (``max(floor, runs // divisor)``), with a
    gate for opt-in Monte-Carlo columns (Figure 7's ``--mc-check``) and a
    ``deterministic`` mode for drivers that ignore the budget entirely.
:func:`execute`
    The generic dispatcher: resolves the experiment, applies the budget
    policy, times the runner, snapshots engine cache counters, and wraps
    everything in an :class:`ExperimentResult` whose
    :class:`Provenance` block records the seed, budgets, engine
    configuration, wall time, point-cache traffic and a stable digest of
    the result.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ExperimentError
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.cachestore import StoreStats
from repro.yieldsim.resilience import ResilienceStats
from repro.yieldsim.stats import StopRule

__all__ = [
    "BudgetPolicy",
    "DEFAULT_STOP_RULE",
    "Experiment",
    "ExperimentResult",
    "Provenance",
    "REGISTRY_SCHEMA",
    "register",
    "get",
    "all_experiments",
    "names",
    "execute",
    "result_digest",
    "stop_rule_dict",
    "listing",
]

#: Version of the machine-readable registry schema emitted by
#: :func:`listing` / :meth:`Experiment.as_dict` — shared verbatim by
#: ``repro list --json``, ``repro show --json`` and the serving layer's
#: ``GET /experiments``, so CLI consumers and HTTP clients parse one
#: format.
REGISTRY_SCHEMA = 1

#: Paper default Monte-Carlo budget (runs per sweep point).
DEFAULT_CLI_RUNS = 10_000

#: Paper default RNG seed (the publication year).
DEFAULT_SEED = 2005

#: Default adaptive rule for the Monte-Carlo figure sweeps: ±0.01 is the
#: worst-case half-width the paper's flat 10 000-run budget guarantees
#: (at p-hat = 0.5), so `--adaptive` reaches the same figure quality while
#: easy points (yield near 1) stop after the first 1000-run batch.
DEFAULT_STOP_RULE = StopRule(
    target_half_width=0.01, min_runs=1000, batch_runs=1000
)


# -- budget policy ------------------------------------------------------------

@dataclass(frozen=True)
class BudgetPolicy:
    """Maps the user-facing ``--runs`` budget to a driver's own budget.

    The effective budget is ``max(floor, runs // divisor)``.  Ablations
    whose trials are more expensive than a sweep point scale the budget
    down (``divisor > 1``) with a floor that keeps tiny CLI budgets
    statistically meaningful — exactly the scaling the bespoke CLI
    handlers used to hard-code.

    ``gate`` names a dispatch option (e.g. ``"mc_check"``) that must be
    truthy for any budget to be spent; otherwise the driver gets 0 runs
    (Figure 7 renders its analytical table only).  ``deterministic``
    drivers get 0 runs always — their output is exact.

    ``stop_rule`` declares the experiment's *adaptive* sequential budget:
    the Wilson-interval :class:`~repro.yieldsim.stats.StopRule` its sweep
    points use when the user opts in (``--adaptive`` / ``--target-ci``).
    A non-``None`` rule marks the driver adaptive-capable — its ``run``
    accepts a ``stop`` knob; the flat budget stays the ceiling either
    way, and adaptive dispatch never happens unless requested.
    """

    divisor: int = 1
    floor: int = 0
    gate: Optional[str] = None
    deterministic: bool = False
    stop_rule: Optional[StopRule] = None

    @property
    def adaptive_capable(self) -> bool:
        """True when the driver accepts a ``stop`` rule."""
        return self.stop_rule is not None

    def resolve_stop(
        self,
        adaptive: bool,
        override: Optional[StopRule] = None,
        target: Optional[float] = None,
    ) -> Optional[StopRule]:
        """The stop rule one dispatch should use, or None for flat.

        ``override`` (a full replacement rule, for API callers) wins over
        everything; ``target`` (``--target-ci``) re-targets the registered
        rule, keeping its batching/min/max so the RNG stream and cache
        semantics stay those the experiment declared.  Either applies
        only when the experiment is adaptive-capable, so ``repro all
        --adaptive`` quietly leaves deterministic and non-sweep
        experiments flat.
        """
        if not self.adaptive_capable:
            return None
        if override is not None:
            return override
        if target is not None:
            return replace(self.stop_rule, target_half_width=float(target))
        return self.stop_rule if adaptive else None

    def effective(self, runs: int, options: Mapping[str, object]) -> int:
        """The driver budget for a requested CLI budget and option set."""
        if self.deterministic:
            return 0
        if self.gate is not None and not options.get(self.gate):
            return 0
        return max(self.floor, runs // self.divisor)

    def describe(self) -> str:
        """Human-readable policy, for ``repro show``."""
        if self.deterministic:
            return "deterministic (budget ignored)"
        text = "runs" if self.divisor == 1 else f"runs // {self.divisor}"
        if self.floor:
            text = f"max({self.floor}, {text})"
        if self.gate is not None:
            text += f" if --{self.gate.replace('_', '-')} else 0"
        if self.stop_rule is not None:
            text += f"; --adaptive: {self.stop_rule.describe()}"
        return text


def stop_rule_dict(rule: Optional[StopRule]) -> Optional[Dict[str, object]]:
    """The one JSON shape of a stop rule (provenance, schema, serving)."""
    if rule is None:
        return None
    return {
        "target_half_width": rule.target_half_width,
        "min_runs": rule.min_runs,
        "max_runs": rule.max_runs,
        "batch_runs": rule.batch_runs,
        "z": rule.z,
        "digest": rule.digest(),
    }


# -- registration record ------------------------------------------------------

ReportFn = Callable[[object, Mapping[str, object]], str]
EpilogueFn = Callable[[object], Sequence[str]]
ChartsFn = Callable[[object], Sequence[Tuple[str, str]]]


@dataclass(frozen=True)
class Experiment:
    """One registered paper artifact and how to run/render it."""

    name: str
    runner: Callable[..., object]
    title: str
    paper_ref: str
    order: int
    aliases: Tuple[str, ...] = ()
    budget: BudgetPolicy = field(default_factory=BudgetPolicy)
    tabular: bool = True
    report: Optional[ReportFn] = None
    epilogue: Optional[EpilogueFn] = None
    charts: Optional[ChartsFn] = None
    #: True when the driver's ``run`` accepts a ``model=`` defect-model
    #: family (the CLI's ``--defect-model`` applies only to these).
    model_knob: bool = False
    #: True when the driver's ``run`` accepts a ``criterion=`` success
    #: criterion (the CLI's ``--criterion`` applies only to these).
    criterion_knob: bool = False

    @property
    def has_charts(self) -> bool:
        return self.charts is not None

    def render_report(self, raw: object, options: Mapping[str, object]) -> str:
        """The experiment's stdout report (drivers' ``format_report``)."""
        if self.report is not None:
            return self.report(raw, options)
        return raw.format_report()

    def render_epilogue(self, raw: object) -> Tuple[str, ...]:
        """Extra report lines printed after the table (e.g. crossovers)."""
        if self.epilogue is None:
            return ()
        return tuple(self.epilogue(raw))

    def render_charts(self, raw: object) -> Tuple[Tuple[str, str], ...]:
        """``(label, ascii chart)`` pairs, empty when unsupported."""
        if self.charts is None:
            return ()
        return tuple(self.charts(raw))

    def as_dict(self) -> Dict[str, object]:
        """The machine-readable descriptor (schema ``REGISTRY_SCHEMA``).

        One schema for every consumer: ``repro list --json`` emits a list
        of these, ``repro show NAME --json`` emits one, and the serving
        layer returns them from ``GET /experiments``.
        """
        doc = (self.runner.__doc__ or "").strip().splitlines()
        return {
            "name": self.name,
            "aliases": list(self.aliases),
            "title": self.title,
            "paper_ref": self.paper_ref,
            "order": self.order,
            "tabular": self.tabular,
            "charts": self.has_charts,
            "model_knob": self.model_knob,
            "criterion_knob": self.criterion_knob,
            "driver": f"{self.runner.__module__}.run",
            "doc": doc[0].strip() if doc else None,
            "budget": {
                "describe": self.budget.describe(),
                "divisor": self.budget.divisor,
                "floor": self.budget.floor,
                "gate": self.budget.gate,
                "deterministic": self.budget.deterministic,
                "adaptive_capable": self.budget.adaptive_capable,
                "stop_rule": stop_rule_dict(self.budget.stop_rule),
            },
        }

    def describe(self) -> str:
        """Detail block for ``repro show``."""
        lines = [
            f"name:      {self.name}",
            f"paper ref: {self.paper_ref}",
            f"title:     {self.title}",
            f"aliases:   {', '.join(self.aliases) if self.aliases else '-'}",
            f"budget:    {self.budget.describe()}",
            f"defects:   {'--defect-model NAME[:k=v,...] supported' if self.model_knob else 'defined by the experiment'}",
            f"criteria:  {'--criterion NAME[:k=v,...] supported' if self.criterion_knob else 'matching (defined by the experiment)'}",
            f"tabular:   {'yes (CSV/JSON artifacts)' if self.tabular else 'no (report only)'}",
            f"charts:    {'yes' if self.has_charts else 'no'}",
            f"driver:    {self.runner.__module__}.run",
        ]
        doc = (self.runner.__doc__ or "").strip().splitlines()
        if doc:
            lines.append(f"doc:       {doc[0].strip()}")
        return "\n".join(lines)


# -- provenance + uniform result ----------------------------------------------

@dataclass(frozen=True)
class Provenance:
    """What produced a result: enough to reproduce or audit it.

    ``runs_requested``/``runs_effective`` are the CLI-level budget and the
    driver budget the policy derived from it.  The ``mc_*`` fields account
    for the Monte-Carlo points the dispatch actually executed through the
    sweep engine: total requested vs. effective (adaptively stopped) runs,
    plus the per-point requested/effective pairs; ``stop_rule`` describes
    the active adaptive rule, or is ``None`` for a flat run.
    """

    experiment: str
    seed: int
    runs_requested: int
    runs_effective: int
    engine_jobs: int
    engine_cache_dir: Optional[str]
    cache_hits: int
    cache_misses: int
    wall_time_s: float
    digest: str
    stop_rule: Optional[Dict[str, object]] = None
    mc_runs_requested: int = 0
    mc_runs_effective: int = 0
    mc_points: Tuple[Tuple[object, ...], ...] = ()
    #: distinct (name, digest) of every explicit defect model the dispatch
    #: sampled from, in first-use order; empty for the classic i.i.d. and
    #: fixed-count regimes.
    defect_models: Tuple[Tuple[str, str], ...] = ()
    #: distinct (spec, digest) of every success criterion the dispatch
    #: evaluated, in first-use order; empty for default matching points.
    criteria: Tuple[Tuple[str, str], ...] = ()
    #: merged criterion-funnel counters across the dispatch's computed
    #: criterion points (None when nothing was computed, e.g. all cached).
    criterion_funnel: Optional[Dict[str, int]] = None
    #: nonzero resilience incident counters the dispatch survived
    #: (retries, pool rebuilds, checkpoint resumes, quarantined cache
    #: entries...); None for the common incident-free run.  Volatile
    #: telemetry like the funnel: manifest only, never the stable dict —
    #: a recovered run's *results* are identical to an uninterrupted one.
    resilience: Optional[Dict[str, int]] = None
    #: nonzero tiered cache-store traffic (local/remote hits and misses,
    #: uploads, bytes up/down) when the engine ran with a shared store;
    #: None otherwise.  Volatile telemetry like resilience: manifest
    #: only, never the stable dict — where a point came from can never
    #: change its value.
    cache: Optional[Dict[str, int]] = None
    #: per-phase wall/CPU seconds summed over the dispatch's *computed*
    #: points (worker unit totals, funnel phases, parent-side cache/fold
    #: costs); None when every point was a cache hit.  Volatile telemetry
    #: like resilience: manifest only, never the stable dict.
    timings: Optional[Dict[str, float]] = None

    def _defect_model_block(self) -> Dict[str, object]:
        """The ``defect_models`` entry, present only for model dispatches.

        Omitted (not emptied) for the classic i.i.d./fixed regimes so
        their artifacts stay byte-identical to pre-subsystem bundles.
        """
        if not self.defect_models:
            return {}
        return {
            "defect_models": [
                {"name": name, "digest": digest}
                for name, digest in self.defect_models
            ]
        }

    def _criteria_block(self) -> Dict[str, object]:
        """The ``criteria`` entry, present only for criterion dispatches.

        Same omission contract as :meth:`_defect_model_block`: default
        matching dispatches emit nothing, keeping their artifacts
        byte-identical to pre-subsystem bundles.  The funnel counters are
        volatile telemetry (cache hits have none), so they appear in
        ``as_dict`` — the manifest — but never in :meth:`stable_dict`.
        """
        if not self.criteria:
            return {}
        return {
            "criteria": [
                {"spec": spec, "digest": digest}
                for spec, digest in self.criteria
            ]
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "seed": self.seed,
            "runs_requested": self.runs_requested,
            "runs_effective": self.runs_effective,
            "engine": {
                "jobs": self.engine_jobs,
                "cache_dir": self.engine_cache_dir,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                # Recovery incidents survived during the dispatch; absent
                # for the incident-free run so legacy manifests compare.
                **(
                    {"resilience": dict(self.resilience)}
                    if self.resilience
                    else {}
                ),
                # Tier traffic of the shared cache store, when one was
                # configured; absent otherwise so legacy manifests compare.
                **({"cache": dict(self.cache)} if self.cache else {}),
                # Where the dispatch's compute time went, summed across
                # its computed points; absent for all-cached dispatches.
                **({"timings": dict(self.timings)} if self.timings else {}),
            },
            "budget": {
                "stop_rule": self.stop_rule,
                "mc_runs_requested": self.mc_runs_requested,
                "mc_runs_effective": self.mc_runs_effective,
                # One [kind, param, requested, effective] row per executed
                # Monte-Carlo point, in execution order.
                "points": [list(point) for point in self.mc_points],
                # Which failure-map distributions produced those points.
                **self._defect_model_block(),
                # Which success predicates judged them, plus the merged
                # screen-vs-residue funnel counters of the computation.
                **self._criteria_block(),
                **(
                    {"criterion_funnel": dict(self.criterion_funnel)}
                    if self.criterion_funnel is not None
                    else {}
                ),
            },
            "wall_time_s": round(self.wall_time_s, 6),
            "digest": self.digest,
        }

    def stable_dict(self) -> Dict[str, object]:
        """The result-invariant subset: what goes into diffable artifacts.

        Wall time, cache traffic, and the engine configuration (jobs and
        the machine-local cache path — results are bit-identical across
        them by the engine's contract) vary between runs that produce the
        same numbers, so they live only in ``manifest.json`` (see
        :mod:`repro.experiments.artifacts`); everything here is a pure
        function of (experiment, seed, budget, stop rule) — adaptive
        effective budgets are deterministic given the seed.
        """
        return {
            "experiment": self.experiment,
            "seed": self.seed,
            "runs_requested": self.runs_requested,
            "runs_effective": self.runs_effective,
            "stop_rule": self.stop_rule,
            "mc_runs_requested": self.mc_runs_requested,
            "mc_runs_effective": self.mc_runs_effective,
            **self._defect_model_block(),
            **self._criteria_block(),
            "digest": self.digest,
        }


@dataclass(frozen=True)
class ExperimentResult:
    """Uniform wrapper every dispatch returns, whatever the driver."""

    experiment: Experiment
    raw: object
    report: str
    epilogue: Tuple[str, ...]
    headers: Optional[Tuple[str, ...]]
    rows: Optional[Tuple[Tuple[object, ...], ...]]
    provenance: Provenance
    #: lazy chart cache; charts render only when something consumes them
    _charts: Optional[Tuple[Tuple[str, str], ...]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def charts(self) -> Tuple[Tuple[str, str], ...]:
        """``(label, ascii chart)`` pairs, rendered on first access.

        Plain report runs (no ``--chart``, no ``--out``) never pay for
        chart rendering, matching the old bespoke handlers.
        """
        if self._charts is None:
            object.__setattr__(
                self, "_charts", self.experiment.render_charts(self.raw)
            )
        return self._charts

    @property
    def name(self) -> str:
        return self.experiment.name

    @property
    def tabular(self) -> bool:
        return self.headers is not None

    def report_text(self) -> str:
        """Report plus epilogue lines — what ``repro <name>`` prints."""
        return "\n".join((self.report, *self.epilogue))

    def canonical_report_text(self) -> str:
        """Report rendered at default options, plus epilogue lines.

        This is what the artifact pipeline writes to ``report.txt``: for
        every experiment whose report ignores rendering options it equals
        :meth:`report_text`; for option-sensitive reports (figs3to6 embeds
        layout art under ``--chart``) it is the flag-independent form, so
        bundles stay byte-identical whatever flags produced them.
        """
        canonical = self.experiment.render_report(self.raw, {})
        return "\n".join((canonical, *self.epilogue))


def result_digest(
    headers: Optional[Sequence[str]],
    rows: Optional[Sequence[Sequence[object]]],
    report: str,
) -> str:
    """Stable SHA-256 of a result: its table if tabular, else its report."""
    if headers is not None:
        blob = json.dumps(
            {
                "headers": list(headers),
                "rows": [[str(v) for v in row] for row in rows or ()],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
    else:
        blob = report
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- the registry -------------------------------------------------------------

_REGISTRY: Dict[str, Experiment] = {}
_ALIASES: Dict[str, str] = {}


def register(
    name: str,
    *,
    title: str,
    paper_ref: str,
    order: int,
    aliases: Sequence[str] = (),
    budget: Optional[BudgetPolicy] = None,
    tabular: bool = True,
    report: Optional[ReportFn] = None,
    epilogue: Optional[EpilogueFn] = None,
    charts: Optional[ChartsFn] = None,
    model_knob: bool = False,
    criterion_knob: bool = False,
) -> Callable[[Callable[..., object]], Callable[..., object]]:
    """Class the decorated ``run`` function as a registered experiment.

    Returns the function unchanged, so ``<module>.run(...)`` keeps working
    for direct callers (tests, benchmarks, notebooks).
    """

    def decorate(fn: Callable[..., object]) -> Callable[..., object]:
        experiment = Experiment(
            name=name,
            runner=fn,
            title=title,
            paper_ref=paper_ref,
            order=order,
            aliases=tuple(aliases),
            budget=budget if budget is not None else BudgetPolicy(),
            tabular=tabular,
            report=report,
            epilogue=epilogue,
            charts=charts,
            model_knob=model_knob,
            criterion_knob=criterion_knob,
        )
        _add(experiment)
        return fn

    return decorate


def _add(experiment: Experiment) -> None:
    for key in (experiment.name, *experiment.aliases):
        owner = _ALIASES.get(key)
        if owner is not None and owner != experiment.name:
            raise ExperimentError(
                f"experiment name/alias {key!r} already registered by {owner!r}"
            )
    previous = _REGISTRY.get(experiment.name)
    if previous is not None:
        # Re-registration (module reload) replaces the record in place.
        for alias in previous.aliases:
            _ALIASES.pop(alias, None)
    _REGISTRY[experiment.name] = experiment
    _ALIASES[experiment.name] = experiment.name
    for alias in experiment.aliases:
        _ALIASES[alias] = experiment.name


def get(name: str) -> Experiment:
    """Look up an experiment by name or alias."""
    canonical = _ALIASES.get(name)
    if canonical is None:
        known = ", ".join(names())
        raise ExperimentError(f"unknown experiment {name!r} (known: {known})")
    return _REGISTRY[canonical]


def all_experiments() -> List[Experiment]:
    """Every registered experiment, in paper (registration-order) order."""
    return sorted(_REGISTRY.values(), key=lambda e: (e.order, e.name))


def names() -> List[str]:
    """Canonical experiment names, in paper order."""
    return [experiment.name for experiment in all_experiments()]


def listing() -> Dict[str, object]:
    """The full machine-readable registry, in paper order.

    The payload behind ``repro list --json`` and the serving layer's
    ``GET /experiments``; ``schema`` is bumped whenever the descriptor
    shape changes.
    """
    return {
        "schema": REGISTRY_SCHEMA,
        "experiments": [experiment.as_dict() for experiment in all_experiments()],
    }


# -- generic dispatch ---------------------------------------------------------

def execute(
    experiment: Union[str, Experiment],
    *,
    runs: int = DEFAULT_CLI_RUNS,
    seed: int = DEFAULT_SEED,
    engine: Optional[SweepEngine] = None,
    options: Optional[Mapping[str, object]] = None,
    knobs: Optional[Mapping[str, object]] = None,
    stop: Optional[StopRule] = None,
) -> ExperimentResult:
    """Run one experiment through the uniform pipeline.

    ``runs``/``seed`` are the user-facing budget and seed; the experiment's
    :class:`BudgetPolicy` derives the driver budget.  ``options`` are
    rendering/dispatch flags (``chart``, ``mc_check``, ``adaptive``);
    ``knobs`` are passed through to the driver verbatim (grid overrides
    etc.).  ``stop`` replaces the experiment's registered stop rule
    wholesale; the ``target_ci`` option re-targets the registered rule
    instead.  Either way adaptive budgets apply only to adaptive-capable
    experiments, and only when requested (``stop``, ``target_ci`` or the
    ``adaptive`` option).
    """
    if isinstance(experiment, str):
        experiment = get(experiment)
    options = dict(options or {})
    effective = experiment.budget.effective(runs, options)
    rule = experiment.budget.resolve_stop(
        bool(options.get("adaptive")),
        override=stop,
        target=options.get("target_ci"),
    )

    # Budget accounting covers whatever engine the driver will actually
    # use: the one passed in, or the shared default.
    from repro.yieldsim.sweeps import default_engine

    track = engine if engine is not None else default_engine()
    hits0, misses0 = track.cache_hits, track.cache_misses
    res0 = track.resilience.as_dict()
    store0 = track.store_stats.as_dict()
    log0 = len(track.point_log)
    knobs = dict(knobs or {})
    if rule is not None:
        knobs["stop"] = rule
    start = time.perf_counter()
    raw = experiment.runner(
        runs=effective, seed=seed, engine=engine, **knobs
    )
    wall = time.perf_counter() - start
    points = track.point_log[log0:]
    models: List[Tuple[str, str]] = []
    criteria: List[Tuple[str, str]] = []
    funnel: Optional[Dict[str, int]] = None
    timings: Dict[str, float] = {}
    for point in points:
        if point.timings:
            for key, value in point.timings.items():
                timings[key] = timings.get(key, 0.0) + float(value)
        if point.model is not None and point.model_digest is not None:
            pair = (point.model, point.model_digest)
            if pair not in models:
                models.append(pair)
        if point.criterion is not None and point.criterion_digest is not None:
            pair = (point.criterion, point.criterion_digest)
            if pair not in criteria:
                criteria.append(pair)
            if point.funnel is not None:
                if funnel is None:
                    funnel = dict.fromkeys(point.funnel, 0)
                for key, value in point.funnel.items():
                    funnel[key] = funnel.get(key, 0) + int(value)

    report = experiment.render_report(raw, options)
    epilogue = experiment.render_epilogue(raw)
    headers: Optional[Tuple[str, ...]] = None
    rows: Optional[Tuple[Tuple[object, ...], ...]] = None
    if experiment.tabular:
        headers = tuple(str(h) for h in raw.headers)
        rows = tuple(tuple(row) for row in raw.rows)

    provenance = Provenance(
        experiment=experiment.name,
        seed=seed,
        runs_requested=runs,
        runs_effective=effective,
        engine_jobs=engine.jobs if engine is not None else 1,
        engine_cache_dir=engine.cache_dir if engine is not None else None,
        cache_hits=track.cache_hits - hits0,
        cache_misses=track.cache_misses - misses0,
        wall_time_s=wall,
        digest=result_digest(headers, rows, report),
        stop_rule=stop_rule_dict(rule),
        mc_runs_requested=sum(point.requested for point in points),
        mc_runs_effective=sum(point.effective for point in points),
        mc_points=tuple(
            (point.kind, point.param, point.requested, point.effective)
            for point in points
        ),
        defect_models=tuple(models),
        criteria=tuple(criteria),
        criterion_funnel=funnel,
        resilience=(
            ResilienceStats.delta(res0, track.resilience.as_dict()) or None
        ),
        cache=(
            StoreStats.delta(store0, track.store_stats.as_dict()) or None
        ),
        timings=(
            {k: round(v, 6) for k, v in sorted(timings.items())} or None
        ),
    )
    return ExperimentResult(
        experiment=experiment,
        raw=raw,
        report=report,
        epilogue=epilogue,
        headers=headers,
        rows=rows,
        provenance=provenance,
    )
