"""Design targeting: "different levels of redundancy ... to target given
yield levels and manufacturing processes" (Section 1), made operational.

For a grid of process qualities and yield targets, run the selector and
tabulate which architecture is the cheapest adequate choice.  This is the
design-method payoff of the paper: the table a biochip architect would
pin above their desk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.designs.catalog import TABLE1_DESIGNS
from repro.designs.selector import recommend_design
from repro.designs.spec import DesignSpec
from repro.experiments.registry import BudgetPolicy, register
from repro.experiments.report import format_table
from repro.yieldsim.engine import SweepEngine

__all__ = ["TargetingResult", "run"]

DEFAULT_TARGETS: Tuple[float, ...] = (0.80, 0.90, 0.95, 0.99)
DEFAULT_PS: Tuple[float, ...] = (0.90, 0.93, 0.96, 0.99)


@dataclass(frozen=True)
class TargetingResult:
    """Cheapest adequate design per (p, target-yield) grid point."""

    n: int
    targets: Tuple[float, ...]
    ps: Tuple[float, ...]
    table: Dict[Tuple[float, float], str]  # (p, target) -> design or "-"

    def choice(self, p: float, target: float) -> str:
        return self.table[(p, target)]

    @property
    def headers(self) -> List[str]:
        return ["p \\ target"] + [f"Y>={t:.2f}" for t in self.targets]

    @property
    def rows(self) -> List[Tuple[object, ...]]:
        return [
            tuple(
                [f"{p:.2f}"]
                + [self.table[(p, t)] for t in self.targets]
            )
            for p in self.ps
        ]

    def format_report(self) -> str:
        return format_table(self.headers, self.rows)


@register(
    "targeting",
    title="Cheapest adequate design per process quality and yield target",
    paper_ref="Section 1 (design method)",
    order=130,
    aliases=("design-targeting",),
    budget=BudgetPolicy(divisor=3, floor=500),
)
def run(
    *,
    runs: int = 3000,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    n: int = 100,
    targets: Sequence[float] = DEFAULT_TARGETS,
    ps: Sequence[float] = DEFAULT_PS,
    designs: Sequence[DesignSpec] = TABLE1_DESIGNS,
) -> TargetingResult:
    """Build the (process quality x yield target) design-choice table.

    ``runs`` is the Monte-Carlo budget per recommendation; the selector
    runs its own small sweeps, so ``engine`` is accepted for the uniform
    experiment signature but has no effect.

    ``"-"`` marks infeasible corners (no catalog design reaches the
    target); they appear at low p with aggressive targets, which is the
    paper's motivation for *designing in* redundancy rather than relying
    on process maturity.
    """
    table: Dict[Tuple[float, float], str] = {}
    for i, p in enumerate(ps):
        for j, target in enumerate(targets):
            rec = recommend_design(
                target,
                p,
                n=n,
                designs=designs,
                runs=runs,
                seed=seed + 97 * i + j,
            )
            table[(p, target)] = rec.chosen.name if rec.feasible else "-"
    return TargetingResult(
        n=n, targets=tuple(targets), ps=tuple(ps), table=table
    )
