"""Experiment drivers: one module per paper table/figure plus ablations.

====================  ============================================
module                reproduces
====================  ============================================
``table1``            Table 1 (redundancy ratios)
``fig2``              Figure 2 (shifted-replacement cost)
``figs3to6``          Figures 3-6 (DTMB layouts + graph structure)
``fig7``              Figure 7 (DTMB(1,6) analytical yield)
``fig9``              Figure 9 (Monte-Carlo yield, s > 1 designs)
``fig10``             Figure 10 (effective yield, crossovers)
``fig11``             Figure 11 (fabricated-chip baseline, 0.3378)
``fig12``             Figure 12 (redesign + example reconfiguration)
``fig13``             Figure 13 (yield vs fault count, >= 0.90 @ 35)
``ablation_*``        design-choice ablations (matching, defects,
                      hex-vs-square electrodes)
``design_targeting``  the (process, target-yield) design selector
``scenario_*``        scenario packs: paper figures rerun under the
                      pluggable spatial defect models (clustered
                      spots, wafer gradients, rate mixing) and under
                      the pluggable functional success criteria
                      (routing-aware and multiplexed yield)
====================  ============================================

Figure 8 (the bipartite-matching example) is exercised directly by the
:mod:`repro.reconfig.bipartite` unit tests and by every Figure 9/13 run.

Every driver exposes a uniform ``run(*, runs, seed, engine, **knobs)``
and registers itself into :mod:`repro.experiments.registry` — the single
source of truth the CLI, the artifact pipeline
(:mod:`repro.experiments.artifacts`), the benchmarks and the tests all
dispatch through.  Importing this package populates the registry.
"""

from repro.experiments import (  # noqa: F401 - re-exported driver modules
    ablation_defects,
    ablation_hexsquare,
    ablation_matching,
    design_targeting,
    fig2,
    fig7,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    figs3to6,
    scenario_clustered,
    scenario_functional,
    table1,
)
from repro.experiments import artifacts, registry  # noqa: F401
from repro.experiments.report import format_table

__all__ = [
    "table1",
    "fig2",
    "figs3to6",
    "fig7",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "ablation_matching",
    "ablation_defects",
    "ablation_hexsquare",
    "design_targeting",
    "scenario_clustered",
    "scenario_functional",
    "registry",
    "artifacts",
    "format_table",
]
