"""Figure 7: analytical yield of DTMB(1,6) vs the non-redundant baseline.

``Y = (p^7 + 7 p^6 (1-p))^(n/6)`` against ``Y = p^n`` for several array
sizes over the high-survival regime.  A Monte-Carlo cross-check column
validates the cluster approximation on a real finite array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.designs.interstitial import build_flower_chip
from repro.experiments.registry import DEFAULT_STOP_RULE, BudgetPolicy, register
from repro.experiments.report import format_table
from repro.viz.plot import ascii_chart
from repro.yieldsim.analytical import dtmb16_yield, yield_no_redundancy
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.stats import StopRule
from repro.yieldsim.sweeps import DEFAULT_P_GRID, default_engine

__all__ = ["Fig7Result", "run"]

DEFAULT_NS: Tuple[int, ...] = (60, 120, 240, 480)


@dataclass(frozen=True)
class Fig7Result:
    """Analytical curves plus an optional Monte-Carlo check series."""

    ns: Tuple[int, ...]
    ps: Tuple[float, ...]
    series: Dict[str, List[Tuple[float, float]]]
    montecarlo_check: Dict[float, float]

    @property
    def headers(self) -> List[str]:
        cols = ["p"]
        for n in self.ns:
            cols.append(f"DTMB(1,6) n={n}")
            cols.append(f"no spares n={n}")
        if self.montecarlo_check:
            cols.append(f"MC check n={self.ns[0]}")
        return cols

    @property
    def rows(self) -> List[Tuple[object, ...]]:
        out = []
        for p in self.ps:
            row: List[object] = [f"{p:.2f}"]
            for n in self.ns:
                row.append(f"{dtmb16_yield(p, n):.4f}")
                row.append(f"{yield_no_redundancy(p, n):.4f}")
            if self.montecarlo_check:
                row.append(f"{self.montecarlo_check[p]:.4f}")
            out.append(tuple(row))
        return out

    def format_report(self) -> str:
        return format_table(self.headers, self.rows)

    def format_chart(self) -> str:
        return ascii_chart(
            self.series,
            title="Figure 7: DTMB(1,6) analytical yield vs no redundancy",
            y_label="yield",
            x_label="cell survival probability p",
        )


@register(
    "fig7",
    title="Analytical yield of DTMB(1,6) vs the non-redundant baseline",
    paper_ref="Figure 7",
    order=40,
    budget=BudgetPolicy(gate="mc_check", stop_rule=DEFAULT_STOP_RULE),
    charts=lambda raw: (("yield-vs-p", raw.format_chart()),),
    criterion_knob=True,
)
def run(
    *,
    runs: int = 0,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    ns: Sequence[int] = DEFAULT_NS,
    ps: Sequence[float] = DEFAULT_P_GRID,
    stop: Optional[StopRule] = None,
    criterion: Optional[object] = None,
) -> Fig7Result:
    """Analytical Figure 7; set ``runs`` > 0 to add a Monte-Carlo check.

    The Monte-Carlo column simulates a flower-complete DTMB(1,6) array
    (every primary owns its spare, as the cluster model assumes) with the
    smallest requested n; the analytical curve should match it within
    Monte-Carlo noise.  The check runs through the sweep engine's
    screening kernel (closed-form for degree-1 designs, no matching).

    ``criterion`` replaces the check column's success predicate with a
    functional one (see :mod:`repro.functional`): the analytical curves
    are unchanged, but the Monte-Carlo column then reports functional
    yield — which the cluster approximation does *not* model, so gaps are
    expected (and are the point).
    """
    series: Dict[str, List[Tuple[float, float]]] = {}
    for n in ns:
        series[f"DTMB(1,6) n={n}"] = [(p, dtmb16_yield(p, n)) for p in ps]
        series[f"no spares n={n}"] = [
            (p, yield_no_redundancy(p, n)) for p in ps
        ]
    check: Dict[float, float] = {}
    if runs > 0:
        chip = build_flower_chip(ns[0])
        estimates = (engine or default_engine()).survival_estimates(
            chip, [(p, seed + i) for i, p in enumerate(ps)], runs,
            stop=stop, criterion=criterion,
        )
        check = {p: est.value for p, est in zip(ps, estimates)}
    return Fig7Result(
        ns=tuple(ns), ps=tuple(ps), series=series, montecarlo_check=check
    )
