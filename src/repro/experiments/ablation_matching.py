"""Ablation: does the matching algorithm matter?

The paper prescribes a *maximum* bipartite matching.  A cheaper greedy
(maximal) matching can under-repair: it may strand a faulty cell whose
spare was greedily taken by a neighbor, wrongly scrapping a repairable
chip.  This ablation measures, over seeded random fault maps:

* how often greedy reaches the optimum (and how much yield it forfeits);
* that Kuhn and Hopcroft-Karp always agree (both maximum);
* relative runtime of the three algorithms on repair graphs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.designs.catalog import DTMB_2_6
from repro.designs.interstitial import build_with_primary_count
from repro.experiments.registry import BudgetPolicy, register
from repro.experiments.report import format_table
from repro.faults.injection import BernoulliInjector
from repro.reconfig.bipartite import (
    MATCHING_ALGORITHMS,
    BipartiteGraph,
    saturates_left,
)
from repro.reconfig.local import build_repair_graph
from repro.yieldsim.engine import SweepEngine

__all__ = ["MatchingAblationResult", "run"]


@dataclass(frozen=True)
class MatchingAblationResult:
    """Per-algorithm repair statistics over the same fault maps."""

    trials: int
    repaired: Dict[str, int]
    disagreements: int  # greedy says no, maximum says yes
    kuhn_hk_mismatches: int  # should always be zero
    seconds: Dict[str, float]

    @property
    def headers(self) -> List[str]:
        return ["algorithm", "chips repaired", "repair rate", "seconds"]

    @property
    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (
                name,
                self.repaired[name],
                f"{self.repaired[name] / self.trials:.4f}",
                f"{self.seconds[name]:.3f}",
            )
            for name in sorted(self.repaired)
        ]

    def format_report(self) -> str:
        table = format_table(self.headers, self.rows)
        return (
            table
            + f"\n\ngreedy under-repairs: {self.disagreements} / {self.trials}"
            + f"\nkuhn vs hopcroft-karp mismatches: {self.kuhn_hk_mismatches}"
        )


@register(
    "ablation-matching",
    title="Matching-algorithm ablation: greedy vs maximum matching",
    paper_ref="Section 4 (ablation)",
    order=100,
    budget=BudgetPolicy(divisor=5, floor=100),
)
def run(
    *,
    runs: int = 2000,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    n: int = 240,
    p: float = 0.93,
) -> MatchingAblationResult:
    """Compare the three algorithms on identical DTMB(2,6) fault maps.

    ``runs`` is the number of fault-map trials.  The per-run timing loop
    is intrinsically serial, so ``engine`` is accepted for the uniform
    experiment signature but has no effect.
    """
    trials = runs
    chip = build_with_primary_count(DTMB_2_6, n).build()
    injector = BernoulliInjector(p)
    repaired = {name: 0 for name in MATCHING_ALGORITHMS}
    seconds = {name: 0.0 for name in MATCHING_ALGORITHMS}
    disagreements = 0
    mismatches = 0
    for t in range(trials):
        working = chip.copy()
        injector.sample(working, seed=seed + t).apply_to(working)
        graph: BipartiteGraph = build_repair_graph(working)
        outcomes: Dict[str, bool] = {}
        for name, algorithm in MATCHING_ALGORITHMS.items():
            start = time.perf_counter()
            matching = algorithm(graph)
            seconds[name] += time.perf_counter() - start
            ok = saturates_left(graph, matching)
            outcomes[name] = ok
            if ok:
                repaired[name] += 1
        if outcomes["hopcroft-karp"] and not outcomes["greedy"]:
            disagreements += 1
        if outcomes["kuhn"] != outcomes["hopcroft-karp"]:
            mismatches += 1
    return MatchingAblationResult(
        trials=trials,
        repaired=repaired,
        disagreements=disagreements,
        kuhn_hk_mismatches=mismatches,
        seconds=seconds,
    )
