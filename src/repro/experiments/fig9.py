"""Figure 9: Monte-Carlo yield of DTMB(2,6), DTMB(3,6) and DTMB(4,4).

For designs with s > 1 the spare assignment is a matching problem, so the
paper estimates yield by simulation: 10 000 fault maps per point, repair
checked by maximum bipartite matching.  Yield is reported against survival
probability p for several array sizes n; the expected shape is
DTMB(4,4) >= DTMB(3,6) >= DTMB(2,6) at every point, with yield falling as
n grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.designs.catalog import DTMB_2_6, DTMB_3_6, DTMB_4_4
from repro.designs.spec import DesignSpec
from repro.experiments.registry import DEFAULT_STOP_RULE, BudgetPolicy, register
from repro.experiments.report import format_table
from repro.viz.plot import ascii_chart
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.montecarlo import DEFAULT_RUNS
from repro.yieldsim.stats import StopRule
from repro.yieldsim.sweeps import DEFAULT_P_GRID, SurvivalPoint, survival_sweep

__all__ = ["Fig9Result", "run", "DEFAULT_DESIGNS", "DEFAULT_NS"]

DEFAULT_DESIGNS: Tuple[DesignSpec, ...] = (DTMB_2_6, DTMB_3_6, DTMB_4_4)
DEFAULT_NS: Tuple[int, ...] = (60, 120, 240)


@dataclass(frozen=True)
class Fig9Result:
    """All sweep points plus convenient series views."""

    points: Tuple[SurvivalPoint, ...]

    def series(self, n: int) -> Dict[str, List[Tuple[float, float]]]:
        """Per-design (p, yield) series at one array size."""
        out: Dict[str, List[Tuple[float, float]]] = {}
        for point in self.points:
            if point.n == n:
                out.setdefault(point.design, []).append(
                    (point.p, point.yield_value)
                )
        return out

    def yield_at(self, design: str, n: int, p: float) -> float:
        for point in self.points:
            if point.design == design and point.n == n and abs(point.p - p) < 1e-9:
                return point.yield_value
        raise KeyError(f"no point for {design} n={n} p={p}")

    @property
    def headers(self) -> List[str]:
        return ["design", "n", "p", "yield", "ci lo", "ci hi"]

    @property
    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (
                pt.design,
                pt.n,
                f"{pt.p:.2f}",
                f"{pt.yield_value:.4f}",
                f"{pt.estimate.lo:.4f}",
                f"{pt.estimate.hi:.4f}",
            )
            for pt in self.points
        ]

    def format_report(self) -> str:
        return format_table(self.headers, self.rows)

    def format_chart(self, n: int) -> str:
        return ascii_chart(
            self.series(n),
            title=f"Figure 9: Monte-Carlo yield, n={n} primary cells",
            y_label="yield",
            x_label="cell survival probability p",
        )


@register(
    "fig9",
    title="Monte-Carlo yield of DTMB(2,6), DTMB(3,6) and DTMB(4,4)",
    paper_ref="Figure 9",
    order=50,
    budget=BudgetPolicy(stop_rule=DEFAULT_STOP_RULE),
    model_knob=True,
    criterion_knob=True,
    charts=lambda raw: tuple(
        (f"n-{n}", raw.format_chart(n)) for n in sorted({pt.n for pt in raw.points})
    ),
)
def run(
    *,
    runs: int = DEFAULT_RUNS,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    designs: Sequence[DesignSpec] = DEFAULT_DESIGNS,
    ns: Sequence[int] = DEFAULT_NS,
    ps: Sequence[float] = DEFAULT_P_GRID,
    stop: Optional[StopRule] = None,
    model=None,
    criterion=None,
) -> Fig9Result:
    """The Figure 9 sweep (paper defaults: 10 000 runs per point).

    Pass a configured :class:`SweepEngine` to shard the 99 points across
    worker processes and/or reuse an on-disk result cache; pass a
    :class:`StopRule` to let each point stop as soon as its Wilson
    interval is as narrow as the figure needs; pass a defect-model family
    (``model``, e.g. ``family_from_spec("spot:radius=1")`` — the CLI's
    ``--defect-model``) to rerun the figure under a spatial defect regime;
    pass a success criterion (``criterion``, e.g.
    ``criterion_from_spec("routing:assay=glucose")`` — the CLI's
    ``--criterion``) to report functional yield instead of matching yield.
    """
    points = survival_sweep(
        designs, ns, ps, runs=runs, seed=seed, engine=engine, stop=stop,
        model=model, criterion=criterion,
    )
    return Fig9Result(points=tuple(points))
