"""Table 1: redundancy ratios of the defect-tolerant architectures.

The paper's Table 1 lists the asymptotic RR of DTMB(1,6), DTMB(2,6),
DTMB(3,6) and DTMB(4,4).  We reproduce it and additionally show the
realized RR of finite arrays converging to the asymptote as the footprint
grows — the boundary-clipping effect Definition 2 glosses over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.designs.catalog import TABLE1_DESIGNS
from repro.designs.interstitial import build_chip
from repro.designs.spec import DesignSpec
from repro.experiments.report import format_table
from repro.experiments.registry import BudgetPolicy, register
from repro.geometry.hexgrid import RectRegion
from repro.yieldsim.engine import SweepEngine

__all__ = ["Table1Result", "run"]

#: Paper's Table 1 values, for the report's reference column.
PAPER_RR = {
    "DTMB(1,6)": 0.1667,
    "DTMB(2,6)": 0.3333,
    "DTMB(3,6)": 0.5000,
    "DTMB(4,4)": 1.0000,
}

DEFAULT_SIZES: Tuple[int, ...] = (8, 16, 32, 64)


@dataclass(frozen=True)
class Table1Result:
    """Asymptotic and finite-array redundancy ratios per design."""

    sizes: Tuple[int, ...]
    rows: Tuple[Tuple[object, ...], ...]

    @property
    def headers(self) -> List[str]:
        return (
            ["design", "RR (s/p)", "RR (paper)"]
            + [f"RR {s}x{s}" for s in self.sizes]
        )

    def format_report(self) -> str:
        return format_table(self.headers, self.rows)


@register(
    "table1",
    title="Redundancy ratios of the defect-tolerant architectures",
    paper_ref="Table 1",
    order=10,
    budget=BudgetPolicy(deterministic=True),
)
def run(
    *,
    runs: int = 0,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    designs: Sequence[DesignSpec] = TABLE1_DESIGNS,
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> Table1Result:
    """Compute Table 1 with finite-size convergence columns.

    Deterministic: ``runs``, ``seed`` and ``engine`` are accepted for the
    uniform experiment signature but have no effect.
    """
    rows = []
    for spec in designs:
        finite = []
        for size in sizes:
            chip = build_chip(spec, RectRegion(size, size))
            finite.append(f"{chip.redundancy_ratio():.4f}")
        rows.append(
            (
                spec.name,
                f"{float(spec.redundancy_ratio):.4f}",
                f"{PAPER_RR.get(spec.name, float('nan')):.4f}",
                *finite,
            )
        )
    return Table1Result(sizes=tuple(sizes), rows=tuple(rows))
