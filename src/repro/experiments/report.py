"""Shared report formatting for experiment drivers.

Every driver returns a result object exposing ``headers`` and ``rows``;
:func:`format_table` renders them with aligned columns so benchmarks and
examples print the same tables the paper reports.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import ReproError

__all__ = ["format_table", "format_float"]


def format_float(value: float, digits: int = 4) -> str:
    """Fixed-point formatting used across reports (yields, ratios)."""
    return f"{value:.{digits}f}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Monospace table with a header rule, columns right-padded."""
    if not headers:
        raise ReproError("table needs at least one column")
    str_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row has {len(row)} fields but header has {len(headers)}"
            )
        str_rows.append([str(v) for v in row])
    widths = [
        max(len(r[i]) for r in str_rows) for i in range(len(headers))
    ]
    lines = []
    for idx, row in enumerate(str_rows):
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
