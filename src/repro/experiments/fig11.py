"""Figure 11: the fabricated multiplexed-diagnostics chip baseline.

The first-generation chip contains only the 108 assay cells — no spares —
so any single catastrophic fault scraps it: ``Y = p**108``.  The paper's
headline baseline number is Y = 0.3378 at p = 0.99.  This driver reproduces
the full curve and confirms the assay pipeline runs on the fault-free
square-electrode chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.assays.chipspec import PAPER_USED_COUNT, fabricated_chip
from repro.experiments.registry import BudgetPolicy, register
from repro.experiments.report import format_table
from repro.yieldsim.analytical import yield_no_redundancy
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.sweeps import DEFAULT_P_GRID

__all__ = ["Fig11Result", "run", "PAPER_BASELINE_P", "PAPER_BASELINE_YIELD"]

#: "It is only 0.3378 even if the survival probability ... is as high as 0.99."
PAPER_BASELINE_P = 0.99
PAPER_BASELINE_YIELD = 0.3378


@dataclass(frozen=True)
class Fig11Result:
    """Non-redundant baseline yield curve for the 108-cell chip."""

    cells: int
    ps: Tuple[float, ...]
    yields: Tuple[float, ...]

    def yield_at(self, p: float) -> float:
        for pi, y in zip(self.ps, self.yields):
            if abs(pi - p) < 1e-9:
                return y
        raise KeyError(f"no point at p={p}")

    @property
    def headers(self) -> List[str]:
        return ["p", f"yield ({self.cells} cells, no spares)"]

    @property
    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (f"{p:.2f}", f"{y:.4f}") for p, y in zip(self.ps, self.yields)
        ]

    def format_report(self) -> str:
        return format_table(self.headers, self.rows)


@register(
    "fig11",
    title="Fabricated-chip baseline: Y = p^108, 0.3378 at p = 0.99",
    paper_ref="Figure 11",
    order=70,
    budget=BudgetPolicy(deterministic=True),
)
def run(
    *,
    runs: int = 0,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    ps: Sequence[float] = DEFAULT_P_GRID,
) -> Fig11Result:
    """Yield curve of the fabricated chip (exact, no simulation needed).

    Deterministic: ``runs``, ``seed`` and ``engine`` are accepted for the
    uniform experiment signature but have no effect.
    """
    chip = fabricated_chip()
    cells = len(chip)
    assert cells == PAPER_USED_COUNT
    yields = tuple(yield_no_redundancy(p, cells) for p in ps)
    return Fig11Result(cells=cells, ps=tuple(ps), yields=yields)
