"""Figures 3-6: the DTMB layouts and their graph-model properties.

The paper's Figures 3-6 draw the four interstitial architectures (plus an
alternative DTMB(2,6)) and their primary/spare adjacency graphs.  This
driver regenerates each layout, verifies Definition 1 empirically — every
non-boundary primary adjacent to exactly s spares, every interior spare to
exactly p primaries — and reports the realized redundancy ratios, with an
ASCII rendering per design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.designs.catalog import ALL_DESIGNS
from repro.designs.interstitial import build_chip
from repro.designs.spec import DesignSpec
from repro.designs.verify import verify_design
from repro.experiments.registry import BudgetPolicy, register
from repro.experiments.report import format_table
from repro.geometry.hexgrid import RectRegion
from repro.viz.ascii_art import render_chip
from repro.yieldsim.engine import SweepEngine

__all__ = ["LayoutsResult", "run"]

DEFAULT_SIZE = 12


@dataclass(frozen=True)
class LayoutsResult:
    """Verified structure of every catalog design."""

    headers: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]
    renderings: Dict[str, str]

    def format_report(self, with_layouts: bool = False) -> str:
        text = format_table(self.headers, self.rows)
        if with_layouts:
            for name, art in self.renderings.items():
                text += f"\n\n{name}:\n{art}"
        return text


@register(
    "figs3to6",
    title="DTMB layouts and their verified graph structure",
    paper_ref="Figures 3-6",
    order=30,
    budget=BudgetPolicy(deterministic=True),
    report=lambda raw, options: raw.format_report(
        with_layouts=bool(options.get("chart"))
    ),
)
def run(
    *,
    runs: int = 0,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    designs: Sequence[DesignSpec] = ALL_DESIGNS,
    size: int = DEFAULT_SIZE,
) -> LayoutsResult:
    """Build, verify and render each design on a ``size x size`` array.

    Deterministic: ``runs``, ``seed`` and ``engine`` are accepted for the
    uniform experiment signature but have no effect.
    """
    rows: List[Tuple[object, ...]] = []
    renderings: Dict[str, str] = {}
    for spec in designs:
        chip = build_chip(spec, RectRegion(size, size))
        report = verify_design(spec, chip)  # raises on any violation
        rows.append(
            (
                spec.name,
                report.uniform_s(),
                report.uniform_p(),
                f"{float(spec.redundancy_ratio):.4f}",
                f"{report.redundancy_ratio:.4f}",
                chip.primary_count,
                chip.spare_count,
            )
        )
        renderings[spec.name] = render_chip(chip)
    headers = (
        "design",
        "s (verified)",
        "p (verified)",
        "RR (asymptotic)",
        "RR (this array)",
        "primaries",
        "spares",
    )
    return LayoutsResult(headers=headers, rows=tuple(rows), renderings=renderings)
