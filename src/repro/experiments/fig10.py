"""Figure 10: effective yield EY = Y/(1+RR) for all four designs, n = 100.

The paper's trade-off result: redundancy costs area, so at high cell
survival probability the light designs (DTMB(1,6), DTMB(2,6)) deliver the
best *effective* yield, while at low survival probability the heavy
DTMB(4,4) wins.  The crossover structure is the key qualitative claim this
driver reproduces and the benchmark asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.designs.catalog import TABLE1_DESIGNS
from repro.designs.spec import DesignSpec
from repro.experiments.registry import DEFAULT_STOP_RULE, BudgetPolicy, register
from repro.experiments.report import format_table
from repro.viz.plot import ascii_chart
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.montecarlo import DEFAULT_RUNS
from repro.yieldsim.stats import StopRule
from repro.yieldsim.sweeps import DEFAULT_P_GRID, SurvivalPoint, survival_sweep

__all__ = ["Fig10Result", "run"]

DEFAULT_N = 100


@dataclass(frozen=True)
class Fig10Result:
    """Effective-yield sweep with crossover analysis."""

    n: int
    points: Tuple[SurvivalPoint, ...]

    def series(self) -> Dict[str, List[Tuple[float, float]]]:
        out: Dict[str, List[Tuple[float, float]]] = {}
        for point in self.points:
            out.setdefault(point.design, []).append((point.p, point.effective))
        return out

    def best_design_at(self, p: float) -> str:
        """The design with the highest EY at survival probability ``p``."""
        best: Optional[SurvivalPoint] = None
        for point in self.points:
            if abs(point.p - p) < 1e-9 and (
                best is None or point.effective > best.effective
            ):
                best = point
        if best is None:
            raise KeyError(f"no sweep point at p={p}")
        return best.design

    def crossovers(self) -> List[Tuple[float, str, str]]:
        """``(p, previous winner, new winner)`` where the EY leader changes."""
        ps = sorted({point.p for point in self.points})
        out: List[Tuple[float, str, str]] = []
        previous = self.best_design_at(ps[0])
        for p in ps[1:]:
            winner = self.best_design_at(p)
            if winner != previous:
                out.append((p, previous, winner))
                previous = winner
        return out

    @property
    def headers(self) -> List[str]:
        return ["design", "p", "yield", "EY"]

    @property
    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (pt.design, f"{pt.p:.2f}", f"{pt.yield_value:.4f}", f"{pt.effective:.4f}")
            for pt in self.points
        ]

    def format_report(self) -> str:
        return format_table(self.headers, self.rows)

    def format_chart(self) -> str:
        return ascii_chart(
            self.series(),
            title=f"Figure 10: effective yield, n={self.n} primary cells",
            y_label="EY",
            x_label="cell survival probability p",
        )


@register(
    "fig10",
    title="Effective yield EY = Y/(1+RR) and its crossovers",
    paper_ref="Figure 10",
    order=60,
    budget=BudgetPolicy(stop_rule=DEFAULT_STOP_RULE),
    model_knob=True,
    epilogue=lambda raw: ("", f"crossovers: {raw.crossovers()}"),
    charts=lambda raw: (("effective-yield", raw.format_chart()),),
)
def run(
    *,
    runs: int = DEFAULT_RUNS,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    designs: Sequence[DesignSpec] = TABLE1_DESIGNS,
    n: int = DEFAULT_N,
    ps: Sequence[float] = DEFAULT_P_GRID,
    stop: Optional[StopRule] = None,
    model=None,
) -> Fig10Result:
    """The Figure 10 sweep: all four designs at n = 100 primaries.

    ``model`` reruns the crossover analysis under a spatial defect-model
    family (the CLI's ``--defect-model``) — useful for asking whether the
    paper's EY crossovers survive clustered defects.
    """
    points = survival_sweep(
        designs, [n], ps, runs=runs, seed=seed, engine=engine, stop=stop,
        model=model,
    )
    return Fig10Result(n=n, points=tuple(points))
