"""Figure 13: yield of the redesigned chip vs number of random faults.

"To analyze the improvement in yield, we randomly introduce m cell
failures, and then apply local reconfiguration to avoid them ... For up to
35 faults, the redundant design can provide a yield of at least 0.90."

Faults land uniformly on all 343 cells (used and unused primaries, and
spares); the chip survives iff every faulty *assay-used* primary is matched
to an adjacent fault-free spare.  Unused primaries absorb faults for free —
that, plus two spares per used cell, is what keeps yield above 0.90 deep
into double-digit fault counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.assays.chipspec import DiagnosticsChip, redesigned_chip
from repro.experiments.registry import DEFAULT_STOP_RULE, BudgetPolicy, register
from repro.experiments.report import format_table
from repro.viz.plot import ascii_chart
from repro.yieldsim.engine import SweepEngine
from repro.yieldsim.montecarlo import DEFAULT_RUNS
from repro.yieldsim.stats import StopRule
from repro.yieldsim.sweeps import DefectCountPoint, defect_count_sweep

__all__ = ["Fig13Result", "run", "PAPER_PLATEAU_FAULTS", "PAPER_PLATEAU_YIELD"]

PAPER_PLATEAU_FAULTS = 35
PAPER_PLATEAU_YIELD = 0.90

DEFAULT_MS: Tuple[int, ...] = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)


@dataclass(frozen=True)
class Fig13Result:
    """Yield-vs-m sweep on the Figure 12 redesign."""

    layout: DiagnosticsChip
    points: Tuple[DefectCountPoint, ...]

    def yield_at(self, m: int) -> float:
        for point in self.points:
            if point.m == m:
                return point.yield_value
        raise KeyError(f"no sweep point at m={m}")

    def series(self) -> Dict[str, List[Tuple[float, float]]]:
        return {
            "DTMB(2,6) redesign": [
                (float(pt.m), pt.yield_value) for pt in self.points
            ]
        }

    @property
    def headers(self) -> List[str]:
        return ["m (faults)", "yield", "ci lo", "ci hi"]

    @property
    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (
                pt.m,
                f"{pt.yield_value:.4f}",
                f"{pt.estimate.lo:.4f}",
                f"{pt.estimate.hi:.4f}",
            )
            for pt in self.points
        ]

    def format_report(self) -> str:
        return format_table(self.headers, self.rows)

    def format_chart(self) -> str:
        return ascii_chart(
            self.series(),
            title="Figure 13: yield vs number of random cell faults",
            y_label="yield",
            x_label="faults m",
        )


@register(
    "fig13",
    title="Yield of the redesigned chip vs number of random faults",
    paper_ref="Figure 13",
    order=90,
    budget=BudgetPolicy(stop_rule=DEFAULT_STOP_RULE),
    charts=lambda raw: (("yield-vs-m", raw.format_chart()),),
)
def run(
    *,
    runs: int = DEFAULT_RUNS,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    ms: Sequence[int] = DEFAULT_MS,
    stop: Optional[StopRule] = None,
) -> Fig13Result:
    """The Figure 13 sweep on the 252+91-cell redesigned chip."""
    layout = redesigned_chip()
    points = defect_count_sweep(
        layout.chip, ms, needed=layout.used, runs=runs, seed=seed, engine=engine,
        stop=stop,
    )
    return Fig13Result(layout=layout, points=tuple(points))
