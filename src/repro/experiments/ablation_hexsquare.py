"""Ablation: hexagonal vs square electrodes.

Section 3 of the paper: "hexagonal electrodes are being used to replace the
conventional square electrodes design; this close-packed design is expected
to increase the effectiveness of droplet transportation in a 2-D array."
This ablation quantifies that expectation on equal-cell-count arrays:

* **route length** — average shortest-path moves between uniformly random
  cell pairs (hex diagonals cut corners the square grid cannot);
* **fault resilience of routing** — fraction of random pairs still
  connected after knocking out a fraction of cells (6 neighbors give more
  ways around a dead cell than 4);
* **repairability** — a faulty cell has 6 candidate neighbors for
  interstitial repair instead of 4, which is what lets DTMB designs reach
  s up to 4 with p = 4..6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.chip.builders import plain_chip, square_chip
from repro.experiments.registry import BudgetPolicy, register
from repro.experiments.report import format_table
from repro.faults.injection import make_rng
from repro.fluidics.routing import Router
from repro.errors import RoutingError
from repro.geometry.hexgrid import RectRegion
from repro.yieldsim.engine import SweepEngine

__all__ = ["HexSquareResult", "run"]


@dataclass(frozen=True)
class HexSquareResult:
    """Transport metrics on equal-size hex and square arrays."""

    cells: int
    pairs: int
    mean_route_hex: float
    mean_route_square: float
    connected_after_faults_hex: float
    connected_after_faults_square: float
    fault_fraction: float

    @property
    def route_advantage(self) -> float:
        """Square mean route length / hex mean route length (> 1 = hex wins)."""
        return self.mean_route_square / self.mean_route_hex

    @property
    def headers(self) -> List[str]:
        return ["metric", "hexagonal", "square"]

    @property
    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (
                "mean route length (moves)",
                f"{self.mean_route_hex:.2f}",
                f"{self.mean_route_square:.2f}",
            ),
            (
                f"pairs connected with {self.fault_fraction:.0%} cells dead",
                f"{self.connected_after_faults_hex:.3f}",
                f"{self.connected_after_faults_square:.3f}",
            ),
            ("neighbors per interior cell", 6, 4),
        ]

    def format_report(self) -> str:
        return (
            format_table(self.headers, self.rows)
            + f"\n\nhex route advantage: {self.route_advantage:.2f}x shorter"
        )


@register(
    "ablation-hexsquare",
    title="Electrode-geometry ablation: hexagonal vs square arrays",
    paper_ref="Section 3 (ablation)",
    order=120,
    budget=BudgetPolicy(divisor=25, floor=120),
)
def run(
    *,
    runs: int = 300,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    side: int = 12,
    fault_fraction: float = 0.15,
) -> HexSquareResult:
    """Compare ``side x side`` hex and square arrays on random routes.

    ``runs`` is the number of random route pairs per geometry.  Routing is
    graph search, not a yield sweep, so ``engine`` is accepted for the
    uniform experiment signature but has no effect.
    """
    pairs = runs
    hex_chip = plain_chip(RectRegion(side, side), name="hex")
    sq_chip = square_chip(side, side, name="square")
    rng = make_rng(seed)

    def mean_route(chip) -> float:
        router = Router(chip)
        coords = chip.coords
        total = 0
        for _ in range(pairs):
            i, j = rng.choice(len(coords), size=2, replace=False)
            total += len(router.route(coords[i], coords[j])) - 1
        return total / pairs

    def connectivity_under_faults(chip) -> float:
        coords = chip.coords
        kill = max(1, int(fault_fraction * len(coords)))
        connected = 0
        trials = max(1, pairs // 3)
        for t in range(trials):
            working = chip.copy()
            dead = rng.choice(len(coords), size=kill, replace=False)
            dead_set = {coords[i] for i in dead}
            working.apply_fault_map(dead_set)
            alive = [c for c in coords if c not in dead_set]
            if len(alive) < 2:
                continue
            i, j = rng.choice(len(alive), size=2, replace=False)
            router = Router(working)
            try:
                router.route(alive[i], alive[j])
                connected += 1
            except RoutingError:
                pass
        return connected / trials

    return HexSquareResult(
        cells=side * side,
        pairs=pairs,
        mean_route_hex=mean_route(hex_chip),
        mean_route_square=mean_route(sq_chip),
        connected_after_faults_hex=connectivity_under_faults(hex_chip),
        connected_after_faults_square=connectivity_under_faults(sq_chip),
        fault_fraction=fault_fraction,
    )
