"""Offline structural testing: run a stimuli droplet and observe arrival.

The unified test methodology the paper builds on ([10, 11]) detects faults
"by electrostatically controlling and tracking the droplet motion": a test
droplet is driven along a planned route, and a capacitive sensing circuit
at the sink (or under any electrode) reports whether the droplet actually
arrived.  A catastrophic fault anywhere on the route stops the droplet, so
arrival is a pass/fail observation for the whole route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.chip.biochip import Biochip
from repro.errors import TestPlanError

__all__ = ["TestOutcome", "run_route", "test_chip"]


@dataclass(frozen=True)
class TestOutcome:
    """Result of driving one test droplet along one route.

    ``passed`` is the capacitive arrival observation; when the droplet
    stalls, ``stuck_at`` is the faulty cell that stopped it and
    ``cells_traversed`` counts the moves that succeeded.  The tester does
    *not* see ``stuck_at`` directly (that is what diagnosis is for) — it is
    recorded for simulation introspection and oracle checking in tests.
    """

    # Not a test case, despite the Test* name pytest would otherwise collect.
    __test__ = False

    route_length: int
    passed: bool
    cells_traversed: int
    stuck_at: Optional[Hashable] = None


def run_route(chip: Biochip, route: Sequence[Hashable]) -> TestOutcome:
    """Simulate a test droplet driven along ``route``.

    The droplet starts at ``route[0]`` (the dispense port, assumed good —
    a dead port is detected trivially because nothing ever arrives
    anywhere) and stops at the first faulty cell it is driven onto.
    """
    if not route:
        raise TestPlanError("empty test route")
    for a, b in zip(route, route[1:]):
        if b not in chip.neighbors(a):
            raise TestPlanError(f"route step {a} -> {b} is not an adjacency")
    if chip[route[0]].is_faulty:
        return TestOutcome(
            route_length=len(route), passed=False, cells_traversed=0,
            stuck_at=route[0],
        )
    traversed = 0
    for cell in route[1:]:
        if chip[cell].is_faulty:
            return TestOutcome(
                route_length=len(route),
                passed=False,
                cells_traversed=traversed,
                stuck_at=cell,
            )
        traversed += 1
    return TestOutcome(
        route_length=len(route), passed=True, cells_traversed=traversed
    )


def test_chip(chip: Biochip, plan: Sequence[Hashable]) -> TestOutcome:
    """Full-array go/no-go test with a single droplet traversal.

    A pass certifies every cell on the plan (hence the whole chip, for a
    complete plan) is free of catastrophic faults.
    """
    return run_route(chip, plan)


# Product API, not a test function — keep pytest from collecting it.
test_chip.__test__ = False
