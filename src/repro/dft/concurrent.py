"""Concurrent testing with multiple stimuli droplets.

The paper's companion test methodology ([11]) runs several test droplets in
parallel to cut test time, keeping them spaced apart so they never
accidentally coalesce.  We model the schedule at cell-step granularity:
each droplet owns one contiguous piece of the traversal plan, all droplets
advance in lockstep, and the test passes iff every droplet arrives.

This gives the DFT layer a realistic cost model: single-droplet test time
is ~N steps, k-droplet time ~N/k plus the spacing safety margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.chip.biochip import Biochip
from repro.dft.testing import TestOutcome, run_route
from repro.dft.traversal import partial_plans
from repro.errors import TestPlanError

__all__ = ["ConcurrentTestResult", "concurrent_test"]


@dataclass(frozen=True)
class ConcurrentTestResult:
    """Outcome of a k-droplet concurrent structural test."""

    droplets: int
    passed: bool
    #: Per-droplet outcomes in piece order.
    outcomes: Tuple[TestOutcome, ...]
    #: Lockstep steps until the slowest droplet finished (or stalled).
    steps: int

    @property
    def speedup_vs_single(self) -> float:
        total = sum(o.route_length - 1 for o in self.outcomes)
        return total / self.steps if self.steps else float("inf")


def _pieces_conflict(pieces: Sequence[Sequence[Hashable]], chip: Biochip) -> bool:
    """Would two droplets ever sit on or adjacent to the same cell at once?

    With lockstep advancement, droplet i is at ``pieces[i][t]`` at time t;
    we check all time steps for spacing violations between live droplets.
    """
    horizon = max(len(p) for p in pieces)
    for t in range(horizon):
        positions = [p[min(t, len(p) - 1)] for p in pieces]
        for i in range(len(positions)):
            for j in range(i + 1, len(positions)):
                a, b = positions[i], positions[j]
                if a == b or b in chip.neighbors(a):
                    return True
    return False


def concurrent_test(
    chip: Biochip, plan: Sequence[Hashable], droplets: int
) -> ConcurrentTestResult:
    """Run ``droplets`` stimuli droplets over a partitioned plan.

    Raises :class:`TestPlanError` if the lockstep schedule would violate
    the droplet spacing constraint (the caller should use fewer droplets
    or a different partition).
    """
    if droplets < 1:
        raise TestPlanError(f"need >= 1 droplet, got {droplets}")
    pieces = partial_plans(plan, droplets)
    if droplets > 1 and _pieces_conflict(pieces, chip):
        raise TestPlanError(
            f"{droplets} lockstep droplets violate the spacing constraint "
            "on this plan; use fewer droplets"
        )
    outcomes = tuple(run_route(chip, piece) for piece in pieces)
    steps = max(
        (o.cells_traversed if o.passed else o.route_length - 1)
        for o in outcomes
    )
    return ConcurrentTestResult(
        droplets=droplets,
        passed=all(o.passed for o in outcomes),
        outcomes=outcomes,
        steps=steps,
    )
