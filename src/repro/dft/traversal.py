"""Test-droplet traversal planning.

"To test a biochip, stimuli droplets containing the normal conducting fluid
(e.g., KCL solution) from the droplet source are transported through the
array (traversing the cells) to detect the faulty cells."  A complete
structural test therefore needs a walk that visits *every* cell.

On the rectangular hex arrays used throughout the paper a boustrophedon
("snake") walk is a Hamiltonian path: within a row, east/west neighbors are
adjacent, and in odd-r offset layout the cell directly below (same column,
next row) is always adjacent regardless of row parity.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence

from repro.chip.biochip import Biochip
from repro.errors import TestPlanError
from repro.geometry.hexgrid import RectRegion, offset_to_axial

__all__ = ["snake_plan", "validate_plan", "partial_plans"]


def snake_plan(region: RectRegion) -> List[Hashable]:
    """A Hamiltonian traversal of a rectangular hex array.

    Rows are walked alternately left-to-right and right-to-left; the
    transition to the next row is a single vertical step (adjacent in
    odd-r layout).
    """
    path: List[Hashable] = []
    for row in range(region.rows):
        cols = range(region.cols) if row % 2 == 0 else range(region.cols - 1, -1, -1)
        path.extend(offset_to_axial(col, row) for col in cols)
    return path


def validate_plan(chip: Biochip, plan: Sequence[Hashable]) -> None:
    """Check a traversal plan is executable and complete on ``chip``.

    * every planned cell exists on the chip;
    * consecutive cells are physically adjacent (microfluidic locality);
    * every chip cell is visited at least once.
    """
    if not plan:
        raise TestPlanError("empty test plan")
    for coord in plan:
        if coord not in chip:
            raise TestPlanError(f"plan visits {coord}, which is not on the chip")
    for a, b in zip(plan, plan[1:]):
        if b not in chip.neighbors(a):
            raise TestPlanError(
                f"plan steps from {a} to non-adjacent {b}; droplets only "
                "move to physically adjacent cells"
            )
    missing = set(chip.coords) - set(plan)
    if missing:
        raise TestPlanError(
            f"plan misses {len(missing)} cells (first: {sorted(missing)[:3]})"
        )


def partial_plans(plan: Sequence[Hashable], pieces: int) -> List[List[Hashable]]:
    """Split a traversal into ``pieces`` contiguous sub-walks.

    Used by concurrent testing: each sub-walk is assigned to its own test
    droplet, cutting test time by roughly the piece count.  Consecutive
    sub-walks overlap by one cell so coverage is preserved.
    """
    if pieces < 1:
        raise TestPlanError(f"pieces must be >= 1, got {pieces}")
    if pieces > len(plan):
        raise TestPlanError(
            f"cannot split a {len(plan)}-cell plan into {pieces} pieces"
        )
    size = len(plan) / pieces
    out: List[List[Hashable]] = []
    for i in range(pieces):
        start = int(round(i * size))
        end = int(round((i + 1) * size))
        piece = list(plan[max(0, start - 1) if i else 0 : end])
        out.append(piece)
    return out
