"""Adaptive fault diagnosis: locate faulty cells with few test droplets.

A go/no-go traversal only says *whether* the array is damaged.  To apply
local reconfiguration we must know *which* cells are faulty.  The adaptive
procedure here mirrors the droplet-based diagnosis of the papers this work
builds on: every probe dispatches a stimuli droplet along a chosen route and
observes a single bit (arrival at the route's end, via capacitive sensing).

Strategy: walk the traversal plan; when a segment fails, binary-search the
failing prefix to pin the first faulty cell (log-many probes), then detour
around all known faults to the rest of the plan and continue.  The
simulation charges every probe its droplet moves, so experiments can report
diagnosis cost in probes *and* moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Set, Tuple

from repro.chip.biochip import Biochip
from repro.dft.testing import run_route
from repro.errors import RoutingError, TestPlanError
from repro.fluidics.routing import Router

__all__ = ["DiagnosisReport", "diagnose"]


@dataclass
class DiagnosisReport:
    """Outcome of an adaptive diagnosis session.

    ``located`` are the faulty cells found; ``certified_good`` the cells
    proven fault-free by some passing probe; ``complete`` is True when
    every plan cell ended up in one of the two sets.  ``probes`` counts
    droplet dispatches and ``moves`` the total droplet steps spent.
    """

    located: List[Hashable] = field(default_factory=list)
    certified_good: Set[Hashable] = field(default_factory=set)
    unreachable: List[Hashable] = field(default_factory=list)
    probes: int = 0
    moves: int = 0

    @property
    def complete(self) -> bool:
        return not self.unreachable


def _probe(
    chip: Biochip, route: Sequence[Hashable], report: DiagnosisReport
) -> bool:
    """Dispatch one stimuli droplet; returns the arrival observation."""
    outcome = run_route(chip, route)
    report.probes += 1
    report.moves += outcome.cells_traversed
    if outcome.passed:
        report.certified_good.update(route)
    return outcome.passed


def diagnose(chip: Biochip, plan: Sequence[Hashable]) -> DiagnosisReport:
    """Locate all faulty cells on ``plan`` using adaptive probing.

    ``plan`` must be a connected traversal (consecutive cells adjacent);
    the droplet source is ``plan[0]`` and is assumed good — a faulty
    dispense port is detected before array testing begins and the port
    itself is not repairable by cell-level reconfiguration.
    """
    if not plan:
        raise TestPlanError("empty diagnosis plan")
    if chip[plan[0]].is_faulty:
        raise TestPlanError(
            f"dispense port {plan[0]} is faulty; diagnosis assumes a good source"
        )
    report = DiagnosisReport()
    # The planning chip knows only the faults diagnosis has proven so far —
    # routing never peeks at ground-truth health.
    planning_chip = chip.copy(name=f"{chip.name}/diagnosis-view")
    planning_chip.clear_faults()
    source = plan[0]
    pending: List[Hashable] = list(plan)

    while pending:
        target_start = pending[0]
        # Reach the segment start from the source, detouring around the
        # faults located so far.
        try:
            approach = Router(planning_chip).route(source, target_start)
        except RoutingError:
            report.unreachable.extend(
                c for c in pending if c not in report.certified_good
            )
            break
        # Extend the approach with as much of the pending segment as stays
        # adjacent (the segment is a snake, so all of it).
        segment = [target_start]
        for cell in pending[1:]:
            if cell in chip.neighbors(segment[-1]):
                segment.append(cell)
            else:
                break
        route = list(approach) + segment[1:]
        if _probe(chip, route, report):
            done = set(segment)
            pending = [c for c in pending if c not in done]
            continue
        # Failure somewhere on approach + segment: binary-search the first
        # faulty cell by probing prefixes.
        lo, hi = 1, len(route) - 1  # route[0] == source is good
        while lo < hi:
            mid = (lo + hi) // 2
            if _probe(chip, route[: mid + 1], report):
                lo = mid + 1
            else:
                hi = mid
        faulty = route[lo]
        report.located.append(faulty)
        planning_chip.mark_faulty(faulty)
        report.certified_good.update(route[:lo])
        done = report.certified_good | {faulty}
        pending = [c for c in pending if c not in done]
    # Cells we certified along detours may not have been in the plan;
    # restrict the view to plan cells for the completeness check.
    plan_set = set(plan)
    report.certified_good &= plan_set | report.certified_good
    return report
