"""The closed maintenance loop: test → diagnose → repair → certify.

Ties the DFT and reconfiguration layers into the workflow a deployed chip
(or a post-fab production tester) actually runs.  One call to
:func:`maintain` takes a chip in an unknown health state and returns either
a certified-good remap to operate through, or a verdict that the chip is
scrap — with the full cost accounting (probes, droplet moves) the paper's
cost arguments are about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.chip.biochip import Biochip
from repro.dft.diagnosis import DiagnosisReport, diagnose
from repro.dft.testing import test_chip
from repro.dft.traversal import snake_plan, validate_plan
from repro.errors import TestPlanError
from repro.geometry.hexgrid import RectRegion
from repro.reconfig.local import RepairPlan, plan_local_repair
from repro.reconfig.remap import CellRemap

__all__ = ["MaintenanceReport", "maintain"]


@dataclass(frozen=True)
class MaintenanceReport:
    """Outcome of one maintenance cycle.

    ``usable`` is the bottom line: True iff the chip passed outright or
    every needed faulty primary was repaired.  When repair happened,
    ``remap`` carries the logical→physical map the controller should run
    through.  Cost fields cover the whole cycle.
    """

    tested_cells: int
    faults_located: Tuple[Hashable, ...]
    diagnosis: Optional[DiagnosisReport]
    repair: Optional[RepairPlan]
    remap: Optional[CellRemap]
    probes: int
    droplet_moves: int

    @property
    def usable(self) -> bool:
        if self.repair is None:
            return not self.faults_located
        return self.repair.complete

    def format_report(self) -> str:
        lines = [
            f"tested {self.tested_cells} cells with {self.probes} probe(s), "
            f"{self.droplet_moves} droplet moves",
        ]
        if not self.faults_located:
            lines.append("no catastrophic faults detected; chip certified good")
        else:
            lines.append(
                f"located {len(self.faults_located)} faulty cell(s): "
                + ", ".join(str(c) for c in self.faults_located)
            )
            if self.repair is not None and self.repair.complete:
                lines.append(
                    f"repaired via {self.repair.spares_used} spare(s); "
                    "chip usable through remap"
                )
            else:
                unrepaired = (
                    len(self.repair.unrepaired) if self.repair else "all"
                )
                lines.append(f"IRREPARABLE: {unrepaired} cell(s) uncovered")
        return "\n".join(lines)


def maintain(
    chip: Biochip,
    plan: Optional[Sequence[Hashable]] = None,
    region: Optional[RectRegion] = None,
    needed: Optional[Iterable[Hashable]] = None,
) -> MaintenanceReport:
    """Run one full test/diagnose/repair cycle on ``chip``.

    Parameters
    ----------
    plan:
        Traversal covering every cell; if omitted, a snake plan is derived
        from ``region`` (required in that case).
    needed:
        Primary cells that must work (defaults to all primaries) — the
        repair is planned for exactly these.
    """
    if plan is None:
        if region is None:
            raise TestPlanError(
                "provide either an explicit traversal plan or the chip's "
                "rectangular region to derive one"
            )
        plan = snake_plan(region)
    validate_plan(chip, plan)

    # Phase 1: go/no-go traversal.
    outcome = test_chip(chip, plan)
    if outcome.passed:
        return MaintenanceReport(
            tested_cells=len(plan),
            faults_located=(),
            diagnosis=None,
            repair=None,
            remap=None,
            probes=1,
            droplet_moves=outcome.cells_traversed,
        )

    # Phase 2: adaptive diagnosis (re-drives the failing traversal, so the
    # go/no-go probe is charged as part of the total too).
    report = diagnose(chip, plan)

    # Phase 3: repair what diagnosis found, for the cells that matter.
    repair = plan_local_repair(chip, needed=needed)
    remap = CellRemap(chip, repair) if repair.complete else None
    return MaintenanceReport(
        tested_cells=len(plan),
        faults_located=tuple(sorted(report.located)),
        diagnosis=report,
        repair=repair,
        remap=remap,
        probes=1 + report.probes,
        droplet_moves=outcome.cells_traversed + report.moves,
    )
