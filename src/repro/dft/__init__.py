"""Design-for-test substrate: droplet-based testing and diagnosis.

Implements the unified test methodology the paper relies on (its refs
[10, 11]): stimuli-droplet traversals for go/no-go testing
(:mod:`repro.dft.testing`), Hamiltonian traversal planning
(:mod:`repro.dft.traversal`), adaptive binary-search fault location
(:mod:`repro.dft.diagnosis`) and multi-droplet concurrent testing
(:mod:`repro.dft.concurrent`).  Diagnosis output feeds directly into
:func:`repro.reconfig.plan_local_repair`.
"""

from repro.dft.concurrent import ConcurrentTestResult, concurrent_test
from repro.dft.diagnosis import DiagnosisReport, diagnose
from repro.dft.maintenance import MaintenanceReport, maintain
from repro.dft.testing import TestOutcome, run_route, test_chip
from repro.dft.traversal import partial_plans, snake_plan, validate_plan

__all__ = [
    "snake_plan",
    "validate_plan",
    "partial_plans",
    "TestOutcome",
    "run_route",
    "test_chip",
    "DiagnosisReport",
    "diagnose",
    "ConcurrentTestResult",
    "concurrent_test",
    "MaintenanceReport",
    "maintain",
]
