"""Local reconfiguration: repair faulty primaries with adjacent spares.

This is the paper's repair procedure for interstitial redundancy.  Given a
chip with a fault map applied, we build the bipartite graph between faulty
primary cells and *fault-free* adjacent spares (faulty spares are useless),
compute a maximum matching, and declare the chip repaired iff the matching
saturates the faulty side.  The resulting :class:`RepairPlan` records which
spare substitutes for which primary, and can be turned into a coordinate
remap for running assays on the repaired chip
(:mod:`repro.reconfig.remap`).

A plan may optionally cover only a subset of primaries (``needed``): the
diagnostics-chip experiment of Figure 13 repairs only the primary cells
actually used by the bioassays — a faulty *unused* primary costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.chip.biochip import Biochip
from repro.errors import IrreparableChipError, ReconfigurationError
from repro.reconfig.bipartite import (
    BipartiteGraph,
    Matching,
    maximum_matching,
    saturates_left,
)

__all__ = ["RepairPlan", "build_repair_graph", "plan_local_repair", "is_repairable"]


@dataclass(frozen=True)
class RepairPlan:
    """Outcome of a local-reconfiguration attempt.

    ``assignment`` maps each repaired faulty primary coordinate to the
    fault-free spare coordinate that functionally replaces it;
    ``unrepaired`` lists faulty primaries the matching could not cover.
    A plan with an empty ``unrepaired`` list means the chip is usable.
    """

    assignment: Dict[Hashable, Hashable]
    unrepaired: Tuple[Hashable, ...] = ()

    @property
    def complete(self) -> bool:
        """True iff every faulty primary that needed repair was repaired."""
        return not self.unrepaired

    @property
    def spares_used(self) -> int:
        return len(self.assignment)

    def spare_for(self, coord: Hashable) -> Hashable:
        try:
            return self.assignment[coord]
        except KeyError:
            raise ReconfigurationError(
                f"{coord} was not repaired by this plan"
            ) from None

    def validate_against(self, chip: Biochip) -> None:
        """Check plan invariants on ``chip``: adjacency, roles, health.

        * every repaired coordinate is a faulty primary;
        * every assigned spare is fault-free and physically adjacent
          (microfluidic locality);
        * no spare is used twice.
        """
        used: Set[Hashable] = set()
        for primary, spare in self.assignment.items():
            pcell = chip[primary]
            scell = chip[spare]
            if not (pcell.is_primary and pcell.is_faulty):
                raise ReconfigurationError(
                    f"plan repairs {primary}, which is not a faulty primary"
                )
            if not (scell.is_spare and scell.is_good):
                raise ReconfigurationError(
                    f"plan assigns {spare}, which is not a fault-free spare"
                )
            if spare not in chip.neighbors(primary):
                raise ReconfigurationError(
                    f"plan violates microfluidic locality: {spare} is not "
                    f"adjacent to {primary}"
                )
            if spare in used:
                raise ReconfigurationError(f"spare {spare} assigned twice")
            used.add(spare)


def build_repair_graph(
    chip: Biochip, needed: Optional[Iterable[Hashable]] = None
) -> BipartiteGraph:
    """The bipartite graph of Figure 8: faulty primaries × good spares.

    ``needed`` restricts the left side to the given primary coordinates
    (defaults to all primaries).  Edges are physical adjacencies.
    """
    if needed is None:
        faulty = [c.coord for c in chip.faulty_primaries()]
    else:
        needed_set = set(needed)
        faulty = [
            c.coord
            for c in chip.faulty_primaries()
            if c.coord in needed_set
        ]
    good_spares = [c.coord for c in chip.good_spares()]
    spare_set = set(good_spares)
    edges = [
        (f, s)
        for f in faulty
        for s in chip.neighbors(f)
        if s in spare_set
    ]
    return BipartiteGraph(faulty, good_spares, edges)


def plan_local_repair(
    chip: Biochip,
    needed: Optional[Iterable[Hashable]] = None,
    algorithm: str = "hopcroft-karp",
    require_complete: bool = False,
) -> RepairPlan:
    """Compute a local-reconfiguration plan for the chip's current faults.

    Parameters
    ----------
    chip:
        Array with its fault map already applied.
    needed:
        Primary coordinates that must work (default: all).  Faulty
        primaries outside this set are ignored.
    algorithm:
        Matching algorithm name (see :data:`MATCHING_ALGORITHMS`).
    require_complete:
        If True, raise :class:`IrreparableChipError` instead of returning
        an incomplete plan.
    """
    graph = build_repair_graph(chip, needed)
    matching: Matching = maximum_matching(graph, algorithm)
    unrepaired = tuple(u for u in graph.left if u not in matching)
    plan = RepairPlan(assignment=dict(matching), unrepaired=unrepaired)
    if require_complete and not plan.complete:
        raise IrreparableChipError(
            f"chip {chip.name!r}: {len(unrepaired)} faulty primary cells "
            f"cannot be covered by adjacent fault-free spares "
            f"(first: {list(unrepaired)[:3]})"
        )
    return plan


def is_repairable(
    chip: Biochip, needed: Optional[Iterable[Hashable]] = None
) -> bool:
    """True iff local reconfiguration can cover every needed faulty primary."""
    graph = build_repair_graph(chip, needed)
    matching = maximum_matching(graph, "hopcroft-karp")
    return saturates_left(graph, matching)
