"""Shifted replacement with a boundary spare row (Figure 2).

With spares only in a boundary row, microfluidic locality forces a chain of
replacements: the faulty cell is replaced by its neighbor toward the spare
row, that neighbor by *its* neighbor, and so on until the spare row absorbs
the last displacement.  At module granularity (how the paper draws it),
every module between the fault and the spare row slides over by one row —
reconfiguring fault-free modules and inflating cost.

:func:`plan_shifted_replacement` computes the row remap and the cost
metrics; :func:`shifted_cost_by_fault_row` produces the series behind the
Figure 2 discussion (cost vs distance from the spare row), which
:mod:`repro.experiments.fig2` turns into the paper's comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.designs.boundary import ModulePlacement, SpareRowArray
from repro.errors import IrreparableChipError, ReconfigurationError
from repro.geometry.square import Square

__all__ = [
    "ShiftedPlan",
    "plan_shifted_replacement",
    "shifted_cost_by_fault_row",
]


@dataclass(frozen=True)
class ShiftedPlan:
    """Result of a shifted-replacement repair on a spare-row array.

    ``row_remap`` maps each *logical* module row to the *physical* row that
    now implements it.  Cost metrics:

    * ``modules_reconfigured`` — modules whose physical footprint changed;
    * ``fault_free_modules_reconfigured`` — the collateral damage the paper
      highlights: fault-free modules dragged into the repair;
    * ``cells_remapped`` — total cells whose physical position changed.

    The interstitial-redundancy equivalent of the same single-cell repair
    costs one remapped cell and zero fault-free modules.
    """

    array: SpareRowArray
    faulty_row: int
    row_remap: Dict[int, int]
    modules_reconfigured: Tuple[str, ...]
    fault_free_modules_reconfigured: Tuple[str, ...]
    cells_remapped: int

    def physical_row(self, logical_row: int) -> int:
        try:
            return self.row_remap[logical_row]
        except KeyError:
            raise ReconfigurationError(
                f"logical row {logical_row} is not a module row"
            ) from None

    def physical_cell(self, logical: Square) -> Square:
        """Translate a logical module cell to its post-repair position."""
        return Square(logical.x, self.physical_row(logical.y))


def plan_shifted_replacement(
    array: SpareRowArray, faults: Iterable[Square]
) -> ShiftedPlan:
    """Repair ``faults`` by shifting rows toward the spare row.

    A single spare row can bypass exactly one faulty row: all module rows at
    or past the faulty row slide one step toward the spare row, skipping the
    faulty row entirely.  Faults spread over two or more distinct module
    rows are irreparable with this architecture and raise
    :class:`IrreparableChipError`.  Faults in the spare row itself are
    irreparable too (the only spare resource is damaged).
    """
    fault_list = sorted(set(faults), key=lambda s: (s.y, s.x))
    if not fault_list:
        identity = {row: row for row in range(array.spare_row)}
        return ShiftedPlan(
            array=array,
            faulty_row=-1,
            row_remap=identity,
            modules_reconfigured=(),
            fault_free_modules_reconfigured=(),
            cells_remapped=0,
        )
    for fault in fault_list:
        if not (0 <= fault.x < array.cols and 0 <= fault.y < array.rows):
            raise ReconfigurationError(f"fault {fault} outside the array")
    rows_hit = sorted({fault.y for fault in fault_list})
    if array.spare_row in rows_hit:
        raise IrreparableChipError(
            "the spare row itself contains a fault; no repair resource left"
        )
    if len(rows_hit) > 1:
        raise IrreparableChipError(
            f"faults in {len(rows_hit)} distinct rows ({rows_hit}); a single "
            "spare row can bypass only one row"
        )
    faulty_row = rows_hit[0]

    row_remap: Dict[int, int] = {}
    for row in range(array.spare_row):
        row_remap[row] = row if row < faulty_row else row + 1

    faulty_module = array.module_of_row(faulty_row)
    shifted = [m for m in array.modules if m.row_end > faulty_row]
    collateral = tuple(m.name for m in shifted if m.name != faulty_module.name)
    cells_remapped = sum(
        array.cols for row in range(array.spare_row) if row_remap[row] != row
    )
    return ShiftedPlan(
        array=array,
        faulty_row=faulty_row,
        row_remap=row_remap,
        modules_reconfigured=tuple(m.name for m in shifted),
        fault_free_modules_reconfigured=collateral,
        cells_remapped=cells_remapped,
    )


def shifted_cost_by_fault_row(array: SpareRowArray) -> List[Dict[str, object]]:
    """Repair cost for a fault in each module row — the Figure 2 story.

    Returns one record per module row with the module name, the distance of
    the fault from the spare row, and all three cost metrics.  The farther
    the fault from the spare row, the more fault-free modules get dragged
    into the reconfiguration — interstitial redundancy's constant
    single-cell cost is the contrast.
    """
    records: List[Dict[str, object]] = []
    for row in range(array.spare_row):
        plan = plan_shifted_replacement(array, [Square(0, row)])
        records.append(
            {
                "fault_row": row,
                "module": array.module_of_row(row).name,
                "distance_to_spare_row": array.distance_to_spare_row(row),
                "modules_reconfigured": len(plan.modules_reconfigured),
                "fault_free_modules_reconfigured": len(
                    plan.fault_free_modules_reconfigured
                ),
                "cells_remapped": plan.cells_remapped,
            }
        )
    return records
