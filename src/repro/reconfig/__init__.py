"""Reconfiguration engine: matching-based local repair and the baseline.

* :mod:`repro.reconfig.bipartite` — from-scratch maximum bipartite matching
  (Hopcroft-Karp, Kuhn, greedy) over the Figure 8 graph model;
* :mod:`repro.reconfig.local` — local reconfiguration of interstitial
  designs (the paper's proposal);
* :mod:`repro.reconfig.remap` — logical→physical coordinate translation for
  running assays on a repaired chip;
* :mod:`repro.reconfig.shifted` — the boundary-spare-row shifted
  replacement baseline (Figure 2) with cost accounting.
"""

from repro.reconfig.bipartite import (
    MATCHING_ALGORITHMS,
    BipartiteGraph,
    greedy_matching,
    hopcroft_karp,
    kuhn_matching,
    maximum_matching,
    saturates_left,
)
from repro.reconfig.local import (
    RepairPlan,
    build_repair_graph,
    is_repairable,
    plan_local_repair,
)
from repro.reconfig.persist import (
    dump_plan,
    load_plan,
    plan_from_dict,
    plan_to_dict,
)
from repro.reconfig.remap import CellRemap
from repro.reconfig.shifted import (
    ShiftedPlan,
    plan_shifted_replacement,
    shifted_cost_by_fault_row,
)

__all__ = [
    "BipartiteGraph",
    "greedy_matching",
    "kuhn_matching",
    "hopcroft_karp",
    "maximum_matching",
    "saturates_left",
    "MATCHING_ALGORITHMS",
    "RepairPlan",
    "build_repair_graph",
    "plan_local_repair",
    "is_repairable",
    "CellRemap",
    "plan_to_dict",
    "plan_from_dict",
    "dump_plan",
    "load_plan",
    "ShiftedPlan",
    "plan_shifted_replacement",
    "shifted_cost_by_fault_row",
]
