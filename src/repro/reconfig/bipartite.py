"""Bipartite graphs and maximum-matching algorithms, from scratch.

Section 6 of the paper: "We develop a bipartite graph model to represent the
relationship between faulty and spare cells ... A maximal matching for this
bipartite graph can be obtained using well-known techniques.  If this
maximal matching covers all nodes in A, it implies that all faulty cells can
be replaced by their adjacent fault-free spare cells through local
reconfiguration."

Three algorithms are provided so the ablation benchmarks can compare them:

* :func:`hopcroft_karp` — O(E sqrt(V)), the asymptotically best choice;
* :func:`kuhn_matching` — classic augmenting-path (Hungarian) algorithm,
  O(V * E), simple and fast on the small graphs Monte-Carlo produces;
* :func:`greedy_matching` — maximal (not maximum) matching; a lower bound
  that shows why a true maximum matching is required for correctness.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import ReconfigurationError

__all__ = [
    "BipartiteGraph",
    "greedy_matching",
    "kuhn_matching",
    "hopcroft_karp",
    "maximum_matching",
    "saturates_left",
    "MATCHING_ALGORITHMS",
]


class BipartiteGraph:
    """A bipartite graph ``BG(A, B, E)`` with adjacency stored left-to-right.

    ``left`` nodes are the faulty primary cells (set A in the paper),
    ``right`` nodes the fault-free spares (set B); an edge means physical
    adjacency on the array.  Nodes may be any hashable values; isolated
    nodes on either side are allowed (an isolated left node simply makes a
    saturating matching impossible).
    """

    def __init__(
        self,
        left: Iterable[Hashable],
        right: Iterable[Hashable],
        edges: Iterable[Tuple[Hashable, Hashable]],
    ):
        self.left: Tuple[Hashable, ...] = tuple(dict.fromkeys(left))
        self.right: Tuple[Hashable, ...] = tuple(dict.fromkeys(right))
        left_set = set(self.left)
        right_set = set(self.right)
        if left_set & right_set:
            raise ReconfigurationError(
                "left and right node sets overlap: "
                f"{sorted(left_set & right_set)[:3]}"
            )
        self.adj: Dict[Hashable, List[Hashable]] = {u: [] for u in self.left}
        seen: Set[Tuple[Hashable, Hashable]] = set()
        for u, v in edges:
            if u not in left_set:
                raise ReconfigurationError(f"edge endpoint {u!r} not a left node")
            if v not in right_set:
                raise ReconfigurationError(f"edge endpoint {v!r} not a right node")
            if (u, v) not in seen:
                seen.add((u, v))
                self.adj[u].append(v)

    @property
    def edge_count(self) -> int:
        return sum(len(vs) for vs in self.adj.values())

    def degree(self, left_node: Hashable) -> int:
        return len(self.adj[left_node])

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (
            f"BipartiteGraph(|A|={len(self.left)}, |B|={len(self.right)}, "
            f"|E|={self.edge_count})"
        )


Matching = Dict[Hashable, Hashable]


def _validate_matching(graph: BipartiteGraph, matching: Matching) -> None:
    used_right: Set[Hashable] = set()
    for u, v in matching.items():
        if v not in graph.adj.get(u, ()):  # pragma: no cover - defensive
            raise ReconfigurationError(f"matching uses non-edge ({u!r}, {v!r})")
        if v in used_right:  # pragma: no cover - defensive
            raise ReconfigurationError(f"right node {v!r} matched twice")
        used_right.add(v)


def greedy_matching(graph: BipartiteGraph) -> Matching:
    """Maximal matching by one greedy pass (left nodes in given order).

    Fast but not maximum: the result can be smaller than optimal, so a
    repair decided by this algorithm may wrongly declare a chip
    irreparable.  Kept as an ablation baseline and as a fast feasibility
    pre-check (if greedy already saturates A, no augmenting is needed).
    """
    matching: Matching = {}
    used_right: Set[Hashable] = set()
    for u in graph.left:
        for v in graph.adj[u]:
            if v not in used_right:
                matching[u] = v
                used_right.add(v)
                break
    return matching


def kuhn_matching(graph: BipartiteGraph) -> Matching:
    """Maximum matching by repeated augmenting-path DFS (Kuhn's algorithm).

    O(V * E); on the small dense-fault graphs produced by Monte-Carlo runs
    this is typically faster than Hopcroft-Karp because of lower constant
    overhead.  Seeded with a greedy pass.
    """
    match_right: Dict[Hashable, Hashable] = {}
    # Greedy initialization cuts the number of augmenting searches roughly
    # in half on random instances.
    for u, v in greedy_matching(graph).items():
        match_right[v] = u

    def try_augment(u: Hashable, visited: Set[Hashable]) -> bool:
        for v in graph.adj[u]:
            if v in visited:
                continue
            visited.add(v)
            owner = match_right.get(v)
            if owner is None or try_augment(owner, visited):
                match_right[v] = u
                return True
        return False

    matched_left = set(match_right.values())
    for u in graph.left:
        if u not in matched_left:
            try_augment(u, set())

    matching = {u: v for v, u in match_right.items()}
    _validate_matching(graph, matching)
    return matching


_INF = float("inf")


def hopcroft_karp(graph: BipartiteGraph) -> Matching:
    """Maximum matching in O(E sqrt(V)) via Hopcroft-Karp.

    Alternates BFS phases that layer the graph by shortest augmenting-path
    length with DFS phases that harvest a maximal set of vertex-disjoint
    shortest augmenting paths.
    """
    pair_left: Dict[Hashable, Optional[Hashable]] = {u: None for u in graph.left}
    pair_right: Dict[Hashable, Optional[Hashable]] = {v: None for v in graph.right}
    dist: Dict[Hashable, float] = {}

    def bfs() -> bool:
        queue: deque = deque()
        for u in graph.left:
            if pair_left[u] is None:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INF
        found_free = False
        while queue:
            u = queue.popleft()
            for v in graph.adj[u]:
                owner = pair_right[v]
                if owner is None:
                    found_free = True
                elif dist[owner] == _INF:
                    dist[owner] = dist[u] + 1.0
                    queue.append(owner)
        return found_free

    def dfs(u: Hashable) -> bool:
        for v in graph.adj[u]:
            owner = pair_right[v]
            if owner is None or (dist[owner] == dist[u] + 1.0 and dfs(owner)):
                pair_left[u] = v
                pair_right[v] = u
                return True
        dist[u] = _INF
        return False

    while bfs():
        for u in graph.left:
            if pair_left[u] is None:
                dfs(u)

    matching = {u: v for u, v in pair_left.items() if v is not None}
    _validate_matching(graph, matching)
    return matching


#: Name → algorithm, for CLI/benchmark selection.
MATCHING_ALGORITHMS = {
    "greedy": greedy_matching,
    "kuhn": kuhn_matching,
    "hopcroft-karp": hopcroft_karp,
}


def maximum_matching(graph: BipartiteGraph, algorithm: str = "hopcroft-karp") -> Matching:
    """Dispatch to a matching algorithm by name.

    Only ``"kuhn"`` and ``"hopcroft-karp"`` guarantee a *maximum* matching;
    ``"greedy"`` is maximal only and is exposed for ablation studies.
    """
    try:
        func = MATCHING_ALGORITHMS[algorithm]
    except KeyError:
        known = ", ".join(sorted(MATCHING_ALGORITHMS))
        raise ReconfigurationError(
            f"unknown matching algorithm {algorithm!r}; choose from: {known}"
        ) from None
    return func(graph)


def saturates_left(graph: BipartiteGraph, matching: Matching) -> bool:
    """True iff every left (faulty) node is covered — the repair criterion."""
    return all(u in matching for u in graph.left)
