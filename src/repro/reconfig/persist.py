"""Persistence of repair plans — the microcontroller configuration.

"The configurations of the microfluidic array are programmed into a
microcontroller that controls the voltages of electrodes" (Section 3).
After testing and reconfiguration, the repair plan *is* that
configuration: a logical→physical electrode table.  This module serializes
plans to plain JSON so a tester can write the configuration out and the
instrument can load it at run time, and so test flows can be audited.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Union

from repro.chip.biochip import Biochip
from repro.errors import ReconfigurationError
from repro.geometry.hex import Hex
from repro.geometry.square import Square
from repro.reconfig.local import RepairPlan

__all__ = ["plan_to_dict", "plan_from_dict", "dump_plan", "load_plan"]

_FORMAT_VERSION = 1


def _encode(coord: Any) -> Dict[str, Any]:
    if isinstance(coord, Hex):
        return {"kind": "hex", "pos": [coord.q, coord.r]}
    if isinstance(coord, Square):
        return {"kind": "square", "pos": [coord.x, coord.y]}
    raise ReconfigurationError(
        f"cannot serialize coordinate of type {type(coord).__name__}"
    )


def _decode(data: Dict[str, Any]) -> Any:
    kind = data.get("kind")
    a, b = data["pos"]
    if kind == "hex":
        return Hex(a, b)
    if kind == "square":
        return Square(a, b)
    raise ReconfigurationError(f"unknown coordinate kind {kind!r}")


def plan_to_dict(plan: RepairPlan) -> Dict[str, Any]:
    """A JSON-serializable description of ``plan``."""
    return {
        "format": _FORMAT_VERSION,
        "assignment": [
            {"faulty": _encode(primary), "spare": _encode(spare)}
            for primary, spare in sorted(plan.assignment.items())
        ],
        "unrepaired": [_encode(c) for c in plan.unrepaired],
    }


def plan_from_dict(data: Dict[str, Any]) -> RepairPlan:
    """Rebuild a :class:`RepairPlan` written by :func:`plan_to_dict`."""
    try:
        version = data["format"]
        raw_assignment = data["assignment"]
        raw_unrepaired = data.get("unrepaired", [])
    except (KeyError, TypeError) as exc:
        raise ReconfigurationError(
            f"malformed repair plan: missing {exc}"
        ) from exc
    if version != _FORMAT_VERSION:
        raise ReconfigurationError(
            f"unsupported repair-plan format version {version!r}"
        )
    assignment = {
        _decode(entry["faulty"]): _decode(entry["spare"])
        for entry in raw_assignment
    }
    return RepairPlan(
        assignment=assignment,
        unrepaired=tuple(_decode(c) for c in raw_unrepaired),
    )


def dump_plan(plan: RepairPlan, fp: Union[IO[str], str]) -> None:
    """Write ``plan`` as JSON to a path or file object."""
    data = plan_to_dict(plan)
    if isinstance(fp, str):
        with open(fp, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
    else:
        json.dump(data, fp, indent=2, sort_keys=True)


def load_plan(
    fp: Union[IO[str], str], chip: Biochip = None
) -> RepairPlan:
    """Read a plan; optionally validate it against ``chip`` immediately.

    Validation catches the deadly mistake of loading a configuration onto
    the wrong (or differently-faulted) chip instance.
    """
    if isinstance(fp, str):
        with open(fp, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        data = json.load(fp)
    plan = plan_from_dict(data)
    if chip is not None:
        plan.validate_against(chip)
    return plan
