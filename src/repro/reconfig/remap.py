"""Logical-to-physical coordinate remapping after reconfiguration.

A repaired chip presents the *logical* array (the layout the bioassay was
compiled for) on top of *physical* cells: every healthy primary maps to
itself, and every repaired faulty primary maps to its assigned spare.  The
fluidics and assay layers route droplets through logical coordinates and
translate at the electrode-actuation boundary, exactly as the biochip's
microcontroller would after reconfiguration.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.chip.biochip import Biochip
from repro.errors import ReconfigurationError
from repro.reconfig.local import RepairPlan

__all__ = ["CellRemap"]


class CellRemap:
    """Bijective map from logical primary coordinates to physical cells.

    Built from a chip and a (complete or partial) :class:`RepairPlan`.
    Coordinates not repaired map to themselves; faulty primaries left
    unrepaired by the plan have *no* physical image and looking them up
    raises, which surfaces accidental use of a dead cell immediately.
    """

    def __init__(self, chip: Biochip, plan: RepairPlan):
        plan.validate_against(chip)
        self._chip = chip
        self._to_physical: Dict[Hashable, Hashable] = dict(plan.assignment)
        self._dead: Tuple[Hashable, ...] = plan.unrepaired
        self._to_logical: Dict[Hashable, Hashable] = {
            phys: logical for logical, phys in self._to_physical.items()
        }

    @property
    def remapped_count(self) -> int:
        """How many logical cells are served by a spare."""
        return len(self._to_physical)

    @property
    def dead_cells(self) -> Tuple[Hashable, ...]:
        """Logical coordinates with no working physical cell."""
        return self._dead

    def physical(self, logical: Hashable) -> Hashable:
        """The physical cell serving ``logical``."""
        if logical in self._dead:
            raise ReconfigurationError(
                f"logical cell {logical} is faulty and was not repaired"
            )
        phys = self._to_physical.get(logical, logical)
        cell = self._chip[phys]
        if cell.is_faulty:
            raise ReconfigurationError(
                f"physical cell {phys} serving {logical} is faulty; "
                "the repair plan is stale"
            )
        return phys

    def logical(self, physical: Hashable) -> Hashable:
        """The logical coordinate served by ``physical`` (inverse map)."""
        return self._to_logical.get(physical, physical)

    def is_remapped(self, logical: Hashable) -> bool:
        return logical in self._to_physical

    def physical_path(self, logical_path: Iterable[Hashable]) -> List[Hashable]:
        """Translate a whole logical droplet route to physical cells."""
        return [self.physical(coord) for coord in logical_path]

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (
            f"CellRemap({self.remapped_count} remapped, "
            f"{len(self._dead)} dead)"
        )
