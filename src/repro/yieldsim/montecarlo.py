"""Monte-Carlo yield estimation (Section 6).

"During each run of the simulation, the cells in the microfluidic array,
including both primary and spare cells, are randomly chosen to fail with
probability p [sic: with survival probability p].  We then check if these
defects can be tolerated via local reconfiguration based on the interstitial
spare cells ... After 10000 simulation runs, the yield of this microfluidic
array is determined from the proportion of successful reconfigurations."

:class:`YieldSimulator` precomputes the primary→adjacent-spare structure of
a chip once, draws batched fault maps with ``numpy``, and answers the
repairability question per run with an integer-indexed Kuhn matching — the
graphs are tiny (only *faulty* primaries enter), so this is far faster than
rebuilding chip-level objects 10 000 times.

Two fault regimes are supported, matching the paper's two experiments:

* :meth:`YieldSimulator.run_survival` — i.i.d. cell survival with
  probability p (Figures 7, 9, 10);
* :meth:`YieldSimulator.run_fixed_faults` — exactly m faulty cells chosen
  uniformly among all cells (Figure 13).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.chip.biochip import Biochip
from repro.errors import SimulationError
from repro.faults.injection import RngLike, make_rng
from repro.yieldsim.kernel import RepairStructure, kuhn_repairable
from repro.yieldsim.stats import YieldEstimate

__all__ = ["YieldSimulator", "DEFAULT_RUNS"]

#: The paper's run count.
DEFAULT_RUNS = 10_000


class YieldSimulator:
    """Batched Monte-Carlo repairability simulation for one chip layout.

    Parameters
    ----------
    chip:
        The array under evaluation.  Health state is ignored — fault maps
        are drawn internally; the chip object is never mutated.
    needed:
        Primary coordinates that must work for the chip to be good
        (default: every primary).  The diagnostics-chip experiment passes
        the 108 assay-used cells here.
    """

    def __init__(self, chip: Biochip, needed: Optional[Iterable[Hashable]] = None):
        self.chip = chip
        #: shared primary->adjacent-spare structure (validates ``needed``).
        self.structure = RepairStructure(chip, needed=needed)
        self.n_cells = self.structure.n_cells
        #: cell indices of the protected primaries, aligned with ``_adj``.
        self._needed_idx = self.structure.needed_idx
        #: per-protected-primary tuple of adjacent spare cell indices.
        self._adj: Tuple[Tuple[int, ...], ...] = self.structure.adj
        self.needed_count = self.structure.needed_count

    # -- repair kernel -------------------------------------------------------
    def _repairable(self, faulty_positions: Sequence[int], alive: np.ndarray) -> bool:
        """Kuhn matching feasibility: can every faulty primary get a spare?

        This is the brute-force reference the vectorized screening kernel
        (:mod:`repro.yieldsim.kernel`) is cross-checked against; see
        :func:`repro.yieldsim.kernel.kuhn_repairable` for the algorithm.
        """
        return kuhn_repairable(self._adj, faulty_positions, alive)

    # -- survival-probability regime ------------------------------------------
    def run_survival(
        self, p: float, runs: int = DEFAULT_RUNS, seed: RngLike = None
    ) -> YieldEstimate:
        """Yield under i.i.d. per-cell survival probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise SimulationError(f"survival probability must be in [0, 1], got {p}")
        if runs < 1:
            raise SimulationError(f"runs must be >= 1, got {runs}")
        rng = make_rng(seed)
        successes = 0
        # Draw in batches to bound memory at ~8 MB regardless of run count.
        batch = max(1, min(runs, 8_000_000 // max(1, self.n_cells)))
        remaining = runs
        while remaining > 0:
            size = min(batch, remaining)
            remaining -= size
            alive = rng.random((size, self.n_cells)) < p
            faulty = ~alive[:, self._needed_idx]
            # Runs with zero faulty protected primaries succeed immediately.
            any_fault = faulty.any(axis=1)
            successes += int(size - any_fault.sum())
            for r in np.nonzero(any_fault)[0]:
                positions = np.nonzero(faulty[r])[0]
                if self._repairable(positions.tolist(), alive[r]):
                    successes += 1
        return YieldEstimate(successes=successes, trials=runs)

    # -- fixed-fault-count regime ------------------------------------------------
    def run_fixed_faults(
        self, m: int, runs: int = DEFAULT_RUNS, seed: RngLike = None
    ) -> YieldEstimate:
        """Yield with exactly ``m`` faulty cells, uniform over all cells.

        This is the Figure 13 regime: faults can hit primaries (used or
        unused) and spares alike; the chip is good iff every faulty
        *protected* primary is matched to an adjacent fault-free spare.
        """
        if m < 0:
            raise SimulationError(f"fault count must be >= 0, got {m}")
        if m > self.n_cells:
            raise SimulationError(
                f"cannot place {m} faults on {self.n_cells} cells"
            )
        if runs < 1:
            raise SimulationError(f"runs must be >= 1, got {runs}")
        rng = make_rng(seed)
        needed_pos: Dict[int, int] = {
            int(cell): j for j, cell in enumerate(self._needed_idx)
        }
        successes = 0
        alive = np.ones(self.n_cells, dtype=bool)
        for _ in range(runs):
            faults = rng.choice(self.n_cells, size=m, replace=False)
            alive[faults] = False
            positions = [
                needed_pos[int(f)] for f in faults if int(f) in needed_pos
            ]
            if not positions or self._repairable(positions, alive):
                successes += 1
            alive[faults] = True
        return YieldEstimate(successes=successes, trials=runs)
