"""Monte-Carlo yield estimation (Section 6).

"During each run of the simulation, the cells in the microfluidic array,
including both primary and spare cells, are randomly chosen to fail with
probability p [sic: with survival probability p].  We then check if these
defects can be tolerated via local reconfiguration based on the interstitial
spare cells ... After 10000 simulation runs, the yield of this microfluidic
array is determined from the proportion of successful reconfigurations."

:class:`YieldSimulator` precomputes the primary→adjacent-spare structure of
a chip once, draws batched fault maps with ``numpy``, and answers the
repairability question per run with an integer-indexed Kuhn matching — the
graphs are tiny (only *faulty* primaries enter), so this is far faster than
rebuilding chip-level objects 10 000 times.

Two fault regimes are supported, matching the paper's two experiments:

* :meth:`YieldSimulator.run_survival` — i.i.d. cell survival with
  probability p (Figures 7, 9, 10);
* :meth:`YieldSimulator.run_fixed_faults` — exactly m faulty cells chosen
  uniformly among all cells (Figure 13).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.chip.biochip import Biochip
from repro.errors import SimulationError
from repro.faults.injection import RngLike, make_rng
from repro.yieldsim.stats import YieldEstimate

__all__ = ["YieldSimulator", "DEFAULT_RUNS"]

#: The paper's run count.
DEFAULT_RUNS = 10_000


class YieldSimulator:
    """Batched Monte-Carlo repairability simulation for one chip layout.

    Parameters
    ----------
    chip:
        The array under evaluation.  Health state is ignored — fault maps
        are drawn internally; the chip object is never mutated.
    needed:
        Primary coordinates that must work for the chip to be good
        (default: every primary).  The diagnostics-chip experiment passes
        the 108 assay-used cells here.
    """

    def __init__(self, chip: Biochip, needed: Optional[Iterable[Hashable]] = None):
        self.chip = chip
        coords = chip.coords
        index: Dict[Hashable, int] = {c: i for i, c in enumerate(coords)}
        self.n_cells = len(coords)

        if needed is None:
            needed_coords = [c.coord for c in chip.primaries()]
        else:
            needed_coords = sorted(set(needed))
            for coord in needed_coords:
                if coord not in chip:
                    raise SimulationError(f"needed cell {coord} is not on the chip")
                if not chip[coord].is_primary:
                    raise SimulationError(
                        f"needed cell {coord} is a spare; only primaries carry "
                        "assay functionality"
                    )
        if not needed_coords:
            raise SimulationError("no needed primary cells to protect")

        #: cell indices of the protected primaries, aligned with ``_adj``.
        self._needed_idx = np.array(
            [index[c] for c in needed_coords], dtype=np.int64
        )
        #: per-protected-primary tuple of adjacent spare cell indices.
        self._adj: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(
                index[s.coord]
                for s in chip.adjacent_spares(coord)
            )
            for coord in needed_coords
        )
        self.needed_count = len(needed_coords)

    # -- repair kernel -------------------------------------------------------
    def _repairable(self, faulty_positions: Sequence[int], alive: np.ndarray) -> bool:
        """Kuhn matching feasibility: can every faulty primary get a spare?

        ``faulty_positions`` indexes into the protected-primary list;
        ``alive`` is the per-cell survival row.  Correctness rests on the
        standard augmenting-path theorem: if a left vertex cannot be
        augmented at the moment it is processed, it is exposed in *some*
        maximum matching, so no saturating matching exists and we can stop.
        """
        match_right: Dict[int, int] = {}

        def try_augment(j: int, visited: Set[int]) -> bool:
            for s in self._adj[j]:
                if not alive[s] or s in visited:
                    continue
                visited.add(s)
                owner = match_right.get(s)
                if owner is None or try_augment(owner, visited):
                    match_right[s] = j
                    return True
            return False

        for j in faulty_positions:
            if not try_augment(j, set()):
                return False
        return True

    # -- survival-probability regime ------------------------------------------
    def run_survival(
        self, p: float, runs: int = DEFAULT_RUNS, seed: RngLike = None
    ) -> YieldEstimate:
        """Yield under i.i.d. per-cell survival probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise SimulationError(f"survival probability must be in [0, 1], got {p}")
        if runs < 1:
            raise SimulationError(f"runs must be >= 1, got {runs}")
        rng = make_rng(seed)
        successes = 0
        # Draw in batches to bound memory at ~8 MB regardless of run count.
        batch = max(1, min(runs, 8_000_000 // max(1, self.n_cells)))
        remaining = runs
        while remaining > 0:
            size = min(batch, remaining)
            remaining -= size
            alive = rng.random((size, self.n_cells)) < p
            faulty = ~alive[:, self._needed_idx]
            # Runs with zero faulty protected primaries succeed immediately.
            any_fault = faulty.any(axis=1)
            successes += int(size - any_fault.sum())
            for r in np.nonzero(any_fault)[0]:
                positions = np.nonzero(faulty[r])[0]
                if self._repairable(positions.tolist(), alive[r]):
                    successes += 1
        return YieldEstimate(successes=successes, trials=runs)

    # -- fixed-fault-count regime ------------------------------------------------
    def run_fixed_faults(
        self, m: int, runs: int = DEFAULT_RUNS, seed: RngLike = None
    ) -> YieldEstimate:
        """Yield with exactly ``m`` faulty cells, uniform over all cells.

        This is the Figure 13 regime: faults can hit primaries (used or
        unused) and spares alike; the chip is good iff every faulty
        *protected* primary is matched to an adjacent fault-free spare.
        """
        if m < 0:
            raise SimulationError(f"fault count must be >= 0, got {m}")
        if m > self.n_cells:
            raise SimulationError(
                f"cannot place {m} faults on {self.n_cells} cells"
            )
        if runs < 1:
            raise SimulationError(f"runs must be >= 1, got {runs}")
        rng = make_rng(seed)
        needed_pos: Dict[int, int] = {
            int(cell): j for j, cell in enumerate(self._needed_idx)
        }
        successes = 0
        alive = np.ones(self.n_cells, dtype=bool)
        for _ in range(runs):
            faults = rng.choice(self.n_cells, size=m, replace=False)
            alive[faults] = False
            positions = [
                needed_pos[int(f)] for f in faults if int(f) in needed_pos
            ]
            if not positions or self._repairable(positions, alive):
                successes += 1
            alive[faults] = True
        return YieldEstimate(successes=successes, trials=runs)
