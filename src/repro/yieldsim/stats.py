"""Statistics for Monte-Carlo yield estimates.

The paper reports point estimates from 10 000 runs; we additionally attach
Wilson score confidence intervals so the benchmark harness can assert shape
properties ("design A beats design B at p = 0.95") without flaking on
Monte-Carlo noise.

:class:`StopRule` turns the same Wilson interval into a sequential budget:
a point runs in batches and stops as soon as its interval is narrower than
the figure needs, instead of always spending the full flat budget.  The
rule is declarative (target half-width, min/max runs, batch size) so it
can ride on :class:`~repro.experiments.registry.BudgetPolicy` and be
digested into cache keys.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import SimulationError

__all__ = [
    "wilson_interval",
    "wilson_half_width",
    "split_batches",
    "StopRule",
    "YieldEstimate",
    "Z_95",
]

#: Two-sided 95% normal quantile, the default confidence level throughout.
Z_95 = 1.959963984540054


def wilson_interval(
    successes: int, trials: int, z: float = Z_95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because yield estimates sit
    close to 1.0, where the Wald interval is badly behaved.  ``z`` defaults
    to the two-sided 95% quantile.
    """
    if trials <= 0:
        raise SimulationError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise SimulationError(
            f"successes must be in [0, {trials}], got {successes}"
        )
    phat = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (phat + z2 / (2.0 * trials)) / denom
    half = (
        z
        * math.sqrt(phat * (1.0 - phat) / trials + z2 / (4.0 * trials * trials))
        / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))


def wilson_half_width(successes: int, trials: int, z: float = Z_95) -> float:
    """Half the width of the Wilson interval — the "±" a figure quotes."""
    lo, hi = wilson_interval(successes, trials, z=z)
    return (hi - lo) / 2.0


def split_batches(total: int, batch: int) -> Tuple[int, ...]:
    """Split ``total`` runs into ``batch``-sized pieces (last may be short).

    The one canonical batch partition: :meth:`StopRule.plan` and the
    engine's shard plans both derive from it, so the rule's reference
    semantics and the engine's execution can never disagree on batch
    boundaries.
    """
    if total < 1:
        raise SimulationError(f"batch total must be >= 1, got {total}")
    if batch < 1:
        raise SimulationError(f"batch size must be >= 1, got {batch}")
    full, rest = divmod(total, batch)
    return (batch,) * full + ((rest,) if rest else ())


@dataclass(frozen=True)
class StopRule:
    """Sequential stopping rule for a Monte-Carlo point.

    A point governed by a stop rule runs in batches of ``batch_runs``.
    After each batch the cumulative (successes, trials) pair is tested:
    once at least ``min_runs`` trials are in and the Wilson half-width at
    confidence ``z`` is at most ``target_half_width``, the point stops —
    its *effective* budget is whatever it spent.  ``max_runs`` (and always
    the point's own requested budget) caps the spend, so a hard point
    degrades gracefully to the flat behaviour instead of running forever.

    The rule is evaluated on whole batches, in batch order, which is what
    makes adaptive execution deterministic given the seed no matter how
    the batches are scheduled across workers (see
    :mod:`repro.yieldsim.engine`).
    """

    target_half_width: float
    min_runs: int = 1000
    max_runs: Optional[int] = None
    batch_runs: int = 1000
    z: float = Z_95

    def __post_init__(self) -> None:
        if not self.target_half_width > 0.0:
            raise SimulationError(
                f"target half-width must be > 0, got {self.target_half_width}"
            )
        if self.min_runs < 1:
            raise SimulationError(f"min_runs must be >= 1, got {self.min_runs}")
        if self.batch_runs < 1:
            raise SimulationError(f"batch_runs must be >= 1, got {self.batch_runs}")
        if self.max_runs is not None and self.max_runs < self.min_runs:
            raise SimulationError(
                f"max_runs ({self.max_runs}) must be >= min_runs ({self.min_runs})"
            )
        if not self.z > 0.0:
            raise SimulationError(f"z must be > 0, got {self.z}")

    def cap(self, budget: int) -> int:
        """The most this point may spend of a requested ``budget``."""
        if self.max_runs is None:
            return budget
        return min(budget, self.max_runs)

    def should_stop(self, successes: int, trials: int) -> bool:
        """True once the cumulative estimate is narrow enough to stop."""
        if trials < self.min_runs:
            return False
        return wilson_half_width(successes, trials, z=self.z) <= self.target_half_width

    def plan(self, budget: int) -> Tuple[int, ...]:
        """The batch sizes a ``budget``-run point is split into."""
        return split_batches(self.cap(budget), self.batch_runs)

    def digest(self) -> str:
        """Stable short digest of the rule, for point-cache keys."""
        blob = json.dumps(
            {
                "target": self.target_half_width,
                "min": self.min_runs,
                "max": self.max_runs,
                "batch": self.batch_runs,
                "z": self.z,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("ascii")).hexdigest()[:16]

    def describe(self) -> str:
        """Human-readable rule, for ``repro show`` and reports."""
        text = f"stop at ±{self.target_half_width:g}"
        text += f" (min {self.min_runs}, batch {self.batch_runs}"
        if self.max_runs is not None:
            text += f", max {self.max_runs}"
        return text + ")"


@dataclass(frozen=True)
class YieldEstimate:
    """A Monte-Carlo yield estimate with its uncertainty.

    ``value`` is the fraction of runs in which the chip was repairable
    (or fault-free); ``lo``/``hi`` bound it at 95% confidence.
    """

    successes: int
    trials: int

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise SimulationError(f"trials must be positive, got {self.trials}")
        if not 0 <= self.successes <= self.trials:
            raise SimulationError(
                f"successes must be in [0, {self.trials}], got {self.successes}"
            )

    @property
    def value(self) -> float:
        return self.successes / self.trials

    @property
    def interval(self) -> Tuple[float, float]:
        return wilson_interval(self.successes, self.trials)

    @property
    def lo(self) -> float:
        return self.interval[0]

    @property
    def hi(self) -> float:
        return self.interval[1]

    def clearly_above(self, other: "YieldEstimate") -> bool:
        """True iff this estimate's CI lies entirely above ``other``'s."""
        return self.lo > other.hi

    def consistent_with(self, value: float) -> bool:
        """True iff ``value`` falls inside the 95% interval."""
        return self.lo <= value <= self.hi

    def __str__(self) -> str:  # pragma: no cover - cosmetics
        lo, hi = self.interval
        return f"{self.value:.4f} [{lo:.4f}, {hi:.4f}] ({self.trials} runs)"
