"""Statistics for Monte-Carlo yield estimates.

The paper reports point estimates from 10 000 runs; we additionally attach
Wilson score confidence intervals so the benchmark harness can assert shape
properties ("design A beats design B at p = 0.95") without flaking on
Monte-Carlo noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import SimulationError

__all__ = ["wilson_interval", "YieldEstimate"]


def wilson_interval(
    successes: int, trials: int, z: float = 1.959963984540054
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because yield estimates sit
    close to 1.0, where the Wald interval is badly behaved.  ``z`` defaults
    to the two-sided 95% quantile.
    """
    if trials <= 0:
        raise SimulationError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise SimulationError(
            f"successes must be in [0, {trials}], got {successes}"
        )
    phat = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (phat + z2 / (2.0 * trials)) / denom
    half = (
        z
        * math.sqrt(phat * (1.0 - phat) / trials + z2 / (4.0 * trials * trials))
        / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))


@dataclass(frozen=True)
class YieldEstimate:
    """A Monte-Carlo yield estimate with its uncertainty.

    ``value`` is the fraction of runs in which the chip was repairable
    (or fault-free); ``lo``/``hi`` bound it at 95% confidence.
    """

    successes: int
    trials: int

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise SimulationError(f"trials must be positive, got {self.trials}")
        if not 0 <= self.successes <= self.trials:
            raise SimulationError(
                f"successes must be in [0, {self.trials}], got {self.successes}"
            )

    @property
    def value(self) -> float:
        return self.successes / self.trials

    @property
    def interval(self) -> Tuple[float, float]:
        return wilson_interval(self.successes, self.trials)

    @property
    def lo(self) -> float:
        return self.interval[0]

    @property
    def hi(self) -> float:
        return self.interval[1]

    def clearly_above(self, other: "YieldEstimate") -> bool:
        """True iff this estimate's CI lies entirely above ``other``'s."""
        return self.lo > other.hi

    def consistent_with(self, value: float) -> bool:
        """True iff ``value`` falls inside the 95% interval."""
        return self.lo <= value <= self.hi

    def __str__(self) -> str:  # pragma: no cover - cosmetics
        lo, hi = self.interval
        return f"{self.value:.4f} [{lo:.4f}, {hi:.4f}] ({self.trials} runs)"
