"""Pure point scheduling: keys, cache, chunking, fold order, speculation.

This module is the scheduling half of the engine split.  It owns
everything that determines *what* a sweep computes and in *what order*
results fold together — chip payload canonicalization and digests,
point-cache key derivation and the on-disk :class:`PointCache`, flat-point
chunk grouping, within-point shard plans, and the strict in-order fold
with stop-rule speculation for adaptive points.  It owns nothing about
*where* compute units run: that is the
:class:`~repro.yieldsim.executors.Executor` passed into
:meth:`PointScheduler.run`.

The decomposition is what makes the engine's bit-identity contract
auditable: every number is produced by a fold whose order depends only on
the task list, and the executor can only reorder *completion*, never
*folding*.  Serial, process-pool and inline execution are therefore
bit-identical by construction, and the scheduler is the single place cache
keys are derived — which is also what lets the serving layer
(:mod:`repro.serve`) coalesce identical in-flight requests by the very key
the cache would use.

:class:`~repro.yieldsim.engine.SweepEngine` remains the user-facing
facade: it wires a scheduler to an executor and keeps the run accounting
(budget log, screen stats, estimates).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.chip.biochip import Biochip
from repro.chip.cell import Cell, CellRole
from repro.errors import SimulationError
from repro.geometry.hex import Hex
from repro.geometry.square import Square
from repro.yieldsim.cachestore import (
    CacheStore,
    LocalStore,
    decode_entry,
    encode_entry,
    entry_digest,
)
from repro.yieldsim.executors import Executor
from repro.yieldsim.kernel import (
    PointSpec,
    RepairStructure,
    ScreenStats,
    model_successes,
    point_entropy,
    point_model,
    shard_plan,
    shard_seed,
    simulate_points,
)
from repro.obs import profile as _profile
from repro.obs.events import get_logger, log_event
from repro.obs.trace import Tracer
from repro.yieldsim.resilience import (
    ResilienceStats,
    RetryPolicy,
    UnitRunner,
)
from repro.yieldsim.stats import StopRule

__all__ = [
    "ENGINE_VERSION",
    "EnginePoint",
    "PointCache",
    "PointScheduler",
    "chip_payload",
    "payload_digest",
]

_log = get_logger("scheduler")

#: Bump when the kernel/sampling semantics change, to invalidate caches.
ENGINE_VERSION = 1

#: Maximum points per shard: small enough to load-balance a grid across
#: workers, large enough to amortize per-chunk pickling.
_CHUNK_POINTS = 4

#: Callback invoked after each in-order fold of a batched point:
#: ``on_fold(task_index, successes, trials)`` with cumulative values.
FoldHook = Callable[[int, int, int], None]


# -- chip payloads ------------------------------------------------------------

def chip_payload(
    chip: Biochip, needed: Optional[Iterable[Hashable]] = None
) -> Dict[str, object]:
    """A minimal, canonical, picklable description of a simulation target.

    Only what the repairability question depends on is included — cell
    coordinates, roles and the needed set.  Health, labels and the chip
    name are deliberately excluded so cosmetic differences cannot split
    the cache.
    """
    kind = None
    cells: List[Tuple[int, int, int]] = []
    for cell in chip:
        coord = cell.coord
        if isinstance(coord, Hex):
            k, a, b = "hex", coord.q, coord.r
        elif isinstance(coord, Square):
            k, a, b = "square", coord.x, coord.y
        else:
            raise SimulationError(
                f"cannot serialize coordinate of type {type(coord).__name__}"
            )
        if kind is None:
            kind = k
        elif kind != k:
            raise SimulationError("chip mixes coordinate systems")
        cells.append((a, b, 1 if cell.is_spare else 0))
    payload: Dict[str, object] = {"coords": kind, "cells": cells}
    if needed is not None:
        needed_pairs = []
        for coord in sorted(set(needed)):
            if isinstance(coord, (Hex, Square)):
                needed_pairs.append(
                    (coord.q, coord.r) if isinstance(coord, Hex) else (coord.x, coord.y)
                )
            else:
                raise SimulationError(
                    f"cannot serialize needed coordinate {coord!r}"
                )
        payload["needed"] = needed_pairs
    return payload


def payload_digest(payload: Dict[str, object]) -> str:
    """Stable SHA-256 digest of a chip payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=list)
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


def structure_from_payload(payload: Dict[str, object]) -> RepairStructure:
    """Rebuild the chip from its payload and derive the repair structure."""
    kind = payload["coords"]
    make = Hex if kind == "hex" else Square
    cells = [
        Cell(make(a, b), CellRole.SPARE if spare else CellRole.PRIMARY)
        for a, b, spare in payload["cells"]
    ]
    chip = Biochip(cells, name="engine-target")
    needed = payload.get("needed")
    if needed is not None:
        needed = [make(a, b) for a, b in needed]
    return RepairStructure(chip, needed=needed)


# -- worker-side execution ----------------------------------------------------

#: Per-process memo of chip digest -> RepairStructure, so a sweep that
#: shards many points of one chip builds the structure once per worker.
_STRUCTURES: Dict[str, RepairStructure] = {}


def _structure_for(digest: str, payload: Dict[str, object]) -> RepairStructure:
    struct = _STRUCTURES.get(digest)
    if struct is None:
        struct = structure_from_payload(payload)
        _STRUCTURES[digest] = struct
    return struct


def _unit_timing(wall0: float, cpu0: float,
                 phases: Dict[str, float]) -> Dict[str, float]:
    """``time_``-prefixed wall/CPU keys riding a unit's wire stats dict.

    Both stat readers (:meth:`ScreenStats.from_dict` filters to its own
    fields, :meth:`CriterionStats.from_wire` to ``crit_``-prefixed keys)
    ignore these, so timings stay out-of-band: they never reach results,
    cache entries, checkpoints, or stable digests.
    """
    timing = {
        "time_wall_s": time.perf_counter() - wall0,
        "time_cpu_s": time.process_time() - cpu0,
    }
    for name, value in phases.items():
        timing[f"time_{name}"] = value
    return timing


def compute_chunk(
    digest: str,
    payload: Dict[str, object],
    points: Sequence[PointSpec],
    dtype_name: str,
) -> Tuple[List[int], Dict[str, int], List[Optional[Dict[str, int]]]]:
    """Compute one chunk of flat points (the executor's unit function).

    Returns per-point success counts, the chunk's merged screen-stat
    counters, and — per point — the criterion funnel counters (``None``
    for default matching points).  Chunks with no criterion anywhere run
    through :func:`~repro.yieldsim.kernel.simulate_points` exactly as
    before, so legacy streams stay byte-identical.
    """
    struct = _structure_for(digest, payload)
    dtype = np.dtype(dtype_name).type
    wall0, cpu0 = time.perf_counter(), time.process_time()
    with _profile.capture() as phases:
        if all(point.criterion is None for point in points):
            successes, stats = simulate_points(struct, points, dtype=dtype)
            crits: List[Optional[Dict[str, int]]] = [None] * len(points)
        else:
            from repro.functional.funnel import criterion_successes

            successes = []
            crits = []
            stats = ScreenStats()
            for point in points:
                point.validate(struct.n_cells)
                if point.criterion is None:
                    got, point_stats = model_successes(
                        struct, point_model(point), point.runs, point.seed,
                        dtype=dtype,
                    )
                    crits.append(None)
                else:
                    got, point_stats, crit = criterion_successes(
                        struct, point_model(point), point.criterion,
                        point.runs, point.seed, dtype=dtype,
                    )
                    crits.append(crit.wire_dict())
                successes.append(got)
                stats.merge(point_stats)
    return (
        successes,
        {**stats.as_dict(), **_unit_timing(wall0, cpu0, phases)},
        crits,
    )


def compute_shard(
    digest: str,
    payload: Dict[str, object],
    spec: PointSpec,
    size: int,
    entropy: int,
    index: int,
    dtype_name: str,
) -> Tuple[int, Dict[str, int]]:
    """Compute one within-point shard (the executor's unit function).

    The shard's stream is fully determined by ``(entropy, index)`` via
    :func:`~repro.yieldsim.kernel.shard_seed`, so any worker — or the
    calling process — computes the identical batch.  The point's defect
    model (explicit, or the legacy-kind alias) travels inside ``spec`` —
    as does its optional success criterion, whose funnel counters ride
    the returned stat dict under ``crit_``-prefixed keys (both readers
    filter to their own key families, so the flat dict stays collision
    free).
    """
    struct = _structure_for(digest, payload)
    rng = np.random.default_rng(shard_seed(entropy, index))
    dtype = np.dtype(dtype_name).type
    wall0, cpu0 = time.perf_counter(), time.process_time()
    with _profile.capture() as phases:
        if spec.criterion is None:
            got, stats = model_successes(
                struct, point_model(spec), size, seed=rng, dtype=dtype
            )
            wire: Dict[str, object] = stats.as_dict()
        else:
            from repro.functional.funnel import criterion_successes

            got, stats, crit = criterion_successes(
                struct, point_model(spec), spec.criterion, size, seed=rng,
                dtype=dtype,
            )
            wire = {**stats.as_dict(), **crit.wire_dict()}
    return got, {**wire, **_unit_timing(wall0, cpu0, phases)}


# -- scheduling inputs --------------------------------------------------------

@dataclass(frozen=True)
class EnginePoint:
    """One sweep point: a chip, an optional needed set, and a PointSpec.

    ``stop`` attaches an adaptive sequential budget: the point runs in
    batches of ``stop.batch_runs`` and halts once its Wilson interval is
    as narrow as the rule demands, with ``spec.runs`` as the flat ceiling.
    """

    chip: Biochip
    spec: PointSpec
    needed: Optional[Tuple[Hashable, ...]] = None
    stop: Optional[StopRule] = None


# -- the on-disk point cache --------------------------------------------------

class PointCache:
    """Content-addressed on-disk store of computed points.

    One small JSON file per point, keyed by a SHA-256 digest of
    (chip payload digest, regime, parameter, runs, seed, dtype, engine
    version — plus the defect-model digest for explicit-model points, and
    the batch size and stop-rule digest for batched points).  The key is
    the request/response identity of a point: the serving layer coalesces
    concurrent identical requests by exactly this string.

    ``dir=None`` disables storage but keeps key derivation available;
    hits/misses counters then stay zero, matching the engine's historical
    accounting (misses are only counted when a cache is actually on).

    Entry storage is delegated to a
    :class:`~repro.yieldsim.cachestore.CacheStore`: by default a
    :class:`~repro.yieldsim.cachestore.LocalStore` over ``cache_dir``
    (byte-identical to the historical layout), but the engine can inject
    a :class:`~repro.yieldsim.cachestore.TieredCache` to read through to
    a shared remote store.  Fold checkpoints are deliberately **not**
    routed through the store: they are mid-flight private state of one
    run, meaningless to a fleet, and stay local files under ``dir``.

    Every entry carries a content digest, verified on load: a truncated,
    bit-rotted or hand-edited file is *quarantined* (renamed ``*.corrupt``,
    counted in ``stats.quarantined``) and treated as a miss — the read
    path never raises on bad data.  The same journal format backs the
    fold **checkpoints** (``*.ckpt.json``) that make adaptive points
    preemption-proof: :meth:`store_checkpoint` journals a point's
    cumulative fold state after every in-order fold with the same atomic
    tmp+rename discipline, and :meth:`load_checkpoint` lets the next run
    resume at fold *k* with state — successes, trials, screen stats,
    criterion funnel — identical to what the uninterrupted run had there,
    so the final artifact is byte-identical.
    """

    def __init__(self, cache_dir: Optional[str], dtype_name: str,
                 version: int = ENGINE_VERSION,
                 stats: Optional[ResilienceStats] = None,
                 store: Optional["CacheStore"] = None):
        if cache_dir is not None and os.path.exists(cache_dir) and not os.path.isdir(cache_dir):
            raise SimulationError(
                f"cache path {cache_dir!r} exists and is not a directory"
            )
        self.dir = cache_dir
        self.dtype_name = dtype_name
        self.version = version
        self.hits = 0
        self.misses = 0
        self.stats = stats if stats is not None else ResilienceStats()
        if store is not None:
            self.backend: Optional[CacheStore] = store
        elif cache_dir is not None:
            self.backend = LocalStore(cache_dir, stats=self.stats)
        else:
            self.backend = None

    # -- keys -----------------------------------------------------------------
    def key(
        self,
        digest: str,
        spec: PointSpec,
        stop: Optional[StopRule] = None,
        batch: Optional[int] = None,
    ) -> str:
        ident: Dict[str, object] = {
            "chip": digest,
            "kind": spec.kind,
            "param": spec.param,
            "runs": spec.runs,
            "seed": spec.seed,
            "dtype": self.dtype_name,
            "version": self.version,
        }
        if spec.model is not None:
            # The model's content digest keys the distribution: two models
            # at equal severity (or a model point and a legacy point at
            # the same p) can never collide in the cache.
            ident["defect_model"] = spec.model.digest()
        if spec.criterion is not None:
            # Same pattern for the success predicate: criterion points key
            # by content digest, and default matching points omit the field
            # entirely, so historical cache entries stay valid.
            ident["criterion"] = spec.criterion.digest()
        if batch is not None:
            # Batched points live under a distinct key family: the batch
            # size defines the RNG stream and the stop-rule digest defines
            # the effective budget, so a flat-budget entry is never served
            # to an adaptive request (or vice versa).
            ident["mode"] = "batched"
            ident["batch"] = batch
            ident["stop"] = stop.digest() if stop is not None else None
        blob = json.dumps(ident, sort_keys=True)
        return hashlib.sha256(blob.encode("ascii")).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.dir, f"{key}.json")

    def _ckpt_path(self, key: str) -> str:
        return os.path.join(self.dir, f"{key}.ckpt.json")

    # -- integrity ------------------------------------------------------------
    @staticmethod
    def _entry_digest(entry: Dict[str, object]) -> str:
        """Content digest of an entry (excluding its own ``digest`` field)."""
        return entry_digest(entry)

    def _quarantine(self, path: str) -> None:
        """Move a corrupt file aside so it is recomputed, never re-read."""
        self.stats.quarantined += 1
        log_event(
            _log, "quarantine", level=logging.WARNING,
            msg=f"quarantined corrupt cache file {path}", path=path,
        )
        try:
            os.replace(path, f"{path}.corrupt")
        except OSError:
            pass

    def _verified(self, path: str) -> Optional[Dict[str, object]]:
        """The entry at ``path`` iff it parses and its digest checks out.

        Anything else — unreadable, truncated, non-JSON, digest mismatch,
        a pre-digest legacy entry — quarantines the file and reads as a
        miss.  A file that simply does not exist is a plain miss.
        """
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return None
        except OSError:
            self._quarantine(path)
            return None
        try:
            # json.loads decodes the bytes itself; invalid UTF-8 raises a
            # UnicodeDecodeError, which is a ValueError — quarantined below.
            data = json.loads(raw)
        except ValueError:
            self._quarantine(path)
            return None
        if not isinstance(data, dict):
            self._quarantine(path)
            return None
        stored = data.pop("digest", None)
        if stored != self._entry_digest(data):
            self._quarantine(path)
            return None
        return data

    def _write(self, path: str, entry: Dict[str, object]) -> None:
        """Atomically persist ``entry`` (with its digest) at ``path``."""
        entry = dict(entry)
        entry["digest"] = self._entry_digest(entry)
        os.makedirs(self.dir, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- storage --------------------------------------------------------------
    def load(
        self, key: str, spec: PointSpec, batched: bool = False
    ) -> Optional[Tuple[int, int]]:
        """Cached ``(successes, effective trials)`` for a point, if valid.

        A non-hit counts as a miss (the point will have to be computed);
        with no cache directory nothing is counted at all.
        """
        if self.backend is None:
            return None
        entry = self._read(key, spec, batched)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def _read(
        self, key: str, spec: PointSpec, batched: bool
    ) -> Optional[Tuple[int, int]]:
        if batched and spec.seed is None:
            # A seedless batched point has fresh entropy every time; a
            # cache entry for it would be a false hit.
            return None
        blob = self.backend.get(key)
        if blob is None:
            return None
        # The store verified transport/storage integrity; decode_entry
        # re-checks the embedded digest (the safety net for tiers that
        # store arbitrary bytes) before semantic validation below.
        data = decode_entry(blob)
        if data is None:
            return None
        try:
            successes = data["successes"]
            trials = data["trials"]
            if batched:
                if data["requested"] != spec.runs or not 0 <= successes <= trials <= spec.runs:
                    return None
            elif trials != spec.runs or not 0 <= successes <= spec.runs:
                return None
            return int(successes), int(trials)
        except (ValueError, KeyError, TypeError):
            return None

    def store(
        self,
        key: str,
        spec: PointSpec,
        successes: int,
        trials: int,
        batched: bool = False,
        stop: Optional[StopRule] = None,
    ) -> None:
        if self.backend is None or (batched and spec.seed is None):
            return
        entry: Dict[str, object] = {
            "successes": successes,
            "trials": trials,
            "kind": spec.kind,
            "param": spec.param,
            "seed": spec.seed,
            "version": self.version,
        }
        if batched:
            entry["requested"] = spec.runs
            entry["stop"] = stop.digest() if stop is not None else None
        self.backend.put(key, encode_entry(entry))

    # -- fold checkpoints ------------------------------------------------------
    def load_checkpoint(
        self, key: str, spec: PointSpec
    ) -> Optional[Dict[str, object]]:
        """The journaled fold state of a batched point, if present and valid.

        Returns the raw checkpoint entry (``folds``/``successes``/
        ``trials``/``stats``/``crit``); the scheduler validates it against
        the point's shard plan before trusting it.  Corrupt checkpoints
        quarantine like any cache file; a stale or inconsistent one reads
        as absent, so the worst outcome of any checkpoint is recomputing
        from fold zero.
        """
        if self.dir is None or spec.seed is None:
            return None
        data = self._verified(self._ckpt_path(key))
        if data is None:
            return None
        try:
            folds = int(data["folds"])  # type: ignore[arg-type]
            successes = int(data["successes"])  # type: ignore[arg-type]
            trials = int(data["trials"])  # type: ignore[arg-type]
        except (ValueError, KeyError, TypeError):
            return None
        if data.get("requested") != spec.runs or folds < 1:
            return None
        if not 0 <= successes <= trials <= spec.runs:
            return None
        return data

    def store_checkpoint(
        self,
        key: str,
        spec: PointSpec,
        *,
        folds: int,
        successes: int,
        trials: int,
        stats: Dict[str, int],
        crit: Optional[Dict[str, int]] = None,
    ) -> None:
        """Journal a batched point's cumulative state after fold ``folds``."""
        if self.dir is None or spec.seed is None:
            return
        self._write(self._ckpt_path(key), {
            "requested": spec.runs,
            "folds": folds,
            "successes": successes,
            "trials": trials,
            "stats": stats,
            "crit": crit,
            "version": self.version,
        })

    def clear_checkpoint(self, key: str) -> None:
        """Drop a point's checkpoint (it completed; the final entry rules)."""
        if self.dir is None:
            return
        try:
            os.unlink(self._ckpt_path(key))
        except OSError:
            pass


# -- result validation --------------------------------------------------------
#
# Validators run parent-side in UnitRunner.collect(): the scheduler knows
# each unit's payload shape and bounds, so a corrupted payload (bit-rot,
# a broken transport, an injected fault) is rejected and the unit retried
# instead of folding garbage into the estimates.

def _is_count(value: object, cap: int) -> bool:
    return isinstance(value, (int, np.integer)) and not isinstance(
        value, bool
    ) and 0 <= int(value) <= cap


def _chunk_validator(runs: Sequence[int]) -> Callable[[object], bool]:
    """Accept only a well-formed ``compute_chunk`` payload for ``runs``."""
    def validate(value: object) -> bool:
        successes, stat_dict, crits = value  # type: ignore[misc]
        if len(successes) != len(runs) or len(crits) != len(runs):
            return False
        if not all(_is_count(got, cap) for got, cap in zip(successes, runs)):
            return False
        return isinstance(stat_dict, dict)
    return validate


def _shard_validator(size: int) -> Callable[[object], bool]:
    """Accept only a well-formed ``compute_shard`` payload for ``size`` runs."""
    def validate(value: object) -> bool:
        got, stat_dict = value  # type: ignore[misc]
        return _is_count(got, size) and isinstance(stat_dict, dict)
    return validate


# -- the scheduler ------------------------------------------------------------

class PointScheduler:
    """Turns a task list into ordered, cached, executor-agnostic results.

    The scheduler is pure in the sense that its outputs — per-point
    ``(successes, effective trials)`` pairs — are a function of the task
    list alone.  The executor passed to :meth:`run` decides only where
    compute units execute and how far the scheduler may speculate past an
    adaptive stop point; folds always happen in batch order, so every
    backend produces identical numbers and identical effective budgets.

    ``retry`` applies the resilience layer: failed, hung and corrupted
    units are re-executed with deterministic backoff, and a broken
    process pool is rebuilt with its in-flight units resubmitted — all
    without changing a single number, because every unit is a pure
    function of its arguments.  ``checkpoint=True`` journals each batched
    point's fold state to the cache directory so a preempted adaptive
    point resumes at the fold it reached.  ``stats`` shares one
    :class:`~repro.yieldsim.resilience.ResilienceStats` with the cache
    (default) so the engine sees every incident in one place.
    """

    def __init__(
        self,
        cache: PointCache,
        dtype: type = np.float32,
        shard_runs: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        checkpoint: bool = False,
        stats: Optional[ResilienceStats] = None,
        tracer: Optional[Tracer] = None,
    ):
        if shard_runs is not None and shard_runs < 1:
            raise SimulationError(f"shard_runs must be >= 1, got {shard_runs}")
        self.cache = cache
        self.dtype = dtype
        self.shard_runs = shard_runs
        self.retry = retry
        self.checkpoint = checkpoint
        self.stats = stats if stats is not None else cache.stats
        #: Optional span tracer; ``None`` keeps every hot path untouched.
        #: Mutable so a server can arm tracing per-request on one engine.
        self.tracer = tracer

    # -- key derivation --------------------------------------------------------
    def task_batch(self, task: EnginePoint) -> Optional[int]:
        """Batch size for batched (sharded/adaptive) execution, else None."""
        if task.stop is not None:
            return task.stop.batch_runs
        if self.shard_runs is not None and task.spec.runs > self.shard_runs:
            return self.shard_runs
        return None

    def key_for(self, task: EnginePoint) -> str:
        """The point-cache key (request identity) of one task."""
        payload = chip_payload(task.chip, task.needed)
        return self.cache.key(
            payload_digest(payload), task.spec,
            stop=task.stop, batch=self.task_batch(task),
        )

    # -- execution -------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[EnginePoint],
        executor: Executor,
        *,
        progress: Optional[Callable[[int, int], None]] = None,
        on_fold: Optional[FoldHook] = None,
        stats: Optional[ScreenStats] = None,
        crit_out: Optional[List[Optional[Dict[str, int]]]] = None,
        incidents_out: Optional[List[Optional[Dict[str, int]]]] = None,
        timings_out: Optional[List[Optional[Dict[str, float]]]] = None,
    ) -> List[Tuple[int, int]]:
        """``(successes, effective trials)`` for every task, in order.

        Flat points run as per-chip chunks; points with a stop rule or
        beyond ``shard_runs`` run as per-batch units folded strictly in
        order with the stop rule checked after each fold.  ``on_fold``
        (if given) observes each in-order fold of a batched point —
        cumulative successes/trials — which is what the serving layer
        streams as NDJSON progress.  Screen statistics of folded units
        are merged into ``stats``.

        ``crit_out``, when given, must have one ``None`` slot per task;
        slots of computed criterion points are filled with that point's
        criterion-funnel counters (plain-keyed dict).  Cache hits leave
        their slot ``None`` — the cache stores results, not telemetry —
        and only in-order folds count for batched points, so the counters
        are executor-independent like everything else.

        ``incidents_out`` works the same way for resilience telemetry:
        slots of points whose units needed recovery (retries, timeouts,
        corrupt payloads, pool rebuilds) are filled with the per-kind
        incident counts, attributing recovery work to the points it
        served.  A chunk's incidents attribute to every point it carried.

        ``timings_out`` follows the same out-parameter idiom for phase
        profiling: slots of *computed* points are filled with per-phase
        wall/CPU seconds — worker-side unit totals (``wall_s``/``cpu_s``,
        plus funnel phases for criterion points) and parent-side
        ``cache_wall_s`` / ``fold_wall_s``.  A chunk's unit timing
        attributes to every point it carried; cache hits leave their slot
        ``None``.  Timings are telemetry only — they never influence
        results or artifacts.
        """
        n = len(tasks)
        results: List[Optional[Tuple[int, int]]] = [None] * n
        stats = stats if stats is not None else ScreenStats()
        tracer = self.tracer
        run_t0 = tracer.now_us() if tracer is not None else 0.0
        #: task index -> accumulated phase timings (computed points only).
        timing_acc: Dict[int, Dict[str, float]] = {}
        #: task index -> trace-relative start of the point's lifecycle.
        point_start: Dict[int, float] = {}

        def trace_point(i: int, hit: bool) -> None:
            if tracer is None:
                return
            got, trials = results[i]  # type: ignore[misc]
            tracer.complete(
                "point", point_start.get(i, 0.0),
                tracer.now_us() - point_start.get(i, 0.0), cat="point",
                index=i, kind=tasks[i].spec.kind, param=tasks[i].spec.param,
                requested=tasks[i].spec.runs, effective=trials,
                successes=got, hit=hit,
            )

        def note_times(i: int, wire: Dict[str, object]) -> None:
            """Fold a unit's ``time_``-prefixed keys into point ``i``."""
            acc = timing_acc.setdefault(i, {})
            for key, value in wire.items():
                if key.startswith("time_"):
                    name = key[len("time_"):]
                    acc[name] = acc.get(name, 0.0) + float(value)  # type: ignore[arg-type]

        # Canonical payload/digest per distinct chip object (and needed set).
        seen: Dict[Tuple[int, Optional[Tuple[Hashable, ...]]], str] = {}
        payload_by_digest: Dict[str, Dict[str, object]] = {}
        digests: List[str] = []
        for task in tasks:
            marker = (id(task.chip), task.needed)
            digest = seen.get(marker)
            if digest is None:
                payload = chip_payload(task.chip, task.needed)
                digest = payload_digest(payload)
                seen[marker] = digest
                payload_by_digest[digest] = payload
            digests.append(digest)

        # Cache pass.
        batch_of = [self.task_batch(task) for task in tasks]
        keys = [
            self.cache.key(digests[i], task.spec, stop=task.stop, batch=batch_of[i])
            for i, task in enumerate(tasks)
        ]
        pending: List[int] = []
        pending_batched: List[int] = []
        done = 0
        for i, task in enumerate(tasks):
            task.spec.validate(len(task.chip))
            if tracer is not None:
                point_start[i] = tracer.now_us()
            load0 = time.perf_counter()
            cached = self.cache.load(keys[i], task.spec, batched=batch_of[i] is not None)
            load_s = time.perf_counter() - load0
            if tracer is not None:
                tracer.complete(
                    "cache.get", point_start[i], load_s * 1e6, cat="cache",
                    key=keys[i][:16], hit=cached is not None,
                )
            if cached is not None:
                results[i] = cached
                done += 1
                trace_point(i, hit=True)
            else:
                timing_acc[i] = {"cache_wall_s": load_s}
                (pending if batch_of[i] is None else pending_batched).append(i)
        if done and progress is not None:
            progress(done, n)

        # Group flat pending points into per-chip chunks (the shard unit).
        # The grouping depends only on the task list, never on the
        # executor, so every backend computes identical chunks.
        chunks: List[Tuple[str, List[int]]] = []
        current_digest: Optional[str] = None
        for i in pending:
            if digests[i] != current_digest or len(chunks[-1][1]) >= _CHUNK_POINTS:
                chunks.append((digests[i], []))
                current_digest = digests[i]
            chunks[-1][1].append(i)

        def record(chunk_indices: List[int], successes: List[int],
                   chunk_stats: Dict[str, int],
                   chunk_crits: List[Optional[Dict[str, int]]]) -> None:
            nonlocal done
            for idx, got, crit in zip(chunk_indices, successes, chunk_crits):
                results[idx] = (got, tasks[idx].spec.runs)
                self._store_traced(
                    keys[idx], tasks[idx].spec, got, tasks[idx].spec.runs
                )
                if crit is not None and crit_out is not None:
                    from repro.functional.criteria import CriterionStats

                    crit_out[idx] = CriterionStats.from_wire(crit).as_dict()
                note_times(idx, chunk_stats)
                trace_point(idx, hit=False)
            stats.merge(ScreenStats.from_dict(chunk_stats))
            done += len(chunk_indices)
            if progress is not None:
                progress(done, n)

        dtype_name = np.dtype(self.dtype).name
        plans = {
            i: shard_plan(
                tasks[i].stop.cap(tasks[i].spec.runs) if tasks[i].stop else tasks[i].spec.runs,
                batch_of[i],
            )
            for i in pending_batched
        }
        shard_units = sum(len(plan) for plan in plans.values())
        executor.start(max(len(chunks), shard_units))
        runner = UnitRunner(executor, self.retry, self.stats, tracer=tracer)
        try:
            # Flat chunks: submit up to capacity, fold results as they
            # complete.  With a capacity-1 immediate executor this is the
            # historical strict chunk-order serial loop.  The runner
            # retries crashed/hung/corrupted chunks transparently; a
            # definitively-completed chunk folds exactly as before.
            queue = deque(chunks)
            while queue or len(runner):
                while queue and runner.free_slots > 0:
                    digest, idxs = queue.popleft()
                    runner.submit(
                        ("chunk", tuple(idxs)),
                        compute_chunk,
                        (digest, payload_by_digest[digest],
                         [tasks[i].spec for i in idxs], dtype_name),
                        validator=_chunk_validator(
                            [tasks[i].spec.runs for i in idxs]
                        ),
                    )
                for token, value in runner.collect():
                    successes, chunk_stats, chunk_crits = value
                    record(list(token[1]), successes, chunk_stats, chunk_crits)

            def on_point(i: int, got: int, trials: int) -> None:
                nonlocal done
                results[i] = (got, trials)
                self._store_traced(
                    keys[i], tasks[i].spec, got, trials,
                    batched=True, stop=tasks[i].stop,
                )
                if self.checkpoint:
                    self.cache.clear_checkpoint(keys[i])
                trace_point(i, hit=False)
                done += 1
                if progress is not None:
                    progress(done, n)

            if pending_batched:
                self._run_batched(
                    tasks, pending_batched, plans, keys, digests,
                    payload_by_digest, executor, runner, on_point, on_fold,
                    stats, crit_out, timing_acc=timing_acc,
                )
        finally:
            executor.shutdown()

        if incidents_out is not None:
            for token, counts in runner.incidents.items():
                members = (
                    token[1] if isinstance(token, tuple) and token[0] == "chunk"
                    else (token[0],)
                )
                for i in members:
                    bucket = incidents_out[i] or {}
                    for kind, count in counts.items():
                        bucket[kind] = bucket.get(kind, 0) + count
                    incidents_out[i] = bucket

        if timings_out is not None:
            for i, acc in timing_acc.items():
                if acc and results[i] is not None:
                    timings_out[i] = {
                        k: round(v, 6) for k, v in sorted(acc.items())
                    }

        if tracer is not None:
            tracer.complete(
                "scheduler.run", run_t0, tracer.now_us() - run_t0,
                cat="engine", tasks=n, hits=max(0, n - len(timing_acc)),
            )

        return [pair for pair in results]  # type: ignore[misc]

    def _store_traced(
        self,
        key: str,
        spec: PointSpec,
        got: int,
        trials: int,
        *,
        batched: bool = False,
        stop: Optional[StopRule] = None,
    ) -> None:
        """``cache.store`` wrapped in a ``cache.put`` span when tracing."""
        if self.tracer is None:
            self.cache.store(key, spec, got, trials, batched=batched, stop=stop)
            return
        t0 = self.tracer.now_us()
        self.cache.store(key, spec, got, trials, batched=batched, stop=stop)
        self.tracer.complete(
            "cache.put", t0, self.tracer.now_us() - t0, cat="cache",
            key=key[:16],
        )

    def _run_batched(
        self,
        tasks: Sequence[EnginePoint],
        indices: Sequence[int],
        plans: Dict[int, Tuple[int, ...]],
        keys: Sequence[str],
        digests: Sequence[str],
        payload_by_digest: Dict[str, Dict[str, object]],
        executor: Executor,
        runner: UnitRunner,
        on_point: Callable[[int, int, int], None],
        on_fold: Optional[FoldHook],
        stats: ScreenStats,
        crit_out: Optional[List[Optional[Dict[str, int]]]] = None,
        timing_acc: Optional[Dict[int, Dict[str, float]]] = None,
    ) -> None:
        """Run the batched points; calls ``on_point(i, successes, trials)``
        as each completes.

        Each point's batches are folded strictly in batch order and its
        stop rule (if any) is checked after each fold, so every point's
        result — successes *and* effective budget — is identical whatever
        the executor.  The submit schedule interleaves batches of
        *different* points (point-major order), so an adaptive sweep keeps
        every worker busy instead of draining one point at a time; batches
        that complete beyond a stop point are discarded, keeping numbers
        and screen stats equal to the capacity-1 fold.  With a capacity-1
        immediate executor no speculation happens at all: each batch is
        computed, folded and stop-checked before the next is submitted.

        With checkpointing on, each in-order fold of a seeded point
        journals the point's cumulative state (successes, trials, screen
        stats, criterion funnel) to the cache directory, and points with
        a valid checkpoint restore that state up front — skipping the
        folds a previous, interrupted run already did.  Because the
        journal holds exactly what the fold loop would have accumulated,
        a resumed point is indistinguishable from an uninterrupted one.
        """
        dtype_name = np.dtype(self.dtype).name
        entropies = {i: point_entropy(tasks[i].spec.seed) for i in indices}

        # Per-point fold state; a point is live until it stops or folds
        # its whole plan.
        next_fold = {i: 0 for i in indices}
        successes = {i: 0 for i in indices}
        trials = {i: 0 for i in indices}
        complete: set = set()
        crit_acc: Dict[int, object] = {}
        if any(tasks[i].spec.criterion is not None for i in indices):
            from repro.functional.criteria import CriterionStats

            crit_acc = {
                i: CriterionStats()
                for i in indices
                if tasks[i].spec.criterion is not None
            }

        def finish(i: int) -> None:
            complete.add(i)
            if i in crit_acc and crit_out is not None:
                crit_out[i] = crit_acc[i].as_dict()
            on_point(i, successes[i], trials[i])

        # Checkpoint restore: per-point screen-stat accumulators exist
        # only for journaled points (they fund the next checkpoint write).
        ckpt_stats: Dict[int, ScreenStats] = {}
        if self.checkpoint and self.cache.dir is not None:
            for i in indices:
                task = tasks[i]
                if task.spec.seed is None:
                    continue
                ckpt_stats[i] = ScreenStats()
                data = self.cache.load_checkpoint(keys[i], task.spec)
                if data is None:
                    continue
                folds = int(data["folds"])  # type: ignore[arg-type]
                if folds > len(plans[i]) or int(
                    data["trials"]  # type: ignore[arg-type]
                ) != sum(plans[i][:folds]):
                    continue  # journal from another plan shape: recompute
                successes[i] = int(data["successes"])  # type: ignore[arg-type]
                trials[i] = int(data["trials"])  # type: ignore[arg-type]
                next_fold[i] = folds
                restored = ScreenStats.from_dict(data.get("stats") or {})
                stats.merge(restored)
                ckpt_stats[i].merge(restored)
                if i in crit_acc and data.get("crit"):
                    from repro.functional.criteria import CriterionStats

                    crit_acc[i] = CriterionStats.from_wire(data["crit"])
                self.stats.checkpoint_resumes += 1
                self.stats.folds_resumed += folds
                if self.tracer is not None:
                    self.tracer.instant(
                        "checkpoint_resume", cat="incident", index=i,
                        folds=folds, trials=trials[i],
                    )
                log_event(
                    _log, "checkpoint_resume", point=i, folds=folds,
                    successes=successes[i], trials=trials[i],
                )
                if on_fold is not None:
                    on_fold(i, successes[i], trials[i])
                rule = task.stop
                if next_fold[i] == len(plans[i]) or (
                    rule is not None
                    and rule.should_stop(successes[i], trials[i])
                ):
                    finish(i)

        def journal(i: int) -> None:
            if i in ckpt_stats:
                self.cache.store_checkpoint(
                    keys[i], tasks[i].spec,
                    folds=next_fold[i], successes=successes[i],
                    trials=trials[i], stats=ckpt_stats[i].as_dict(),
                    crit=(
                        crit_acc[i].wire_dict() if i in crit_acc else None
                    ),
                )

        def unit_stream():
            for i in indices:
                for k in range(next_fold[i], len(plans[i])):
                    yield i, k

        units = unit_stream()
        ready: Dict[Tuple[int, int], Tuple[int, Dict[str, int]]] = {}

        def submit_up_to_capacity() -> None:
            while runner.free_slots > 0:
                for i, k in units:
                    if i in complete:
                        continue  # point already decided; skip its tail
                    spec = tasks[i].spec
                    runner.submit(
                        (i, k), compute_shard,
                        (digests[i], payload_by_digest[digests[i]],
                         spec, plans[i][k], entropies[i], k, dtype_name),
                        validator=_shard_validator(plans[i][k]),
                    )
                    break
                else:
                    return  # no units left to submit

        while len(complete) < len(indices):
            submit_up_to_capacity()
            if not len(runner) and not ready:
                break  # nothing in flight, nothing to fold (defensive)
            for unit, value in runner.collect():
                ready[unit] = value
            for i in indices:
                if i in complete:
                    continue
                rule = tasks[i].stop
                while (i, next_fold[i]) in ready and i not in complete:
                    fold0 = time.perf_counter()
                    got, shard_stats = ready.pop((i, next_fold[i]))
                    shard_screen = ScreenStats.from_dict(shard_stats)
                    stats.merge(shard_screen)
                    if i in ckpt_stats:
                        ckpt_stats[i].merge(shard_screen)
                    if i in crit_acc:
                        # Only in-order folds count: speculative shards of
                        # stopped points are discarded below, so criterion
                        # telemetry stays executor-independent too.
                        from repro.functional.criteria import CriterionStats

                        crit_acc[i].merge(CriterionStats.from_wire(shard_stats))
                    successes[i] += got
                    trials[i] += plans[i][next_fold[i]]
                    next_fold[i] += 1
                    if timing_acc is not None:
                        acc = timing_acc.setdefault(i, {})
                        for key, value in shard_stats.items():
                            if key.startswith("time_"):
                                name = key[len("time_"):]
                                acc[name] = acc.get(name, 0.0) + float(value)
                        acc["fold_wall_s"] = acc.get("fold_wall_s", 0.0) + (
                            time.perf_counter() - fold0
                        )
                    if self.tracer is not None:
                        self.tracer.instant(
                            "fold", cat="point", index=i, fold=next_fold[i],
                            successes=successes[i], trials=trials[i],
                        )
                    if on_fold is not None:
                        on_fold(i, successes[i], trials[i])
                    stopped = rule is not None and rule.should_stop(
                        successes[i], trials[i]
                    )
                    if stopped or next_fold[i] == len(plans[i]):
                        finish(i)
                    else:
                        journal(i)
            # Drop speculative results (and cancel queued batches) of
            # points that have since completed.
            for unit in [u for u in ready if u[0] in complete]:
                del ready[unit]
            runner.cancel_where(lambda token: token[0] in complete)
